"""Neuroscience monitoring: the paper's motivating scenario end to end.

A synthetic neuron mesh is deformed in place at every simulation step (the
"black box" simulation); between steps, three monitoring applications —
structural validation, mesh quality and visualization — issue range queries
that OCTOPUS answers without ever maintaining a spatial index.

Run with::

    python examples/neuroscience_monitoring.py
"""

from __future__ import annotations

from repro import LinearScanExecutor, OctopusExecutor
from repro.generators import neuron_mesh
from repro.simulation import (
    MeshQualityMonitor,
    MeshSimulation,
    SpinePulsationDeformation,
    StructuralValidationMonitor,
    VisualizationMonitor,
)

N_STEPS = 5


def main() -> None:
    mesh = neuron_mesh(resolution=22, name="monitored-neuron")
    print(f"simulating {mesh.n_cells} tetrahedra for {N_STEPS} steps\n")

    monitors = [
        StructuralValidationMonitor(queries_per_step=5, selectivity=0.0013, seed=1),
        MeshQualityMonitor(queries_per_step=3, selectivity=0.0008, seed=2),
        VisualizationMonitor(quality="high", queries_per_step=6, seed=3),
    ]

    def all_monitor_queries(current_mesh, step):
        boxes = []
        for monitor in monitors:
            boxes.extend(monitor.queries_for_step(current_mesh, step))
        return boxes

    simulation = MeshSimulation(
        mesh=mesh,
        deformation=SpinePulsationDeformation(amplitude=0.01, period_steps=20, seed=0),
        strategies=[OctopusExecutor(), LinearScanExecutor()],
        query_provider=all_monitor_queries,
    )
    report = simulation.run(n_steps=N_STEPS)

    octopus = report["octopus"]
    linear = report["linear-scan"]
    print(f"queries executed per strategy : {octopus.n_queries}")
    print(f"OCTOPUS total response time   : {octopus.total_response_time:.3f} s "
          f"(maintenance {octopus.total_maintenance_time:.3f} s)")
    print(f"LinearScan total response time: {linear.total_response_time:.3f} s")
    print(f"work-based speedup            : "
          f"{octopus.speedup_against(linear, use_work=True):.1f}x")
    print(f"wall-clock speedup            : {octopus.speedup_against(linear):.1f}x")

    # Per-monitor analysis on the final state of the mesh.
    print("\nmonitoring statistics on the final time step:")
    octopus_executor = OctopusExecutor()
    octopus_executor.prepare(mesh)
    for monitor in monitors:
        boxes = monitor.queries_for_step(mesh, N_STEPS)
        stats = monitor.analyze(mesh, boxes[0], octopus_executor.query(boxes[0]))
        print(f"  {monitor.name:<24} {stats}")


if __name__ == "__main__":
    main()
