"""Advanced features: mesh restructuring and the surface-approximation knob.

Two of OCTOPUS's less-travelled code paths:

1. **Mesh restructuring** (Section IV-E2) — when the simulation splits or
   removes cells, the surface can change; the surface index is reconciled
   with cheap insert/delete operations instead of a rebuild.
2. **Surface approximation** (Section IV-H2) — probing only a sample of the
   surface trades a little recall for probe time, useful for visualization
   workloads.

Run with::

    python examples/restructuring_and_approximation.py
"""

from __future__ import annotations

import numpy as np

from repro import Box3D, LinearScanExecutor, OctopusExecutor
from repro.core import evaluate_surface_approximation
from repro.generators import neuron_mesh
from repro.simulation import remove_cells_inplace, split_cells_inplace
from repro.workloads import random_query_workload


def restructuring_demo() -> None:
    print("=== mesh restructuring ===")
    mesh = neuron_mesh(resolution=18, name="restructured-neuron")
    octopus = OctopusExecutor()
    octopus.prepare(mesh)
    print(f"initial surface index size: {len(octopus.surface_index)}")

    # Refine a region: split 50 cells 1-to-4 (centroid insertion).  The event
    # carries the TopologyDelta that feeds the strategy lifecycle.
    split_event = split_cells_inplace(mesh, np.arange(50))
    seconds = octopus.on_restructure(split_event.delta)
    print(f"split 50 cells: +{split_event.n_new_vertices} vertices, "
          f"surface gained {split_event.inserted_surface_vertices.size} / "
          f"lost {split_event.removed_surface_vertices.size} vertices; "
          f"index reconciled in {seconds * 1e3:.2f} ms "
          f"({split_event.delta.n_dirty} dirty vertices checked)")

    # Erode the mesh: remove 100 cells, exposing interior vertices.  The
    # narrowed reconciliation only diffs the removed cells' vertices.
    remove_event = remove_cells_inplace(mesh, np.arange(mesh.n_cells - 100, mesh.n_cells))
    seconds = octopus.on_restructure(remove_event.delta)
    print(f"removed 100 cells: surface gained {remove_event.inserted_surface_vertices.size} "
          f"vertices; index reconciled in {seconds * 1e3:.2f} ms "
          f"({octopus.maintenance_entries} hash-table operations)")

    # Queries remain exact after the restructuring.
    linear = LinearScanExecutor()
    linear.prepare(mesh)
    box = Box3D.cube(mesh.vertices[0], 0.5)
    octopus_ids = octopus.query(box).vertex_ids
    referenced = np.unique(mesh.cells)
    scan_ids = np.intersect1d(linear.query(box).vertex_ids, referenced)
    print(f"post-restructuring query matches the scan: {np.array_equal(octopus_ids, scan_ids)}\n")


def approximation_demo() -> None:
    print("=== surface approximation ===")
    mesh = neuron_mesh(resolution=24, name="approximated-neuron")
    workload = random_query_workload(mesh, selectivity=0.002, n_queries=6, seed=0)
    points = evaluate_surface_approximation(
        mesh, workload.boxes, fractions=(0.001, 0.01, 0.1, 1.0), seed=0
    )
    print(f"{'probe fraction [%]':>19} {'accuracy [%]':>13} {'speedup vs exact':>17}")
    for point in points:
        print(f"{point.fraction * 100:>19.3f} {point.accuracy * 100:>13.1f} "
              f"{point.speedup_vs_exact:>17.2f}")
    print("(probing ~1% of the surface already retrieves essentially the full result)")


if __name__ == "__main__":
    restructuring_demo()
    approximation_demo()
