"""Earthquake simulation on a convex mesh: OCTOPUS-CON and the stale grid.

Convex meshes satisfy internal reachability, so OCTOPUS-CON can skip the
surface probe entirely: a uniform grid built once (and never updated, even
though every vertex moves every step) suggests a starting vertex near the
query, a directed walk closes the gap and the crawl retrieves the result.

Run with::

    python examples/earthquake_convex.py
"""

from __future__ import annotations

from repro import LinearScanExecutor, OctopusConExecutor, OctopusExecutor
from repro.generators import earthquake_mesh
from repro.mesh import mesh_is_convex
from repro.simulation import AffineDeformation, MeshSimulation
from repro.workloads import random_query_workload

N_STEPS = 6


def main() -> None:
    mesh = earthquake_mesh(resolution=18, name="basin")
    print(f"basin mesh: {mesh.n_cells} tetrahedra, convex: {mesh_is_convex(mesh)}")

    workload = random_query_workload(mesh, selectivity=0.001, n_queries=8, seed=0)
    simulation = MeshSimulation(
        mesh=mesh,
        deformation=AffineDeformation(
            stretch_amplitude=0.08, shear_amplitude=0.03, rotation_amplitude=0.05
        ),
        strategies=[OctopusConExecutor(grid_resolution=10), OctopusExecutor(), LinearScanExecutor()],
        query_provider=lambda current_mesh, step: workload.boxes,
        validate_results=True,     # all three strategies must agree at every step
    )
    report = simulation.run(n_steps=N_STEPS)

    linear = report["linear-scan"]
    print(f"\n{'strategy':<14} {'response [s]':>12} {'probe [s]':>10} "
          f"{'walk [s]':>10} {'crawl [s]':>10} {'speedup (work)':>15}")
    for name in ("octopus-con", "octopus", "linear-scan"):
        strategy_report = report[name]
        print(
            f"{name:<14} {strategy_report.total_response_time:>12.4f} "
            f"{strategy_report.total_probe_time:>10.4f} "
            f"{strategy_report.total_walk_time:>10.4f} "
            f"{strategy_report.total_crawl_time:>10.4f} "
            f"{strategy_report.speedup_against(linear, use_work=True):>15.1f}"
        )

    con = report["octopus-con"]
    print(f"\nOCTOPUS-CON surface probes: {con.counters.surface_probed} "
          f"(the probe phase is eliminated on convex meshes)")
    print(f"OCTOPUS-CON grid was built once and never maintained "
          f"({con.total_maintenance_time:.4f} s of maintenance)")


if __name__ == "__main__":
    main()
