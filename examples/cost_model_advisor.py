"""Cost-model advisor: decide between OCTOPUS and a linear scan before running.

Section IV-G's analytical model predicts OCTOPUS's cost from four dataset and
workload parameters; Equation 6 gives the selectivity threshold above which a
linear scan wins.  This example calibrates the model's machine constants on
the current machine, characterises a mesh, and prints the advice the model
gives for a range of query selectivities — then verifies two of the
predictions by measuring.

Run with::

    python examples/cost_model_advisor.py
"""

from __future__ import annotations

from repro import LinearScanExecutor, OctopusExecutor, calibrate_cost_model
from repro.generators import neuron_mesh
from repro.workloads import random_query_workload


def main() -> None:
    mesh = neuron_mesh(resolution=24, name="advised-neuron")
    model = calibrate_cost_model(mesh)
    surface_ratio = mesh.surface_to_volume_ratio()
    mesh_degree = mesh.mesh_degree()

    print(f"mesh: {mesh.n_vertices} vertices, S = {surface_ratio:.3f}, M = {mesh_degree:.2f}")
    print(f"calibrated constants: cs = {model.cs:.2e} s/vertex, cr = {model.cr:.2e} s/vertex")
    threshold = model.max_selectivity(surface_ratio, mesh_degree)
    print(f"Equation 6 threshold: use OCTOPUS below {threshold * 100:.2f}% selectivity\n")

    print(f"{'selectivity [%]':>16} {'predicted speedup':>18} {'advice':>14}")
    for selectivity in (0.0001, 0.001, 0.005, 0.02, threshold, 2 * threshold):
        speedup = model.speedup(surface_ratio, mesh_degree, selectivity)
        advice = "OCTOPUS" if model.should_use_octopus(surface_ratio, mesh_degree, selectivity) else "linear scan"
        print(f"{selectivity * 100:>16.3f} {speedup:>18.2f} {advice:>14}")

    # Verify the prediction by measuring at two selectivities.
    print("\nmeasured check (work-based speedup):")
    octopus = OctopusExecutor()
    octopus.prepare(mesh)
    linear = LinearScanExecutor()
    linear.prepare(mesh)
    for selectivity in (0.001, 0.02):
        workload = random_query_workload(mesh, selectivity=selectivity, n_queries=5, seed=0)
        octopus_work = sum(
            octopus.query(box).counters.total_vertex_accesses() for box in workload.boxes
        )
        linear_work = sum(
            linear.query(box).counters.total_vertex_accesses() for box in workload.boxes
        )
        measured_selectivity = workload.mean_measured_selectivity()
        predicted = model.speedup(surface_ratio, mesh_degree, measured_selectivity)
        print(
            f"  selectivity {measured_selectivity * 100:5.2f}%: "
            f"measured {linear_work / max(octopus_work, 1):5.2f}x, "
            f"model predicts {predicted:5.2f}x"
        )


if __name__ == "__main__":
    main()
