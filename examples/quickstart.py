"""Quickstart: build a mesh, run one OCTOPUS range query, compare with a scan.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Box3D, LinearScanExecutor, OctopusExecutor
from repro.generators import neuron_mesh


def main() -> None:
    # 1. Generate a small non-convex tetrahedral mesh (a synthetic neuron).
    mesh = neuron_mesh(resolution=20, name="quickstart-neuron")
    print(f"mesh: {mesh.n_vertices} vertices, {mesh.n_cells} tetrahedra")
    print(f"surface-to-volume ratio S = {mesh.surface_to_volume_ratio():.3f}")
    print(f"mesh degree            M = {mesh.mesh_degree():.2f}")

    # 2. Prepare OCTOPUS (builds the surface index once) and the linear scan.
    octopus = OctopusExecutor()
    octopus.prepare(mesh)
    linear = LinearScanExecutor()
    linear.prepare(mesh)
    print(f"surface index: {len(octopus.surface_index)} vertices, "
          f"built in {octopus.preprocessing_time * 1e3:.1f} ms")

    # 3. Execute a range query around a vertex of the mesh.
    query = Box3D.cube(mesh.vertices[mesh.n_vertices // 2], side=0.6)
    octopus_result = octopus.query(query)
    scan_result = linear.query(query)

    print(f"\nquery box: {query}")
    print(f"OCTOPUS     : {octopus_result.n_results} vertices, "
          f"{octopus_result.counters.total_vertex_accesses()} vertex accesses")
    print(f"Linear scan : {scan_result.n_results} vertices, "
          f"{scan_result.counters.total_vertex_accesses()} vertex accesses")
    print(f"results identical: {octopus_result.same_vertices_as(scan_result)}")

    work_speedup = (
        scan_result.counters.total_vertex_accesses()
        / max(octopus_result.counters.total_vertex_accesses(), 1)
    )
    print(f"work-based speedup of OCTOPUS over the scan: {work_speedup:.1f}x")


if __name__ == "__main__":
    main()
