"""Animation replay: range queries over deforming mesh animation sequences.

Section VIII of the paper applies OCTOPUS to non-scientific deforming meshes
(horse gallop, facial expression, camel compress).  This example replays the
synthetic stand-ins for those sequences and reports the per-time-step query
response time of OCTOPUS versus the linear scan — the Figure 15 experiment in
miniature.

Run with::

    python examples/animation_replay.py
"""

from __future__ import annotations

from repro import LinearScanExecutor, OctopusExecutor
from repro.generators import animation_suite
from repro.simulation import MeshSimulation, SequenceReplayDeformation
from repro.workloads import random_query_workload

QUERIES_PER_STEP = 6
MAX_STEPS = 6


def main() -> None:
    print(f"{'sequence':<20} {'frames':>6} {'vertices':>9} {'S':>6} "
          f"{'octopus [s/step]':>17} {'scan [s/step]':>14} {'speedup(work)':>14}")
    for sequence in animation_suite(scale=0.6):
        n_steps = min(MAX_STEPS, sequence.n_frames)
        workload = random_query_workload(
            sequence.mesh, selectivity=0.001, n_queries=QUERIES_PER_STEP, seed=0
        )
        simulation = MeshSimulation(
            mesh=sequence.mesh.copy(),
            deformation=SequenceReplayDeformation(sequence.frames),
            strategies=[OctopusExecutor(), LinearScanExecutor()],
            query_provider=lambda mesh, step: workload.boxes,
        )
        report = simulation.run(n_steps=n_steps)
        octopus = report["octopus"]
        linear = report["linear-scan"]
        print(
            f"{sequence.name:<20} {sequence.n_frames:>6} {sequence.mesh.n_vertices:>9} "
            f"{sequence.mesh.surface_to_volume_ratio():>6.3f} "
            f"{octopus.total_response_time / n_steps:>17.4f} "
            f"{linear.total_response_time / n_steps:>14.4f} "
            f"{octopus.speedup_against(linear, use_work=True):>14.1f}"
        )
    print("\nThe speedup grows as the surface-to-volume ratio shrinks "
          "(the facial-expression sequence benefits most), as in Figure 15(b).")


if __name__ == "__main__":
    main()
