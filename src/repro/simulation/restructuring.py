"""Mesh restructuring: the rare connectivity-changing transformation.

Section IV-E2 distinguishes *mesh deformation* (positions change; the surface
index needs no maintenance) from *mesh restructuring* (cells are split or
merged; the surface can change and the surface index must be updated with
insert/delete operations).  Restructuring is rarely implemented in practice,
but OCTOPUS supports it, so this module provides the two operations needed to
exercise that code path:

* :func:`split_cells` — 1-to-4 split of selected tetrahedra by inserting their
  centroid as a new vertex;
* :func:`remove_cells` — deletion of selected tetrahedra (e.g. eroding the
  mesh), which typically exposes new surface vertices.

Both return a new :class:`~repro.mesh.tetrahedral.TetrahedralMesh` plus a
:class:`RestructuringEvent` describing how the surface changed, so tests can
check that the surface-index maintenance reproduces exactly that change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..mesh import TetrahedralMesh

__all__ = ["RestructuringEvent", "split_cells", "remove_cells"]


@dataclass(frozen=True)
class RestructuringEvent:
    """Description of one restructuring of the mesh.

    Attributes
    ----------
    kind:
        "split" or "remove".
    affected_cells:
        Cell ids of the original mesh that were split or removed.
    n_new_vertices:
        Vertices added by the operation (splits insert centroids).
    surface_vertices_before / surface_vertices_after:
        Surface vertex ids before and after, in the *new* mesh's numbering
        (vertex ids are preserved for pre-existing vertices by both
        operations, so the two sets are directly comparable).
    """

    kind: str
    affected_cells: np.ndarray
    n_new_vertices: int
    surface_vertices_before: np.ndarray
    surface_vertices_after: np.ndarray

    @property
    def inserted_surface_vertices(self) -> np.ndarray:
        """Vertex ids that joined the surface."""
        return np.setdiff1d(self.surface_vertices_after, self.surface_vertices_before)

    @property
    def removed_surface_vertices(self) -> np.ndarray:
        """Vertex ids that left the surface."""
        return np.setdiff1d(self.surface_vertices_before, self.surface_vertices_after)


def split_cells(mesh: TetrahedralMesh, cell_ids: np.ndarray) -> tuple[TetrahedralMesh, RestructuringEvent]:
    """Split the selected tetrahedra 1-to-4 by inserting their centroids.

    Existing vertices keep their ids; each split cell contributes one new
    vertex appended after them.  The operation refines the mesh the way
    adaptive simulations do; interior splits do not change the surface, while
    splits of boundary cells add their centroid only to the interior (the
    centroid of a tetrahedron is never on the surface), so the surface vertex
    set is typically unchanged — which is exactly the paper's point about how
    cheap surface-index maintenance is.
    """
    ids = np.unique(np.asarray(cell_ids, dtype=np.int64))
    if ids.size == 0:
        raise SimulationError("split_cells needs at least one cell id")
    if ids.min() < 0 or ids.max() >= mesh.n_cells:
        raise SimulationError("cell ids out of range")

    before = mesh.surface_vertices()
    centroids = mesh.vertices[mesh.cells[ids]].mean(axis=1)
    new_vertex_ids = mesh.n_vertices + np.arange(ids.size, dtype=np.int64)
    new_vertices = np.vstack([mesh.vertices, centroids])

    keep_mask = np.ones(mesh.n_cells, dtype=bool)
    keep_mask[ids] = False
    kept_cells = mesh.cells[keep_mask]

    split_cells_list = []
    faces = ((0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3))
    for new_vertex, cell_id in zip(new_vertex_ids, ids):
        cell = mesh.cells[cell_id]
        for face in faces:
            split_cells_list.append([cell[face[0]], cell[face[1]], cell[face[2]], new_vertex])
    new_cells = np.vstack([kept_cells, np.asarray(split_cells_list, dtype=np.int64)])

    new_mesh = TetrahedralMesh(new_vertices, new_cells, name=mesh.name)
    event = RestructuringEvent(
        kind="split",
        affected_cells=ids,
        n_new_vertices=int(ids.size),
        surface_vertices_before=before,
        surface_vertices_after=new_mesh.surface_vertices(),
    )
    return new_mesh, event


def remove_cells(mesh: TetrahedralMesh, cell_ids: np.ndarray) -> tuple[TetrahedralMesh, RestructuringEvent]:
    """Delete the selected tetrahedra, exposing new surface where they were.

    Vertex ids are preserved (vertices that become isolated simply stop being
    referenced); removing boundary-adjacent cells usually promotes interior
    vertices to surface vertices, exercising the surface index's insert path.
    """
    ids = np.unique(np.asarray(cell_ids, dtype=np.int64))
    if ids.size == 0:
        raise SimulationError("remove_cells needs at least one cell id")
    if ids.min() < 0 or ids.max() >= mesh.n_cells:
        raise SimulationError("cell ids out of range")
    if ids.size >= mesh.n_cells:
        raise SimulationError("cannot remove every cell of the mesh")

    before = mesh.surface_vertices()
    keep_mask = np.ones(mesh.n_cells, dtype=bool)
    keep_mask[ids] = False
    new_mesh = TetrahedralMesh(mesh.vertices.copy(), mesh.cells[keep_mask], name=mesh.name)
    event = RestructuringEvent(
        kind="remove",
        affected_cells=ids,
        n_new_vertices=0,
        surface_vertices_before=before,
        surface_vertices_after=new_mesh.surface_vertices(),
    )
    return new_mesh, event
