"""Mesh restructuring: the rare connectivity-changing transformation.

Section IV-E2 distinguishes *mesh deformation* (positions change; the surface
index needs no maintenance) from *mesh restructuring* (cells are split or
merged; the surface can change and the surface index must be updated with
insert/delete operations).  Restructuring is rarely implemented in practice,
but OCTOPUS supports it, so this module provides the two operations needed to
exercise that code path:

* :func:`split_cells` — 1-to-4 split of selected tetrahedra by inserting their
  centroid as a new vertex;
* :func:`remove_cells` — deletion of selected tetrahedra (e.g. eroding the
  mesh), which typically exposes new surface vertices.

Both return a new :class:`~repro.mesh.tetrahedral.TetrahedralMesh` plus a
:class:`RestructuringEvent` describing how the surface changed and carrying
the :class:`~repro.core.delta.TopologyDelta` that feeds the change-propagation
lifecycle: the delta names the vertices whose index entries may have changed
(the affected cells' vertices plus any inserted centroids), so
:meth:`~repro.core.executor.ExecutionStrategy.on_restructure` can splice those
few entries instead of rebuilding over the whole mesh.  Two id contracts make
the incremental paths safe:

* both operations **preserve pre-existing vertex ids** (removed cells leave
  their vertices in place, possibly isolated);
* new vertices are only ever **appended** — split centroids occupy the id
  range ``[n_before, n_after)``.

The ``*_inplace`` variants apply the operation to the live simulation mesh
(via :meth:`~repro.mesh.base.PolyhedralMesh.restructure`), which is what
:class:`~repro.simulation.simulator.MeshSimulation` drives through its
``restructuring`` schedule; :func:`periodic_restructuring` builds such a
schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..core.delta import TopologyDelta
from ..errors import SimulationError
from ..mesh import PolyhedralMesh, TetrahedralMesh

__all__ = [
    "RestructuringEvent",
    "split_cells",
    "remove_cells",
    "split_cells_inplace",
    "remove_cells_inplace",
    "periodic_restructuring",
]

#: signature of a simulation restructuring schedule: ``(mesh, step)`` mutates
#: the mesh in place and returns the step's TopologyDelta, or None when the
#: step restructures nothing
RestructuringSchedule = Callable[[PolyhedralMesh, int], Optional[TopologyDelta]]


@dataclass(frozen=True)
class RestructuringEvent:
    """Description of one restructuring of the mesh.

    Attributes
    ----------
    kind:
        "split" or "remove".
    affected_cells:
        Cell ids of the original mesh that were split or removed.
    n_new_vertices:
        Vertices added by the operation (splits insert centroids).
    surface_vertices_before / surface_vertices_after:
        Surface vertex ids before and after, in the *new* mesh's numbering
        (vertex ids are preserved for pre-existing vertices by both
        operations, so the two sets are directly comparable).
    delta:
        The :class:`~repro.core.delta.TopologyDelta` describing the change
        for the strategy lifecycle — dirty vertex ids (affected cells'
        vertices plus inserted centroids), added/removed cell counts, added
        vertex count and the dirty AABB.
    """

    kind: str
    affected_cells: np.ndarray
    n_new_vertices: int
    surface_vertices_before: np.ndarray
    surface_vertices_after: np.ndarray
    delta: TopologyDelta = field(default=None)

    @property
    def inserted_surface_vertices(self) -> np.ndarray:
        """Vertex ids that joined the surface."""
        return np.setdiff1d(self.surface_vertices_after, self.surface_vertices_before)

    @property
    def removed_surface_vertices(self) -> np.ndarray:
        """Vertex ids that left the surface."""
        return np.setdiff1d(self.surface_vertices_before, self.surface_vertices_after)


def split_cells(mesh: TetrahedralMesh, cell_ids: np.ndarray) -> tuple[TetrahedralMesh, RestructuringEvent]:
    """Split the selected tetrahedra 1-to-4 by inserting their centroids.

    Existing vertices keep their ids; each split cell contributes one new
    vertex appended after them.  The operation refines the mesh the way
    adaptive simulations do; interior splits do not change the surface, while
    splits of boundary cells add their centroid only to the interior (the
    centroid of a tetrahedron is never on the surface), so the surface vertex
    set is typically unchanged — which is exactly the paper's point about how
    cheap surface-index maintenance is.

    The returned event carries the :class:`~repro.core.delta.TopologyDelta`
    whose dirty set is the split cells' vertices plus the new centroids —
    every possible surface-membership change and every new index entry lies
    inside it.

    Note that a centroid has only four mesh edges (to its cell's corners),
    so very small query boxes can contain a centroid without containing any
    of its neighbours; crawl-based execution then cannot reach it (the same
    in-box connectivity assumption that removals can break by isolating
    vertices).  Position-index strategies are unaffected.
    """
    ids = np.unique(np.asarray(cell_ids, dtype=np.int64))
    if ids.size == 0:
        raise SimulationError("split_cells needs at least one cell id")
    if ids.min() < 0 or ids.max() >= mesh.n_cells:
        raise SimulationError("cell ids out of range")

    before = mesh.surface_vertices()
    centroids = mesh.vertices[mesh.cells[ids]].mean(axis=1)
    new_vertex_ids = mesh.n_vertices + np.arange(ids.size, dtype=np.int64)
    new_vertices = np.vstack([mesh.vertices, centroids])

    keep_mask = np.ones(mesh.n_cells, dtype=bool)
    keep_mask[ids] = False
    kept_cells = mesh.cells[keep_mask]

    split_cells_list = []
    faces = ((0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3))
    for new_vertex, cell_id in zip(new_vertex_ids, ids):
        cell = mesh.cells[cell_id]
        for face in faces:
            split_cells_list.append([cell[face[0]], cell[face[1]], cell[face[2]], new_vertex])
    new_cells = np.vstack([kept_cells, np.asarray(split_cells_list, dtype=np.int64)])

    new_mesh = TetrahedralMesh(new_vertices, new_cells, name=mesh.name)
    delta = TopologyDelta.sparse(
        new_mesh.n_vertices,
        np.concatenate([mesh.cells[ids].ravel(), new_vertex_ids]),
        new_mesh.vertices,
        n_vertices_added=int(ids.size),
        n_cells_added=4 * int(ids.size),
        n_cells_removed=int(ids.size),
    )
    event = RestructuringEvent(
        kind="split",
        affected_cells=ids,
        n_new_vertices=int(ids.size),
        surface_vertices_before=before,
        surface_vertices_after=new_mesh.surface_vertices(),
        delta=delta,
    )
    return new_mesh, event


def remove_cells(mesh: TetrahedralMesh, cell_ids: np.ndarray) -> tuple[TetrahedralMesh, RestructuringEvent]:
    """Delete the selected tetrahedra, exposing new surface where they were.

    Vertex ids are preserved (vertices that become isolated simply stop being
    referenced); removing boundary-adjacent cells usually promotes interior
    vertices to surface vertices, exercising the surface index's insert path.

    The returned event carries the :class:`~repro.core.delta.TopologyDelta`
    whose dirty set is the removed cells' vertices: a face exposed by the
    removal is always a face *of a removed cell's neighbour shared with that
    removed cell*, so its vertices belong to the removed cell too — every
    surface-membership change lies inside the dirty set.
    """
    ids = np.unique(np.asarray(cell_ids, dtype=np.int64))
    if ids.size == 0:
        raise SimulationError("remove_cells needs at least one cell id")
    if ids.min() < 0 or ids.max() >= mesh.n_cells:
        raise SimulationError("cell ids out of range")
    if ids.size >= mesh.n_cells:
        raise SimulationError("cannot remove every cell of the mesh")

    before = mesh.surface_vertices()
    keep_mask = np.ones(mesh.n_cells, dtype=bool)
    keep_mask[ids] = False
    new_mesh = TetrahedralMesh(mesh.vertices.copy(), mesh.cells[keep_mask], name=mesh.name)
    delta = TopologyDelta.sparse(
        new_mesh.n_vertices,
        mesh.cells[ids].ravel(),
        new_mesh.vertices,
        n_cells_removed=int(ids.size),
    )
    event = RestructuringEvent(
        kind="remove",
        affected_cells=ids,
        n_new_vertices=0,
        surface_vertices_before=before,
        surface_vertices_after=new_mesh.surface_vertices(),
        delta=delta,
    )
    return new_mesh, event


def split_cells_inplace(mesh: TetrahedralMesh, cell_ids: np.ndarray) -> RestructuringEvent:
    """Split cells on the live mesh: :func:`split_cells` applied in place.

    The mesh's vertex and cell arrays are swapped for the refined ones (via
    :meth:`~repro.mesh.base.PolyhedralMesh.restructure`, bumping the
    connectivity version) and the event — delta included — is returned, ready
    to be handed to every strategy's ``on_restructure``.
    """
    new_mesh, event = split_cells(mesh, cell_ids)
    mesh.restructure(new_mesh.vertices, new_mesh.cells)
    return event


def remove_cells_inplace(mesh: TetrahedralMesh, cell_ids: np.ndarray) -> RestructuringEvent:
    """Remove cells from the live mesh: :func:`remove_cells` applied in place."""
    new_mesh, event = remove_cells(mesh, cell_ids)
    mesh.restructure(new_mesh.vertices, new_mesh.cells)
    return event


def periodic_restructuring(
    every: int = 4,
    kind: str = "split",
    n_cells: int = 4,
    seed: int = 0,
) -> RestructuringSchedule:
    """A simulation restructuring schedule firing every ``every``-th step.

    At each firing step a seeded draw picks ``n_cells`` cells that are
    contiguous in cell-id order (a spatially coherent clump on meshes with a
    structured cell layout — the "localized restructuring" workload) and
    splits or removes them in place, returning the operation's
    :class:`~repro.core.delta.TopologyDelta`; other steps return ``None``.

    ``kind`` is ``"split"``, ``"remove"`` or ``"mixed"`` (alternating,
    starting with a split).  Removal schedules never erode the mesh below
    ``n_cells + 1`` cells.
    """
    if every < 1:
        raise SimulationError("restructuring period must be at least 1")
    if kind not in ("split", "remove", "mixed"):
        raise SimulationError("restructuring kind must be 'split', 'remove' or 'mixed'")
    if n_cells < 1:
        raise SimulationError("n_cells must be at least 1")

    def schedule(mesh: PolyhedralMesh, step: int) -> TopologyDelta | None:
        if step % every != 0:
            return None
        operation = kind
        if kind == "mixed":
            operation = "split" if (step // every) % 2 == 1 else "remove"
        count = min(n_cells, mesh.n_cells - 1)
        if count < 1 or (operation == "remove" and mesh.n_cells <= n_cells + 1):
            return None
        rng = np.random.default_rng(seed + step)
        offset = int(rng.integers(0, mesh.n_cells - count + 1))
        cell_ids = np.arange(offset, offset + count, dtype=np.int64)
        if operation == "split":
            event = split_cells_inplace(mesh, cell_ids)
        else:
            event = remove_cells_inplace(mesh, cell_ids)
        return event.delta

    return schedule
