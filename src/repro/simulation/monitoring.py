"""Monitoring applications (Section III-B).

Monitoring tools issue range queries between simulation steps and compute
statistics over the results.  Three applications are modelled after the
neuroscience use cases the paper describes:

* :class:`StructuralValidationMonitor` — statistical validation of the model
  (vertex density, mean degree inside each queried region);
* :class:`MeshQualityMonitor` — detection of deformation artifacts (element
  aspect ratios, inverted elements inside each queried region);
* :class:`VisualizationMonitor` — retrieval of the view frustum along a camera
  path, at a configurable quality (number and size of queries).

A monitor produces the per-step query boxes and interprets the results; it is
deliberately independent of *how* the queries are executed, so the same
monitor can drive OCTOPUS or any baseline.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import SimulationError
from ..mesh import Box3D, PolyhedralMesh, TetrahedralMesh, density_statistics, quality_statistics
from ..workloads import box_for_selectivity
from ..core.result import QueryResult

__all__ = [
    "Monitor",
    "StructuralValidationMonitor",
    "MeshQualityMonitor",
    "VisualizationMonitor",
]


class Monitor(ABC):
    """Base class for monitoring applications."""

    name = "monitor"

    @abstractmethod
    def queries_for_step(self, mesh: PolyhedralMesh, step: int) -> list[Box3D]:
        """The range queries this monitor issues after simulation step ``step``."""

    def analyze(self, mesh: PolyhedralMesh, box: Box3D, result: QueryResult) -> dict:
        """Interpret one query result (default: just the result size)."""
        return {"n_vertices": result.n_results}


class StructuralValidationMonitor(Monitor):
    """Statistical validation: density and connectivity statistics per region."""

    name = "structural-validation"

    def __init__(
        self,
        queries_per_step: int = 15,
        selectivity: float = 0.0013,
        seed: int = 0,
    ) -> None:
        if queries_per_step < 1 or not 0 < selectivity < 1:
            raise SimulationError("invalid structural-validation parameters")
        self.queries_per_step = queries_per_step
        self.selectivity = selectivity
        self.seed = seed

    def queries_for_step(self, mesh: PolyhedralMesh, step: int) -> list[Box3D]:
        rng = np.random.default_rng(self.seed + step)
        centers = mesh.vertices[rng.integers(0, mesh.n_vertices, size=self.queries_per_step)]
        return [
            box_for_selectivity(mesh, center, self.selectivity, seed=self.seed + step + i)
            for i, center in enumerate(centers)
        ]

    def analyze(self, mesh: PolyhedralMesh, box: Box3D, result: QueryResult) -> dict:
        return density_statistics(mesh, result.vertex_ids, box.volume)


class MeshQualityMonitor(Monitor):
    """Artifact detection: element quality statistics inside dense regions."""

    name = "mesh-quality"

    def __init__(
        self,
        queries_per_step: int = 8,
        selectivity: float = 0.0008,
        seed: int = 0,
    ) -> None:
        if queries_per_step < 1 or not 0 < selectivity < 1:
            raise SimulationError("invalid mesh-quality parameters")
        self.queries_per_step = queries_per_step
        self.selectivity = selectivity
        self.seed = seed

    def queries_for_step(self, mesh: PolyhedralMesh, step: int) -> list[Box3D]:
        rng = np.random.default_rng(self.seed + 31 * step)
        # Bias towards dense regions: sample candidate centres and keep the
        # ones with the most vertices nearby (a cheap density proxy).
        n_candidates = self.queries_per_step * 4
        candidate_ids = rng.integers(0, mesh.n_vertices, size=n_candidates)
        degrees = mesh.adjacency.degrees()[candidate_ids]
        best = candidate_ids[np.argsort(degrees)[::-1][: self.queries_per_step]]
        return [
            box_for_selectivity(mesh, mesh.vertices[int(v)], self.selectivity, seed=self.seed + step + i)
            for i, v in enumerate(best)
        ]

    def analyze(self, mesh: PolyhedralMesh, box: Box3D, result: QueryResult) -> dict:
        if not isinstance(mesh, TetrahedralMesh):
            return {"n_vertices": result.n_results}
        # Cells fully contained in the result are the ones whose quality the
        # monitoring application inspects.
        member = np.zeros(mesh.n_vertices, dtype=bool)
        member[result.vertex_ids] = True
        cell_ids = np.nonzero(member[mesh.cells].all(axis=1))[0]
        stats = quality_statistics(mesh, cell_ids)
        stats["n_vertices"] = result.n_results
        return stats


class VisualizationMonitor(Monitor):
    """View-frustum retrieval along a circular camera path.

    ``quality`` controls the trade-off of Figure 5's benchmarks C and D: low
    quality uses larger (higher selectivity) queries, high quality uses more,
    smaller ones.
    """

    name = "visualization"

    def __init__(self, quality: str = "high", queries_per_step: int = 22, seed: int = 0) -> None:
        if quality not in ("low", "high"):
            raise SimulationError("quality must be 'low' or 'high'")
        if queries_per_step < 1:
            raise SimulationError("queries_per_step must be at least 1")
        self.quality = quality
        self.queries_per_step = queries_per_step
        self.seed = seed
        self.selectivity = 0.0018 if quality == "low" else 0.0012

    def queries_for_step(self, mesh: PolyhedralMesh, step: int) -> list[Box3D]:
        bounds = mesh.bounding_box()
        center = bounds.center
        radius = 0.35 * float(np.linalg.norm(bounds.extents))
        angle = 2.0 * np.pi * step / 36.0
        camera_target = center + radius * np.array([np.cos(angle), np.sin(angle), 0.0])
        rng = np.random.default_rng(self.seed + step)
        # Tile the frustum: queries jitter around the camera target.
        jitter = rng.normal(scale=0.05 * radius, size=(self.queries_per_step, 3))
        return [
            box_for_selectivity(mesh, camera_target + offset, self.selectivity, seed=self.seed + step + i)
            for i, offset in enumerate(jitter)
        ]

    def analyze(self, mesh: PolyhedralMesh, box: Box3D, result: QueryResult) -> dict:
        return {"n_vertices": result.n_results, "frustum_volume": box.volume}
