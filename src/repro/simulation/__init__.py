"""Simulation substrate: deformation models, restructuring, monitoring, driver."""

from ..core.delta import DeformationDelta
from .deformation import (
    AffineDeformation,
    DeformationModel,
    LocalizedPulseDeformation,
    RandomWalkDeformation,
    SequenceReplayDeformation,
    SinusoidalWaveDeformation,
    SpinePulsationDeformation,
)
from .monitoring import (
    MeshQualityMonitor,
    Monitor,
    StructuralValidationMonitor,
    VisualizationMonitor,
)
from .restructuring import RestructuringEvent, remove_cells, split_cells
from .simulator import MeshSimulation, SimulationReport, StepRecord, StrategyReport

__all__ = [
    "AffineDeformation",
    "DeformationDelta",
    "DeformationModel",
    "LocalizedPulseDeformation",
    "MeshQualityMonitor",
    "MeshSimulation",
    "Monitor",
    "RandomWalkDeformation",
    "RestructuringEvent",
    "SequenceReplayDeformation",
    "SimulationReport",
    "SinusoidalWaveDeformation",
    "SpinePulsationDeformation",
    "StepRecord",
    "StrategyReport",
    "StructuralValidationMonitor",
    "VisualizationMonitor",
    "remove_cells",
    "split_cells",
]
