"""Simulation substrate: deformation models, restructuring, monitoring, driver."""

from ..core.delta import DeformationDelta, TopologyDelta
from .deformation import (
    AffineDeformation,
    DeformationModel,
    LocalizedPulseDeformation,
    RandomWalkDeformation,
    SequenceReplayDeformation,
    SinusoidalWaveDeformation,
    SpinePulsationDeformation,
)
from .faults import FAULT_KINDS, FaultPlan, FaultyBatchStrategy
from .monitoring import (
    MeshQualityMonitor,
    Monitor,
    StructuralValidationMonitor,
    VisualizationMonitor,
)
from .restructuring import (
    RestructuringEvent,
    periodic_restructuring,
    remove_cells,
    remove_cells_inplace,
    split_cells,
    split_cells_inplace,
)
from .simulator import MeshSimulation, SimulationReport, StepRecord, StrategyReport

__all__ = [
    "AffineDeformation",
    "DeformationDelta",
    "DeformationModel",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultyBatchStrategy",
    "LocalizedPulseDeformation",
    "MeshQualityMonitor",
    "MeshSimulation",
    "Monitor",
    "RandomWalkDeformation",
    "RestructuringEvent",
    "SequenceReplayDeformation",
    "SimulationReport",
    "SinusoidalWaveDeformation",
    "SpinePulsationDeformation",
    "StepRecord",
    "StrategyReport",
    "StructuralValidationMonitor",
    "TopologyDelta",
    "VisualizationMonitor",
    "periodic_restructuring",
    "remove_cells",
    "remove_cells_inplace",
    "split_cells",
    "split_cells_inplace",
]
