"""The simulation driver: restructure, deform, maintain, query — step by step.

:class:`MeshSimulation` reproduces the timeline of Figure 1(e): at every time
step the optional restructuring schedule may split or remove cells in place,
the deformation model overwrites vertex positions in place, every registered
execution strategy performs whatever maintenance it needs (consuming the
step's :class:`~repro.core.delta.TopologyDelta` and
:class:`~repro.core.delta.DeformationDelta`), and the per-step range queries
are executed by every strategy on the *same* data and the *same* boxes so the
comparison is apples-to-apples.  The paper's headline metric — total query
response time, i.e. query execution plus index maintenance/rebuilding summed
over all steps, with one-time preprocessing reported separately — is what
:class:`SimulationReport` accumulates; restructuring maintenance is charged to
the same ledger (``maintenance_time`` / ``maintenance_entries``) as
deformation maintenance.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.delta import DeformationDelta, TopologyDelta
from ..core.executor import ExecutionStrategy
from ..core.result import QueryCounters
from ..errors import SimulationError
from ..mesh import Box3D, PolyhedralMesh, apply_layout, layout_locality_score
from .deformation import DeformationModel
from .faults import FaultPlan
from .restructuring import RestructuringSchedule

__all__ = ["StepRecord", "StrategyReport", "SimulationReport", "MeshSimulation"]

#: signature of a per-step query provider: (mesh, step) -> list of query boxes
QueryProvider = Callable[[PolyhedralMesh, int], Sequence[Box3D]]


@dataclass
class StepRecord:
    """Per-step accounting for one strategy."""

    step: int
    maintenance_time: float
    query_time: float
    n_queries: int
    n_results: int
    counters: QueryCounters
    #: whether this step's boxes went through the batched query_many dispatch
    batched: bool = False
    #: vertices the step's deformation delta reported as moved
    n_moved: int = 0
    #: index entries this strategy's maintenance touched for this step
    #: (deformation *and* restructuring work)
    maintenance_entries: int = 0
    #: whether this step restructured the mesh (a topology delta was applied)
    restructured: bool = False
    #: vertices the step's topology delta reported as dirty (0 when none)
    n_topology_dirty: int = 0
    #: degradation-ladder descents this strategy recorded during the step
    #: (0 for strategies without a resilience wrapper)
    degradations: int = 0
    #: result-cache lookups answered from the cache during the step
    #: (0 for strategies without a caching wrapper)
    cache_hits: int = 0
    #: result-cache lookups that fell through to the inner strategy
    cache_misses: int = 0
    #: cache entries dropped by this step's delta invalidation
    cache_invalidations: int = 0
    #: standing membership updates emitted during the step (0 without a
    #: standing wrapper — see :class:`~repro.standing.StandingStats`)
    standing_updates: int = 0
    #: subscriptions dismissed by the O(1) dirty-AABB overlap test
    standing_skips: int = 0
    #: narrowed re-queries the standing registry issued during the step
    standing_recrawls: int = 0


@dataclass
class StrategyReport:
    """Accumulated results of one strategy over a whole simulation."""

    name: str
    preprocessing_time: float = 0.0
    total_maintenance_time: float = 0.0
    total_query_time: float = 0.0
    total_results: int = 0
    n_queries: int = 0
    #: moved vertices summed over the deformation deltas of all steps
    total_moved_vertices: int = 0
    #: index entries touched by this strategy's maintenance over all steps
    #: (deformation and restructuring work combined)
    total_maintenance_entries: int = 0
    #: steps whose topology delta restructured the mesh
    total_restructurings: int = 0
    #: dirty vertices summed over the topology deltas of all steps
    total_topology_dirty: int = 0
    memory_overhead_bytes: int = 0
    counters: QueryCounters = field(default_factory=QueryCounters)
    steps: list[StepRecord] = field(default_factory=list)
    # per-phase wall-clock accumulators (phases a strategy lacks stay at 0)
    total_probe_time: float = 0.0
    total_walk_time: float = 0.0
    total_crawl_time: float = 0.0
    total_scan_time: float = 0.0
    total_index_time: float = 0.0
    # fused-batch work accounting (stays 0 for strategies without a fused
    # engine or for sequential runs): "attributed" is the work the per-query
    # counters report — what independent queries would have performed —
    # "unique" is what the fused walk/crawl actually performed
    fused_unique_crawl_visits: int = 0
    fused_attributed_crawl_visits: int = 0
    fused_unique_crawl_edges: int = 0
    fused_attributed_crawl_edges: int = 0
    fused_unique_walk_distances: int = 0
    fused_attributed_walk_distances: int = 0
    #: degradation-ladder descents summed over all steps (0 = never degraded)
    total_degradations: int = 0
    #: the recorded fallback events, as dicts (strategy/operation/rung/
    #: reason/error/step — see :class:`~repro.core.resilience.FallbackEvent`)
    degradation_events: list[dict] = field(default_factory=list)
    # result-cache traffic summed over all steps (all 0 for strategies
    # without a caching wrapper — see :class:`~repro.cache.CacheStats`)
    total_cache_hits: int = 0
    total_cache_misses: int = 0
    total_cache_invalidations: int = 0
    total_cache_flushes: int = 0
    total_cache_evictions: int = 0
    #: whether any layer of this strategy reported cache statistics
    #: (distinguishes "no cache" from "cache, zero traffic")
    cached: bool = False
    # standing-subscription traffic summed over all steps (all 0 for
    # strategies without a standing registry — see
    # :class:`~repro.standing.StandingStats`)
    total_standing_updates: int = 0
    total_standing_entered: int = 0
    total_standing_exited: int = 0
    total_standing_skips: int = 0
    total_standing_touched: int = 0
    total_standing_recrawls: int = 0
    total_standing_moved_tests: int = 0
    #: live subscriptions at the last drained step (a gauge)
    standing_subscriptions: int = 0
    #: whether any layer of this strategy reported standing statistics
    #: (distinguishes "no registry" from "registry, zero traffic")
    standing: bool = False
    #: vertex layout the simulation ran under ("native", "hilbert", "random")
    layout: str = "native"
    #: mean |id gap| across mesh edges / n_vertices under that layout
    #: (:func:`~repro.mesh.layout_locality_score`; lower = cache-friendlier)
    layout_locality: float = 0.0

    @property
    def total_response_time(self) -> float:
        """Query execution plus maintenance (the paper's reported metric)."""
        return self.total_query_time + self.total_maintenance_time

    def cache_hit_rate(self) -> float:
        """Fraction of result-cache lookups served from the cache (0 = none)."""
        lookups = self.total_cache_hits + self.total_cache_misses
        return self.total_cache_hits / lookups if lookups else 0.0

    def standing_skip_rate(self) -> float:
        """Fraction of per-tick subscription evaluations settled by the O(1)
        dirty-AABB test alone (1.0 = never any targeted work)."""
        total = self.total_standing_skips + self.total_standing_touched
        return self.total_standing_skips / total if total else 0.0

    def maintenance_entries_per_moved_vertex(self) -> float:
        """Index entries touched per moved vertex (1.0 ≈ cost ∝ motion;
        ``n_vertices / n_moved`` ≈ cost ∝ mesh size, the delta-blind regime)."""
        if self.total_moved_vertices == 0:
            return 0.0
        return self.total_maintenance_entries / self.total_moved_vertices

    def crawl_work_sharing(self) -> float:
        """Attributed / unique crawl work: how many sequential crawls' worth of
        vertex visits each fused vertex visit served (1.0 = no sharing)."""
        if self.fused_unique_crawl_visits == 0:
            return 1.0
        return self.fused_attributed_crawl_visits / self.fused_unique_crawl_visits

    def walk_work_sharing(self) -> float:
        """Attributed / unique walk work: distance evaluations served per
        position actually gathered by the fused walk (1.0 = no sharing)."""
        if self.fused_unique_walk_distances == 0:
            return 1.0
        return self.fused_attributed_walk_distances / self.fused_unique_walk_distances

    def total_work(self) -> int:
        """Machine-independent total work (vertex accesses + node visits)."""
        return self.counters.total_vertex_accesses() + self.counters.index_nodes_visited

    def speedup_against(self, other: "StrategyReport", use_work: bool = False) -> float:
        """This strategy's speedup relative to ``other`` (e.g. the linear scan)."""
        if use_work:
            own = max(self.total_work(), 1)
            reference = max(other.total_work(), 1)
            return reference / own
        own_time = max(self.total_response_time, 1e-12)
        return other.total_response_time / own_time


@dataclass
class SimulationReport:
    """Results of a full simulation run for every registered strategy."""

    n_steps: int
    strategies: dict[str, StrategyReport] = field(default_factory=dict)
    #: ``(step, fault_kind)`` pairs the simulation's fault plan injected
    injected_faults: list[tuple[int, str]] = field(default_factory=list)

    def __getitem__(self, name: str) -> StrategyReport:
        return self.strategies[name]

    def names(self) -> list[str]:
        return list(self.strategies)


class MeshSimulation:
    """Drive a deforming mesh and compare execution strategies on it.

    Parameters
    ----------
    mesh:
        The (single, shared) mesh that will be deformed in place.
    deformation:
        Deformation model applied at every step.
    strategies:
        Execution strategies to compare; each is prepared on the initial mesh.
    query_provider:
        Callable producing the per-step query boxes; all strategies execute
        exactly the same boxes.
    restructuring:
        Optional restructuring schedule ``(mesh, step) -> TopologyDelta |
        None`` run at the *start* of each step, before the deformation model.
        The schedule mutates the mesh in place (e.g. via
        :func:`~repro.simulation.restructuring.split_cells_inplace`) and
        returns the step's topology delta, which is handed to every
        strategy's :meth:`~repro.core.executor.ExecutionStrategy.on_restructure`
        — restructuring maintenance is charged to the same per-step ledger as
        deformation maintenance.  After a non-empty topology delta the
        deformation model is re-bound to the mesh (its base positions and
        vertex ordering are re-anchored to the restructured state), so
        whole-mesh models keep working across vertex-count changes.
        :func:`~repro.simulation.restructuring.periodic_restructuring` builds
        common schedules.
    validate_results:
        When True, every strategy's result is checked against the first
        strategy's result for equality (used in tests; adds linear-scan-like
        overhead so benchmarks keep it off).
    fault_plan:
        Optional :class:`~repro.simulation.faults.FaultPlan`.  At each
        scheduled step the plan corrupts the change deltas *after* the
        simulator's own lifecycle checks — the faults model a buggy delta
        producer, not a broken driver — so what reaches the strategies is
        exactly what a lying producer would have handed them.  Pair with
        strategies wrapped in
        :class:`~repro.core.resilience.ResilientStrategy` (paranoid mode) to
        exercise the quarantine/rebuild rungs; the injected ``(step, kind)``
        pairs are recorded on the :class:`SimulationReport`.
    batch_queries:
        When True, each step's boxes are issued through
        :meth:`ExecutionStrategy.query_many`, so every strategy answers the
        batch with its native batched engine (OCTOPUS fuses the batch's
        crawls into one shared-frontier BFS, the tree and grid baselines
        share one index traversal) — batched-vs-batched comparisons, no
        per-query dispatch skew; when False every box goes through a
        separate :meth:`ExecutionStrategy.query` call.  ``None`` (the
        default) batches unless the ``REPRO_SEQUENTIAL_QUERIES`` environment
        variable is set (the CLI's ``--no-batch`` escape hatch).  Either way
        results and counters are identical (see ``tests/test_batch_parity.py``).
    layout:
        Optional vertex layout pass (``"native"``, ``"hilbert"`` or
        ``"random"``; see :func:`~repro.mesh.apply_layout`) applied to the
        mesh *before* the deformation model binds and any strategy prepares —
        the new ids are canonical from the first delta on, so the delta
        pipeline's id contracts are untouched.  Non-native layouts work on a
        relabeled copy, so the caller's mesh object is not the one deformed.
        ``None`` (the default) reads the ``REPRO_LAYOUT`` environment
        variable (the CLI's ``--layout`` flag), falling back to ``"native"``.
        The resulting :func:`~repro.mesh.layout_locality_score` is recorded
        on every :class:`StrategyReport`.
    """

    def __init__(
        self,
        mesh: PolyhedralMesh,
        deformation: DeformationModel,
        strategies: Sequence[ExecutionStrategy],
        query_provider: QueryProvider,
        restructuring: RestructuringSchedule | None = None,
        validate_results: bool = False,
        batch_queries: bool | None = None,
        fault_plan: FaultPlan | None = None,
        layout: str | None = None,
    ) -> None:
        if not strategies:
            raise SimulationError("need at least one execution strategy")
        names = [s.name for s in strategies]
        if len(set(names)) != len(names):
            raise SimulationError("strategy names must be unique")
        if layout is None:
            layout = os.environ.get("REPRO_LAYOUT", "").strip().lower() or "native"
        mesh = apply_layout(mesh, layout)
        self.layout = layout
        self.layout_locality = layout_locality_score(mesh)
        self.mesh = mesh
        self.deformation = deformation
        self.strategies = list(strategies)
        self.query_provider = query_provider
        self.restructuring = restructuring
        self.validate_results = validate_results
        self.fault_plan = fault_plan
        self._injected_faults: list[tuple[int, str]] = []
        if batch_queries is None:
            flag = os.environ.get("REPRO_SEQUENTIAL_QUERIES", "")
            batch_queries = flag.strip().lower() in ("", "0", "false")
        self.batch_queries = batch_queries

        self.deformation.bind(mesh)
        self._reports: dict[str, StrategyReport] = {}
        for strategy in self.strategies:
            preprocessing = strategy.prepare(mesh)
            self._reports[strategy.name] = StrategyReport(
                name=strategy.name,
                preprocessing_time=preprocessing,
                layout=self.layout,
                layout_locality=self.layout_locality,
            )

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, n_steps: int) -> SimulationReport:
        """Simulate ``n_steps`` time steps and return the accumulated report."""
        if n_steps < 1:
            raise SimulationError("n_steps must be at least 1")
        for step in range(1, n_steps + 1):
            self.step(step)
        for strategy in self.strategies:
            self._reports[strategy.name].memory_overhead_bytes = strategy.memory_overhead_bytes()
        return SimulationReport(
            n_steps=n_steps,
            strategies=dict(self._reports),
            injected_faults=list(self._injected_faults),
        )

    def step(self, step: int) -> None:
        """Execute one simulation step: restructure, deform, maintain, query.

        The restructuring schedule (when given) runs first and may mutate the
        mesh connectivity in place; its
        :class:`~repro.core.delta.TopologyDelta` and the deformation model's
        :class:`~repro.core.delta.DeformationDelta` are handed to every
        strategy's ``on_restructure`` / ``on_step``, and the per-step records
        keep all sides of the change ledger: how many vertices moved, how
        many were dirtied by restructuring, and how many index entries each
        strategy touched to keep up.
        """
        topology = None
        if self.restructuring is not None:
            topology = self.restructuring(self.mesh, step)
            if topology is not None and not isinstance(topology, TopologyDelta):
                raise SimulationError(
                    "restructuring schedule must return a TopologyDelta or None "
                    "(the delta-aware lifecycle contract)"
                )
            if topology is not None and topology.n_vertices != self.mesh.n_vertices:
                raise SimulationError(
                    "restructuring schedule returned a TopologyDelta that does not "
                    "match the mesh it mutated"
                )
            if topology is not None and not topology.is_empty:
                # Re-anchor the deformation model to the restructured mesh:
                # base positions and vertex ordering are re-derived from the
                # current state, so whole-mesh models survive vertex-count
                # changes.
                self.deformation.bind(self.mesh)
        delta = self.deformation.apply(step)
        if not isinstance(delta, DeformationDelta):
            raise SimulationError(
                f"deformation model {type(self.deformation).__name__}.apply() must "
                "return a DeformationDelta (the delta-aware lifecycle contract)"
            )
        if self.fault_plan is not None:
            # Corruption happens AFTER the driver's own checks above: the
            # injected faults model a lying delta producer, and what reaches
            # the strategies is exactly what such a producer would emit.
            if topology is not None:
                topology, fault_kind = self.fault_plan.corrupt_topology(topology, step)
                if fault_kind is not None:
                    self._injected_faults.append((step, fault_kind))
            delta, fault_kind = self.fault_plan.corrupt_deformation(delta, step)
            if fault_kind is not None:
                self._injected_faults.append((step, fault_kind))
        boxes = list(self.query_provider(self.mesh, step))

        reference_ids: list[np.ndarray] | None = None
        for index, strategy in enumerate(self.strategies):
            report = self._reports[strategy.name]
            note_step = getattr(strategy, "note_step", None)
            if note_step is not None:
                note_step(step)
            entries_before = strategy.maintenance_entries
            maintenance = 0.0
            if topology is not None:
                maintenance += strategy.on_restructure(topology)
            maintenance += strategy.on_step(delta)
            step_entries = strategy.maintenance_entries - entries_before

            step_counters = QueryCounters()
            query_time = 0.0
            n_results = 0
            result_ids: list[np.ndarray] = []
            if self.batch_queries:
                start = time.perf_counter()
                results = strategy.query_many(boxes)
                query_time = time.perf_counter() - start
                fused = getattr(strategy, "last_fused_crawl", None)
                if fused is not None:
                    report.fused_unique_crawl_visits += fused.n_unique_vertices_visited
                    report.fused_attributed_crawl_visits += fused.n_attributed_vertex_visits
                    report.fused_unique_crawl_edges += fused.n_unique_edges_followed
                    report.fused_attributed_crawl_edges += fused.n_attributed_edge_follows
                    report.fused_unique_walk_distances += (
                        fused.n_unique_walk_distance_computations
                    )
                    report.fused_attributed_walk_distances += (
                        fused.n_attributed_walk_distance_computations
                    )
            else:
                results = []
                for box in boxes:
                    start = time.perf_counter()
                    results.append(strategy.query(box))
                    query_time += time.perf_counter() - start
            for result in results:
                step_counters += result.counters
                n_results += result.n_results
                report.total_probe_time += result.probe_time
                report.total_walk_time += result.walk_time
                report.total_crawl_time += result.crawl_time
                report.total_scan_time += result.scan_time
                report.total_index_time += result.index_time
                if self.validate_results:
                    result_ids.append(result.vertex_ids)

            if self.validate_results:
                if index == 0:
                    reference_ids = result_ids
                else:
                    for box_index, (got, expected) in enumerate(zip(result_ids, reference_ids or [])):
                        if not np.array_equal(got, expected):
                            raise SimulationError(
                                f"strategy {strategy.name!r} disagrees with "
                                f"{self.strategies[0].name!r} on step {step}, query {box_index}"
                            )

            drain = getattr(strategy, "drain_degradation_events", None)
            fallback_events = drain() if drain is not None else []
            report.total_degradations += len(fallback_events)
            report.degradation_events.extend(event.as_dict() for event in fallback_events)

            cache_drain = getattr(strategy, "drain_cache_stats", None)
            cache_stats = cache_drain() if cache_drain is not None else None
            if cache_stats is not None:
                report.cached = True
                report.total_cache_hits += cache_stats.hits
                report.total_cache_misses += cache_stats.misses
                report.total_cache_invalidations += cache_stats.invalidations
                report.total_cache_flushes += cache_stats.flushes
                report.total_cache_evictions += cache_stats.evictions

            standing_drain = getattr(strategy, "drain_standing_stats", None)
            standing_stats = standing_drain() if standing_drain is not None else None
            if standing_stats is not None:
                report.standing = True
                report.standing_subscriptions = standing_stats.subscriptions
                report.total_standing_updates += standing_stats.updates
                report.total_standing_entered += standing_stats.entered
                report.total_standing_exited += standing_stats.exited
                report.total_standing_skips += standing_stats.skips
                report.total_standing_touched += standing_stats.touched
                report.total_standing_recrawls += standing_stats.recrawls
                report.total_standing_moved_tests += standing_stats.moved_tests

            report.total_maintenance_time += maintenance
            report.total_query_time += query_time
            report.total_results += n_results
            report.n_queries += len(boxes)
            report.counters += step_counters
            report.total_moved_vertices += delta.n_moved
            report.total_maintenance_entries += step_entries
            restructured = topology is not None and not topology.is_empty
            if restructured:
                report.total_restructurings += 1
                report.total_topology_dirty += topology.n_dirty
            report.steps.append(
                StepRecord(
                    step=step,
                    maintenance_time=maintenance,
                    query_time=query_time,
                    n_queries=len(boxes),
                    n_results=n_results,
                    counters=step_counters,
                    batched=self.batch_queries,
                    n_moved=delta.n_moved,
                    maintenance_entries=step_entries,
                    restructured=restructured,
                    n_topology_dirty=topology.n_dirty if restructured else 0,
                    degradations=len(fallback_events),
                    cache_hits=cache_stats.hits if cache_stats is not None else 0,
                    cache_misses=cache_stats.misses if cache_stats is not None else 0,
                    cache_invalidations=(
                        cache_stats.invalidations if cache_stats is not None else 0
                    ),
                    standing_updates=(
                        standing_stats.updates if standing_stats is not None else 0
                    ),
                    standing_skips=(
                        standing_stats.skips if standing_stats is not None else 0
                    ),
                    standing_recrawls=(
                        standing_stats.recrawls if standing_stats is not None else 0
                    ),
                )
            )
