"""Deformation models: the "simulation software" black box.

The paper treats the simulation as a black box that, at every discrete time
step, overwrites the position of (almost) every vertex in place with small,
unpredictable changes (Section III-A).  The models here reproduce that access
pattern for the different dataset families:

* :class:`RandomWalkDeformation` — independent Gaussian steps per vertex; the
  fully unpredictable case that defeats trajectory-based moving-object
  indexes.
* :class:`SinusoidalWaveDeformation` — a smooth travelling wave; neighbouring
  vertices move coherently, which is what makes the surface-approximation
  optimisation effective (Section IV-H2).
* :class:`SpinePulsationDeformation` — radial pulsation with per-vertex phase
  noise, a stand-in for the neural-plasticity "spine length adjustment" the
  Blue Brain simulation performs.
* :class:`AffineDeformation` — a time-varying affine map (stretch, shear,
  rotation); affine maps preserve convexity, so this drives the earthquake /
  OCTOPUS-CON experiments.
* :class:`SequenceReplayDeformation` — replays precomputed frames (the
  animation datasets of Section VIII).
* :class:`LocalizedPulseDeformation` — a *sparse* deformation: only a small,
  spatially coherent fraction of the vertices moves per step (a displacement
  pulse travelling through the mesh, as in localized seismic activity or
  single-neuron plasticity events).  This is the workload family where
  delta-aware maintenance wins: the model reports exactly which vertices
  moved.

Every :meth:`DeformationModel.apply` returns a
:class:`~repro.core.delta.DeformationDelta` describing the step's motion —
the whole-mesh models return the cheap full fast path, the localized model an
explicit moved set — which the simulation driver hands to every strategy's
``on_step``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core.delta import DeformationDelta
from ..errors import SimulationError
from ..mesh import PolyhedralMesh

__all__ = [
    "DeformationModel",
    "RandomWalkDeformation",
    "SinusoidalWaveDeformation",
    "SpinePulsationDeformation",
    "AffineDeformation",
    "SequenceReplayDeformation",
    "LocalizedPulseDeformation",
]


class DeformationModel(ABC):
    """Base class: binds to a mesh, then rewrites its positions step by step."""

    def __init__(self) -> None:
        self._mesh: PolyhedralMesh | None = None
        self._base_positions: np.ndarray | None = None

    def bind(self, mesh: PolyhedralMesh) -> None:
        """Capture the mesh and its initial positions (time step 0)."""
        self._mesh = mesh
        self._base_positions = mesh.vertices.copy()

    @property
    def mesh(self) -> PolyhedralMesh:
        if self._mesh is None:
            raise SimulationError("deformation model has not been bound to a mesh")
        return self._mesh

    @property
    def base_positions(self) -> np.ndarray:
        if self._base_positions is None:
            raise SimulationError("deformation model has not been bound to a mesh")
        return self._base_positions

    def _full_delta(self) -> DeformationDelta:
        """The whole-mesh fast path (models that rewrite every position)."""
        return DeformationDelta.full(self.mesh.n_vertices)

    @abstractmethod
    def apply(self, step: int) -> DeformationDelta:
        """Update the mesh positions in place for time step ``step`` (1-based).

        Returns the step's :class:`~repro.core.delta.DeformationDelta`; models
        that overwrite every position return the cheap full fast path, sparse
        models an explicit moved set with old/new positions and dirty AABB.
        """

    def reset(self) -> None:
        """Restore the initial positions (time step 0)."""
        self.mesh.set_positions(self.base_positions)


class RandomWalkDeformation(DeformationModel):
    """Every vertex performs an independent Gaussian random walk.

    ``amplitude`` is the per-step standard deviation expressed as a fraction
    of the mesh bounding-box diagonal, so the same value produces comparable
    relative motion on meshes of any scale.
    """

    def __init__(self, amplitude: float = 0.001, seed: int = 0) -> None:
        super().__init__()
        if amplitude < 0:
            raise SimulationError("amplitude must be non-negative")
        self.amplitude = amplitude
        self.seed = seed
        self._step_sigma = 0.0

    def bind(self, mesh: PolyhedralMesh) -> None:
        super().bind(mesh)
        diagonal = float(np.linalg.norm(mesh.bounding_box().extents))
        self._step_sigma = self.amplitude * diagonal

    def apply(self, step: int) -> DeformationDelta:
        rng = np.random.default_rng(self.seed + step)
        displacement = rng.normal(0.0, self._step_sigma, size=self.mesh.vertices.shape)
        self.mesh.displace(displacement)
        return self._full_delta()


class SinusoidalWaveDeformation(DeformationModel):
    """A travelling sinusoidal wave displaces vertices along one axis."""

    def __init__(
        self,
        amplitude: float = 0.01,
        wavelength_fraction: float = 0.5,
        period_steps: int = 40,
        axis: int = 2,
    ) -> None:
        super().__init__()
        if amplitude < 0 or wavelength_fraction <= 0 or period_steps < 1:
            raise SimulationError("invalid wave parameters")
        if axis not in (0, 1, 2):
            raise SimulationError("axis must be 0, 1 or 2")
        self.amplitude = amplitude
        self.wavelength_fraction = wavelength_fraction
        self.period_steps = period_steps
        self.axis = axis
        self._amp_abs = 0.0
        self._wavenumber = 0.0

    def bind(self, mesh: PolyhedralMesh) -> None:
        super().bind(mesh)
        extents = mesh.bounding_box().extents
        diagonal = float(np.linalg.norm(extents))
        self._amp_abs = self.amplitude * diagonal
        wavelength = self.wavelength_fraction * max(float(extents[(self.axis + 1) % 3]), 1e-9)
        self._wavenumber = 2.0 * np.pi / wavelength

    def apply(self, step: int) -> DeformationDelta:
        base = self.base_positions
        phase = 2.0 * np.pi * step / self.period_steps
        along = base[:, (self.axis + 1) % 3]
        positions = base.copy()
        positions[:, self.axis] += self._amp_abs * np.sin(self._wavenumber * along - phase)
        self.mesh.set_positions(positions)
        return self._full_delta()


class SpinePulsationDeformation(DeformationModel):
    """Radial pulsation about the mesh centroid with per-vertex phase noise."""

    def __init__(self, amplitude: float = 0.01, period_steps: int = 30, seed: int = 0) -> None:
        super().__init__()
        if amplitude < 0 or period_steps < 1:
            raise SimulationError("invalid pulsation parameters")
        self.amplitude = amplitude
        self.period_steps = period_steps
        self.seed = seed
        self._phase_noise: np.ndarray | None = None
        self._centroid: np.ndarray | None = None

    def bind(self, mesh: PolyhedralMesh) -> None:
        super().bind(mesh)
        rng = np.random.default_rng(self.seed)
        self._phase_noise = rng.uniform(0.0, 2.0 * np.pi, size=mesh.n_vertices)
        self._centroid = mesh.vertices.mean(axis=0)

    def apply(self, step: int) -> DeformationDelta:
        base = self.base_positions
        phase = 2.0 * np.pi * step / self.period_steps + self._phase_noise
        radial = base - self._centroid
        scale = 1.0 + self.amplitude * np.sin(phase)
        self.mesh.set_positions(self._centroid + radial * scale[:, None])
        return self._full_delta()


class AffineDeformation(DeformationModel):
    """A smoothly time-varying affine transform of the initial positions.

    Affine maps take convex sets to convex sets, so this is the deformation
    family used for the earthquake / OCTOPUS-CON experiments where the mesh
    must stay convex (Section IV-F).
    """

    def __init__(
        self,
        stretch_amplitude: float = 0.1,
        shear_amplitude: float = 0.05,
        rotation_amplitude: float = 0.1,
        period_steps: int = 60,
    ) -> None:
        super().__init__()
        if min(stretch_amplitude, shear_amplitude, rotation_amplitude) < 0 or period_steps < 1:
            raise SimulationError("invalid affine deformation parameters")
        self.stretch_amplitude = stretch_amplitude
        self.shear_amplitude = shear_amplitude
        self.rotation_amplitude = rotation_amplitude
        self.period_steps = period_steps
        self._centroid: np.ndarray | None = None

    def bind(self, mesh: PolyhedralMesh) -> None:
        super().bind(mesh)
        self._centroid = mesh.vertices.mean(axis=0)

    def matrix_at(self, step: int) -> np.ndarray:
        """The affine matrix applied at time step ``step``."""
        phase = 2.0 * np.pi * step / self.period_steps
        stretch = np.diag(
            1.0
            + self.stretch_amplitude
            * np.array([np.sin(phase), np.sin(phase + 2.0), np.sin(phase + 4.0)])
        )
        shear = np.eye(3)
        shear[0, 1] = self.shear_amplitude * np.sin(phase)
        shear[1, 2] = self.shear_amplitude * np.cos(phase)
        angle = self.rotation_amplitude * np.sin(phase)
        cos_a, sin_a = np.cos(angle), np.sin(angle)
        rotation = np.array([[cos_a, -sin_a, 0.0], [sin_a, cos_a, 0.0], [0.0, 0.0, 1.0]])
        return rotation @ shear @ stretch

    def apply(self, step: int) -> DeformationDelta:
        base = self.base_positions
        matrix = self.matrix_at(step)
        positions = (base - self._centroid) @ matrix.T + self._centroid
        self.mesh.set_positions(positions)
        return self._full_delta()


class SequenceReplayDeformation(DeformationModel):
    """Replays precomputed absolute position frames (animation datasets)."""

    def __init__(self, frames: list[np.ndarray]) -> None:
        super().__init__()
        if not frames:
            raise SimulationError("need at least one frame to replay")
        self.frames = frames

    def bind(self, mesh: PolyhedralMesh) -> None:
        super().bind(mesh)
        for frame in self.frames:
            if frame.shape != mesh.vertices.shape:
                raise SimulationError("frame shape does not match the mesh")

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    def apply(self, step: int) -> DeformationDelta:
        frame = self.frames[(step - 1) % len(self.frames)]
        self.mesh.set_positions(frame)
        return self._full_delta()


class LocalizedPulseDeformation(DeformationModel):
    """A displacement pulse confined to a small, spatially coherent vertex slab.

    Unlike the whole-mesh models above, only ``sparsity * n_vertices``
    vertices move per step: the mesh's vertices are ordered along one axis at
    bind time, and each step displaces one contiguous window of that order (a
    spatially coherent slab) with a seeded Gaussian kick, sliding the window
    through the mesh step after step like a travelling disturbance.  The
    model's :meth:`apply` returns an explicit sparse
    :class:`~repro.core.delta.DeformationDelta` (moved ids, old/new positions,
    dirty AABB) — the workload that delta-aware incremental maintenance is
    built for.

    Like :class:`RandomWalkDeformation`, the Gaussian kicks do **not**
    preserve convexity, so pair OCTOPUS-CON with this model only for
    maintenance studies, not for completeness comparisons (its crawl assumes
    internal reachability; see :class:`~repro.core.OctopusConExecutor`).

    Parameters
    ----------
    sparsity:
        Fraction of the vertices moved per active step (clamped to at least
        one vertex).
    amplitude:
        Per-step Gaussian displacement std-dev as a fraction of the mesh
        bounding-box diagonal (matching :class:`RandomWalkDeformation`).
    axis:
        Axis along which the slab window travels.
    rest_every:
        When set, every ``rest_every``-th step is a rest step in which *no*
        vertex moves (an empty delta) — simulations with idle phases, and the
        ``n_moved == 0`` edge of the maintenance-parity suite.
    seed:
        Seed for the per-step displacement draw.
    """

    def __init__(
        self,
        sparsity: float = 0.05,
        amplitude: float = 0.002,
        axis: int = 0,
        rest_every: int | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not 0.0 < sparsity <= 1.0:
            raise SimulationError("sparsity must lie in (0, 1]")
        if amplitude < 0:
            raise SimulationError("amplitude must be non-negative")
        if axis not in (0, 1, 2):
            raise SimulationError("axis must be 0, 1 or 2")
        if rest_every is not None and rest_every < 2:
            raise SimulationError("rest_every must be at least 2 (or None)")
        self.sparsity = sparsity
        self.amplitude = amplitude
        self.axis = axis
        self.rest_every = rest_every
        self.seed = seed
        self._order: np.ndarray | None = None
        self._window = 0
        self._step_sigma = 0.0

    def bind(self, mesh: PolyhedralMesh) -> None:
        super().bind(mesh)
        self._order = np.argsort(mesh.vertices[:, self.axis], kind="stable").astype(np.int64)
        self._window = max(1, int(round(self.sparsity * mesh.n_vertices)))
        diagonal = float(np.linalg.norm(mesh.bounding_box().extents))
        self._step_sigma = self.amplitude * diagonal

    def moved_ids_at(self, step: int) -> np.ndarray:
        """The (sorted) vertex ids the pulse touches at ``step``."""
        mesh = self.mesh
        if self.rest_every is not None and step % self.rest_every == 0:
            return np.empty(0, dtype=np.int64)
        n = mesh.n_vertices
        window = self._window
        span = max(n - window, 0) + 1
        offset = ((step - 1) * max(1, window // 2)) % span
        return np.sort(self._order[offset:offset + window])

    def apply(self, step: int) -> DeformationDelta:
        mesh = self.mesh
        ids = self.moved_ids_at(step)
        if ids.size == 0:
            return DeformationDelta.empty(mesh.n_vertices)
        old = mesh.vertices[ids].copy()
        rng = np.random.default_rng(self.seed + step)
        mesh.displace_at(ids, rng.normal(0.0, self._step_sigma, size=(ids.size, 3)))
        new = mesh.vertices[ids].copy()
        return DeformationDelta.sparse(mesh.n_vertices, ids, old, new)
