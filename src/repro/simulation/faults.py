"""Deterministic fault injection for chaos-testing the resilience layer.

A :class:`FaultPlan` is a *seeded schedule* of corruptions applied by
:class:`~repro.simulation.simulator.MeshSimulation` to the change deltas it
hands the strategies — after the simulator's own lifecycle checks, so the
faults model a buggy delta *producer*, not a broken driver.  Every decision is
a pure function of ``(seed, step)``: two runs with the same plan inject the
identical faults at the identical steps, which is what lets the chaos suite
assert that a resilient run recovers *bit-identically* to a clean run (or
fails with a structured :class:`~repro.errors.ReproError` — never silent
divergence).

The fault kinds mirror the producer bugs the paranoid validators are built to
catch (see :mod:`repro.core.resilience`):

========================  =====================================================
``truncate-delta``        moved ids truncated, position arrays left full-length
``duplicate-delta``       the first moved id appears twice
``wrong-aabb``            the dirty AABB points somewhere far from the motion
``nan-positions``         a NaN smuggled into the delta's new positions
``lying-topology``        a topology delta claiming appended vertices that the
                          dirty set does not contain
``batch-exception``       the strategy's fused ``query_many`` raises mid-batch
                          (via :class:`FaultyBatchStrategy`)
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.delta import DeformationDelta, TopologyDelta
from ..core.executor import ExecutionStrategy
from ..errors import FaultInjectionError, SimulationError
from ..mesh import Box3D, PolyhedralMesh

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultyBatchStrategy",
    "duplicate_delta",
    "lying_topology_delta",
    "nan_positions_delta",
    "truncate_delta",
    "wrong_aabb_delta",
]

#: every fault kind a plan can schedule
FAULT_KINDS = (
    "truncate-delta",
    "duplicate-delta",
    "wrong-aabb",
    "nan-positions",
    "lying-topology",
    "batch-exception",
)

#: the kinds that corrupt a DeformationDelta (vs. topology / query dispatch)
_DEFORMATION_KINDS = frozenset(
    {"truncate-delta", "duplicate-delta", "wrong-aabb", "nan-positions"}
)


# ----------------------------------------------------------------------
# corruption functions (raw delta constructors on purpose: the fault is a
# *lying producer*, so it must bypass the validating factory methods)
# ----------------------------------------------------------------------
def truncate_delta(delta: DeformationDelta) -> DeformationDelta:
    """Drop the last moved id but keep the position arrays full-length.

    Models a producer that lost a tail entry; the id/position shape mismatch
    is what :func:`~repro.core.resilience.validate_delta` flags.  Full or
    empty deltas have nothing to truncate and pass through unchanged.
    """
    if delta.is_full or delta.n_moved == 0:
        return delta
    return DeformationDelta(
        n_vertices=delta.n_vertices,
        moved_ids=delta.moved_ids[:-1],
        old_positions=delta.old_positions,
        new_positions=delta.new_positions,
        dirty_box=delta.dirty_box,
    )


def duplicate_delta(delta: DeformationDelta) -> DeformationDelta:
    """Repeat the first moved id (and its position rows, keeping alignment)."""
    if delta.is_full or delta.n_moved == 0:
        return delta

    def dup(rows: np.ndarray | None) -> np.ndarray | None:
        return None if rows is None else np.vstack([rows[:1], rows])

    return DeformationDelta(
        n_vertices=delta.n_vertices,
        moved_ids=np.concatenate([delta.moved_ids[:1], delta.moved_ids]),
        old_positions=dup(delta.old_positions),
        new_positions=dup(delta.new_positions),
        dirty_box=delta.dirty_box,
    )


def wrong_aabb_delta(delta: DeformationDelta) -> DeformationDelta:
    """Replace the dirty AABB with a far-away sliver that covers no motion."""
    if delta.is_full or delta.n_moved == 0:
        return delta
    far = Box3D(np.full(3, 1.0e9), np.full(3, 1.0e9 + 1.0e-3))
    return DeformationDelta(
        n_vertices=delta.n_vertices,
        moved_ids=delta.moved_ids,
        old_positions=delta.old_positions,
        new_positions=delta.new_positions,
        dirty_box=far,
    )


def nan_positions_delta(delta: DeformationDelta) -> DeformationDelta:
    """Smuggle a NaN into the delta's new positions (the mesh stays clean)."""
    if delta.is_full or delta.n_moved == 0 or delta.new_positions is None:
        return delta
    poisoned = np.array(delta.new_positions, dtype=np.float64, copy=True)
    poisoned[0, 0] = np.nan
    return DeformationDelta(
        n_vertices=delta.n_vertices,
        moved_ids=delta.moved_ids,
        old_positions=delta.old_positions,
        new_positions=poisoned,
        dirty_box=delta.dirty_box,
    )


def lying_topology_delta(delta: TopologyDelta) -> TopologyDelta:
    """Claim one more appended vertex than the dirty set accounts for."""
    if delta.is_full:
        return delta
    return TopologyDelta(
        n_vertices=delta.n_vertices,
        dirty_ids=delta.dirty_ids,
        n_vertices_added=delta.n_vertices_added + 1,
        n_cells_added=delta.n_cells_added,
        n_cells_removed=delta.n_cells_removed,
        dirty_box=delta.dirty_box,
    )


_DEFORMATION_CORRUPTIONS = {
    "truncate-delta": truncate_delta,
    "duplicate-delta": duplicate_delta,
    "wrong-aabb": wrong_aabb_delta,
    "nan-positions": nan_positions_delta,
}


# ----------------------------------------------------------------------
# the seeded schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlan:
    """Seeded, order-independent schedule of injected faults.

    Attributes
    ----------
    seed:
        Root seed; every per-step decision derives from ``(seed, step)``
        alone, so the schedule does not depend on how many times (or in what
        order) it is consulted.
    kinds:
        The fault kinds this plan may inject (default: all of
        :data:`FAULT_KINDS`).
    probability:
        Chance that any given step is faulty at all.
    """

    seed: int
    kinds: tuple[str, ...] = FAULT_KINDS
    probability: float = 0.5

    def __post_init__(self) -> None:
        unknown = [k for k in self.kinds if k not in FAULT_KINDS]
        if unknown or not self.kinds:
            raise SimulationError(
                f"fault plan kinds must be a non-empty subset of {FAULT_KINDS}, "
                f"got {self.kinds!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise SimulationError("fault plan probability must be in [0, 1]")

    def kind_for_step(self, step: int) -> str | None:
        """The fault kind scheduled for ``step`` (``None`` = clean step)."""
        rng = np.random.default_rng([self.seed, int(step)])
        if rng.random() >= self.probability:
            return None
        return str(self.kinds[int(rng.integers(len(self.kinds)))])

    def corrupt_deformation(
        self, delta: DeformationDelta, step: int
    ) -> tuple[DeformationDelta, str | None]:
        """The (possibly corrupted) delta plus the fault kind applied."""
        kind = self.kind_for_step(step)
        corruption = _DEFORMATION_CORRUPTIONS.get(kind)
        if corruption is None:
            return delta, None
        corrupted = corruption(delta)
        if corrupted is delta:  # nothing to corrupt on this step's delta
            return delta, None
        return corrupted, kind

    def corrupt_topology(
        self, delta: TopologyDelta, step: int
    ) -> tuple[TopologyDelta, str | None]:
        """The (possibly corrupted) topology delta plus the fault kind."""
        if self.kind_for_step(step) != "lying-topology":
            return delta, None
        corrupted = lying_topology_delta(delta)
        if corrupted is delta:
            return delta, None
        return corrupted, "lying-topology"

    def raises_in_batch(self, step: int) -> bool:
        """Whether ``step`` schedules a mid-batch strategy exception."""
        return self.kind_for_step(step) == "batch-exception"


# ----------------------------------------------------------------------
# scheduled mid-batch failure
# ----------------------------------------------------------------------
class FaultyBatchStrategy(ExecutionStrategy):
    """Wrap a strategy so its ``query_many`` raises at the plan's steps.

    Models a fused batch engine crashing mid-flight; wrap it in a
    :class:`~repro.core.resilience.ResilientStrategy` and the ladder retries
    the boxes sequentially through the unaffected ``query`` path.  Accounting
    forwards to the wrapped strategy, so reports stay honest about where the
    time went.
    """

    def __init__(self, inner: ExecutionStrategy, plan: FaultPlan) -> None:
        # same snapshot/restore dance as ResilientStrategy: the forwarding
        # setters must not zero an already-prepared inner strategy
        self.inner = inner
        snapshot = (inner.preprocessing_time, inner.maintenance_time, inner.maintenance_entries)
        super().__init__()
        inner.preprocessing_time, inner.maintenance_time, inner.maintenance_entries = snapshot
        self.plan = plan
        self.name = inner.name
        self._step: int | None = None
        #: how many scheduled exceptions this wrapper has raised
        self.n_injected = 0

    # -- accounting forwards to the wrapped strategy -------------------
    @property
    def preprocessing_time(self) -> float:
        return self.inner.preprocessing_time

    @preprocessing_time.setter
    def preprocessing_time(self, value: float) -> None:
        self.inner.preprocessing_time = value

    @property
    def maintenance_time(self) -> float:
        return self.inner.maintenance_time

    @maintenance_time.setter
    def maintenance_time(self, value: float) -> None:
        self.inner.maintenance_time = value

    @property
    def maintenance_entries(self) -> int:
        return self.inner.maintenance_entries

    @maintenance_entries.setter
    def maintenance_entries(self, value: int) -> None:
        self.inner.maintenance_entries = value

    @property
    def query_budget(self):
        return getattr(self.inner, "query_budget", None)

    @query_budget.setter
    def query_budget(self, budget) -> None:
        self.inner.query_budget = budget

    @property
    def last_fused_crawl(self):
        return getattr(self.inner, "last_fused_crawl", None)

    @last_fused_crawl.setter
    def last_fused_crawl(self, value) -> None:
        if hasattr(self.inner, "last_fused_crawl"):
            self.inner.last_fused_crawl = value

    # -- lifecycle ------------------------------------------------------
    def note_step(self, step: int | None) -> None:
        """Track the simulation step so the plan's schedule applies."""
        self._step = step
        inner_note = getattr(self.inner, "note_step", None)
        if inner_note is not None:
            inner_note(step)

    def prepare(self, mesh: PolyhedralMesh) -> float:
        self._mesh = mesh
        return self.inner.prepare(mesh)

    def on_step(self, delta: DeformationDelta) -> float:
        return self.inner.on_step(delta)

    def on_restructure(self, delta: TopologyDelta) -> float:
        return self.inner.on_restructure(delta)

    def query(self, box: Box3D):
        return self.inner.query(box)

    def query_many(self, boxes: Sequence[Box3D]):
        if self._step is not None and self.plan.raises_in_batch(self._step):
            self.n_injected += 1
            raise FaultInjectionError(
                f"{self.name}: scheduled batch-exception fault at step {self._step}"
            )
        return self.inner.query_many(boxes)

    def memory_overhead_bytes(self) -> int:
        return self.inner.memory_overhead_bytes()

    def describe(self) -> dict:
        record = self.inner.describe()
        record["fault_plan_seed"] = self.plan.seed
        return record
