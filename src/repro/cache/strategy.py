"""The caching wrapper: any strategy + a delta-invalidated result cache.

:class:`CachingStrategy` composes through the
:class:`~repro.core.executor.StrategyWrapper` surface, so it stacks with
:class:`~repro.core.resilience.ResilientStrategy` in either order.  The
recommended order is cache outermost —
``build_strategy("octopus", caching=True, resilience=True)`` produces
``CachingStrategy(ResilientStrategy(octopus))`` — so a hit skips the
degradation ladder entirely; see ``docs/caching.md``.

Correctness stance:

* only ``complete`` results are stored (a budget-truncated partial answer is
  not the exact answer and must never be replayed);
* invalidation runs *before* the inner maintenance forward, because by the
  time ``on_step``/``on_restructure`` fires the simulator has already mutated
  the mesh — entries are stale even if the inner maintenance then raises;
* hits return a **fresh** :class:`~repro.core.result.QueryResult` carrying
  the cached vertex ids, zeroed work counters and the lookup's own
  wall-clock.  That is the honest account: a hit does no mesh work, and the
  parity suites compare ``vertex_ids``, never counters, across strategies.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..core.delta import DeformationDelta, TopologyDelta
from ..core.executor import ExecutionStrategy, StrategyWrapper
from ..core.resilience import check_query_box, check_query_boxes
from ..core.result import QueryResult
from ..mesh import Box3D, PolyhedralMesh
from .result_cache import CacheStats, QueryResultCache

__all__ = ["CachingStrategy"]


class CachingStrategy(StrategyWrapper):
    """Serve repeated range queries from a delta-invalidated result cache.

    Parameters
    ----------
    inner:
        The strategy (or wrapper stack) that answers cache misses.
    cache:
        An existing :class:`~repro.cache.QueryResultCache` to adopt;
        ``None`` builds one from the keyword arguments below.
    max_entries / quantum / membership:
        Forwarded to :class:`~repro.cache.QueryResultCache` when ``cache``
        is ``None``.

    The wrapper registers under ``cached-<inner name>`` so a simulation can
    run the cached and fresh variants of one strategy side by side (the
    simulator requires unique strategy names, and the parity suites rely on
    exactly that pairing).
    """

    def __init__(
        self,
        inner: ExecutionStrategy,
        cache: QueryResultCache | None = None,
        *,
        max_entries: int = 2048,
        quantum: float = 1e-9,
        membership: str = "aabb",
    ) -> None:
        super().__init__(inner)
        self.cache = cache if cache is not None else QueryResultCache(
            max_entries=max_entries, quantum=quantum, membership=membership
        )
        self.name = f"cached-{inner.name}"

    # -- lifecycle ------------------------------------------------------
    def prepare(self, mesh: PolyhedralMesh) -> float:
        """Flush (a new mesh invalidates everything), then forward.

        The sharded service re-prepares each shard strategy on repartition,
        so the repartition-flushes-the-cache rule falls out of this override.
        """
        self.cache.flush()
        return super().prepare(mesh)

    def _invalidated_forward(self, invalidate, forward, delta) -> float:
        # invalidate FIRST: the mesh is already mutated when this hook runs,
        # so the entries are stale even if the inner maintenance raises.
        start = time.perf_counter()
        invalidate(delta)
        overhead = time.perf_counter() - start
        spent = forward(delta)
        # invalidation is maintenance work; charge it to the shared ledger so
        # reported response times stay honest about what caching costs
        self.inner.maintenance_time += overhead
        return spent + overhead

    def on_step(self, delta: DeformationDelta) -> float:
        return self._invalidated_forward(
            self.cache.invalidate_deformation, super().on_step, delta
        )

    def on_restructure(self, delta: TopologyDelta) -> float:
        return self._invalidated_forward(
            self.cache.invalidate_topology, super().on_restructure, delta
        )

    # -- querying -------------------------------------------------------
    def query(self, box: Box3D) -> QueryResult:
        check_query_box(box)
        start = time.perf_counter()
        cached_ids = self.cache.get(box)
        if cached_ids is not None:
            elapsed = time.perf_counter() - start
            return QueryResult(vertex_ids=cached_ids, total_time=elapsed)
        result = super().query(box)
        self.cache.put(box, result)
        return result

    def query_many(self, boxes: Sequence[Box3D]) -> list[QueryResult]:
        """Hits answered from the cache, misses batched through the inner
        ``query_many`` (one fused traversal for all of them).

        The all-or-nothing contract is preserved: if the inner batch raises,
        nothing is returned — the hit lookups leave no observable trace
        beyond cache statistics.
        """
        box_list = check_query_boxes(boxes)
        results: list[QueryResult | None] = [None] * len(box_list)
        miss_indices: list[int] = []
        start = time.perf_counter()
        for index, box in enumerate(box_list):
            cached_ids = self.cache.get(box)
            if cached_ids is None:
                miss_indices.append(index)
            else:
                results[index] = QueryResult(vertex_ids=cached_ids)
        if len(miss_indices) < len(box_list):
            lookup_each = (time.perf_counter() - start) / len(box_list)
            for index in range(len(box_list)):
                if results[index] is not None:
                    results[index].total_time = lookup_each
        if miss_indices:
            miss_results = super().query_many([box_list[i] for i in miss_indices])
            for index, result in zip(miss_indices, miss_results):
                self.cache.put(box_list[index], result)
                results[index] = result
        elif box_list:
            # an all-hit batch leaves no fused-traversal record behind
            self.last_fused_crawl = None
        return results  # type: ignore[return-value]

    # -- accounting -----------------------------------------------------
    def cache_stats(self) -> CacheStats:
        """Non-destructive copy of this layer's counters (plus nested caches)."""
        stats = self.cache.stats()
        inner_stats = getattr(self.inner, "cache_stats", None)
        if inner_stats is not None:
            stats += inner_stats()
        return stats

    def drain_cache_stats(self) -> CacheStats:
        """Counters since the last drain, merged with any nested cache's."""
        stats = self.cache.drain_stats()
        inner_stats = super().drain_cache_stats()
        if inner_stats is not None:
            stats += inner_stats
        return stats

    def memory_overhead_bytes(self) -> int:
        return super().memory_overhead_bytes() + self.cache.memory_bytes()

    def describe(self) -> dict:
        record = super().describe()
        record["cached"] = True
        record["cache"] = self.cache.describe()
        return record
