"""Delta-invalidated query-result cache.

The paper's steering workloads (Section V-C) are dominated by clients
re-polling the same spatial regions tick after tick.  A range query's answer
is a pure function of the vertex positions inside its box, so the exact dirty
AABBs the delta pipeline already computes (:class:`~repro.core.delta.
DeformationDelta`, :class:`~repro.core.delta.TopologyDelta`) double as cache
invalidation certificates: an entry whose box is disjoint from every dirty
region since it was stored is still the exact answer, and a repeated query
becomes a hash lookup instead of a probe/walk/crawl.

**Invalidation contract** (why a surviving entry is still exact):

* deformation — a vertex's membership in a closed box can only change if the
  vertex moved, and every moved vertex's old *and* new position lie inside
  the delta's dirty AABB (audited by
  :func:`~repro.core.resilience.validate_delta`).  An entry box disjoint from
  the dirty AABB therefore gained no vertex and lost none.  The optional
  ``membership="exact"`` mode tightens this per entry: instead of the AABB
  intersection alone, it drops an intersecting entry only if some moved old
  or new position actually lies inside the entry's box — still exact, and it
  keeps entries alive when the dirty AABB is large but the motion misses them;
* topology — restructuring never moves pre-existing vertices and appended
  vertices lie inside the dirty AABB (the appended-tail contract), so box
  membership can only change inside that AABB; the conservative intersection
  test is used (no exact mode: connectivity changes alter crawl reachability
  in ways a per-vertex test cannot bound);
* ``full()`` deltas and deltas without a dirty AABB flush the whole cache —
  there is no certificate to key off.

Keys quantize the query box's six coordinates onto a ``quantum`` grid, but a
hit additionally verifies the stored corners bit-for-bit, so two distinct
boxes that collide in one quantum cell are a *miss*, never a wrong answer.
All public methods are thread-safe (the sharded service answers queries from
a pool while maintenance is excluded by its write lock, but the cache does
not rely on that).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

import numpy as np

from ..errors import QueryError
from ..mesh import Box3D, points_in_boxes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.delta import DeformationDelta, TopologyDelta
    from ..core.result import QueryResult

__all__ = ["CacheStats", "QueryResultCache"]

MEMBERSHIP_MODES = ("aabb", "exact")


@dataclass
class CacheStats:
    """Counters of one cache's traffic since construction (or the last drain).

    Attributes
    ----------
    hits / misses:
        Lookup outcomes (a quantum-cell collision counts as a miss).
    invalidations:
        Entries dropped because a delta's dirty region reached their box.
    flushes:
        Whole-cache clears (``full()`` deltas, repartitions, ``prepare``).
    evictions:
        Entries dropped by the LRU capacity bound, not by staleness.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    flushes: int = 0
    evictions: int = 0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return a new record with the component-wise sum."""
        merged = CacheStats()
        for f in fields(CacheStats):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    def __iadd__(self, other: "CacheStats") -> "CacheStats":
        for f in fields(CacheStats):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 with no traffic)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        record = {f.name: getattr(self, f.name) for f in fields(CacheStats)}
        record["hit_rate"] = self.hit_rate()
        return record


class _Entry:
    """One cached answer: the exact box corners plus the result vertex ids."""

    __slots__ = ("lo", "hi", "vertex_ids")

    def __init__(self, lo: np.ndarray, hi: np.ndarray, vertex_ids: np.ndarray) -> None:
        self.lo = lo
        self.hi = hi
        self.vertex_ids = vertex_ids


class QueryResultCache:
    """LRU cache of range-query answers keyed by quantized query box.

    Parameters
    ----------
    max_entries:
        LRU capacity bound; the least-recently-used entry is evicted first.
    quantum:
        Grid pitch for the lookup key.  Corners are stored exactly and
        verified on every hit, so the quantum only controls which boxes land
        in the same hash bucket — it can never cause a wrong answer.
    membership:
        Deformation invalidation mode: ``"aabb"`` drops every entry whose box
        intersects the delta's dirty AABB; ``"exact"`` additionally requires
        a moved vertex's old or new position inside the entry's box (tighter,
        still exact, costs O(entries x moved) vectorised).
    """

    def __init__(
        self,
        max_entries: int = 2048,
        quantum: float = 1e-9,
        membership: str = "aabb",
    ) -> None:
        if max_entries <= 0:
            raise QueryError("max_entries must be positive")
        if not (quantum > 0.0 and np.isfinite(quantum)):
            raise QueryError("quantum must be positive and finite")
        if membership not in MEMBERSHIP_MODES:
            raise QueryError(
                f"membership must be one of {MEMBERSHIP_MODES}, got {membership!r}"
            )
        self.max_entries = max_entries
        self.quantum = quantum
        self.membership = membership
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats()

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def _key(self, box: Box3D) -> tuple:
        q = self.quantum
        lo, hi = box.lo, box.hi
        return (
            int(round(lo[0] / q)), int(round(lo[1] / q)), int(round(lo[2] / q)),
            int(round(hi[0] / q)), int(round(hi[1] / q)), int(round(hi[2] / q)),
        )

    def get(self, box: Box3D) -> np.ndarray | None:
        """The cached vertex ids for ``box``, or ``None`` on a miss.

        A hit requires the stored corners to equal the queried corners
        bit-for-bit; a quantum-cell collision is recorded (and answered) as a
        miss.  Hits refresh the entry's LRU position.
        """
        key = self._key(box)
        with self._lock:
            entry = self._entries.get(key)
            if (
                entry is not None
                and np.array_equal(entry.lo, box.lo)
                and np.array_equal(entry.hi, box.hi)
            ):
                self._entries.move_to_end(key)
                self._stats.hits += 1
                return entry.vertex_ids
            self._stats.misses += 1
            return None

    def put(self, box: Box3D, result: "QueryResult") -> None:
        """Store a complete result; partial (budget-truncated) results are not
        cacheable and are silently ignored."""
        if not result.complete:
            return
        entry = _Entry(
            box.lo.copy(), box.hi.copy(), np.asarray(result.vertex_ids, dtype=np.int64)
        )
        key = self._key(box)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._stats.evictions += 1

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def _corner_arrays(self) -> tuple[list, np.ndarray, np.ndarray]:
        keys = list(self._entries)
        los = np.stack([self._entries[k].lo for k in keys])
        his = np.stack([self._entries[k].hi for k in keys])
        return keys, los, his

    def _drop(self, keys: list, mask: np.ndarray) -> int:
        dropped = 0
        for key, hit in zip(keys, mask):
            if hit:
                del self._entries[key]
                dropped += 1
        self._stats.invalidations += dropped
        return dropped

    def invalidate_deformation(self, delta: "DeformationDelta") -> int:
        """Drop entries a deformation step may have changed; returns the count.

        Zero-moved rest steps keep every entry live; ``full()`` deltas (and
        sparse deltas missing their dirty AABB) flush everything.
        """
        if delta.is_full:
            return self.flush()
        if delta.n_moved == 0:
            return 0
        if delta.dirty_box is None:
            return self.flush()
        with self._lock:
            if not self._entries:
                return 0
            keys, los, his = self._corner_arrays()
            stale = np.all(los <= delta.dirty_box.hi, axis=1) & np.all(
                his >= delta.dirty_box.lo, axis=1
            )
            if self.membership == "exact" and np.any(stale):
                moved = [
                    np.asarray(pts, dtype=np.float64)
                    for pts in (delta.old_positions, delta.new_positions)
                    if pts is not None and np.asarray(pts).size
                ]
                if moved:
                    points = np.concatenate(moved, axis=0)
                    candidates = np.nonzero(stale)[0]
                    touched = points_in_boxes(
                        points, los[candidates], his[candidates]
                    ).any(axis=1)
                    stale[candidates] = touched
            return self._drop(keys, stale)

    def invalidate_topology(self, delta: "TopologyDelta") -> int:
        """Drop entries a restructuring step may have changed; returns the count.

        Conservative dirty-AABB intersection only: connectivity changes alter
        crawl reachability inside the dirty region, which a per-vertex
        membership test cannot bound, so there is no ``"exact"`` tightening
        on this path.
        """
        if delta.is_empty:
            return 0
        if delta.is_full or delta.dirty_box is None:
            return self.flush()
        with self._lock:
            if not self._entries:
                return 0
            keys, los, his = self._corner_arrays()
            stale = np.all(los <= delta.dirty_box.hi, axis=1) & np.all(
                his >= delta.dirty_box.lo, axis=1
            )
            return self._drop(keys, stale)

    def flush(self) -> int:
        """Drop every entry (full deltas, repartitions, prepare)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._stats.flushes += 1
            return dropped

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        """A copy of the counters accumulated since the last drain."""
        with self._lock:
            return CacheStats().merge(self._stats)

    def drain_stats(self) -> CacheStats:
        """Return the counters accumulated since the last drain, and reset."""
        with self._lock:
            stats = self._stats
            self._stats = CacheStats()
            return stats

    def memory_bytes(self) -> int:
        """Bytes held by cached corner arrays and result ids."""
        with self._lock:
            return sum(
                e.lo.nbytes + e.hi.nbytes + e.vertex_ids.nbytes
                for e in self._entries.values()
            )

    def describe(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "quantum": self.quantum,
                "membership": self.membership,
            }
