"""Delta-invalidated query-result caching.

The dirty AABBs the delta pipeline computes for index maintenance double as
cache-invalidation certificates: a cached range-query answer stays exact
until a deformation or restructuring delta's dirty region reaches its box.
:class:`QueryResultCache` is the store, :class:`CachingStrategy` the
:class:`~repro.core.executor.StrategyWrapper` that puts it in front of any
execution strategy; see ``docs/caching.md`` for the invalidation contract
and composition order.
"""

from .result_cache import CacheStats, QueryResultCache
from .strategy import CachingStrategy

__all__ = ["CacheStats", "CachingStrategy", "QueryResultCache"]
