"""Command-line interface for regenerating the paper's experiments.

Usage (after installing the package)::

    python -m repro.cli list
    python -m repro.cli figure4 --profile small
    python -m repro.cli figure7-selectivity --profile tiny --output fig7gh.txt
    python -m repro.cli all --profile tiny

Each sub-command runs the corresponding driver from
:mod:`repro.experiments.figures`, prints the resulting series as a text table
and optionally writes it to a file.  This is a convenience wrapper around the
same functions the ``benchmarks/`` suite calls; use ``pytest benchmarks/
--benchmark-only`` when timing information is needed.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Callable, Sequence

from .experiments import format_table
from .experiments import figures as figure_drivers
from .experiments.harness import (
    cache_comparison_rows,
    fault_injection_rows,
    restructuring_maintenance_rows,
    sparse_maintenance_rows,
    sparsity_sweep_rows,
    standing_steering_rows,
    traffic_rows,
)

__all__ = ["EXPERIMENTS", "build_parser", "run_experiment", "main"]

#: experiment name -> (driver taking a profile, table title)
EXPERIMENTS: dict[str, tuple[Callable[[str], list[dict]], str]] = {
    "figure4": (
        lambda profile: figure_drivers.figure4_rows(profile),
        "Figure 4 — neuroscience dataset characterisation",
    ),
    "figure5": (
        lambda profile: figure_drivers.figure5_rows(),
        "Figure 5 — neuroscience microbenchmarks",
    ),
    "figure6": (
        lambda profile: figure_drivers.figure6(profile, n_steps=2),
        "Figure 6 — benchmark comparison (response time and memory)",
    ),
    "figure7-detail": (
        lambda profile: figure_drivers.figure7_mesh_detail_fixed_query(profile, n_steps=2),
        "Figure 7(a,b) — mesh detail sweep, fixed query volume",
    ),
    "figure7-results": (
        lambda profile: figure_drivers.figure7_mesh_detail_fixed_results(profile, n_steps=2),
        "Figure 7(c,d) — mesh detail sweep, fixed result count",
    ),
    "figure7-steps": (
        lambda profile: figure_drivers.figure7_time_steps(profile),
        "Figure 7(e,f) — time step sweep",
    ),
    "figure7-selectivity": (
        lambda profile: figure_drivers.figure7_selectivity(profile, n_steps=2),
        "Figure 7(g,h) — query selectivity sweep",
    ),
    "figure9-convex": (
        lambda profile: figure_drivers.figure9_convex_comparison(profile, selectivity=0.01),
        "Figure 9(a,b) — convex mesh comparison",
    ),
    "figure9-grid": (
        lambda profile: figure_drivers.figure9_grid_resolution(profile),
        "Figure 9(c,d) — grid resolution trade-off",
    ),
    "figure10-breakdown": (
        lambda profile: figure_drivers.figure10_breakdown(profile, selectivity=0.005),
        "Figure 10(a) — OCTOPUS phase breakdown",
    ),
    "figure10-footprint": (
        lambda profile: figure_drivers.figure10_footprint(profile),
        "Figure 10(b) — memory footprint vs results",
    ),
    "figure11": (
        lambda profile: figure_drivers.figure11_model_validation(profile),
        "Figure 11 — analytical model validation",
    ),
    "figure12": (
        lambda profile: figure_drivers.figure12_surface_approximation(profile),
        "Figure 12 — surface approximation",
    ),
    "figure13": (
        lambda profile: figure_drivers.figure13_hilbert_layout(profile),
        "Figure 13 — Hilbert data layout",
    ),
    "figure14": (
        lambda profile: figure_drivers.figure14_rows(profile),
        "Figure 14 — deforming mesh datasets",
    ),
    "figure15": (
        lambda profile: figure_drivers.figure15_animation(profile),
        "Figure 15 — deforming mesh query performance",
    ),
    "sparse-maintenance": (
        lambda profile: sparse_maintenance_rows(profile),
        "Sparse deformation — delta-keyed maintenance ledger",
    ),
    "restructuring-maintenance": (
        lambda profile: restructuring_maintenance_rows(profile),
        "Restructuring — topology-delta-keyed maintenance ledger",
    ),
    "sparsity-sweep": (
        lambda profile: sparsity_sweep_rows(profile),
        "Sparsity sweep — maintenance time vs fraction of vertices moving",
    ),
    "fault-injection": (
        lambda profile: fault_injection_rows(profile),
        "Fault injection — degradation ledger under a seeded chaos plan",
    ),
    "traffic": (
        lambda profile: traffic_rows(profile),
        "Traffic — sharded service throughput/latency vs sequential baseline",
    ),
    "cache": (
        lambda profile: cache_comparison_rows(profile),
        "Cache — delta-invalidated result cache on a repeated-query workload",
    ),
    "standing": (
        lambda profile: standing_steering_rows(profile),
        "Standing — incremental subscriptions on a steering workload",
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro.cli``."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate the OCTOPUS paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment to run, 'list' to enumerate them, or 'all' to run every one",
    )
    parser.add_argument(
        "--profile",
        default="small",
        choices=["tiny", "small", "medium", "large"],
        help="dataset size profile (default: small)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the table(s) to this file",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="issue queries one by one instead of through the batched "
        "query_many path (sets REPRO_SEQUENTIAL_QUERIES for the run)",
    )
    parser.add_argument(
        "--layout",
        default=None,
        choices=["native", "hilbert", "random"],
        help="vertex layout pass applied before strategies prepare "
        "(sets REPRO_LAYOUT for the run; default: native)",
    )
    parser.add_argument(
        "--kernels",
        default=None,
        metavar="SPEC",
        help="kernel backend spec for the batched hot loops, e.g. 'numba' or "
        "'numpy:float32' (sets REPRO_KERNEL_BACKEND for the run; numba "
        "falls back to numpy when not installed)",
    )
    return parser


def run_experiment(name: str, profile: str) -> str:
    """Run one named experiment and return its rendered table."""
    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise SystemExit(f"unknown experiment {name!r}; known experiments: {known}")
    driver, title = EXPERIMENTS[name]
    rows = driver(profile)
    return format_table(rows, title=title)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.cli``."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (_, title) in sorted(EXPERIMENTS.items()):
            print(f"{name:<22} {title}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    # Flags travel to the harness via environment variables (restored after
    # the run), so every construction path honours them without threading.
    overrides: dict[str, str] = {}
    if args.no_batch:
        overrides["REPRO_SEQUENTIAL_QUERIES"] = "1"
    if args.layout is not None:
        overrides["REPRO_LAYOUT"] = args.layout
    if args.kernels is not None:
        overrides["REPRO_KERNEL_BACKEND"] = args.kernels
    previous = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    try:
        tables = [run_experiment(name, args.profile) for name in names]
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    output = "\n\n".join(tables)
    print(output)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(output + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
