"""Shared experiment plumbing.

The per-figure drivers in :mod:`repro.experiments.figures` all follow the same
recipe: pick a dataset, pick strategies, deform for N steps, issue the same
queries to every strategy, and summarise.  This module provides the two pieces
they share — the strategy factory mirroring the paper's comparison set
(Section V-A) and a thin wrapper around :class:`~repro.simulation.MeshSimulation`
that produces comparison rows ready for reporting.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core import OctopusConExecutor, ResilientStrategy
from ..core.executor import ExecutionStrategy
from ..errors import ExperimentError
from ..factory import build_strategy, make_strategy
from ..mesh import Box3D, PolyhedralMesh
from ..simulation import (
    AffineDeformation,
    DeformationModel,
    FaultPlan,
    FaultyBatchStrategy,
    LocalizedPulseDeformation,
    MeshSimulation,
    RandomWalkDeformation,
    SimulationReport,
    SinusoidalWaveDeformation,
    SpinePulsationDeformation,
    periodic_restructuring,
)
from ..workloads import QueryWorkload, random_query_workload, repeated_query_provider

__all__ = [
    "strategy_suite",
    "make_strategy",
    "build_strategy",
    "make_deformation",
    "run_comparison",
    "comparison_rows",
    "work_sharing_rows",
    "maintenance_rows",
    "sparse_maintenance_rows",
    "restructuring_maintenance_rows",
    "sparsity_sweep_rows",
    "degradation_rows",
    "fault_injection_rows",
    "cache_rows",
    "cache_comparison_rows",
    "standing_rows",
    "standing_steering_rows",
    "fixed_workload_provider",
    "per_step_workload_provider",
]

#: strategies compared in Figure 6, in the paper's order
PAPER_COMPARISON = ("octopus", "linear-scan", "octree", "lur-tree", "qu-trade")


def strategy_suite(names: Sequence[str] = PAPER_COMPARISON) -> list[ExecutionStrategy]:
    """Instantiate a list of strategies by name (defaults to the Figure 6 set)."""
    return [make_strategy(name) for name in names]


def make_deformation(name: str, *, sparsity: float = 0.05, **kwargs) -> DeformationModel:
    """Instantiate a deformation model by name.

    ``sparsity`` is the harness's sparse-workload knob: it parameterises the
    ``"localized-pulse"`` model (the fraction of vertices moving per step) and
    is ignored by the whole-mesh models, so sweep drivers can dial a scenario
    from "everything moves" (the paper's workload) down to "almost nothing
    moves" without special-casing the model construction.
    """
    factories: dict[str, Callable[..., DeformationModel]] = {
        "random-walk": RandomWalkDeformation,
        "wave": SinusoidalWaveDeformation,
        "pulsation": SpinePulsationDeformation,
        "affine": AffineDeformation,
        "localized-pulse": lambda **kw: LocalizedPulseDeformation(sparsity=sparsity, **kw),
    }
    try:
        factory = factories[name]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown deformation {name!r}; expected one of {sorted(factories)}"
        ) from exc
    return factory(**kwargs)


def fixed_workload_provider(workload: QueryWorkload | Sequence[Box3D]):
    """A query provider that issues the same boxes at every time step."""
    boxes = list(workload)

    def provider(mesh: PolyhedralMesh, step: int) -> list[Box3D]:
        return boxes

    return provider


def per_step_workload_provider(
    selectivity: float, queries_per_step: int, seed: int = 0
):
    """A query provider that draws fresh random queries of fixed selectivity each step."""

    def provider(mesh: PolyhedralMesh, step: int) -> list[Box3D]:
        workload = random_query_workload(
            mesh, selectivity=selectivity, n_queries=queries_per_step, seed=seed + 1000 * step
        )
        return workload.boxes

    return provider


def run_comparison(
    mesh: PolyhedralMesh,
    strategies: Sequence[ExecutionStrategy],
    deformation: DeformationModel,
    n_steps: int,
    query_provider,
    validate_results: bool = False,
    batch_queries: bool | None = None,
    restructuring=None,
    fault_plan: FaultPlan | None = None,
) -> SimulationReport:
    """Run one simulation comparing the given strategies on identical queries.

    ``batch_queries`` is forwarded to :class:`MeshSimulation`: ``None`` (the
    default) issues each step's boxes through the batched ``query_many`` path
    unless ``REPRO_SEQUENTIAL_QUERIES`` is set in the environment.
    ``restructuring`` is the optional topology schedule (see
    :func:`repro.simulation.periodic_restructuring`); ``fault_plan`` the
    optional seeded corruption schedule (see :class:`repro.simulation.FaultPlan`).
    """
    simulation = MeshSimulation(
        mesh=mesh,
        deformation=deformation,
        strategies=strategies,
        query_provider=query_provider,
        restructuring=restructuring,
        validate_results=validate_results,
        batch_queries=batch_queries,
        fault_plan=fault_plan,
    )
    return simulation.run(n_steps)


def comparison_rows(report: SimulationReport, baseline: str = "linear-scan") -> list[dict]:
    """Flatten a simulation report into one comparison row per strategy.

    The speedup columns are computed against ``baseline`` (the linear scan in
    the paper) using both wall-clock response time and the machine-independent
    work counters.
    """
    if baseline not in report.strategies:
        raise ExperimentError(f"baseline {baseline!r} was not part of the comparison")
    reference = report.strategies[baseline]
    rows = []
    for name, strategy_report in report.strategies.items():
        rows.append(
            {
                "strategy": name,
                "response_time_s": strategy_report.total_response_time,
                "query_time_s": strategy_report.total_query_time,
                "maintenance_time_s": strategy_report.total_maintenance_time,
                "preprocessing_time_s": strategy_report.preprocessing_time,
                "memory_overhead_mb": strategy_report.memory_overhead_bytes / 1e6,
                "total_results": strategy_report.total_results,
                "total_work": strategy_report.total_work(),
                "speedup_vs_baseline_time": strategy_report.speedup_against(reference),
                "speedup_vs_baseline_work": strategy_report.speedup_against(reference, use_work=True),
                "crawl_work_sharing": strategy_report.crawl_work_sharing(),
                "walk_work_sharing": strategy_report.walk_work_sharing(),
                "layout": strategy_report.layout,
                "layout_locality": strategy_report.layout_locality,
            }
        )
    return rows


def maintenance_rows(report: SimulationReport) -> list[dict]:
    """Per-strategy maintenance ledger: what keeping the index fresh cost.

    For every strategy, the moved-vertex total of the deformation deltas is
    set against the index entries its maintenance actually touched and the
    wall-clock it spent; ``entries_per_moved`` near 1.0 means maintenance
    cost proportional to the motion (the delta-aware regime), values near
    ``n_vertices / n_moved`` mean every step paid for the whole mesh (the
    delta-blind regime).  ``maintenance_share`` is maintenance's fraction of
    the paper's total-response-time metric.  Restructuring work is part of
    the same ledger: ``restructurings`` counts the steps whose topology delta
    changed the mesh and ``topology_dirty`` the vertices those deltas
    dirtied, while ``maintenance_entries`` / ``maintenance_time_s`` already
    include the ``on_restructure`` work next to the ``on_step`` work.
    """
    rows = []
    for name, strategy_report in report.strategies.items():
        response = max(strategy_report.total_response_time, 1e-12)
        rows.append(
            {
                "strategy": name,
                "moved_vertices": strategy_report.total_moved_vertices,
                "restructurings": strategy_report.total_restructurings,
                "topology_dirty": strategy_report.total_topology_dirty,
                "maintenance_entries": strategy_report.total_maintenance_entries,
                "entries_per_moved": strategy_report.maintenance_entries_per_moved_vertex(),
                "maintenance_time_s": strategy_report.total_maintenance_time,
                "maintenance_share": strategy_report.total_maintenance_time / response,
            }
        )
    return rows


def sparse_maintenance_rows(
    profile: str = "small",
    sparsity: float = 0.05,
    n_steps: int = 4,
    queries_per_step: int = 8,
    selectivity: float = 0.01,
    seed: int = 0,
) -> list[dict]:
    """The sparse-deformation scenario: localized motion, delta-keyed upkeep.

    Runs the :class:`~repro.simulation.LocalizedPulseDeformation` workload
    (``sparsity`` of the vertices moving per step, with rest steps) over the
    delta-aware strategy set — OCTOPUS, OCTOPUS-CON with an incrementally
    maintained grid, the lazy/memo/grace-window R-trees, and a throwaway
    octree as the rebuild-everything yardstick — and returns the maintenance
    ledger rows (:func:`maintenance_rows`), one per strategy.
    """
    from .datasets import neuron_largest

    mesh = neuron_largest(profile).copy()
    strategies = [
        make_strategy("octopus"),
        OctopusConExecutor(grid_maintenance="incremental"),
        make_strategy("lur-tree"),
        make_strategy("qu-trade"),
        make_strategy("rum-tree"),
        make_strategy("octree"),
    ]
    report = run_comparison(
        mesh,
        strategies,
        make_deformation("localized-pulse", sparsity=sparsity, rest_every=4, seed=seed),
        n_steps=n_steps,
        query_provider=per_step_workload_provider(selectivity, queries_per_step, seed=seed),
    )
    return maintenance_rows(report)


def restructuring_maintenance_rows(
    profile: str = "small",
    sparsity: float = 0.05,
    n_steps: int = 6,
    restructure_every: int = 2,
    cells_per_event: int = 8,
    queries_per_step: int = 8,
    selectivity: float = 0.01,
    seed: int = 0,
) -> list[dict]:
    """The restructuring scenario: topology deltas through ``on_restructure``.

    Runs a :class:`~repro.simulation.LocalizedPulseDeformation` workload with
    a :func:`~repro.simulation.periodic_restructuring` schedule (alternating
    localized splits and removals every ``restructure_every`` steps, so some
    restructurings land on zero-moved rest ticks) over the delta-aware
    strategy set, and returns the maintenance ledger rows
    (:func:`maintenance_rows`) — one per strategy, with the restructuring
    columns populated.  OCTOPUS pays a handful of hash-table operations per
    event, the maintained grid splices the appended centroids, the updatable
    trees insert only the tail, and the throwaway octree shows the
    rebuild-everything yardstick.
    """
    from .datasets import neuron_largest

    mesh = neuron_largest(profile).copy()
    strategies = [
        make_strategy("octopus"),
        OctopusConExecutor(grid_maintenance="incremental"),
        make_strategy("lur-tree"),
        make_strategy("qu-trade"),
        make_strategy("rum-tree"),
        make_strategy("octree"),
    ]
    report = run_comparison(
        mesh,
        strategies,
        make_deformation("localized-pulse", sparsity=sparsity, rest_every=4, seed=seed),
        n_steps=n_steps,
        query_provider=per_step_workload_provider(selectivity, queries_per_step, seed=seed),
        restructuring=periodic_restructuring(
            every=restructure_every, kind="mixed", n_cells=cells_per_event, seed=seed
        ),
    )
    return maintenance_rows(report)


def sparsity_sweep_rows(
    profile: str = "small",
    sparsities: Sequence[float] = (0.01, 0.05, 0.2, 1.0),
    n_steps: int = 4,
    queries_per_step: int = 4,
    selectivity: float = 0.01,
    seed: int = 0,
) -> list[dict]:
    """Maintenance time vs. sparsity: the delta pipeline's headline curve.

    For each sparsity level the :class:`~repro.simulation.LocalizedPulseDeformation`
    workload is run over the delta-aware strategy set and the maintenance
    ledger (:func:`maintenance_rows`) is collected; the returned rows carry a
    leading ``sparsity`` column, one row per (sparsity, strategy).  Plotting
    ``maintenance_time_s`` against ``sparsity`` shows the O(motion) vs.
    O(mesh) separation directly: delta-aware strategies' curves fall with the
    sparsity while rebuild-everything baselines stay flat (see
    ``docs/performance.md``).
    """
    from .datasets import neuron_largest

    rows: list[dict] = []
    for sparsity in sparsities:
        mesh = neuron_largest(profile).copy()
        strategies = [
            make_strategy("octopus"),
            OctopusConExecutor(grid_maintenance="incremental"),
            make_strategy("lur-tree"),
            make_strategy("qu-trade"),
            make_strategy("octree"),
        ]
        report = run_comparison(
            mesh,
            strategies,
            make_deformation("localized-pulse", sparsity=sparsity, rest_every=4, seed=seed),
            n_steps=n_steps,
            query_provider=per_step_workload_provider(selectivity, queries_per_step, seed=seed),
        )
        for row in maintenance_rows(report):
            rows.append({"sparsity": sparsity, **row})
    return rows


def degradation_rows(report: SimulationReport) -> list[dict]:
    """The degradation ledger: one row per recorded fallback event.

    Strategies wrapped in :class:`~repro.core.ResilientStrategy` record every
    descent down the degradation ladder (fused batch retried sequentially,
    quarantined deltas, budget-blown crawls answered by linear scan, full
    rebuilds); the simulator drains those events into each
    :class:`~repro.simulation.StrategyReport` and this function flattens them
    into rows — strategy, step, operation, ladder rung, and the classified
    reason — ordered by step then strategy.  Unwrapped strategies contribute
    nothing, so an empty table means the run never degraded.
    """
    rows = [
        {
            "strategy": name,
            "step": event.get("step"),
            "operation": event.get("operation"),
            "rung": event.get("rung"),
            "reason": event.get("reason"),
            "error": event.get("error"),
        }
        for name, strategy_report in report.strategies.items()
        for event in strategy_report.degradation_events
    ]
    rows.sort(key=lambda row: (row["step"] if row["step"] is not None else -1, row["strategy"]))
    return rows


#: chaos scenario mesh resolution per profile (vertices = resolution**3)
_FAULT_INJECTION_RESOLUTIONS = {"tiny": 6, "small": 9, "medium": 12}


def fault_injection_rows(
    profile: str = "small",
    seed: int = 7,
    n_steps: int = 8,
    probability: float = 0.6,
    sparsity: float = 0.05,
    amplitude: float = 0.02,
    queries_per_step: int = 4,
    selectivity: float = 0.02,
) -> list[dict]:
    """The chaos scenario: seeded corruption against the resilience layer.

    Runs a sparse :class:`~repro.simulation.LocalizedPulseDeformation`
    workload with a :class:`~repro.simulation.FaultPlan` corrupting the
    deltas the simulator hands out (truncated ids, wrong dirty boxes, NaN
    positions, mid-batch exceptions via
    :class:`~repro.simulation.FaultyBatchStrategy`).  Every strategy except
    the linear-scan reference is wrapped in a paranoid
    :class:`~repro.core.ResilientStrategy`, and ``validate_results=True``
    asserts the recovered answers stay bit-identical to the scan of the live
    positions — the run only completes if every injected fault was absorbed.
    Returns the degradation ledger (:func:`degradation_rows`): the fallbacks
    the faults actually forced.

    The scenario runs on a convex structured cube with a gentle pulse
    amplitude: OCTOPUS-CON's single-seed crawl is only exact on convex
    meshes, and large Gaussian kicks can disconnect a box's in-box subgraph,
    which breaks *any* crawl-based strategy's completeness (see
    :class:`~repro.simulation.LocalizedPulseDeformation`).  Chaos runs must
    isolate injected faults from those pre-existing geometric limits.
    """
    from ..generators import structured_tetrahedral_mesh

    try:
        resolution = _FAULT_INJECTION_RESOLUTIONS[profile]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown dataset profile {profile!r}; expected one of "
            f"{sorted(_FAULT_INJECTION_RESOLUTIONS)}"
        ) from exc
    mesh = structured_tetrahedral_mesh((resolution, resolution, resolution))
    plan = FaultPlan(seed=seed, probability=probability)
    strategies: list[ExecutionStrategy] = [
        make_strategy("linear-scan"),  # the live-position reference; deliberately unwrapped
        ResilientStrategy(FaultyBatchStrategy(make_strategy("octopus"), plan), paranoid=True),
        ResilientStrategy(OctopusConExecutor(grid_maintenance="incremental"), paranoid=True),
        ResilientStrategy(make_strategy("lur-tree"), paranoid=True),
    ]
    report = run_comparison(
        mesh,
        strategies,
        make_deformation("localized-pulse", sparsity=sparsity, amplitude=amplitude, seed=seed),
        n_steps=n_steps,
        query_provider=per_step_workload_provider(selectivity, queries_per_step, seed=seed),
        validate_results=True,
        fault_plan=plan,
    )
    return degradation_rows(report)


def work_sharing_rows(report: SimulationReport) -> list[dict]:
    """Per-strategy fused-work savings: what the batched engines actually did.

    For every strategy, the *attributed* work is what its per-query counters
    report — exactly what independent sequential queries would have performed
    — while the *unique* work is what the fused walk/crawl physically
    executed; their ratio is the work-sharing factor.  Strategies without a
    fused engine (or runs with batching disabled) report zeros and a factor
    of 1.0, so the table doubles as a map of which strategies fuse.
    """
    rows = []
    for name, strategy_report in report.strategies.items():
        rows.append(
            {
                "strategy": name,
                "crawl_attributed_visits": strategy_report.fused_attributed_crawl_visits,
                "crawl_unique_visits": strategy_report.fused_unique_crawl_visits,
                "crawl_work_sharing": strategy_report.crawl_work_sharing(),
                "walk_attributed_distances": strategy_report.fused_attributed_walk_distances,
                "walk_unique_distances": strategy_report.fused_unique_walk_distances,
                "walk_work_sharing": strategy_report.walk_work_sharing(),
            }
        )
    return rows


def cache_rows(report: SimulationReport) -> list[dict]:
    """Per-strategy result-cache ledger: hits, misses, invalidation traffic.

    For every strategy the simulator's drained
    :class:`~repro.cache.CacheStats` are set against its query time; when the
    report also contains the fresh (uncached) variant of a ``cached-<name>``
    strategy, ``speedup_vs_fresh`` is the fresh variant's query time over the
    cached one's — the wall-clock value of answering repeats from the cache.
    Strategies without a caching wrapper report zeros and a blank speedup,
    so the table doubles as a map of which strategies cache.
    """
    rows = []
    for name, strategy_report in report.strategies.items():
        fresh_name = name.removeprefix("cached-")
        fresh = report.strategies.get(fresh_name) if fresh_name != name else None
        speedup = (
            fresh.total_query_time / max(strategy_report.total_query_time, 1e-12)
            if fresh is not None
            else 0.0
        )
        rows.append(
            {
                "strategy": name,
                "cached": strategy_report.cached,
                "cache_hits": strategy_report.total_cache_hits,
                "cache_misses": strategy_report.total_cache_misses,
                "hit_rate": strategy_report.cache_hit_rate(),
                "invalidations": strategy_report.total_cache_invalidations,
                "flushes": strategy_report.total_cache_flushes,
                "query_time_s": strategy_report.total_query_time,
                "speedup_vs_fresh": speedup,
            }
        )
    return rows


def cache_comparison_rows(
    profile: str = "small",
    repoll_fraction: float = 0.9,
    n_steps: int = 6,
    queries_per_step: int = 8,
    selectivity: float = 0.005,
    sparsity: float = 0.02,
    seed: int = 0,
) -> list[dict]:
    """The repeated-query caching scenario: re-polling clients, sparse motion.

    Runs a :func:`~repro.workloads.repeated_query_provider` workload (clients
    re-issue ``repoll_fraction`` of their boxes each step) under a sparse
    :class:`~repro.simulation.LocalizedPulseDeformation` with rest steps, over
    fresh and ``caching=True``-wrapped variants of OCTOPUS and the LUR-tree.
    ``validate_results=True`` asserts cached answers stay bit-identical to
    fresh execution while the run measures them; returns the cache ledger
    (:func:`cache_rows`).  The full reuse-sensitivity sweep with regression
    floors lives in ``benchmarks/bench_cache.py``.
    """
    from .datasets import neuron_largest

    mesh = neuron_largest(profile).copy()
    strategies = [
        make_strategy("octopus"),
        build_strategy("octopus", caching=True),
        make_strategy("lur-tree"),
        build_strategy("lur-tree", caching=True),
    ]
    report = run_comparison(
        mesh,
        strategies,
        make_deformation("localized-pulse", sparsity=sparsity, rest_every=2, seed=seed),
        n_steps=n_steps,
        query_provider=repeated_query_provider(
            selectivity, queries_per_step, repoll_fraction, seed=seed
        ),
        validate_results=True,
    )
    return cache_rows(report)


def standing_rows(report: SimulationReport) -> list[dict]:
    """Per-strategy standing-subscription ledger: updates, skips, re-crawls.

    For every strategy the simulator's drained
    :class:`~repro.standing.StandingStats` totals are reported alongside the
    skip rate (fraction of per-tick subscription evaluations settled by the
    O(1) dirty-AABB test alone).  Strategies without a standing wrapper
    report zeros with ``standing=False``, so the table doubles as a map of
    which variants carry subscriptions.
    """
    rows = []
    for name, strategy_report in report.strategies.items():
        rows.append(
            {
                "strategy": name,
                "standing": strategy_report.standing,
                "subscriptions": strategy_report.standing_subscriptions,
                "updates": strategy_report.total_standing_updates,
                "entered": strategy_report.total_standing_entered,
                "exited": strategy_report.total_standing_exited,
                "skips": strategy_report.total_standing_skips,
                "skip_rate": strategy_report.standing_skip_rate(),
                "recrawls": strategy_report.total_standing_recrawls,
                "moved_tests": strategy_report.total_standing_moved_tests,
            }
        )
    return rows


def standing_steering_rows(
    profile: str = "small",
    n_subscriptions: int = 12,
    n_steps: int = 8,
    selectivity: float = 0.005,
    sparsity: float = 0.02,
    seed: int = 0,
) -> list[dict]:
    """The standing-query steering scenario: watched regions, sparse motion.

    Subscribes a :func:`~repro.workloads.subscription_steering` schedule's
    watch boxes on standing-wrapped variants of OCTOPUS and the LUR-tree
    (plain variants run alongside as the no-registry baseline), deforms with
    a sparse :class:`~repro.simulation.LocalizedPulseDeformation`, and
    returns the standing ledger (:func:`standing_rows`).  The incremental
    vs naive re-query comparison with regression floors lives in
    ``benchmarks/bench_standing.py``.
    """
    from ..workloads import subscription_steering
    from .datasets import neuron_largest

    mesh = neuron_largest(profile).copy()
    schedule = subscription_steering(
        mesh,
        n_subscriptions=n_subscriptions,
        n_steps=n_steps,
        selectivity=selectivity,
        seed=seed,
    )
    boxes = list(schedule.initial_boxes)
    strategies = [
        make_strategy("octopus"),
        build_strategy("octopus", standing=boxes),
        make_strategy("lur-tree"),
        build_strategy("lur-tree", standing=boxes),
    ]
    report = run_comparison(
        mesh,
        strategies,
        make_deformation("localized-pulse", sparsity=sparsity, rest_every=2, seed=seed),
        n_steps=n_steps,
        query_provider=per_step_workload_provider(selectivity, 2, seed=seed),
        validate_results=True,
    )
    return standing_rows(report)


def traffic_rows(profile: str = "small") -> list[dict]:
    """Sharded-service traffic cells: throughput and latency per configuration.

    Replays the seeded mixed query/deformation workload from
    :mod:`repro.service.traffic` against the sequential baseline and the
    sharded service (see ``docs/service.md``), one row per
    ``(strategy, shard-count, client-count)`` cell.  The full benchmark grid
    with regression floors lives in ``benchmarks/bench_traffic.py``; this is
    the quick CLI view of the same cells.
    """
    from ..experiments.datasets import neuron_largest
    from ..service import TRAFFIC_PROFILES, run_traffic

    traffic_profile = TRAFFIC_PROFILES.get(profile, TRAFFIC_PROFILES["small"])
    mesh = neuron_largest(profile)
    rows = []
    for n_shards, n_clients in ((0, 1), (4, 1), (4, 4)):
        cell = run_traffic(
            mesh, traffic_profile, n_shards=n_shards, n_clients=n_clients
        )
        rows.append(
            {
                "strategy": cell["strategy"],
                "n_shards": cell["n_shards"],
                "n_clients": cell["n_clients"],
                "throughput_qps": round(cell["throughput_qps"], 1),
                "p50_ms": round(cell["p50_ms"], 3),
                "p99_ms": round(cell["p99_ms"], 3),
                "maintenance_s": round(cell["maintenance_s"], 4),
            }
        )
    return rows
