"""Plain-text rendering of experiment results.

Every figure driver returns rows of dictionaries; :func:`format_table` renders
them the way the paper's tables/figures list their series, so the benchmark
output can be compared side by side with the published numbers (recorded in
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "format_cache",
    "format_degradation",
    "format_maintenance",
    "format_standing",
    "format_table",
    "format_value",
    "format_work_sharing",
    "print_table",
]


def format_value(value: object, precision: int = 4) -> str:
    """Render one cell: floats get fixed precision, everything else str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != 0 and (abs(value) < 10 ** (-precision) or abs(value) >= 10**7):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render rows of dicts as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    keys = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[format_value(row.get(key, ""), precision) for key in keys] for row in rows]
    widths = [
        max(len(key), *(len(line[i]) for line in rendered)) for i, key in enumerate(keys)
    ]
    header = "  ".join(key.ljust(widths[i]) for i, key in enumerate(keys))
    separator = "  ".join("-" * widths[i] for i in range(len(keys)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(keys))) for line in rendered
    ]
    lines = ([title] if title else []) + [header, separator, *body]
    return "\n".join(lines)


#: column order of the fused-work savings table (harness.work_sharing_rows)
_WORK_SHARING_COLUMNS = (
    "strategy",
    "crawl_attributed_visits",
    "crawl_unique_visits",
    "crawl_work_sharing",
    "walk_attributed_distances",
    "walk_unique_distances",
    "walk_work_sharing",
)


def format_work_sharing(
    rows: Sequence[Mapping[str, object]],
    title: str | None = "Fused-batch work sharing (attributed = sequential-equivalent work)",
) -> str:
    """Render the per-strategy fused-work savings table.

    Takes the rows produced by
    :func:`repro.experiments.harness.work_sharing_rows`; strategies that never
    fused a batch show zero work and a sharing factor of 1.0.
    """
    return format_table(rows, columns=_WORK_SHARING_COLUMNS, title=title, precision=2)


#: column order of the maintenance ledger table (harness.maintenance_rows)
_MAINTENANCE_COLUMNS = (
    "strategy",
    "moved_vertices",
    "restructurings",
    "topology_dirty",
    "maintenance_entries",
    "entries_per_moved",
    "maintenance_time_s",
    "maintenance_share",
)


def format_maintenance(
    rows: Sequence[Mapping[str, object]],
    title: str | None = "Maintenance ledger (entries_per_moved ~1.0 = cost proportional to motion)",
) -> str:
    """Render the per-strategy maintenance ledger table.

    Takes the rows produced by
    :func:`repro.experiments.harness.maintenance_rows`; delta-aware
    strategies show entries-per-moved-vertex near 1.0 (or 0.0 when they need
    no maintenance at all), delta-blind rebuilds show the mesh-to-motion
    ratio.
    """
    return format_table(rows, columns=_MAINTENANCE_COLUMNS, title=title, precision=2)


#: column order of the result-cache ledger table (harness.cache_rows)
_CACHE_COLUMNS = (
    "strategy",
    "cached",
    "cache_hits",
    "cache_misses",
    "hit_rate",
    "invalidations",
    "flushes",
    "query_time_s",
    "speedup_vs_fresh",
)


def format_cache(
    rows: Sequence[Mapping[str, object]],
    title: str | None = "Result-cache ledger (speedup_vs_fresh = uncached / cached query time)",
) -> str:
    """Render the per-strategy result-cache ledger table.

    Takes the rows produced by
    :func:`repro.experiments.harness.cache_rows`; uncached strategies show
    zero traffic and a blank speedup, cached ones show their hit/miss/
    invalidation counts and the wall-clock speedup over their fresh variant
    when it was part of the same run.
    """
    return format_table(rows, columns=_CACHE_COLUMNS, title=title, precision=2)


#: column order of the standing-subscription ledger table (harness.standing_rows)
_STANDING_COLUMNS = (
    "strategy",
    "standing",
    "subscriptions",
    "updates",
    "entered",
    "exited",
    "skips",
    "skip_rate",
    "recrawls",
    "moved_tests",
)


def format_standing(
    rows: Sequence[Mapping[str, object]],
    title: str | None = "Standing-subscription ledger (skip_rate = O(1) dismissals / evaluations)",
) -> str:
    """Render the per-strategy standing-subscription ledger table.

    Takes the rows produced by
    :func:`repro.experiments.harness.standing_rows`; strategies without a
    standing wrapper show zero traffic with ``standing=False``, wrapped ones
    show their update/skip/re-crawl counts and the fraction of per-tick
    evaluations the O(1) dirty-AABB test settled outright.
    """
    return format_table(rows, columns=_STANDING_COLUMNS, title=title, precision=2)


#: column order of the degradation ledger table (harness.degradation_rows)
_DEGRADATION_COLUMNS = (
    "strategy",
    "step",
    "operation",
    "rung",
    "reason",
    "error",
)


def format_degradation(
    rows: Sequence[Mapping[str, object]],
    title: str | None = "Degradation ledger (one row per recorded fallback)",
) -> str:
    """Render the per-event degradation ledger table.

    Takes the rows produced by
    :func:`repro.experiments.harness.degradation_rows`; an empty table means
    no wrapped strategy ever left its fast path.  The ``error`` column is
    truncated so one pathological repr cannot blow up the table width.
    """
    trimmed = [{**row, "error": _truncate(str(row.get("error", "")), 60)} for row in rows]
    return format_table(trimmed, columns=_DEGRADATION_COLUMNS, title=title, precision=2)


def _truncate(text: str, limit: int) -> str:
    return text if len(text) <= limit else text[: limit - 1] + "…"


def print_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 4,
) -> None:
    """Print :func:`format_table` output (what the benchmark harness calls)."""
    print(format_table(rows, columns=columns, title=title, precision=precision))
