"""Figure 9: OCTOPUS-CON on convex earthquake meshes.

* (a) total query response time of OCTOPUS-CON, OCTOPUS and the linear scan
  on the SF2 (coarse) and SF1 (fine) convex basin meshes;
* (b) phase breakdown of OCTOPUS-CON vs OCTOPUS (surface probe / directed
  walk / crawling);
* (c) directed-walk cost (vertices accessed) as a function of the stale grid
  resolution;
* (d) grid memory overhead as a function of the grid resolution.
"""

from __future__ import annotations

from typing import Sequence

from ...core import OctopusConExecutor
from ...simulation import AffineDeformation
from ...workloads import random_query_workload
from ..datasets import earthquake_pair
from ..harness import fixed_workload_provider, run_comparison, strategy_suite

__all__ = ["figure9_convex_comparison", "figure9_grid_resolution"]

_STRATEGIES = ("octopus-con", "octopus", "linear-scan")


def figure9_convex_comparison(
    profile: str = "small",
    n_steps: int = 3,
    queries_per_step: int = 8,
    selectivity: float = 0.001,
    seed: int = 0,
) -> list[dict]:
    """Figure 9(a, b): the convex-mesh comparison with per-phase breakdown."""
    rows = []
    for mesh in earthquake_pair(profile):
        workload = random_query_workload(
            mesh, selectivity=selectivity, n_queries=queries_per_step, seed=seed
        )
        report = run_comparison(
            mesh=mesh.copy(),
            strategies=strategy_suite(_STRATEGIES),
            deformation=AffineDeformation(
                stretch_amplitude=0.05, shear_amplitude=0.02, rotation_amplitude=0.05
            ),
            n_steps=n_steps,
            query_provider=fixed_workload_provider(workload.boxes),
        )
        linear = report["linear-scan"]
        for name in _STRATEGIES:
            strategy_report = report[name]
            rows.append(
                {
                    "dataset": mesh.name,
                    "strategy": name,
                    "response_time_s": strategy_report.total_response_time,
                    "surface_probe_time_s": strategy_report.total_probe_time,
                    "directed_walk_time_s": strategy_report.total_walk_time,
                    "crawling_time_s": strategy_report.total_crawl_time,
                    "surface_probed": strategy_report.counters.surface_probed,
                    "walk_vertices": strategy_report.counters.walk_vertices_visited,
                    "crawl_vertices": strategy_report.counters.crawl_vertices_visited,
                    "speedup_vs_linear_time": strategy_report.speedup_against(linear),
                    "speedup_vs_linear_work": strategy_report.speedup_against(linear, use_work=True),
                }
            )
    return rows


def figure9_grid_resolution(
    profile: str = "small",
    resolutions: Sequence[int] = (2, 6, 10, 14, 18),
    n_queries: int = 10,
    selectivity: float = 0.001,
    seed: int = 0,
) -> list[dict]:
    """Figure 9(c, d): grid resolution versus directed-walk cost and grid memory.

    ``resolutions`` are cells per axis; the paper reports total cell counts
    (8, 216, 1000, 2744, 5832), which correspond to 2, 6, 10, 14 and 18 cells
    per axis.
    """
    _, fine = earthquake_pair(profile)
    workload = random_query_workload(
        fine, selectivity=selectivity, n_queries=n_queries, seed=seed
    )
    rows = []
    for resolution in resolutions:
        executor = OctopusConExecutor(grid_resolution=int(resolution))
        executor.prepare(fine)
        walk_vertices = 0
        for box in workload.boxes:
            result = executor.query(box)
            walk_vertices += result.counters.walk_vertices_visited
        rows.append(
            {
                "grid_cells_total": int(resolution) ** 3,
                "grid_resolution_per_axis": int(resolution),
                "directed_walk_vertices": walk_vertices,
                "grid_memory_mb": executor.grid.memory_bytes() / 1e6,
            }
        )
    return rows
