"""Figure 12: the surface-approximation optimisation (Section IV-H2).

Probing only a random sample of the surface vertices trades accuracy for
probe time.  Figure 12(a) plots result accuracy against the approximation
fraction for two selectivities; Figure 12(b) plots the speedup over
unapproximated OCTOPUS.
"""

from __future__ import annotations

from typing import Sequence

from ...core import evaluate_surface_approximation
from ...workloads import random_query_workload
from ..datasets import neuron_largest

__all__ = ["figure12_surface_approximation"]


def figure12_surface_approximation(
    profile: str = "small",
    fractions: Sequence[float] = (0.0001, 0.001, 0.01, 0.1, 1.0),
    selectivities: Sequence[float] = (0.0001, 0.001),
    n_queries: int = 6,
    seed: int = 0,
) -> list[dict]:
    """One row per (selectivity, approximation fraction) with accuracy and speedup."""
    mesh = neuron_largest(profile)
    rows = []
    for selectivity in selectivities:
        workload = random_query_workload(
            mesh, selectivity=selectivity, n_queries=n_queries, seed=seed
        )
        points = evaluate_surface_approximation(
            mesh, workload.boxes, fractions=fractions, seed=seed
        )
        for point in points:
            rows.append(
                {
                    "selectivity_pct": selectivity * 100.0,
                    "approximation_pct": point.fraction * 100.0,
                    "accuracy_pct": point.accuracy * 100.0,
                    "mean_probe_work": point.mean_probe_work,
                    "mean_total_work": point.mean_total_work,
                    "speedup_vs_exact": point.speedup_vs_exact,
                }
            )
    return rows
