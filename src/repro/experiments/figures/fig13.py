"""Figure 13: the Hilbert data-layout optimisation (Section IV-H1).

Sorting vertex records along a Hilbert curve keeps spatially close vertices
close in memory and speeds up the crawl.  The wall-clock effect of cache
locality is much weaker through NumPy than in the paper's C++ implementation,
so in addition to crawl seconds this driver reports a machine-independent
*locality score* (mean vertex-id distance across mesh edges, normalised) for
the shuffled and the Hilbert layouts, which shows the same qualitative
ordering the paper measures.
"""

from __future__ import annotations

from typing import Sequence

from ...core import OctopusExecutor
from ...mesh import hilbert_layout, layout_locality_score, random_layout
from ...workloads import random_query_workload
from ..datasets import neuron_largest

__all__ = ["figure13_hilbert_layout"]


def _crawl_seconds(mesh, boxes) -> tuple[float, float, int]:
    """Total (crawl seconds, probe seconds, crawl vertex visits) over a workload."""
    executor = OctopusExecutor()
    executor.prepare(mesh)
    crawl_time = 0.0
    probe_time = 0.0
    crawl_vertices = 0
    for box in boxes:
        result = executor.query(box)
        crawl_time += result.crawl_time
        probe_time += result.probe_time
        crawl_vertices += result.counters.crawl_vertices_visited
    return crawl_time, probe_time, crawl_vertices


def figure13_hilbert_layout(
    profile: str = "small",
    selectivities: Sequence[float] = (0.0001, 0.0005, 0.001, 0.0015, 0.002),
    n_queries: int = 6,
    seed: int = 0,
) -> list[dict]:
    """One row per selectivity comparing the shuffled layout with the Hilbert layout."""
    base = neuron_largest(profile)
    shuffled = random_layout(base, seed=seed)
    hilbert = hilbert_layout(shuffled)
    shuffled_locality = layout_locality_score(shuffled)
    hilbert_locality = layout_locality_score(hilbert)

    rows = []
    for selectivity in selectivities:
        workload = random_query_workload(
            shuffled, selectivity=selectivity, n_queries=n_queries, seed=seed
        )
        # The two layouts describe the same geometry, so the same boxes apply.
        crawl_without, probe_without, visits_without = _crawl_seconds(shuffled, workload.boxes)
        crawl_with, probe_with, visits_with = _crawl_seconds(hilbert, workload.boxes)
        rows.append(
            {
                "selectivity_pct": selectivity * 100.0,
                "crawl_time_without_layout_s": crawl_without,
                "crawl_time_with_layout_s": crawl_with,
                "surface_probe_time_without_s": probe_without,
                "surface_probe_time_with_s": probe_with,
                "crawl_speedup_pct": 100.0 * (crawl_without - crawl_with) / max(crawl_without, 1e-12),
                "crawl_vertices_without": visits_without,
                "crawl_vertices_with": visits_with,
                "locality_without_layout": shuffled_locality,
                "locality_with_layout": hilbert_locality,
            }
        )
    return rows
