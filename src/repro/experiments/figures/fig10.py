"""Figure 10: OCTOPUS overhead analysis.

* (a) per-phase breakdown (surface probe / directed walk / crawling) of
  OCTOPUS's query execution as the dataset grows;
* (b) memory footprint as a function of the number of query results.
"""

from __future__ import annotations

from typing import Sequence

from ...core import OctopusExecutor
from ...simulation import RandomWalkDeformation
from ...workloads import random_query_workload
from ..datasets import neuron_largest, neuron_series
from ..harness import fixed_workload_provider, run_comparison, strategy_suite

__all__ = ["figure10_breakdown", "figure10_footprint"]


def figure10_breakdown(
    profile: str = "small",
    n_steps: int = 3,
    queries_per_step: int = 8,
    selectivity: float = 0.001,
    seed: int = 0,
) -> list[dict]:
    """Figure 10(a): phase breakdown of OCTOPUS across the dataset series.

    Queries are sized on the coarsest mesh and reused on every level of
    detail (as in Figure 7a), so crawling grows with detail while the surface
    probe grows sub-linearly.
    """
    series = neuron_series(profile)
    workload = random_query_workload(
        series[0], selectivity=selectivity, n_queries=queries_per_step, seed=seed
    )
    rows = []
    for mesh in series:
        report = run_comparison(
            mesh=mesh.copy(),
            strategies=strategy_suite(("octopus",)),
            deformation=RandomWalkDeformation(amplitude=0.0005, seed=seed),
            n_steps=n_steps,
            query_provider=fixed_workload_provider(workload.boxes),
        )
        octopus = report["octopus"]
        rows.append(
            {
                "dataset": mesh.name,
                "n_tetrahedra": mesh.n_cells,
                "surface_probe_time_s": octopus.total_probe_time,
                "directed_walk_time_s": octopus.total_walk_time,
                "crawling_time_s": octopus.total_crawl_time,
                "surface_probed": octopus.counters.surface_probed,
                "walk_vertices": octopus.counters.walk_vertices_visited,
                "crawl_vertices": octopus.counters.crawl_vertices_visited,
                "preprocessing_time_s": octopus.preprocessing_time,
            }
        )
    return rows


def figure10_footprint(
    profile: str = "small",
    queries_counts: Sequence[int] = (2, 5, 10, 15, 20),
    selectivity: float = 0.001,
    seed: int = 0,
) -> list[dict]:
    """Figure 10(b): OCTOPUS memory footprint versus number of query results.

    The footprint is the surface index plus the crawl scratch (visited bitmap
    and result storage); the paper shows it correlates directly with the
    number of results retrieved.
    """
    mesh = neuron_largest(profile)
    executor = OctopusExecutor()
    executor.prepare(mesh)
    surface_index_bytes = executor.surface_index.memory_bytes()
    rows = []
    for n_queries in queries_counts:
        workload = random_query_workload(
            mesh, selectivity=selectivity, n_queries=int(n_queries), seed=seed
        )
        total_results = 0
        for box in workload.boxes:
            total_results += executor.query(box).n_results
        traversal_bytes = mesh.n_vertices + total_results * 8  # visited mask + result ids
        rows.append(
            {
                "n_queries": int(n_queries),
                "total_results": total_results,
                "surface_index_mb": surface_index_bytes / 1e6,
                "traversal_structures_mb": traversal_bytes / 1e6,
                "total_footprint_mb": (surface_index_bytes + traversal_bytes) / 1e6,
            }
        )
    return rows
