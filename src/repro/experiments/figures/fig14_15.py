"""Figures 14 and 15: deforming mesh animation datasets (Section VIII).

Figure 14 characterises the three animation sequences; Figure 15 compares the
average per-time-step query response time of OCTOPUS and the linear scan on
each sequence and reports the speedups (which the paper shows are ordered by
the surface-to-volume ratio of the sequences).
"""

from __future__ import annotations

from ...simulation import SequenceReplayDeformation
from ...workloads import random_query_workload
from ..datasets import animation_sequences
from ..harness import fixed_workload_provider, run_comparison, strategy_suite

__all__ = ["figure14_rows", "figure15_animation"]


def figure14_rows(profile: str = "small") -> list[dict]:
    """Figure 14: characterisation of the deforming mesh datasets."""
    rows = []
    for sequence in animation_sequences(profile):
        characterization = sequence.characterize()
        rows.append(
            {
                "dataset": characterization["name"],
                "time_steps": characterization["time_steps"],
                "size_mb": characterization["memory_bytes"] / 1e6,
                "n_vertices": characterization["n_vertices"],
                "surface_to_volume": characterization["surface_to_volume"],
            }
        )
    return rows


def figure15_animation(
    profile: str = "small",
    queries_per_step: int = 8,
    selectivity: float = 0.001,
    max_steps: int | None = 6,
    seed: int = 0,
) -> list[dict]:
    """Figure 15(a, b): per-time-step response time and speedup per sequence.

    ``max_steps`` caps how many frames of each sequence are replayed (the
    sequences have 9-53 frames; replaying a handful is enough to measure the
    per-step averages and keeps the benchmark fast).  Pass ``None`` to replay
    every frame as the paper does.
    """
    rows = []
    for sequence in animation_sequences(profile):
        n_steps = sequence.n_frames if max_steps is None else min(max_steps, sequence.n_frames)
        workload = random_query_workload(
            sequence.mesh, selectivity=selectivity, n_queries=queries_per_step, seed=seed
        )
        report = run_comparison(
            mesh=sequence.mesh.copy(),
            strategies=strategy_suite(("octopus", "linear-scan")),
            deformation=SequenceReplayDeformation(sequence.frames),
            n_steps=n_steps,
            query_provider=fixed_workload_provider(workload.boxes),
        )
        octopus = report["octopus"]
        linear = report["linear-scan"]
        rows.append(
            {
                "dataset": sequence.name,
                "time_steps_replayed": n_steps,
                "surface_to_volume": sequence.mesh.surface_to_volume_ratio(),
                "octopus_time_per_step_s": octopus.total_response_time / n_steps,
                "linear_scan_time_per_step_s": linear.total_response_time / n_steps,
                "speedup_time": octopus.speedup_against(linear),
                "speedup_work": octopus.speedup_against(linear, use_work=True),
            }
        )
    return rows
