"""Figures 4 and 5: dataset and microbenchmark characterisation tables."""

from __future__ import annotations

from ...workloads import NEUROSCIENCE_BENCHMARKS
from ..datasets import neuron_series

__all__ = ["figure4_rows", "figure5_rows"]


def figure4_rows(profile: str = "small") -> list[dict]:
    """Figure 4: characterisation of the neuroscience dataset series.

    One row per level of detail with the columns the paper tabulates: number
    of tetrahedra, number of vertices, mesh degree and surface-to-volume
    ratio (sizes are in MB rather than GB because the meshes are scaled down).
    """
    rows = []
    for mesh in neuron_series(profile):
        characterization = mesh.characterize()
        rows.append(
            {
                "dataset": characterization["name"],
                "size_mb": characterization["memory_bytes"] / 1e6,
                "n_tetrahedra": characterization["n_tetrahedra"],
                "n_vertices": characterization["n_vertices"],
                "mesh_degree": characterization["mesh_degree"],
                "surface_to_volume": characterization["surface_to_volume"],
            }
        )
    return rows


def figure5_rows() -> list[dict]:
    """Figure 5: the four neuroscience microbenchmarks (definitions, not measurements)."""
    return [benchmark.describe() for benchmark in NEUROSCIENCE_BENCHMARKS]
