"""Figure 6: benchmark comparison of OCTOPUS against the baselines.

Figure 6(a) compares the total query response time of OCTOPUS, the linear
scan, the throwaway Octree, the LUR-Tree and QU-Trade on the four
neuroscience microbenchmarks; Figure 6(b) compares their memory overhead.
Both come out of the same simulation run, so :func:`figure6` returns rows that
contain the response-time and the footprint columns together.
"""

from __future__ import annotations

from typing import Sequence

from ...mesh import PolyhedralMesh
from ...simulation import RandomWalkDeformation
from ...workloads import NEUROSCIENCE_BENCHMARKS, Microbenchmark, workload_for_step
from ..datasets import neuron_largest
from ..harness import PAPER_COMPARISON, comparison_rows, run_comparison, strategy_suite

__all__ = ["figure6", "run_microbenchmark"]


def run_microbenchmark(
    mesh: PolyhedralMesh,
    benchmark: Microbenchmark,
    n_steps: int = 4,
    strategies: Sequence[str] = PAPER_COMPARISON,
    deformation_amplitude: float = 0.0005,
    seed: int = 0,
) -> list[dict]:
    """Run one Figure 5 microbenchmark and return one comparison row per strategy."""
    working_mesh = mesh.copy()

    def provider(current_mesh, step):
        return workload_for_step(current_mesh, benchmark, step, seed=seed).boxes

    report = run_comparison(
        mesh=working_mesh,
        strategies=strategy_suite(strategies),
        deformation=RandomWalkDeformation(amplitude=deformation_amplitude, seed=seed),
        n_steps=n_steps,
        query_provider=provider,
    )
    rows = comparison_rows(report, baseline="linear-scan")
    for row in rows:
        row["benchmark"] = benchmark.benchmark_id
    return rows


def figure6(
    profile: str = "small",
    n_steps: int = 4,
    strategies: Sequence[str] = PAPER_COMPARISON,
    benchmarks: Sequence[Microbenchmark] = NEUROSCIENCE_BENCHMARKS,
    seed: int = 0,
) -> list[dict]:
    """Figure 6(a) and 6(b): all four microbenchmarks on the largest neuron mesh."""
    mesh = neuron_largest(profile)
    rows: list[dict] = []
    for benchmark in benchmarks:
        rows.extend(
            run_microbenchmark(
                mesh, benchmark, n_steps=n_steps, strategies=strategies, seed=seed
            )
        )
    return rows
