"""Figure 7: sensitivity analysis of OCTOPUS versus the linear scan.

Four sweeps, each comparing OCTOPUS and the linear scan:

* (a, b) mesh detail with *fixed query volume* — the result count grows with
  detail; the linear scan grows proportionally to the dataset while OCTOPUS
  grows slower, so the speedup rises gently;
* (c, d) mesh detail with *fixed result count* — query volume shrinks as
  detail grows; OCTOPUS decouples from the dataset size and the speedup rises
  sharply;
* (e, f) number of time steps — both scale linearly, the speedup is flat;
* (g, h) query selectivity — crawling dominates as queries grow, the speedup
  falls.
"""

from __future__ import annotations

from typing import Sequence

from ...simulation import RandomWalkDeformation
from ...workloads import random_query_workload
from ..datasets import neuron_series
from ..harness import fixed_workload_provider, run_comparison, strategy_suite

__all__ = [
    "figure7_mesh_detail_fixed_query",
    "figure7_mesh_detail_fixed_results",
    "figure7_time_steps",
    "figure7_selectivity",
]

_PAIR = ("octopus", "linear-scan")


def _compare_pair(mesh, boxes, n_steps: int, seed: int) -> dict:
    """Run OCTOPUS vs linear scan on fixed boxes; return the summary columns."""
    report = run_comparison(
        mesh=mesh.copy(),
        strategies=strategy_suite(_PAIR),
        deformation=RandomWalkDeformation(amplitude=0.0005, seed=seed),
        n_steps=n_steps,
        query_provider=fixed_workload_provider(boxes),
    )
    octopus = report["octopus"]
    linear = report["linear-scan"]
    return {
        "octopus_time_s": octopus.total_response_time,
        "linear_scan_time_s": linear.total_response_time,
        "octopus_work": octopus.total_work(),
        "linear_scan_work": linear.total_work(),
        "speedup_time": octopus.speedup_against(linear),
        "speedup_work": octopus.speedup_against(linear, use_work=True),
        "total_results": octopus.total_results,
    }


def figure7_mesh_detail_fixed_query(
    profile: str = "small",
    n_steps: int = 3,
    queries_per_step: int = 8,
    selectivity: float = 0.001,
    seed: int = 0,
) -> list[dict]:
    """Figure 7(a, b): increasing mesh detail, query volume held fixed.

    The query boxes are sized for the target selectivity on the *coarsest*
    mesh and then reused verbatim on every level of detail, so the physical
    query volume is constant and the number of results grows with detail.
    """
    series = neuron_series(profile)
    reference_workload = random_query_workload(
        series[0], selectivity=selectivity, n_queries=queries_per_step, seed=seed
    )
    rows = []
    for mesh in series:
        summary = _compare_pair(mesh, reference_workload.boxes, n_steps, seed)
        summary.update({"dataset": mesh.name, "n_tetrahedra": mesh.n_cells, "n_vertices": mesh.n_vertices})
        rows.append(summary)
    return rows


def figure7_mesh_detail_fixed_results(
    profile: str = "small",
    n_steps: int = 3,
    queries_per_step: int = 8,
    results_per_query: int = 200,
    seed: int = 0,
) -> list[dict]:
    """Figure 7(c, d): increasing mesh detail, result count held fixed.

    The per-mesh selectivity is ``results_per_query / n_vertices``, so finer
    meshes get smaller queries and the linear scan's advantage disappears.
    """
    rows = []
    for mesh in neuron_series(profile):
        selectivity = min(0.5, max(results_per_query / mesh.n_vertices, 1e-5))
        workload = random_query_workload(
            mesh, selectivity=selectivity, n_queries=queries_per_step, seed=seed
        )
        summary = _compare_pair(mesh, workload.boxes, n_steps, seed)
        summary.update(
            {
                "dataset": mesh.name,
                "n_tetrahedra": mesh.n_cells,
                "n_vertices": mesh.n_vertices,
                "selectivity": selectivity,
            }
        )
        rows.append(summary)
    return rows


def figure7_time_steps(
    profile: str = "small",
    steps_list: Sequence[int] = (2, 4, 6, 8, 10),
    queries_per_step: int = 8,
    selectivity: float = 0.001,
    seed: int = 0,
) -> list[dict]:
    """Figure 7(e, f): increasing the number of simulated time steps."""
    series = neuron_series(profile)
    mesh = series[len(series) // 2]
    workload = random_query_workload(
        mesh, selectivity=selectivity, n_queries=queries_per_step, seed=seed
    )
    rows = []
    for n_steps in steps_list:
        summary = _compare_pair(mesh, workload.boxes, int(n_steps), seed)
        summary["time_steps"] = int(n_steps)
        rows.append(summary)
    return rows


def figure7_selectivity(
    profile: str = "small",
    selectivities: Sequence[float] = (0.001, 0.005, 0.01, 0.02, 0.05),
    n_steps: int = 3,
    queries_per_step: int = 8,
    seed: int = 0,
) -> list[dict]:
    """Figure 7(g, h): increasing query selectivity on a fixed mesh.

    The paper sweeps 0.01%-0.2%; on the scaled-down meshes those selectivities
    return almost no vertices, so the default sweep here covers 0.1%-5% — the
    same relative position with respect to the crossover selectivity of
    Equation 6 (see EXPERIMENTS.md).
    """
    series = neuron_series(profile)
    mesh = series[-1]
    rows = []
    for selectivity in selectivities:
        workload = random_query_workload(
            mesh, selectivity=selectivity, n_queries=queries_per_step, seed=seed
        )
        summary = _compare_pair(mesh, workload.boxes, n_steps, seed)
        summary["selectivity_pct"] = selectivity * 100.0
        rows.append(summary)
    return rows
