"""Per-figure experiment drivers.

Each function regenerates the data series of one table or figure of the
paper's evaluation; the ``benchmarks/`` directory calls them and prints the
resulting rows so they can be compared against the published numbers.
"""

from .fig04_05 import figure4_rows, figure5_rows
from .fig06 import figure6, run_microbenchmark
from .fig07 import (
    figure7_mesh_detail_fixed_query,
    figure7_mesh_detail_fixed_results,
    figure7_selectivity,
    figure7_time_steps,
)
from .fig09 import figure9_convex_comparison, figure9_grid_resolution
from .fig10 import figure10_breakdown, figure10_footprint
from .fig11 import figure11_model_validation
from .fig12 import figure12_surface_approximation
from .fig13 import figure13_hilbert_layout
from .fig14_15 import figure14_rows, figure15_animation

__all__ = [
    "figure10_breakdown",
    "figure10_footprint",
    "figure11_model_validation",
    "figure12_surface_approximation",
    "figure13_hilbert_layout",
    "figure14_rows",
    "figure15_animation",
    "figure4_rows",
    "figure5_rows",
    "figure6",
    "figure7_mesh_detail_fixed_query",
    "figure7_mesh_detail_fixed_results",
    "figure7_selectivity",
    "figure7_time_steps",
    "figure9_convex_comparison",
    "figure9_grid_resolution",
    "run_microbenchmark",
]
