"""Figure 11: validation of the analytical cost model (Section IV-G).

The paper compares measured OCTOPUS query response times with the times
predicted by Equation 3 across five dataset sizes and three selectivities.
Wall-clock seconds in pure Python are noisy, so this driver validates the
model on two levels:

* **work level** (hardware independent): the model's predicted vertex-access
  counts — ``S * V`` for the probe, ``M * sel * V`` for the crawl — against
  the counters OCTOPUS actually reports;
* **time level**: seconds predicted with constants ``cs``/``cr`` calibrated on
  this machine against measured seconds.
"""

from __future__ import annotations

from typing import Sequence

from ...core import OctopusExecutor, calibrate_cost_model
from ...baselines import LinearScanExecutor
from ...workloads import random_query_workload
from ..datasets import neuron_series

__all__ = ["figure11_model_validation"]


def figure11_model_validation(
    profile: str = "small",
    selectivities: Sequence[float] = (0.0001, 0.001, 0.002),
    n_queries: int = 6,
    seed: int = 0,
) -> list[dict]:
    """One row per (dataset, selectivity) with measured vs predicted cost."""
    series = neuron_series(profile)
    model = calibrate_cost_model(series[0])
    rows = []
    for mesh in series:
        surface_ratio = mesh.surface_to_volume_ratio()
        mesh_degree = mesh.mesh_degree()
        octopus = OctopusExecutor()
        octopus.prepare(mesh)
        linear = LinearScanExecutor()
        linear.prepare(mesh)
        for selectivity in selectivities:
            workload = random_query_workload(
                mesh, selectivity=selectivity, n_queries=n_queries, seed=seed
            )
            measured_selectivity = workload.mean_measured_selectivity() or selectivity

            octopus_time = 0.0
            probe_accesses = 0
            crawl_accesses = 0
            linear_time = 0.0
            for box in workload.boxes:
                result = octopus.query(box)
                octopus_time += result.total_time
                probe_accesses += result.counters.surface_probed
                crawl_accesses += result.counters.crawl_vertices_visited
                linear_time += linear.query(box).total_time

            n = len(workload.boxes)
            predicted_probe = surface_ratio * mesh.n_vertices
            predicted_crawl = mesh_degree * measured_selectivity * mesh.n_vertices
            measured_work = (probe_accesses + crawl_accesses) / n
            predicted_work = predicted_probe + predicted_crawl
            rows.append(
                {
                    "dataset": mesh.name,
                    "n_tetrahedra": mesh.n_cells,
                    "selectivity_pct": selectivity * 100.0,
                    "measured_octopus_work": measured_work,
                    "predicted_octopus_work": predicted_work,
                    "work_error_pct": 100.0 * abs(measured_work - predicted_work) / max(predicted_work, 1.0),
                    "measured_octopus_time_s": octopus_time / n,
                    "predicted_octopus_time_s": model.octopus_cost(
                        mesh.n_vertices, surface_ratio, mesh_degree, measured_selectivity
                    ),
                    "measured_linear_scan_time_s": linear_time / n,
                    "predicted_linear_scan_time_s": model.linear_scan_cost(mesh.n_vertices),
                    "predicted_speedup": model.speedup(surface_ratio, mesh_degree, measured_selectivity),
                    "max_selectivity_pct": model.max_selectivity(surface_ratio, mesh_degree) * 100.0,
                }
            )
    return rows
