"""Dataset registry for the evaluation.

The paper's datasets (Figures 4, 8 and 14) are far too large for a pure-Python
reproduction, so every experiment here runs on scaled-down versions generated
by :mod:`repro.generators`.  The registry centralises the scaled sizes so all
benchmarks agree on them, and caches the generated meshes within a process
(generation is deterministic, so results are reproducible across processes
too).

Four size profiles are provided:

* ``tiny``   — for unit tests and smoke runs (seconds);
* ``small``  — the default benchmark profile (a few minutes for the full suite);
* ``medium`` — closer to the paper's relative spreads, for longer runs;
* ``large``  — the raw-speed tier, topping out above one million vertices
  (mesh generation alone takes minutes; meant for the scale benchmarks).
"""

from __future__ import annotations

from functools import lru_cache

from ..errors import ExperimentError
from ..generators import (
    AnimationSequence,
    animation_suite,
    earthquake_mesh,
    neuron_dataset_series,
    neuron_mesh,
)
from ..mesh import TetrahedralMesh

__all__ = [
    "PROFILES",
    "neuron_series",
    "neuron_largest",
    "earthquake_pair",
    "animation_sequences",
]

#: per-profile generator parameters
PROFILES: dict[str, dict] = {
    "tiny": {
        "neuron_resolutions": (10, 12, 14, 16, 18),
        "earthquake_resolutions": (8, 12),
        "animation_scale": 0.4,
    },
    "small": {
        "neuron_resolutions": (14, 18, 24, 32, 42),
        "earthquake_resolutions": (10, 16),
        "animation_scale": 0.8,
    },
    "medium": {
        "neuron_resolutions": (20, 28, 38, 52, 70),
        "earthquake_resolutions": (14, 26),
        "animation_scale": 1.0,
    },
    # The raw-speed tier: the top resolution carves a neuron mesh of
    # ~1.12M vertices (≥ the paper's production scale in vertex count).
    # Generation alone takes minutes — reserve this profile for the
    # scale benchmarks, not the figure sweeps.
    "large": {
        "neuron_resolutions": (42, 70, 96, 128, 180),
        "earthquake_resolutions": (18, 34),
        "animation_scale": 1.0,
    },
}


def _profile(name: str) -> dict:
    try:
        return PROFILES[name]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown dataset profile {name!r}; expected one of {sorted(PROFILES)}"
        ) from exc


@lru_cache(maxsize=None)
def neuron_series(profile: str = "small") -> tuple[TetrahedralMesh, ...]:
    """The five neuron levels of detail (the Figure 4 series), smallest first."""
    resolutions = _profile(profile)["neuron_resolutions"]
    return tuple(neuron_dataset_series(resolutions))


@lru_cache(maxsize=None)
def neuron_largest(profile: str = "small") -> TetrahedralMesh:
    """The most detailed neuron mesh of the profile (the paper's 33 GB dataset)."""
    resolutions = _profile(profile)["neuron_resolutions"]
    return neuron_mesh(resolutions[-1], name="neuron-largest")


@lru_cache(maxsize=None)
def earthquake_pair(profile: str = "small") -> tuple[TetrahedralMesh, TetrahedralMesh]:
    """The convex (SF2, SF1) earthquake meshes of Figure 8 (coarse first)."""
    coarse, fine = _profile(profile)["earthquake_resolutions"]
    return earthquake_mesh(coarse, name="SF2"), earthquake_mesh(fine, name="SF1")


@lru_cache(maxsize=None)
def animation_sequences(profile: str = "small") -> tuple[AnimationSequence, ...]:
    """The three deforming animation sequences of Figure 14."""
    return tuple(animation_suite(scale=_profile(profile)["animation_scale"]))
