"""Experiment harness: datasets, comparison plumbing, per-figure drivers, reporting."""

from . import figures
from .datasets import (
    PROFILES,
    animation_sequences,
    earthquake_pair,
    neuron_largest,
    neuron_series,
)
from .harness import (
    PAPER_COMPARISON,
    comparison_rows,
    fixed_workload_provider,
    maintenance_rows,
    make_deformation,
    make_strategy,
    per_step_workload_provider,
    restructuring_maintenance_rows,
    run_comparison,
    sparse_maintenance_rows,
    sparsity_sweep_rows,
    strategy_suite,
    work_sharing_rows,
)
from .report import (
    format_maintenance,
    format_table,
    format_value,
    format_work_sharing,
    print_table,
)

__all__ = [
    "PAPER_COMPARISON",
    "PROFILES",
    "animation_sequences",
    "comparison_rows",
    "earthquake_pair",
    "figures",
    "fixed_workload_provider",
    "format_maintenance",
    "format_table",
    "format_value",
    "format_work_sharing",
    "maintenance_rows",
    "make_deformation",
    "make_strategy",
    "neuron_largest",
    "neuron_series",
    "per_step_workload_provider",
    "print_table",
    "restructuring_maintenance_rows",
    "run_comparison",
    "sparse_maintenance_rows",
    "sparsity_sweep_rows",
    "strategy_suite",
    "work_sharing_rows",
]
