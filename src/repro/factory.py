"""Strategy construction by name, with uniform wrapper composition.

Every entry point that builds strategies — the CLI, the experiment harness,
the sharded query service, the benchmarks — goes through this module, so a
wrapped stack is always composed the same way instead of hand-nesting
constructors at each call site.  :func:`make_strategy` instantiates a bare
strategy from :data:`STRATEGY_FACTORIES`; :func:`build_strategy` layers the
optional wrappers on top in the canonical order::

    CachingStrategy( ResilientStrategy( <bare strategy, budget installed> ) )

Cache outermost means a cache hit skips the degradation ladder entirely and
budget enforcement only ever meters real index work; see ``docs/caching.md``
for the full composition rationale.
"""

from __future__ import annotations

from typing import Callable

from .baselines import (
    LinearScanExecutor,
    LURTreeExecutor,
    QUTradeExecutor,
    RUMTreeExecutor,
    ThrowawayGridExecutor,
    ThrowawayKDTreeExecutor,
    ThrowawayOctreeExecutor,
)
from .cache import CachingStrategy, QueryResultCache
from .core import OctopusConExecutor, OctopusExecutor, QueryBudget, ResilientStrategy
from .core.executor import ExecutionStrategy
from .errors import ExperimentError

__all__ = ["KERNEL_AWARE_STRATEGIES", "STRATEGY_FACTORIES", "build_strategy", "make_strategy"]

#: report name -> constructor, the paper's comparison set (Section V-A)
STRATEGY_FACTORIES: dict[str, Callable[..., ExecutionStrategy]] = {
    "octopus": OctopusExecutor,
    "octopus-con": OctopusConExecutor,
    "linear-scan": LinearScanExecutor,
    "octree": ThrowawayOctreeExecutor,
    "kd-tree": ThrowawayKDTreeExecutor,
    "grid": ThrowawayGridExecutor,
    "lur-tree": LURTreeExecutor,
    "qu-trade": QUTradeExecutor,
    "rum-tree": RUMTreeExecutor,
}

#: strategies whose constructors take a ``kernels=`` backend; for every other
#: name build_strategy() silently drops the argument so callers can pass one
#: spec uniformly across the whole comparison set
KERNEL_AWARE_STRATEGIES = frozenset({"octopus", "octopus-con"})


def make_strategy(name: str, **kwargs) -> ExecutionStrategy:
    """Instantiate a bare execution strategy by its report name."""
    try:
        factory = STRATEGY_FACTORIES[name]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown strategy {name!r}; expected one of {sorted(STRATEGY_FACTORIES)}"
        ) from exc
    return factory(**kwargs)


def build_strategy(
    name: str,
    *,
    caching: bool | int | dict | QueryResultCache | None = None,
    resilience: bool | str | None = None,
    budget: QueryBudget | None = None,
    kernels=None,
    **kwargs,
) -> ExecutionStrategy:
    """Build a strategy by name with the standard wrapper stack.

    Parameters
    ----------
    name:
        A report name from :data:`STRATEGY_FACTORIES`.
    caching:
        ``True`` wraps in a :class:`~repro.cache.CachingStrategy` with
        defaults; an ``int`` sets the cache's ``max_entries``; a ``dict`` is
        forwarded as :class:`~repro.cache.QueryResultCache` keyword arguments
        (``max_entries``/``quantum``/``membership``); an existing
        :class:`~repro.cache.QueryResultCache` is adopted as-is.
    resilience:
        ``True`` wraps in a :class:`~repro.core.ResilientStrategy`;
        ``"paranoid"`` additionally turns on delta validation.
    budget:
        A :class:`~repro.core.QueryBudget` installed on the bare strategy
        (wrappers forward it through the shared ledger).
    kernels:
        Kernel backend for the batched hot loops — a
        :class:`~repro.kernels.KernelBackend`, a spec string (``"numba"``,
        ``"numpy:float32"``), or ``None`` for the ``REPRO_KERNEL_BACKEND``
        environment default.  Forwarded only to the strategies in
        :data:`KERNEL_AWARE_STRATEGIES`; silently ignored for the baselines
        (which have no batched kernels), so one spec can be passed uniformly
        across the whole comparison set.
    kwargs:
        Forwarded to the bare strategy's constructor (``fanout=16``, ...).
    """
    if kernels is not None and name in KERNEL_AWARE_STRATEGIES:
        kwargs["kernels"] = kernels
    strategy = make_strategy(name, **kwargs)
    if budget is not None:
        strategy.set_query_budget(budget)
    if resilience:
        if resilience not in (True, "paranoid"):
            raise ExperimentError(
                f"resilience must be True or 'paranoid', got {resilience!r}"
            )
        strategy = ResilientStrategy(strategy, paranoid=resilience == "paranoid")
    if caching is not None and caching is not False:
        if isinstance(caching, QueryResultCache):
            strategy = CachingStrategy(strategy, cache=caching)
        elif isinstance(caching, dict):
            strategy = CachingStrategy(strategy, **caching)
        elif caching is True:
            strategy = CachingStrategy(strategy)
        elif isinstance(caching, int):
            strategy = CachingStrategy(strategy, max_entries=caching)
        else:
            raise ExperimentError(
                "caching must be True, an int (max_entries), a kwargs dict or "
                f"a QueryResultCache, got {caching!r}"
            )
    return strategy
