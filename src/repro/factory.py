"""Strategy construction by name, with uniform wrapper composition.

Every entry point that builds strategies — the CLI, the experiment harness,
the sharded query service, the benchmarks — goes through this module, so a
wrapped stack is always composed the same way instead of hand-nesting
constructors at each call site.  :func:`make_strategy` instantiates a bare
strategy from :data:`STRATEGY_FACTORIES`; :func:`build_strategy` layers the
optional wrappers on top in the canonical order::

    StandingStrategy( CachingStrategy( ResilientStrategy( <bare strategy, budget installed> ) ) )

Cache outermost of the ladder means a cache hit skips the degradation ladder
entirely and budget enforcement only ever meters real index work (see
``docs/caching.md``); standing outermost of everything means the registry's
narrowed re-queries flow through the cache and share its invalidation stream
(see ``docs/standing.md``).
"""

from __future__ import annotations

from typing import Callable, Sequence

from .baselines import (
    LinearScanExecutor,
    LURTreeExecutor,
    QUTradeExecutor,
    RUMTreeExecutor,
    ThrowawayGridExecutor,
    ThrowawayKDTreeExecutor,
    ThrowawayOctreeExecutor,
)
from .cache import CachingStrategy, QueryResultCache
from .core import OctopusConExecutor, OctopusExecutor, QueryBudget, ResilientStrategy
from .core.executor import ExecutionStrategy
from .errors import ExperimentError
from .standing import StandingQueryRegistry, StandingStrategy

__all__ = ["KERNEL_AWARE_STRATEGIES", "STRATEGY_FACTORIES", "build_strategy", "make_strategy"]

#: report name -> constructor, the paper's comparison set (Section V-A)
STRATEGY_FACTORIES: dict[str, Callable[..., ExecutionStrategy]] = {
    "octopus": OctopusExecutor,
    "octopus-con": OctopusConExecutor,
    "linear-scan": LinearScanExecutor,
    "octree": ThrowawayOctreeExecutor,
    "kd-tree": ThrowawayKDTreeExecutor,
    "grid": ThrowawayGridExecutor,
    "lur-tree": LURTreeExecutor,
    "qu-trade": QUTradeExecutor,
    "rum-tree": RUMTreeExecutor,
}

#: strategies whose constructors take a ``kernels=`` backend; for every other
#: name build_strategy() silently drops the argument so callers can pass one
#: spec uniformly across the whole comparison set
KERNEL_AWARE_STRATEGIES = frozenset({"octopus", "octopus-con"})


def make_strategy(name: str, **kwargs) -> ExecutionStrategy:
    """Instantiate a bare execution strategy by its report name."""
    try:
        factory = STRATEGY_FACTORIES[name]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown strategy {name!r}; expected one of {sorted(STRATEGY_FACTORIES)}"
        ) from exc
    return factory(**kwargs)


def build_strategy(
    name: str,
    *,
    caching: bool | int | dict | QueryResultCache | None = None,
    resilience: bool | str | None = None,
    budget: QueryBudget | None = None,
    standing: bool | Sequence | StandingQueryRegistry | None = None,
    kernels=None,
    **kwargs,
) -> ExecutionStrategy:
    """Build a strategy by name with the standard wrapper stack.

    Parameters
    ----------
    name:
        A report name from :data:`STRATEGY_FACTORIES`.
    caching:
        ``True`` wraps in a :class:`~repro.cache.CachingStrategy` with
        defaults; an ``int`` sets the cache's ``max_entries``; a ``dict`` is
        forwarded as :class:`~repro.cache.QueryResultCache` keyword arguments
        (``max_entries``/``quantum``/``membership``); an existing
        :class:`~repro.cache.QueryResultCache` is adopted as-is.
    resilience:
        ``True`` wraps in a :class:`~repro.core.ResilientStrategy`;
        ``"paranoid"`` additionally turns on delta validation.
    budget:
        A :class:`~repro.core.QueryBudget` installed on the bare strategy
        (wrappers forward it through the shared ledger).
    standing:
        ``True`` wraps the finished stack in a
        :class:`~repro.standing.StandingStrategy` with an empty registry; a
        sequence of :class:`~repro.mesh.Box3D` subscribes each box up front
        (initial memberships evaluated at ``prepare``); an existing
        :class:`~repro.standing.StandingQueryRegistry` is adopted as-is.
        Standing goes outermost so the registry's narrowed re-queries flow
        through the cache below; paranoid resilience propagates (the wrapper
        then validates deltas before trusting them incrementally).
    kernels:
        Kernel backend for the batched hot loops — a
        :class:`~repro.kernels.KernelBackend`, a spec string (``"numba"``,
        ``"numpy:float32"``), or ``None`` for the ``REPRO_KERNEL_BACKEND``
        environment default.  Forwarded only to the strategies in
        :data:`KERNEL_AWARE_STRATEGIES`; silently ignored for the baselines
        (which have no batched kernels), so one spec can be passed uniformly
        across the whole comparison set.
    kwargs:
        Forwarded to the bare strategy's constructor (``fanout=16``, ...).
    """
    if kernels is not None and name in KERNEL_AWARE_STRATEGIES:
        kwargs["kernels"] = kernels
    strategy = make_strategy(name, **kwargs)
    if budget is not None:
        strategy.set_query_budget(budget)
    if resilience:
        if resilience not in (True, "paranoid"):
            raise ExperimentError(
                f"resilience must be True or 'paranoid', got {resilience!r}"
            )
        strategy = ResilientStrategy(strategy, paranoid=resilience == "paranoid")
    if caching is not None and caching is not False:
        if isinstance(caching, QueryResultCache):
            strategy = CachingStrategy(strategy, cache=caching)
        elif isinstance(caching, dict):
            strategy = CachingStrategy(strategy, **caching)
        elif caching is True:
            strategy = CachingStrategy(strategy)
        elif isinstance(caching, int):
            strategy = CachingStrategy(strategy, max_entries=caching)
        else:
            raise ExperimentError(
                "caching must be True, an int (max_entries), a kwargs dict or "
                f"a QueryResultCache, got {caching!r}"
            )
    if standing is not None and standing is not False:
        paranoid = resilience == "paranoid"
        if isinstance(standing, StandingQueryRegistry):
            strategy = StandingStrategy(strategy, registry=standing, paranoid=paranoid)
        elif standing is True:
            strategy = StandingStrategy(strategy, paranoid=paranoid)
        elif isinstance(standing, Sequence):
            strategy = StandingStrategy(strategy, boxes=standing, paranoid=paranoid)
        else:
            raise ExperimentError(
                "standing must be True, a sequence of Box3D subscriptions or "
                f"a StandingQueryRegistry, got {standing!r}"
            )
    return strategy
