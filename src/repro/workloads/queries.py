"""Range-query workload generation.

The paper's experiments are parameterised by *query selectivity* — the
fraction of mesh vertices a query returns (e.g. "15 uniform random queries of
selectivity 0.1% per time step").  Because the synthetic meshes are not
uniformly dense, a query box of a given volume does not have a fixed
selectivity; :func:`box_for_selectivity` therefore sizes each box by binary
search against a sample of the vertex positions, and
:func:`random_query_workload` builds whole workloads of such boxes centred on
randomly chosen mesh vertices (so queries actually intersect the data, as in
the paper's monitoring scenario).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import WorkloadError
from ..mesh import Box3D, PolyhedralMesh, boxes_to_arrays, points_in_box

__all__ = ["QueryWorkload", "box_for_selectivity", "random_query_workload", "measure_selectivity"]


@dataclass
class QueryWorkload:
    """A set of range queries plus the parameters that produced them."""

    boxes: list[Box3D]
    target_selectivity: float
    seed: int
    description: str = ""
    measured_selectivities: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.boxes)

    def __iter__(self):
        return iter(self.boxes)

    def mean_measured_selectivity(self) -> float:
        """Mean of the selectivities measured at generation time (0 if unknown)."""
        if not self.measured_selectivities:
            return 0.0
        return float(np.mean(self.measured_selectivities))

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The workload's boxes as stacked ``(n, 3)`` lo and hi corner arrays.

        This is the form the batched ``query_many`` probes broadcast against
        the surface / vertex positions in a single pass.
        """
        return boxes_to_arrays(self.boxes)


def measure_selectivity(mesh: PolyhedralMesh, box: Box3D) -> float:
    """Exact selectivity of ``box`` on the mesh's current positions."""
    if mesh.n_vertices == 0:
        raise WorkloadError("cannot measure selectivity on an empty mesh")
    inside = points_in_box(mesh.vertices, box)
    return float(inside.sum() / mesh.n_vertices)


def box_for_selectivity(
    mesh: PolyhedralMesh,
    center: Sequence[float],
    selectivity: float,
    sample_size: int = 20000,
    seed: int = 0,
    max_iterations: int = 40,
    tolerance: float = 0.1,
) -> Box3D:
    """Size a cube centred at ``center`` so it contains ~``selectivity`` of the vertices.

    Parameters
    ----------
    mesh:
        Mesh providing the vertex positions.
    center:
        Cube centre.
    selectivity:
        Target fraction of vertices in (0, 1).
    sample_size:
        Number of vertices sampled for the selectivity estimate during the
        binary search (the full mesh is used when it is smaller than this).
    seed:
        Sampling seed.
    max_iterations:
        Binary-search iterations.
    tolerance:
        Acceptable relative deviation from the target selectivity.
    """
    if not 0.0 < selectivity < 1.0:
        raise WorkloadError("selectivity must lie strictly between 0 and 1")
    positions = mesh.vertices
    n = positions.shape[0]
    if n == 0:
        raise WorkloadError("cannot build queries on an empty mesh")
    if n > sample_size:
        rng = np.random.default_rng(seed)
        sample = positions[rng.choice(n, size=sample_size, replace=False)]
    else:
        sample = positions
    center_arr = np.asarray(center, dtype=np.float64).reshape(3)
    diagonal = float(np.linalg.norm(mesh.bounding_box().extents))

    lo_side = 0.0
    hi_side = diagonal
    side = diagonal * selectivity ** (1.0 / 3.0)
    for _ in range(max_iterations):
        box = Box3D.cube(center_arr, max(side, 1e-12))
        fraction = float(points_in_box(sample, box).sum() / sample.shape[0])
        if fraction > 0 and abs(fraction - selectivity) <= tolerance * selectivity:
            break
        if fraction < selectivity:
            lo_side = side
        else:
            hi_side = side
        side = (lo_side + hi_side) / 2.0
        if hi_side - lo_side < 1e-12:
            break
    return Box3D.cube(center_arr, max(side, 1e-12))


def random_query_workload(
    mesh: PolyhedralMesh,
    selectivity: float,
    n_queries: int,
    seed: int = 0,
    description: str = "",
) -> QueryWorkload:
    """Generate ``n_queries`` cubes of ~``selectivity`` centred on random mesh vertices."""
    if n_queries < 1:
        raise WorkloadError("n_queries must be at least 1")
    rng = np.random.default_rng(seed)
    center_ids = rng.integers(0, mesh.n_vertices, size=n_queries)
    boxes: list[Box3D] = []
    measured: list[float] = []
    for i, vertex_id in enumerate(center_ids):
        box = box_for_selectivity(
            mesh, mesh.vertices[int(vertex_id)], selectivity, seed=seed + i
        )
        boxes.append(box)
        measured.append(measure_selectivity(mesh, box))
    return QueryWorkload(
        boxes=boxes,
        target_selectivity=selectivity,
        seed=seed,
        description=description,
        measured_selectivities=measured,
    )
