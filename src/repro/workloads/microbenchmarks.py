"""The four neuroscience microbenchmarks of Figure 5.

Each microbenchmark fixes a number of queries per time step and a selectivity
range, modelled on the three monitoring use cases of Section III-B:

=====  ==========================  ===============  =====================
id     use case                    queries / step   selectivity range [%]
=====  ==========================  ===============  =====================
A      structural validation       13 - 17           0.11 - 0.16
B      mesh quality                7 - 9             0.02 - 0.14
C      visualization (low qual.)   22                0.18
D      visualization (high qual.)  22                0.12
=====  ==========================  ===============  =====================

Query volumes in the paper are given in µm³ for the Blue Brain meshes; in this
reproduction the selectivity (which is scale free) fully determines the boxes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from ..mesh import PolyhedralMesh
from .queries import QueryWorkload, random_query_workload

__all__ = ["Microbenchmark", "NEUROSCIENCE_BENCHMARKS", "benchmark_by_id", "workload_for_step"]


@dataclass(frozen=True)
class Microbenchmark:
    """Definition of one microbenchmark row of Figure 5."""

    benchmark_id: str
    use_case: str
    queries_per_step_min: int
    queries_per_step_max: int
    selectivity_min: float
    selectivity_max: float

    def __post_init__(self) -> None:
        if self.queries_per_step_min < 1 or self.queries_per_step_max < self.queries_per_step_min:
            raise WorkloadError("invalid queries-per-step range")
        if not 0 < self.selectivity_min <= self.selectivity_max < 1:
            raise WorkloadError("invalid selectivity range")

    def sample_queries_per_step(self, rng: np.random.Generator) -> int:
        """Draw the number of queries for one time step."""
        return int(rng.integers(self.queries_per_step_min, self.queries_per_step_max + 1))

    def sample_selectivity(self, rng: np.random.Generator) -> float:
        """Draw a selectivity for one query."""
        return float(rng.uniform(self.selectivity_min, self.selectivity_max))

    def describe(self) -> dict:
        """Row of the Figure 5 table."""
        return {
            "benchmark": self.benchmark_id,
            "use_case": self.use_case,
            "queries_per_step": f"{self.queries_per_step_min} to {self.queries_per_step_max}"
            if self.queries_per_step_min != self.queries_per_step_max
            else str(self.queries_per_step_min),
            "selectivity_pct": f"{self.selectivity_min * 100:.2f} to {self.selectivity_max * 100:.2f}"
            if self.selectivity_min != self.selectivity_max
            else f"{self.selectivity_min * 100:.2f}",
        }


#: The four microbenchmarks of Figure 5 (selectivities converted from percent).
NEUROSCIENCE_BENCHMARKS: tuple[Microbenchmark, ...] = (
    Microbenchmark("A", "Structural Validation", 13, 17, 0.0011, 0.0016),
    Microbenchmark("B", "Mesh Quality", 7, 9, 0.0002, 0.0014),
    Microbenchmark("C", "Visualization (Low Quality)", 22, 22, 0.0018, 0.0018),
    Microbenchmark("D", "Visualization (High Quality)", 22, 22, 0.0012, 0.0012),
)


def benchmark_by_id(benchmark_id: str) -> Microbenchmark:
    """Look up one of the Figure 5 microbenchmarks by its letter."""
    for benchmark in NEUROSCIENCE_BENCHMARKS:
        if benchmark.benchmark_id == benchmark_id.upper():
            return benchmark
    raise WorkloadError(f"unknown microbenchmark {benchmark_id!r}; expected A, B, C or D")


def workload_for_step(
    mesh: PolyhedralMesh, benchmark: Microbenchmark, step: int, seed: int = 0
) -> QueryWorkload:
    """Generate the queries one microbenchmark issues at one time step.

    The stream is deterministic for a given ``(seed, benchmark, step)``:
    the seed material avoids Python's ``hash()``, whose string hashing is
    randomised per process (``PYTHONHASHSEED``) and would make every
    experiment table differ between runs.
    """
    rng = np.random.default_rng(
        (seed, step, zlib.crc32(benchmark.benchmark_id.encode("utf-8")))
    )
    n_queries = benchmark.sample_queries_per_step(rng)
    selectivity = benchmark.sample_selectivity(rng)
    return random_query_workload(
        mesh,
        selectivity=selectivity,
        n_queries=n_queries,
        seed=int(rng.integers(0, 2**31)),
        description=f"benchmark {benchmark.benchmark_id} step {step}",
    )
