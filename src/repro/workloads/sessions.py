"""Session-shaped query workloads: re-polling and zooming clients.

The paper's steering scenario (Section V-C) is a scientist watching regions
of a live simulation, which produces two workload shapes the uniform-random
generator in :mod:`repro.workloads.queries` cannot express:

* **repeated queries** — monitoring clients re-issue the *same* boxes tick
  after tick, replacing only a fraction of them as attention shifts
  (:func:`repeated_query_provider`);
* **zoomed sessions** — a client drills into a feature, shrinking its query
  box around a fixed focus point every few ticks
  (:func:`zoomed_session_provider`).

Both return a *query provider* — the ``(mesh, step) -> boxes`` callable a
:class:`~repro.simulation.MeshSimulation` consumes — and both re-issue boxes
as the **same objects bit-for-bit**, which is what makes them cacheable by
the delta-invalidated result cache (:mod:`repro.cache`): a re-polled box is
a hash lookup, not a new crawl.  ``benchmarks/bench_cache.py`` sweeps the
re-poll fraction and dirty-region locality to map how hit rate and speedup
respond.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..mesh import Box3D, PolyhedralMesh
from .queries import box_for_selectivity

__all__ = ["repeated_query_provider", "zoomed_session_provider"]


def repeated_query_provider(
    selectivity: float,
    n_queries: int,
    repoll_fraction: float = 0.9,
    seed: int = 0,
):
    """Monitoring clients that mostly re-poll last step's boxes.

    Each step keeps a random ``repoll_fraction`` of the previous step's
    boxes — re-issued as the same :class:`~repro.mesh.Box3D` objects, so
    their corners are bit-identical — and replaces the rest with fresh boxes
    centred on random mesh vertices.  ``repoll_fraction=0`` degenerates to a
    fresh random workload every step; ``1`` re-polls everything forever.

    The provider is stateful (it remembers the previous step's boxes) and is
    bound to whatever mesh it is first called with; build one per simulation.
    """
    if not 0.0 <= repoll_fraction <= 1.0:
        raise WorkloadError("repoll_fraction must lie in [0, 1]")
    if n_queries < 1:
        raise WorkloadError("n_queries must be at least 1")
    rng = np.random.default_rng(seed)
    previous: list[Box3D] = []

    def fresh_box(mesh: PolyhedralMesh) -> Box3D:
        center = mesh.vertices[int(rng.integers(0, mesh.n_vertices))]
        return box_for_selectivity(
            mesh, center, selectivity, seed=int(rng.integers(0, 2**31))
        )

    def provider(mesh: PolyhedralMesh, step: int) -> list[Box3D]:
        if not previous:
            boxes = [fresh_box(mesh) for _ in range(n_queries)]
        else:
            kept = rng.random(n_queries) < repoll_fraction
            boxes = [
                previous[i] if kept[i] else fresh_box(mesh) for i in range(n_queries)
            ]
        previous[:] = boxes
        return list(boxes)

    return provider


def zoomed_session_provider(
    selectivity: float,
    n_clients: int,
    zoom: float = 0.5,
    dwell: int = 3,
    seed: int = 0,
):
    """Clients drilling into fixed focus points, zooming every ``dwell`` steps.

    Each client picks a focus vertex at its first step and thereafter queries
    a cube centred there whose side shrinks by ``zoom`` every ``dwell``
    steps: within a dwell window the box is re-issued unchanged (cacheable);
    the zoom moment changes every client's box at once (a miss burst).

    Like :func:`repeated_query_provider`, the provider is stateful and bound
    to the mesh it first sees.
    """
    if not 0.0 < zoom < 1.0:
        raise WorkloadError("zoom must lie strictly between 0 and 1")
    if dwell < 1:
        raise WorkloadError("dwell must be at least 1")
    if n_clients < 1:
        raise WorkloadError("n_clients must be at least 1")
    rng = np.random.default_rng(seed)
    state: dict = {}

    def provider(mesh: PolyhedralMesh, step: int) -> list[Box3D]:
        if "centers" not in state:
            center_ids = rng.integers(0, mesh.n_vertices, size=n_clients)
            state["centers"] = [mesh.vertices[int(i)].copy() for i in center_ids]
            state["base_sides"] = [
                float(
                    np.max(
                        box_for_selectivity(mesh, center, selectivity, seed=seed + i).extents
                    )
                )
                for i, center in enumerate(state["centers"])
            ]
            state["first_step"] = step
            state["level"] = -1
            state["boxes"] = []
        level = (step - state["first_step"]) // dwell
        if level != state["level"]:
            state["level"] = level
            state["boxes"] = [
                Box3D.cube(center, max(side * zoom**level, 1e-12))
                for center, side in zip(state["centers"], state["base_sides"])
            ]
        return list(state["boxes"])

    return provider
