"""Query workload generation and selectivity estimation."""

from .microbenchmarks import (
    NEUROSCIENCE_BENCHMARKS,
    Microbenchmark,
    benchmark_by_id,
    workload_for_step,
)
from .queries import QueryWorkload, box_for_selectivity, measure_selectivity, random_query_workload
from .selectivity import HistogramSelectivityEstimator
from .sessions import repeated_query_provider, zoomed_session_provider
from .steering import SteeringEvent, SteeringSchedule, subscription_steering

__all__ = [
    "HistogramSelectivityEstimator",
    "Microbenchmark",
    "NEUROSCIENCE_BENCHMARKS",
    "QueryWorkload",
    "SteeringEvent",
    "SteeringSchedule",
    "benchmark_by_id",
    "box_for_selectivity",
    "measure_selectivity",
    "random_query_workload",
    "repeated_query_provider",
    "subscription_steering",
    "workload_for_step",
    "zoomed_session_provider",
]
