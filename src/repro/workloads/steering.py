"""Subscription-steering workloads for standing continuous queries.

The session-shaped providers in :mod:`repro.workloads.sessions` model
clients that *re-issue* queries tick after tick; with standing queries
(:mod:`repro.standing`) the same scientists subscribe once and only *steer*
— occasionally dropping a watched region and picking a new one as their
attention shifts.  :func:`subscription_steering` captures that as a fully
precomputed :class:`SteeringSchedule`: the initial watch boxes plus a
seeded per-step list of re-steer events.

Precomputing matters for benchmarking.  ``benchmarks/bench_standing.py``
replays the *identical* schedule against two independent targets — the
incremental :class:`~repro.standing.StandingQueryRegistry` path and a naive
re-query-every-box-every-tick reference — in separate solo runs, so the
schedule must be a pure value with no hidden RNG state advancing between
replays.  Each replay owns its own ``{slot: subscription_id}`` mapping and
hands it to :meth:`SteeringSchedule.apply`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import WorkloadError
from ..mesh import Box3D, PolyhedralMesh
from .queries import box_for_selectivity

__all__ = ["SteeringEvent", "SteeringSchedule", "subscription_steering"]


@dataclass(frozen=True)
class SteeringEvent:
    """One client re-steering its attention: slot drops its box, takes a new one."""

    #: simulation step the re-steer happens on (before the step's deformation)
    step: int
    #: logical client slot (stable across re-steers; slots index the initial boxes)
    slot: int
    #: the replacement watch box
    box: Box3D


@dataclass(frozen=True)
class SteeringSchedule:
    """A replayable standing-query workload: initial boxes + re-steer events.

    The schedule is a pure value — replaying it twice performs identical
    subscribe/unsubscribe traffic, which is what lets the standing benchmark
    compare incremental and naive evaluation on the same inputs.
    """

    #: one watch box per client slot, subscribed before step 1
    initial_boxes: tuple[Box3D, ...]
    #: re-steer events in (step, slot) order
    events: tuple[SteeringEvent, ...]
    #: number of simulation steps the schedule spans
    n_steps: int
    #: the seed that generated the schedule
    seed: int

    @property
    def n_subscriptions(self) -> int:
        return len(self.initial_boxes)

    def events_at(self, step: int) -> list[SteeringEvent]:
        """The re-steer events scheduled for one step."""
        return [event for event in self.events if event.step == step]

    def start(self, subscribe: Callable[[Box3D], int]) -> dict[int, int]:
        """Subscribe every initial box; returns the ``{slot: sid}`` mapping.

        The mapping is owned by the caller and threaded through
        :meth:`apply` — each replay target keeps its own.
        """
        return {slot: subscribe(box) for slot, box in enumerate(self.initial_boxes)}

    def apply(
        self,
        step: int,
        subscribe: Callable[[Box3D], int],
        unsubscribe: Callable[[int], None],
        live: dict[int, int],
    ) -> int:
        """Perform the step's re-steers against one target; returns the count."""
        events = self.events_at(step)
        for event in events:
            unsubscribe(live[event.slot])
            live[event.slot] = subscribe(event.box)
        return len(events)


def subscription_steering(
    mesh: PolyhedralMesh,
    *,
    n_subscriptions: int = 16,
    n_steps: int = 20,
    selectivity: float = 0.01,
    resteer_per_step: int = 0,
    seed: int = 0,
) -> SteeringSchedule:
    """Generate a seeded steering schedule over a mesh.

    Every box (initial and replacement) is centred on a random mesh vertex
    and sized for approximately ``selectivity`` of the vertices via
    :func:`~repro.workloads.box_for_selectivity`.  Each step re-steers
    ``resteer_per_step`` distinct client slots to fresh boxes; ``0`` gives a
    pure watch workload where the subscription set never changes after
    start-up — the regime where incremental evaluation pays off most.
    """
    if n_subscriptions < 1:
        raise WorkloadError("n_subscriptions must be at least 1")
    if n_steps < 1:
        raise WorkloadError("n_steps must be at least 1")
    if not 0 <= resteer_per_step <= n_subscriptions:
        raise WorkloadError(
            "resteer_per_step must lie in [0, n_subscriptions]"
        )
    rng = np.random.default_rng(seed)

    def fresh_box() -> Box3D:
        center = mesh.vertices[int(rng.integers(0, mesh.n_vertices))]
        return box_for_selectivity(
            mesh, center, selectivity, seed=int(rng.integers(0, 2**31))
        )

    initial = tuple(fresh_box() for _ in range(n_subscriptions))
    events: list[SteeringEvent] = []
    for step in range(1, n_steps + 1):
        if resteer_per_step == 0:
            continue
        slots = rng.choice(n_subscriptions, size=resteer_per_step, replace=False)
        for slot in sorted(int(s) for s in slots):
            events.append(SteeringEvent(step=step, slot=slot, box=fresh_box()))
    return SteeringSchedule(
        initial_boxes=initial,
        events=tuple(events),
        n_steps=n_steps,
        seed=seed,
    )
