"""Histogram-based selectivity estimation.

Section IV-G notes that OCTOPUS's analytical cost model needs an estimate of
the query selectivity and adopts the histogram technique of Acharya, Poosala
and Ramaswamy (SIGMOD 1999).  This module implements the 3D equi-width variant
of that estimator: vertex counts per grid cell, with partial cells weighted by
the fraction of their volume covered by the query box.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..mesh import Box3D

__all__ = ["HistogramSelectivityEstimator"]


class HistogramSelectivityEstimator:
    """Equi-width 3D histogram over vertex positions.

    Parameters
    ----------
    positions:
        ``(n, 3)`` vertex positions to summarise.
    resolution:
        Number of histogram buckets per axis.
    """

    def __init__(self, positions: np.ndarray, resolution: int = 16) -> None:
        pts = np.asarray(positions, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] == 0:
            raise WorkloadError("estimator needs a non-empty (n, 3) position array")
        if resolution < 1:
            raise WorkloadError("resolution must be at least 1")
        self.resolution = resolution
        self.n_points = pts.shape[0]
        self._lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        self._widths = np.where(hi > self._lo, (hi - self._lo) / resolution, 1.0)
        coords = np.floor((pts - self._lo) / self._widths).astype(np.int64)
        coords = np.clip(coords, 0, resolution - 1)
        flat = coords[:, 0] + resolution * (coords[:, 1] + resolution * coords[:, 2])
        counts = np.bincount(flat, minlength=resolution**3)
        self._counts = counts.reshape(resolution, resolution, resolution)

    def estimate_count(self, box: Box3D) -> float:
        """Estimated number of vertices inside ``box``."""
        r = self.resolution
        # Bucket index range overlapped by the box along each axis.
        lo_idx = np.floor((box.lo - self._lo) / self._widths).astype(np.int64)
        hi_idx = np.floor((box.hi - self._lo) / self._widths).astype(np.int64)
        lo_idx = np.clip(lo_idx, 0, r - 1)
        hi_idx = np.clip(hi_idx, 0, r - 1)
        estimate = 0.0
        for ix in range(lo_idx[0], hi_idx[0] + 1):
            # Per-axis overlap fractions assume vertices are uniform in a bucket.
            fx = self._axis_overlap(box, 0, ix)
            for iy in range(lo_idx[1], hi_idx[1] + 1):
                fy = self._axis_overlap(box, 1, iy)
                for iz in range(lo_idx[2], hi_idx[2] + 1):
                    fz = self._axis_overlap(box, 2, iz)
                    count = self._counts[ix, iy, iz]
                    if count:
                        estimate += count * fx * fy * fz
        return float(estimate)

    def _axis_overlap(self, box: Box3D, axis: int, index: int) -> float:
        """Fraction of bucket ``index`` along ``axis`` covered by the box."""
        bucket_lo = self._lo[axis] + index * self._widths[axis]
        bucket_hi = bucket_lo + self._widths[axis]
        overlap = min(box.hi[axis], bucket_hi) - max(box.lo[axis], bucket_lo)
        if overlap <= 0:
            return 0.0
        return float(min(overlap / self._widths[axis], 1.0))

    def estimate_selectivity(self, box: Box3D) -> float:
        """Estimated fraction of vertices inside ``box``."""
        return self.estimate_count(box) / self.n_points

    def memory_bytes(self) -> int:
        """Footprint of the bucket counts."""
        return int(self._counts.nbytes)
