"""Synthetic neuron meshes (non-convex, branching, tetrahedral).

The paper's neuroscience datasets are volumetric tetrahedral meshes of neuron
morphologies from the Blue Brain project (Figure 4) — proprietary data we
cannot redistribute.  The substitution here grows a random branching skeleton
(soma plus recursively bifurcating neurites, in the spirit of a morphological
neuron model), sweeps capsules along every branch segment, and carves a
tetrahedral mesh of the resulting union out of a background grid.

What the substitution preserves, and why it is sufficient for OCTOPUS:

* the mesh is strongly **non-convex** (thin branches, concave gaps between
  them), so a range query can intersect several disjoint sub-meshes — the
  exact case the surface probe exists for;
* the **surface-to-volume ratio decreases** as the carving resolution grows,
  reproducing the Figure 4 trend (0.07 down to 0.03) that drives the Figure 7
  scaling results;
* the **mesh degree** stays ~14 (property of the Kuhn background grid), like
  the paper's tetrahedral meshes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MeshError
from ..mesh import TetrahedralMesh
from .carve import carve_tetrahedral_mesh
from .shapes import Capsule, Shape, Sphere, Union

__all__ = ["NeuronParameters", "neuron_skeleton", "neuron_shape", "neuron_mesh", "neuron_dataset_series"]


@dataclass(frozen=True)
class NeuronParameters:
    """Parameters of the synthetic neuron morphology.

    Attributes
    ----------
    n_trunks:
        Number of primary neurites leaving the soma.
    depth:
        Number of bifurcation levels per neurite.
    segment_length:
        Mean length of a branch segment (model units).
    soma_radius:
        Radius of the soma sphere.
    branch_radius:
        Radius of the thickest branch capsules; children shrink geometrically.
    radius_decay:
        Factor applied to the branch radius at every bifurcation.
    branch_angle:
        Mean half-angle (radians) between the two children of a bifurcation.
    seed:
        Seed of the morphology's random number generator.
    """

    n_trunks: int = 6
    depth: int = 3
    segment_length: float = 0.45
    soma_radius: float = 0.95
    branch_radius: float = 0.55
    radius_decay: float = 0.92
    branch_angle: float = 0.9
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_trunks < 1 or self.depth < 1:
            raise MeshError("neuron needs at least one trunk and one level")
        if min(self.segment_length, self.soma_radius, self.branch_radius) <= 0:
            raise MeshError("neuron lengths and radii must be positive")


def _unit(vector: np.ndarray) -> np.ndarray:
    norm = float(np.linalg.norm(vector))
    return vector / norm if norm > 0 else np.array([0.0, 0.0, 1.0])


def _rotate_towards(direction: np.ndarray, angle: float, rng: np.random.Generator) -> np.ndarray:
    """Rotate ``direction`` by ``angle`` around a random axis perpendicular to it."""
    direction = _unit(direction)
    # Build a random perpendicular axis.
    helper = rng.normal(size=3)
    perp = _unit(np.cross(direction, helper))
    return _unit(np.cos(angle) * direction + np.sin(angle) * perp)


def neuron_skeleton(params: NeuronParameters) -> list[tuple[np.ndarray, np.ndarray, float]]:
    """Generate the branching skeleton as a list of ``(start, end, radius)`` segments."""
    rng = np.random.default_rng(params.seed)
    segments: list[tuple[np.ndarray, np.ndarray, float]] = []
    soma = np.zeros(3)

    def grow(start: np.ndarray, direction: np.ndarray, radius: float, level: int) -> None:
        if level >= params.depth:
            return
        length = params.segment_length * float(rng.uniform(0.8, 1.2))
        end = start + direction * length
        segments.append((start.copy(), end.copy(), radius))
        # Bifurcate: two children at +/- the branch angle (jittered).
        for sign in (1.0, -1.0):
            angle = params.branch_angle * float(rng.uniform(0.7, 1.3))
            child_dir = _rotate_towards(direction, sign * angle, rng)
            grow(end, child_dir, radius * params.radius_decay, level + 1)

    for trunk in range(params.n_trunks):
        # Distribute trunks roughly evenly over the sphere.
        phi = 2.0 * np.pi * trunk / params.n_trunks
        cos_theta = float(rng.uniform(-0.4, 0.9))
        sin_theta = float(np.sqrt(1.0 - cos_theta**2))
        direction = np.array([sin_theta * np.cos(phi), sin_theta * np.sin(phi), cos_theta])
        grow(soma + direction * params.soma_radius * 0.5, direction, params.branch_radius, 0)
    return segments


def neuron_shape(params: NeuronParameters) -> Shape:
    """Implicit shape of the neuron: soma sphere united with branch capsules."""
    members: list[Shape] = [Sphere((0.0, 0.0, 0.0), params.soma_radius)]
    for start, end, radius in neuron_skeleton(params):
        members.append(Capsule(tuple(start), tuple(end), radius))
    return Union(members)


def neuron_mesh(
    resolution: int,
    params: NeuronParameters | None = None,
    name: str | None = None,
) -> TetrahedralMesh:
    """Carve a neuron mesh at the given background-grid ``resolution``.

    Higher resolutions produce more tetrahedra *and* a smaller
    surface-to-volume ratio, mirroring the level-of-detail series of Figure 4.
    """
    parameters = params if params is not None else NeuronParameters()
    mesh_name = name if name is not None else f"neuron-r{resolution}"
    return carve_tetrahedral_mesh(
        neuron_shape(parameters), resolution=resolution, name=mesh_name,
        keep_largest_component=True,
    )


def neuron_dataset_series(
    resolutions: tuple[int, ...] = (14, 18, 24, 32, 42),
    params: NeuronParameters | None = None,
) -> list[TetrahedralMesh]:
    """The five neuron levels of detail used throughout the evaluation.

    The default resolutions are chosen so that vertex counts grow roughly
    geometrically, like the paper's 20.5M - 208.1M vertex series, but scaled
    down by ~4 orders of magnitude so the whole evaluation runs on a laptop.
    The surface-to-volume ratio decreases along the series (as in Figure 4),
    although its absolute values are larger than the paper's because the
    meshes are so much smaller.
    """
    parameters = params if params is not None else NeuronParameters()
    return [
        neuron_mesh(resolution, parameters, name=f"neuron-lod{i}")
        for i, resolution in enumerate(resolutions)
    ]
