"""Implicit shapes used to carve non-convex meshes out of structured grids.

Each shape exposes :meth:`Shape.contains`, a vectorised inside test over an
``(n, 3)`` array of points, and :meth:`Shape.bounds`, a bounding box that the
carving generator uses to size the background grid.  Shapes can be combined
with :class:`Union` to build branching, non-convex geometries such as the
synthetic neuron.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import GeometryError
from ..mesh import Box3D

__all__ = ["Shape", "Sphere", "Ellipsoid", "Capsule", "BoxShape", "Union"]


class Shape(ABC):
    """Base class for implicit 3D shapes."""

    @abstractmethod
    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of which rows of ``points`` are inside the shape."""

    @abstractmethod
    def bounds(self) -> Box3D:
        """A bounding box that fully encloses the shape."""

    def __or__(self, other: "Shape") -> "Union":
        return Union([self, other])


@dataclass(frozen=True)
class Sphere(Shape):
    """A solid sphere."""

    center: tuple[float, float, float]
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise GeometryError("sphere radius must be positive")

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        delta = pts - np.asarray(self.center)
        return np.einsum("ij,ij->i", delta, delta) <= self.radius**2

    def bounds(self) -> Box3D:
        c = np.asarray(self.center, dtype=np.float64)
        return Box3D(c - self.radius, c + self.radius)


@dataclass(frozen=True)
class Ellipsoid(Shape):
    """A solid axis-aligned ellipsoid."""

    center: tuple[float, float, float]
    radii: tuple[float, float, float]

    def __post_init__(self) -> None:
        if min(self.radii) <= 0:
            raise GeometryError("ellipsoid radii must be positive")

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        scaled = (pts - np.asarray(self.center)) / np.asarray(self.radii)
        return np.einsum("ij,ij->i", scaled, scaled) <= 1.0

    def bounds(self) -> Box3D:
        c = np.asarray(self.center, dtype=np.float64)
        r = np.asarray(self.radii, dtype=np.float64)
        return Box3D(c - r, c + r)


@dataclass(frozen=True)
class Capsule(Shape):
    """A solid capsule: all points within ``radius`` of the segment ``start``-``end``.

    Chains of capsules model the tubular branches of the synthetic neuron.
    """

    start: tuple[float, float, float]
    end: tuple[float, float, float]
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise GeometryError("capsule radius must be positive")

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        a = np.asarray(self.start, dtype=np.float64)
        b = np.asarray(self.end, dtype=np.float64)
        axis = b - a
        length_sq = float(axis @ axis)
        if length_sq == 0.0:
            delta = pts - a
            return np.einsum("ij,ij->i", delta, delta) <= self.radius**2
        t = np.clip(((pts - a) @ axis) / length_sq, 0.0, 1.0)
        closest = a + t[:, None] * axis
        delta = pts - closest
        return np.einsum("ij,ij->i", delta, delta) <= self.radius**2

    def bounds(self) -> Box3D:
        a = np.asarray(self.start, dtype=np.float64)
        b = np.asarray(self.end, dtype=np.float64)
        lo = np.minimum(a, b) - self.radius
        hi = np.maximum(a, b) + self.radius
        return Box3D(lo, hi)


@dataclass(frozen=True)
class BoxShape(Shape):
    """A solid axis-aligned box."""

    box: Box3D

    def contains(self, points: np.ndarray) -> np.ndarray:
        return self.box.contains_points(np.asarray(points, dtype=np.float64))

    def bounds(self) -> Box3D:
        return self.box


class Union(Shape):
    """The union of several shapes (inside any member means inside the union)."""

    def __init__(self, members: Sequence[Shape]) -> None:
        if not members:
            raise GeometryError("a union needs at least one member shape")
        self.members = list(members)

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        mask = np.zeros(pts.shape[0], dtype=bool)
        for member in self.members:
            remaining = ~mask
            if not remaining.any():
                break
            mask[remaining] = member.contains(pts[remaining])
        return mask

    def bounds(self) -> Box3D:
        result = self.members[0].bounds()
        for member in self.members[1:]:
            result = result.union(member.bounds())
        return result

    def __or__(self, other: Shape) -> "Union":
        return Union([*self.members, other])
