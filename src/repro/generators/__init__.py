"""Synthetic dataset generators substituting the paper's proprietary meshes."""

from .animation import (
    AnimationSequence,
    animation_suite,
    camel_compress,
    facial_expression,
    horse_gallop,
)
from .carve import carve_tetrahedral_mesh, compact_mesh, largest_component_cells
from .delaunay import delaunay_mesh_from_points, random_delaunay_mesh
from .earthquake import earthquake_dataset_pair, earthquake_mesh
from .grid import lattice_points, structured_hexahedral_mesh, structured_tetrahedral_mesh
from .neuron import (
    NeuronParameters,
    neuron_dataset_series,
    neuron_mesh,
    neuron_shape,
    neuron_skeleton,
)
from .shapes import BoxShape, Capsule, Ellipsoid, Shape, Sphere, Union

__all__ = [
    "AnimationSequence",
    "BoxShape",
    "Capsule",
    "Ellipsoid",
    "NeuronParameters",
    "Shape",
    "Sphere",
    "Union",
    "animation_suite",
    "camel_compress",
    "carve_tetrahedral_mesh",
    "compact_mesh",
    "delaunay_mesh_from_points",
    "earthquake_dataset_pair",
    "earthquake_mesh",
    "facial_expression",
    "horse_gallop",
    "largest_component_cells",
    "lattice_points",
    "neuron_dataset_series",
    "neuron_mesh",
    "neuron_shape",
    "neuron_skeleton",
    "random_delaunay_mesh",
    "structured_hexahedral_mesh",
    "structured_tetrahedral_mesh",
]
