"""Synthetic deforming mesh animation sequences (Section VIII analogue).

The paper evaluates OCTOPUS on three deforming mesh animations from Sumner &
Popović's deformation-transfer dataset: *horse gallop*, *facial expression*
and *camel compress* (Figure 14).  Those meshes cannot be redistributed, so
this module generates three synthetic volumetric sequences with the same
experimental knobs:

* the per-sequence **number of time steps** (48 / 9 / 53);
* the **relative surface-to-volume ordering** (facial expression smallest,
  horse gallop largest), which is what determines the speedup ordering in
  Figure 15;
* qualitatively similar **deformation families** — periodic bending (gallop),
  localised bumps (expression) and axial squashing (compress).

Each sequence is a base tetrahedral mesh plus one absolute position array per
frame; replaying the sequence through the simulation driver reproduces the
"massive in-place updates, then a few queries" access pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import MeshError
from ..mesh import TetrahedralMesh
from .carve import carve_tetrahedral_mesh
from .shapes import Capsule, Ellipsoid, Union

__all__ = ["AnimationSequence", "horse_gallop", "facial_expression", "camel_compress", "animation_suite"]


@dataclass
class AnimationSequence:
    """A deforming mesh: shared connectivity plus one position array per frame."""

    name: str
    mesh: TetrahedralMesh
    frames: list[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        for frame in self.frames:
            if frame.shape != self.mesh.vertices.shape:
                raise MeshError("every frame must have the same shape as the mesh vertices")

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    def apply_frame(self, index: int) -> None:
        """Overwrite the mesh positions in place with frame ``index``."""
        self.mesh.set_positions(self.frames[index])

    def characterize(self) -> dict:
        """Dataset characterisation row in the style of Figure 14."""
        row = self.mesh.characterize()
        row["name"] = self.name
        row["time_steps"] = self.n_frames
        return row


def _body_mesh(resolution: int, name: str) -> TetrahedralMesh:
    """A quadruped-ish body: ellipsoidal torso with four leg capsules and a neck."""
    torso = Ellipsoid((0.0, 0.0, 0.6), (1.2, 0.5, 0.45))
    legs = [
        Capsule((x, y, 0.55), (x, y, 0.0), 0.22)
        for x in (-0.8, 0.8)
        for y in (-0.28, 0.28)
    ]
    neck = Capsule((1.1, 0.0, 0.7), (1.6, 0.0, 1.05), 0.26)
    shape = Union([torso, *legs, neck])
    return carve_tetrahedral_mesh(shape, resolution=resolution, name=name)


def _head_mesh(resolution: int, name: str) -> TetrahedralMesh:
    """A head-like blob: a large ellipsoid with a protruding nose and chin."""
    skull = Ellipsoid((0.0, 0.0, 0.0), (0.8, 0.65, 0.9))
    nose = Capsule((0.0, 0.6, -0.1), (0.0, 0.95, -0.2), 0.16)
    chin = Ellipsoid((0.0, 0.45, -0.75), (0.35, 0.3, 0.3))
    shape = Union([skull, nose, chin])
    return carve_tetrahedral_mesh(shape, resolution=resolution, name=name)


def horse_gallop(resolution: int = 26, n_frames: int = 48) -> AnimationSequence:
    """Periodic galloping: the body bends about the transverse axis and the legs swing."""
    mesh = _body_mesh(resolution, "horse-gallop")
    base = mesh.vertices.copy()
    frames = []
    for step in range(n_frames):
        phase = 2.0 * np.pi * step / max(n_frames, 1)
        positions = base.copy()
        # Spine bending: vertical displacement varying along the body axis.
        positions[:, 2] += 0.12 * np.sin(phase) * np.sin(base[:, 0] * 1.6)
        # Leg swing: fore/aft displacement grows towards the ground.
        ground_weight = np.clip((0.6 - base[:, 2]) / 0.6, 0.0, 1.0)
        positions[:, 0] += 0.15 * np.sin(phase + base[:, 1] * 4.0) * ground_weight
        # Whole-body forward drift, as in a gallop cycle.
        positions[:, 0] += 0.02 * step
        frames.append(positions)
    return AnimationSequence("horse-gallop", mesh, frames)


def facial_expression(resolution: int = 40, n_frames: int = 9) -> AnimationSequence:
    """Localised expression bumps: brow raise, cheek puff and jaw drop blend in over time."""
    mesh = _head_mesh(resolution, "facial-expression")
    base = mesh.vertices.copy()
    centers = np.array([(0.0, 0.55, 0.55), (0.45, 0.45, -0.1), (-0.45, 0.45, -0.1), (0.0, 0.5, -0.7)])
    directions = np.array([(0.0, 0.25, 0.18), (0.2, 0.2, 0.0), (-0.2, 0.2, 0.0), (0.0, 0.1, -0.3)])
    widths = np.array([0.35, 0.3, 0.3, 0.4])
    frames = []
    for step in range(n_frames):
        blend = (step + 1) / max(n_frames, 1)
        positions = base.copy()
        for center, direction, width in zip(centers, directions, widths):
            distance_sq = np.einsum("ij,ij->i", base - center, base - center)
            weight = np.exp(-distance_sq / (2.0 * width**2))
            positions += blend * weight[:, None] * direction
        frames.append(positions)
    return AnimationSequence("facial-expression", mesh, frames)


def camel_compress(resolution: int = 32, n_frames: int = 53) -> AnimationSequence:
    """Progressive axial compression: the body squashes along z and bulges sideways."""
    mesh = _body_mesh(resolution, "camel-compress")
    base = mesh.vertices.copy()
    z_min = float(base[:, 2].min())
    frames = []
    for step in range(n_frames):
        progress = step / max(n_frames - 1, 1)
        squash = 1.0 - 0.45 * progress
        bulge = 1.0 + 0.30 * progress
        positions = base.copy()
        positions[:, 2] = z_min + (base[:, 2] - z_min) * squash
        positions[:, 0] *= bulge
        positions[:, 1] *= bulge
        # A slight wobble so successive frames are not a pure affine ramp.
        positions[:, 1] += 0.02 * np.sin(6.0 * progress * np.pi + base[:, 0] * 2.0)
        frames.append(positions)
    return AnimationSequence("camel-compress", mesh, frames)


def animation_suite(scale: float = 1.0) -> list[AnimationSequence]:
    """The three deforming sequences of Figure 14, at a configurable resolution scale.

    ``scale`` multiplies each sequence's carving resolution (rounded); the
    default sizes keep the whole suite small enough for CI while preserving
    the relative surface-to-volume ordering of the paper
    (facial expression < camel compress < horse gallop).
    """
    if scale <= 0:
        raise MeshError("scale must be positive")
    return [
        horse_gallop(resolution=max(8, int(round(26 * scale)))),
        facial_expression(resolution=max(8, int(round(40 * scale)))),
        camel_compress(resolution=max(8, int(round(32 * scale)))),
    ]
