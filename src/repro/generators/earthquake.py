"""Synthetic convex earthquake-basin meshes (the SF1/SF2 analogue).

The paper's convex-mesh experiments (Section V-D) use two resolutions of the
Archimedes greater-Los-Angeles-basin mesh.  Those meshes are not available, so
the substitution is a convex, box-shaped "ground volume" tetrahedralised with
the Kuhn subdivision, with vertical grading (finer layers near the surface)
applied through a smooth, monotonic, convexity-preserving coordinate map.

The two properties the experiments rely on are preserved:

* the meshes are **convex** and remain convex under the affine deformations
  used in the earthquake simulation, which is the precondition for
  OCTOPUS-CON;
* **SF1 is finer than SF2** and therefore has a smaller surface-to-volume
  ratio, reproducing the ordering in Figure 8 that explains the speedup gap.
"""

from __future__ import annotations

import numpy as np

from ..errors import MeshError
from ..mesh import Box3D, TetrahedralMesh
from .grid import structured_tetrahedral_mesh

__all__ = ["earthquake_mesh", "earthquake_dataset_pair"]


def earthquake_mesh(
    resolution: int,
    extent_km: tuple[float, float, float] = (4.0, 4.0, 1.5),
    grading: float = 0.35,
    name: str | None = None,
) -> TetrahedralMesh:
    """Build a convex basin mesh.

    Parameters
    ----------
    resolution:
        Number of grid cubes along the longest horizontal axis.
    extent_km:
        Physical extent of the basin (x, y east-west/north-south, z depth).
    grading:
        Strength of the vertical grading in [0, 1): 0 keeps layers uniform,
        larger values compress layers towards the free surface (z = 0) the way
        seismic meshes resolve soft near-surface soils more finely.  The map
        is strictly monotonic so the mesh stays convex (it remains the image
        of a box under a per-axis monotone map composed with identity in x/y,
        which maps the convex box onto the same convex box).
    name:
        Dataset name.
    """
    if resolution < 4:
        raise MeshError("earthquake meshes need a resolution of at least 4")
    if not 0.0 <= grading < 1.0:
        raise MeshError("grading must lie in [0, 1)")
    ex, ey, ez = extent_km
    nx = resolution
    ny = max(4, int(round(resolution * ey / ex)))
    nz = max(3, int(round(resolution * ez / ex)))
    bounds = Box3D((0.0, 0.0, -ez), (ex, ey, 0.0))
    mesh_name = name if name is not None else f"basin-r{resolution}"
    mesh = structured_tetrahedral_mesh((nx, ny, nz), bounds, name=mesh_name)
    if grading > 0.0:
        # Monotone map on depth only: t in [0, 1] (0 = bottom, 1 = surface)
        # becomes t ** (1 - grading-ish), concentrating vertices near z = 0.
        z = mesh.vertices[:, 2]
        t = (z + ez) / ez
        exponent = 1.0 / (1.0 + 2.0 * grading)
        graded = np.power(np.clip(t, 0.0, 1.0), exponent)
        mesh.vertices[:, 2] = graded * ez - ez
        mesh.geometry_version += 1
    return mesh


def earthquake_dataset_pair(
    coarse_resolution: int = 14, fine_resolution: int = 26
) -> tuple[TetrahedralMesh, TetrahedralMesh]:
    """The (SF2, SF1) pair: SF2 is the coarse mesh, SF1 the fine one (as in Fig. 8)."""
    if fine_resolution <= coarse_resolution:
        raise MeshError("the fine resolution must exceed the coarse resolution")
    sf2 = earthquake_mesh(coarse_resolution, name="SF2")
    sf1 = earthquake_mesh(fine_resolution, name="SF1")
    return sf2, sf1
