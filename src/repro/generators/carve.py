"""Carving non-convex tetrahedral meshes out of a structured background grid.

The proprietary neuron and animation meshes of the paper are replaced by
synthetic meshes carved from a uniform Kuhn-tetrahedralised grid: a cell of
the background grid is kept when its centroid lies inside an implicit
:class:`~repro.generators.shapes.Shape`.  Carving preserves the properties
OCTOPUS cares about — conforming connectivity, a well defined surface, a
controllable surface-to-volume ratio (finer grids have relatively fewer
surface vertices) — while being fully reproducible from a seed and a handful
of parameters.
"""

from __future__ import annotations

import numpy as np

from ..errors import MeshError
from ..mesh import Box3D, TetrahedralMesh
from .grid import structured_tetrahedral_mesh
from .shapes import Shape

__all__ = ["carve_tetrahedral_mesh", "compact_mesh", "largest_component_cells"]


def compact_mesh(
    vertices: np.ndarray, cells: np.ndarray, name: str = "mesh"
) -> TetrahedralMesh:
    """Drop vertices not referenced by any cell and renumber the cell array."""
    cell_arr = np.asarray(cells, dtype=np.int64)
    if cell_arr.size == 0:
        raise MeshError("cannot compact a mesh with no cells")
    used = np.unique(cell_arr)
    remap = -np.ones(np.asarray(vertices).shape[0], dtype=np.int64)
    remap[used] = np.arange(used.size)
    return TetrahedralMesh(np.asarray(vertices)[used], remap[cell_arr], name=name)


def largest_component_cells(mesh: TetrahedralMesh) -> np.ndarray:
    """Ids of the cells whose vertices belong to the largest connected component.

    Carving against a thin shape can occasionally disconnect a few cells from
    the main body; keeping only the dominant component gives generators a
    single well-formed object (generators that *want* disjoint pieces simply
    skip this step).
    """
    components = mesh.connected_components()
    largest = max(components, key=len)
    member = np.zeros(mesh.n_vertices, dtype=bool)
    member[largest] = True
    keep = member[mesh.cells].all(axis=1)
    return np.nonzero(keep)[0]


def carve_tetrahedral_mesh(
    shape: Shape,
    resolution: int,
    name: str = "carved",
    margin: float = 0.02,
    keep_largest_component: bool = True,
) -> TetrahedralMesh:
    """Carve a tetrahedral mesh of ``shape`` from a background grid.

    Parameters
    ----------
    shape:
        Implicit shape to mesh.
    resolution:
        Number of background grid cubes along the longest axis of the shape's
        bounding box (the other axes are scaled to keep cubes roughly cubic).
    name:
        Dataset name for the resulting mesh.
    margin:
        Fractional padding added around the shape's bounding box so that the
        carved surface does not coincide with the grid boundary.
    keep_largest_component:
        When True (default), discard cells disconnected from the largest
        connected component.
    """
    if resolution < 2:
        raise MeshError("carving needs a resolution of at least 2 cubes")
    bounds = shape.bounds()
    extents = bounds.extents
    padded = Box3D(bounds.lo - margin * extents, bounds.hi + margin * extents)
    longest = float(padded.extents.max())
    if longest <= 0:
        raise MeshError("shape bounding box is degenerate")
    cube = longest / resolution
    grid_shape = tuple(
        max(2, int(np.ceil(extent / cube))) for extent in padded.extents
    )
    background = structured_tetrahedral_mesh(grid_shape, padded, name=f"{name}-background")
    centroids = background.cell_centroids()
    inside = shape.contains(centroids)
    if not inside.any():
        raise MeshError("shape does not intersect the background grid; increase resolution")
    carved = compact_mesh(background.vertices, background.cells[inside], name=name)
    if keep_largest_component:
        keep = largest_component_cells(carved)
        if keep.size < carved.n_cells:
            carved = compact_mesh(carved.vertices, carved.cells[keep], name=name)
    return carved
