"""Structured grid meshes (the building block of every synthetic dataset).

A uniform ``nx x ny x nz`` lattice of cubes is either kept as hexahedra or
split into six tetrahedra per cube with the Kuhn (Freudenthal) subdivision.
The Kuhn subdivision is *conforming*: adjacent cubes agree on the diagonal of
their shared face, so the resulting tetrahedral mesh is watertight and every
interior vertex has the ~14 neighbours the paper reports for tetrahedral
meshes (Section VIII-B, M ~= 14).
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from ..errors import GeometryError
from ..mesh import Box3D, HexahedralMesh, TetrahedralMesh

__all__ = ["structured_tetrahedral_mesh", "structured_hexahedral_mesh", "lattice_points"]

# The six Kuhn simplices of the unit cube: each permutation of the axes yields
# a path from corner (0,0,0) to corner (1,1,1); the four path nodes form a tet.
_KUHN_PATHS: list[np.ndarray] = []
for _perm in permutations(range(3)):
    _steps = np.zeros((4, 3), dtype=np.int64)
    for _i, _axis in enumerate(_perm):
        _steps[_i + 1] = _steps[_i]
        _steps[_i + 1, _axis] += 1
    _KUHN_PATHS.append(_steps)


def lattice_points(shape: tuple[int, int, int], bounds: Box3D) -> np.ndarray:
    """Vertex positions of an ``(nx+1) x (ny+1) x (nz+1)`` lattice inside ``bounds``.

    Vertices are ordered x-fastest (C order over ``(iz, iy, ix)`` reversed),
    i.e. the vertex at integer coordinates ``(ix, iy, iz)`` has id
    ``ix + (nx+1) * (iy + (ny+1) * iz)``.
    """
    nx, ny, nz = shape
    if min(nx, ny, nz) < 1:
        raise GeometryError("grid shape must be at least 1 cube per axis")
    xs = np.linspace(bounds.lo[0], bounds.hi[0], nx + 1)
    ys = np.linspace(bounds.lo[1], bounds.hi[1], ny + 1)
    zs = np.linspace(bounds.lo[2], bounds.hi[2], nz + 1)
    grid_z, grid_y, grid_x = np.meshgrid(zs, ys, xs, indexing="ij")
    return np.stack([grid_x.ravel(), grid_y.ravel(), grid_z.ravel()], axis=1)


def _vertex_ids(shape: tuple[int, int, int]) -> np.ndarray:
    """Integer vertex ids arranged on the lattice, shape ``(nz+1, ny+1, nx+1)``."""
    nx, ny, nz = shape
    return np.arange((nx + 1) * (ny + 1) * (nz + 1), dtype=np.int64).reshape(
        nz + 1, ny + 1, nx + 1
    )


def _cube_corner_ids(shape: tuple[int, int, int]) -> np.ndarray:
    """For every cube in the lattice, the ids of its 8 corners.

    Corner order follows the finite-element hexahedron convention used by
    :class:`~repro.mesh.hexahedral.HexahedralMesh`: 0-3 bottom quad
    (counter-clockwise), 4-7 top quad.
    """
    nx, ny, nz = shape
    ids = _vertex_ids(shape)
    c000 = ids[:-1, :-1, :-1]
    c100 = ids[:-1, :-1, 1:]
    c110 = ids[:-1, 1:, 1:]
    c010 = ids[:-1, 1:, :-1]
    c001 = ids[1:, :-1, :-1]
    c101 = ids[1:, :-1, 1:]
    c111 = ids[1:, 1:, 1:]
    c011 = ids[1:, 1:, :-1]
    corners = np.stack(
        [c000, c100, c110, c010, c001, c101, c111, c011], axis=-1
    )
    return corners.reshape(-1, 8)


def structured_hexahedral_mesh(
    shape: tuple[int, int, int],
    bounds: Box3D | None = None,
    name: str = "hex-grid",
) -> HexahedralMesh:
    """Uniform hexahedral mesh with ``shape`` cubes inside ``bounds``."""
    box = bounds if bounds is not None else Box3D((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    vertices = lattice_points(shape, box)
    cells = _cube_corner_ids(shape)
    return HexahedralMesh(vertices, cells, name=name)


def structured_tetrahedral_mesh(
    shape: tuple[int, int, int],
    bounds: Box3D | None = None,
    name: str = "tet-grid",
) -> TetrahedralMesh:
    """Uniform tetrahedral mesh: each cube of the lattice split into 6 Kuhn tets."""
    box = bounds if bounds is not None else Box3D((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    nx, ny, nz = shape
    vertices = lattice_points(shape, box)
    ids = _vertex_ids(shape)
    # Integer coordinates of the base corner of every cube.
    base_z, base_y, base_x = np.meshgrid(
        np.arange(nz), np.arange(ny), np.arange(nx), indexing="ij"
    )
    base = np.stack([base_x.ravel(), base_y.ravel(), base_z.ravel()], axis=1)  # (cubes, 3)
    tets = []
    for path in _KUHN_PATHS:
        corner_coords = base[:, None, :] + path[None, :, :]        # (cubes, 4, 3)
        tet_ids = ids[
            corner_coords[..., 2], corner_coords[..., 1], corner_coords[..., 0]
        ]
        tets.append(tet_ids)
    cells = np.concatenate(tets, axis=0)
    # Half of the Kuhn simplices come from odd axis permutations and are
    # negatively oriented; flip them so every cell has positive signed volume.
    corner_points = vertices[cells]
    a = corner_points[:, 1] - corner_points[:, 0]
    b = corner_points[:, 2] - corner_points[:, 0]
    c = corner_points[:, 3] - corner_points[:, 0]
    signed = np.einsum("ij,ij->i", a, np.cross(b, c))
    flip = signed < 0
    cells[flip, 2], cells[flip, 3] = cells[flip, 3].copy(), cells[flip, 2].copy()
    return TetrahedralMesh(vertices, cells, name=name)
