"""Delaunay-based tetrahedral meshes of random point clouds.

These meshes complement the structured generators: they are convex (the
Delaunay tetrahedralisation fills the convex hull of the points), irregular
(vertex degrees vary), and cheap to produce at any size, which makes them
useful for property-based tests and for exercising OCTOPUS on meshes whose
degree distribution differs from the Kuhn grid.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay, QhullError

from ..errors import MeshError
from ..mesh import Box3D, TetrahedralMesh

__all__ = ["delaunay_mesh_from_points", "random_delaunay_mesh"]


def delaunay_mesh_from_points(points: np.ndarray, name: str = "delaunay") -> TetrahedralMesh:
    """Tetrahedralise an ``(n, 3)`` point cloud with scipy's Delaunay triangulation.

    Degenerate (near zero volume) tetrahedra produced by co-planar points are
    dropped so that the resulting mesh is usable for crawling.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] < 5:
        raise MeshError("need at least 5 points in an (n, 3) array")
    try:
        triangulation = Delaunay(pts)
    except QhullError as exc:
        raise MeshError(f"Delaunay triangulation failed: {exc}") from exc
    cells = np.asarray(triangulation.simplices, dtype=np.int64)
    mesh = TetrahedralMesh(pts, cells, name=name)
    volumes = mesh.cell_volumes()
    threshold = volumes.max() * 1e-9 if volumes.size else 0.0
    keep = volumes > threshold
    if not keep.all():
        mesh = TetrahedralMesh(pts, cells[keep], name=name)
    return mesh


def random_delaunay_mesh(
    n_points: int,
    bounds: Box3D | None = None,
    seed: int = 0,
    name: str = "delaunay-random",
) -> TetrahedralMesh:
    """Delaunay mesh of uniformly random points inside ``bounds`` (unit cube by default)."""
    if n_points < 5:
        raise MeshError("need at least 5 points for a tetrahedral mesh")
    box = bounds if bounds is not None else Box3D((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    rng = np.random.default_rng(seed)
    points = rng.uniform(box.lo, box.hi, size=(n_points, 3))
    return delaunay_mesh_from_points(points, name=name)
