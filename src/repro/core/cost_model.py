"""The analytical cost model of Section IV-G (Equations 1–6).

The model predicts OCTOPUS's query response time from four quantities:

* ``V``   — total number of vertices;
* ``S``   — surface-to-volume ratio (surface vertices / total vertices);
* ``M``   — mesh degree (average edges per vertex);
* ``sel`` — query selectivity (fraction of vertices in the result);

and two machine constants:

* ``cs`` — cost of sequentially accessing one vertex and comparing it to the
  query (the linear scan / surface probe unit cost);
* ``cr`` — cost of accessing one vertex through the adjacency list during the
  crawl (random access, roughly 4x ``cs`` on the paper's hardware).

Equation numbers in the docstrings refer to the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import ExperimentError
from ..mesh import PolyhedralMesh, points_in_box
from .crawler import crawl

__all__ = ["CostModel", "calibrate_cost_model"]


@dataclass(frozen=True)
class CostModel:
    """Analytical model of OCTOPUS and linear-scan query cost.

    Parameters
    ----------
    cs:
        Sequential per-vertex access cost in seconds (paper: 6.6e-9 s).
    cr:
        Crawl per-vertex access cost in seconds (paper: 2.7e-8 s).
    """

    cs: float = 6.6e-9
    cr: float = 2.7e-8

    def __post_init__(self) -> None:
        if self.cs <= 0 or self.cr <= 0:
            raise ExperimentError("cost constants must be positive")

    # ------------------------------------------------------------------
    # component costs
    # ------------------------------------------------------------------
    def surface_probe_cost(self, n_vertices: int, surface_ratio: float) -> float:
        """Equation 1: ``Cs * (S * V)``."""
        return self.cs * surface_ratio * n_vertices

    def crawling_cost(self, n_vertices: int, mesh_degree: float, selectivity: float) -> float:
        """Equation 2: ``Cr * M * (sel * V)``."""
        return self.cr * mesh_degree * selectivity * n_vertices

    def octopus_cost(
        self, n_vertices: int, surface_ratio: float, mesh_degree: float, selectivity: float
    ) -> float:
        """Equation 3: surface probe plus crawling."""
        return self.surface_probe_cost(n_vertices, surface_ratio) + self.crawling_cost(
            n_vertices, mesh_degree, selectivity
        )

    def linear_scan_cost(self, n_vertices: int) -> float:
        """Equation 4: ``Cs * V``."""
        return self.cs * n_vertices

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def speedup(self, surface_ratio: float, mesh_degree: float, selectivity: float) -> float:
        """Equation 5: predicted speedup of OCTOPUS over the linear scan."""
        denominator = surface_ratio + mesh_degree * selectivity / (self.cs / self.cr)
        if denominator <= 0:
            raise ExperimentError("speedup undefined for non-positive denominator")
        return 1.0 / denominator

    def max_selectivity(self, surface_ratio: float, mesh_degree: float) -> float:
        """Equation 6: the selectivity above which the linear scan wins."""
        if mesh_degree <= 0:
            raise ExperimentError("mesh degree must be positive")
        return (1.0 - surface_ratio) * (self.cs / self.cr) / mesh_degree

    def should_use_octopus(
        self, surface_ratio: float, mesh_degree: float, selectivity: float
    ) -> bool:
        """Decision rule derived from Equation 6 (Section VIII-B)."""
        return selectivity < self.max_selectivity(surface_ratio, mesh_degree)

    # ------------------------------------------------------------------
    # convenience over meshes
    # ------------------------------------------------------------------
    def predict_for_mesh(self, mesh: PolyhedralMesh, selectivity: float) -> dict:
        """Predicted per-query costs and speedup for a concrete mesh."""
        surface_ratio = mesh.surface_to_volume_ratio()
        mesh_degree = mesh.mesh_degree()
        return {
            "octopus_seconds": self.octopus_cost(
                mesh.n_vertices, surface_ratio, mesh_degree, selectivity
            ),
            "linear_scan_seconds": self.linear_scan_cost(mesh.n_vertices),
            "speedup": self.speedup(surface_ratio, mesh_degree, selectivity),
            "max_selectivity": self.max_selectivity(surface_ratio, mesh_degree),
        }


def calibrate_cost_model(mesh: PolyhedralMesh, n_repeats: int = 3) -> CostModel:
    """Measure the ``cs`` and ``cr`` constants empirically on the current machine.

    ``cs`` is obtained by timing full linear scans of the mesh's vertices and
    dividing by the vertex count; ``cr`` by timing a whole-mesh crawl (a range
    query covering the full bounding box) and dividing by the number of vertex
    accesses it performed.  This mirrors the paper's calibration procedure
    ("averaging a long run of a linear scan and graph traversal").
    """
    if n_repeats < 1:
        raise ExperimentError("n_repeats must be at least 1")
    box = mesh.bounding_box().expanded(1e-9)

    scan_seconds = []
    for _ in range(n_repeats):
        start = time.perf_counter()
        points_in_box(mesh.vertices, box)
        scan_seconds.append(time.perf_counter() - start)
    cs = float(np.median(scan_seconds) / max(mesh.n_vertices, 1))

    crawl_seconds = []
    accesses = 1
    surface_ids = mesh.surface_vertices()
    start_vertex = surface_ids[:1] if surface_ids.size else np.asarray([0])
    for _ in range(n_repeats):
        start = time.perf_counter()
        outcome = crawl(mesh, box, start_vertex)
        crawl_seconds.append(time.perf_counter() - start)
        accesses = max(outcome.n_vertices_visited + outcome.n_edges_followed, 1)
    cr = float(np.median(crawl_seconds) / accesses)

    # Guard against degenerate measurements on very small meshes.
    cs = max(cs, 1e-12)
    cr = max(cr, cs)
    return CostModel(cs=cs, cr=cr)
