"""A uniform 3D grid over vertex positions.

Two consumers share this structure:

* **OCTOPUS-CON** (Section IV-F) builds the grid once before the simulation
  and by default never updates it — a deliberately *stale* index whose only
  job is to suggest a starting vertex near the query centre for the directed
  walk;
* the **grid baseline** rebuilds it every time step and answers range queries
  from it directly (candidate cells plus a filter step).

The grid stores, for each cell, the ids of the vertices whose position fell in
that cell at build time, in CSR form (cell offsets + a flat id array).  The
member order is canonical — ascending vertex id within each cell — which makes
every maintenance path below reproduce bit-identical arrays:

* :meth:`UniformGrid.build` — full build: recompute the bounds, bin every
  vertex (what the throwaway grid baseline does every step);
* :meth:`UniformGrid.rebin` — full re-bin of every vertex into the *frozen*
  cell geometry of the original build (the full-recompute reference for
  maintained grids);
* :meth:`UniformGrid.relocate` — delta-keyed incremental maintenance: only
  the moved vertices are re-binned, and only those whose cell actually
  changed are spliced out of / into the CSR arrays.  Produces exactly the
  arrays :meth:`rebin` would, at a cost proportional to the motion.
* :meth:`UniformGrid.append_points` — topology-delta-keyed incremental
  maintenance: vertices a restructuring appended to the mesh tail are binned
  into the frozen geometry and spliced into their cells' segment ends (new
  ids exceed every existing id, so the canonical within-cell order puts them
  exactly there).  Produces exactly the arrays :meth:`rebin` of the grown
  position array would, at a cost proportional to the additions.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..errors import SpatialIndexError
from ..mesh import Box3D, csr_gather, points_in_box
from .result import QueryCounters

__all__ = ["UniformGrid"]

#: cap on the candidate entries one batched gather materialises (ids plus an
#: (n, 3) float64 position copy, ~32 bytes per entry); query_many chunks the
#: box axis to stay under it
_CANDIDATE_GATHER_BUDGET = 2_000_000


class UniformGrid:
    """Uniform grid binning of an ``(n, 3)`` point set.

    Parameters
    ----------
    resolution:
        Number of cells per axis; the total cell count is ``resolution ** 3``
        (the paper reports grid sizes as this total, e.g. 8, 216, 1000 cells).
    """

    def __init__(self, resolution: int = 10) -> None:
        if resolution < 1:
            raise SpatialIndexError("grid resolution must be at least 1")
        self.resolution = int(resolution)
        self._built = False
        self._lo: np.ndarray | None = None
        self._cell_size: np.ndarray | None = None
        self._cell_offsets: np.ndarray | None = None
        self._cell_members: np.ndarray | None = None
        #: maintenance-only companions of the CSR arrays, both materialised
        #: lazily on the first relocation so consumers that only ever
        #: build/rebuild (the throwaway grid baseline, the stale OCTOPUS-CON
        #: grid) keep their pre-maintenance compute cost and footprint:
        #: ``_member_key`` is the strictly increasing (cell, id) key per
        #: member entry (lets relocation locate departures and arrival slots
        #: with binary searches, no re-sort), ``_vertex_cell`` the current
        #: cell of each vertex id (the relocation's "where was it").
        self._member_key: np.ndarray | None = None
        self._vertex_cell: np.ndarray | None = None
        self.build_time = 0.0
        self.n_points = 0

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def build(self, positions: np.ndarray) -> float:
        """(Re)build the grid from the given positions; returns build seconds."""
        start = time.perf_counter()
        pts = np.asarray(positions, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] == 0:
            raise SpatialIndexError("grid build needs a non-empty (n, 3) position array")
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)
        self._lo = lo
        self._cell_size = span / self.resolution
        self._bin_all(pts)
        self._built = True
        self.build_time = time.perf_counter() - start
        return self.build_time

    def _bin_all(self, pts: np.ndarray) -> None:
        """Assign every point to its cell under the current cell geometry.

        The member order is canonical — ascending vertex id within each cell
        (the stable argsort of an id-ordered key array guarantees it) — so
        full and incremental maintenance produce identical arrays.
        """
        cell_ids = self._cell_of(pts)
        order = np.argsort(cell_ids, kind="stable")
        counts = np.bincount(cell_ids, minlength=self.resolution**3).astype(np.int64)
        self._cell_offsets = np.concatenate([[0], np.cumsum(counts)])
        self._cell_members = order.astype(np.int64)
        self._member_key = None
        self._vertex_cell = None
        self.n_points = pts.shape[0]

    def _ensure_vertex_cell(self) -> np.ndarray:
        """Per-vertex current cell, derived from the CSR arrays on first use
        and maintained incrementally by :meth:`relocate` after."""
        if self._vertex_cell is None:
            counts = np.diff(self._cell_offsets)
            vertex_cell = np.empty(self.n_points, dtype=np.int64)
            vertex_cell[self._cell_members] = np.repeat(
                np.arange(counts.size, dtype=np.int64), counts
            )
            self._vertex_cell = vertex_cell
        return self._vertex_cell

    def _ensure_member_key(self) -> np.ndarray:
        """The strictly increasing (cell, id) key per member entry, built on
        first use and maintained incrementally by :meth:`relocate` after."""
        if self._member_key is None:
            self._member_key = (
                self._ensure_vertex_cell()[self._cell_members] * np.int64(self.n_points)
                + self._cell_members
            )
        return self._member_key

    def rebin(self, positions: np.ndarray) -> int:
        """Full membership recompute into the *frozen* cell geometry.

        This is the maintained grid's full-recompute reference: every vertex
        is re-binned, but the bounds fixed by :meth:`build` are kept, so
        :meth:`relocate` (which cannot re-derive bounds) produces bit-identical
        arrays.  Returns the number of entries touched (all of them).
        """
        self._require_built()
        pts = np.asarray(positions, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] == 0:
            raise SpatialIndexError("grid rebin needs a non-empty (n, 3) position array")
        self._bin_all(pts)
        return self.n_points

    def relocate(self, moved_ids: np.ndarray, new_positions: np.ndarray) -> int:
        """Move only the given vertices between cells; returns entries relocated.

        ``new_positions`` are the ``(k, 3)`` current positions of
        ``moved_ids`` (sorted ascending).  Vertices whose cell did not change
        cost one binning each and nothing else; vertices that changed cells
        are located in the strictly-increasing ``(cell, id)`` key array with
        binary searches and spliced out of / back into the CSR arrays with
        two memmove passes each, preserving the canonical within-cell id
        order — the resulting arrays are bit-identical to a full
        :meth:`rebin` of the same positions.
        """
        self._require_built()
        ids = np.asarray(moved_ids, dtype=np.int64)
        if ids.size == 0:
            return 0
        if ids.min() < 0 or ids.max() >= self.n_points:
            raise SpatialIndexError("relocate: moved ids out of range of the built grid")
        new_cells = self._cell_of(np.asarray(new_positions, dtype=np.float64))
        vertex_cell = self._ensure_vertex_cell()
        changed = new_cells != vertex_cell[ids]
        if not changed.any():
            return 0
        ids = ids[changed]
        to_cells = new_cells[changed]
        from_cells = vertex_cell[ids]
        member_key = self._ensure_member_key()  # before vertex_cell mutates
        vertex_cell[ids] = to_cells

        # Locate the departing entries: their (cell, id) keys all exist in
        # the strictly increasing member-key array, so k binary searches find
        # the exact positions to delete — no whole-array membership scan.
        stride = np.int64(self.n_points)
        departing_keys = np.sort(from_cells * stride + ids)
        departing_pos = np.searchsorted(member_key, departing_keys)
        kept_members = np.delete(self._cell_members, departing_pos)
        kept_keys = np.delete(member_key, departing_pos)

        # Splice the arrivals back in at their canonical (cell, id) slots.
        order = np.lexsort((ids, to_cells))
        arriving_ids = ids[order]
        arriving_keys = to_cells[order] * stride + arriving_ids
        slots = np.searchsorted(kept_keys, arriving_keys)
        self._cell_members = np.insert(kept_members, slots, arriving_ids)
        self._member_key = np.insert(kept_keys, slots, arriving_keys)

        n_cells = self.resolution**3
        counts = np.diff(self._cell_offsets)
        counts += np.bincount(to_cells, minlength=n_cells)
        counts -= np.bincount(from_cells, minlength=n_cells)
        self._cell_offsets = np.concatenate([[0], np.cumsum(counts)])
        return int(ids.size)

    def append_points(self, new_positions: np.ndarray) -> int:
        """Splice newly appended vertices into the CSR arrays; returns how many.

        ``new_positions`` are the ``(k, 3)`` current positions of the
        vertices that a restructuring appended to the mesh tail — their ids
        are by contract the range ``[n_points, n_points + k)``.  Each new
        vertex is binned into the *frozen* cell geometry and inserted at the
        end of its cell's member segment: new ids exceed every existing id,
        so the canonical ascending-id order within each cell puts them
        exactly there, and the resulting arrays are bit-identical to a full
        :meth:`rebin` of the grown position array — at a cost proportional to
        the additions, not the mesh.
        """
        self._require_built()
        pts = np.atleast_2d(np.asarray(new_positions, dtype=np.float64))
        if pts.size == 0:
            return 0
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise SpatialIndexError("append_points needs a (k, 3) position array")
        cells = self._cell_of(pts)
        new_ids = np.arange(self.n_points, self.n_points + pts.shape[0], dtype=np.int64)
        # Canonical (cell, id) arrival order; slots point at each target
        # cell's segment end in the *current* arrays (np.insert resolves
        # duplicate slots by inserting in the given order, i.e. id order).
        order = np.lexsort((new_ids, cells))
        slots = self._cell_offsets[cells[order] + 1]
        self._cell_members = np.insert(self._cell_members, slots, new_ids[order])

        n_cells = self.resolution**3
        counts = np.diff(self._cell_offsets)
        counts += np.bincount(cells, minlength=n_cells)
        self._cell_offsets = np.concatenate([[0], np.cumsum(counts)])
        if self._vertex_cell is not None:
            # The per-id cell map extends in id order (the tail contract).
            self._vertex_cell = np.concatenate([self._vertex_cell, cells])
        # The (cell, id) member keys are strided by n_points, which just
        # changed; drop them and let the next relocation rebuild lazily.
        self._member_key = None
        self.n_points += int(pts.shape[0])
        return int(pts.shape[0])

    def _require_built(self) -> None:
        if not self._built:
            raise SpatialIndexError("grid has not been built yet")

    def _cell_coords(self, points: np.ndarray) -> np.ndarray:
        """Integer (ix, iy, iz) cell coordinates of each point, clamped to the grid."""
        coords = np.floor((points - self._lo) / self._cell_size).astype(np.int64)
        return np.clip(coords, 0, self.resolution - 1)

    def _cell_of(self, points: np.ndarray) -> np.ndarray:
        """Flat cell index of each point."""
        coords = self._cell_coords(np.atleast_2d(points))
        r = self.resolution
        return coords[:, 0] + r * (coords[:, 1] + r * coords[:, 2])

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def cell_vertices(self, flat_cell: int) -> np.ndarray:
        """Vertex ids stored in one grid cell."""
        self._require_built()
        return self._cell_members[self._cell_offsets[flat_cell]:self._cell_offsets[flat_cell + 1]]

    def n_cells(self) -> int:
        """Total number of grid cells (``resolution ** 3``)."""
        return self.resolution**3

    def any_vertex_near(
        self, point: np.ndarray, counters: QueryCounters | None = None
    ) -> int | None:
        """A vertex id from the cell containing ``point``, or from the nearest
        non-empty cell ring when that cell is empty (Section IV-F).

        Returns ``None`` only when the grid is empty.
        """
        self._require_built()
        target = self._cell_coords(np.atleast_2d(np.asarray(point, dtype=np.float64)))[0]
        r = self.resolution
        max_ring = r  # expanding rings eventually cover the whole grid
        for ring in range(max_ring + 1):
            lo = np.maximum(target - ring, 0)
            hi = np.minimum(target + ring, r - 1)
            xs = np.arange(lo[0], hi[0] + 1)
            ys = np.arange(lo[1], hi[1] + 1)
            zs = np.arange(lo[2], hi[2] + 1)
            gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
            coords = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
            if ring > 0:
                # Only the shell of the ring is new.
                on_shell = np.any(np.abs(coords - target) == ring, axis=1)
                coords = coords[on_shell]
            flat = coords[:, 0] + r * (coords[:, 1] + r * coords[:, 2])
            if counters is not None:
                counters.index_nodes_visited += int(flat.size)
            counts = self._cell_offsets[flat + 1] - self._cell_offsets[flat]
            non_empty = flat[counts > 0]
            if non_empty.size:
                return int(self._cell_members[self._cell_offsets[non_empty[0]]])
        return None

    def locate_batch(self, points: np.ndarray) -> np.ndarray:
        """For each point, a vertex id from its containing cell, or -1 if empty.

        Vectorised fast path of :meth:`any_vertex_near` (the ring-0 case) used
        by the batched query API; callers fall back to the ring search for the
        points whose cell came back empty.  Matches ``any_vertex_near``'s
        choice — the first id stored in the cell — exactly.
        """
        self._require_built()
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        flat = self._cell_of(pts)
        starts = self._cell_offsets[flat]
        counts = self._cell_offsets[flat + 1] - starts
        if self._cell_members.size == 0:
            return np.full(pts.shape[0], -1, dtype=np.int64)
        first = self._cell_members[np.minimum(starts, self._cell_members.size - 1)]
        return np.where(counts > 0, first, -1)

    def _cells_of_box(self, box: Box3D) -> np.ndarray:
        """Flat indices of every grid cell overlapping ``box``."""
        lo_cell = self._cell_coords(np.atleast_2d(box.lo))[0]
        hi_cell = self._cell_coords(np.atleast_2d(box.hi))[0]
        r = self.resolution
        xs = np.arange(lo_cell[0], hi_cell[0] + 1)
        ys = np.arange(lo_cell[1], hi_cell[1] + 1)
        zs = np.arange(lo_cell[2], hi_cell[2] + 1)
        gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
        return (gx + r * (gy + r * gz)).ravel()

    def query_candidates(self, box: Box3D, counters: QueryCounters | None = None) -> np.ndarray:
        """Vertex ids stored in every cell overlapping ``box`` (unfiltered)."""
        self._require_built()
        flat = self._cells_of_box(box)
        if counters is not None:
            counters.index_nodes_visited += int(flat.size)
        pieces = [
            self._cell_members[self._cell_offsets[c]:self._cell_offsets[c + 1]] for c in flat
        ]
        return np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)

    def query(
        self, box: Box3D, positions: np.ndarray, counters: QueryCounters | None = None
    ) -> np.ndarray:
        """Exact range query: candidate gathering plus a position filter."""
        candidates = self.query_candidates(box, counters)
        if candidates.size == 0:
            return candidates
        if counters is not None:
            counters.vertices_scanned += int(candidates.size)
        inside = points_in_box(np.asarray(positions)[candidates], box)
        return np.sort(candidates[inside])

    def query_many(
        self,
        boxes: Sequence[Box3D],
        positions: np.ndarray,
        counters_list: Sequence[QueryCounters | None] | None = None,
    ) -> list[np.ndarray]:
        """Batch of exact range queries sharing the candidate gathers.

        The overlapping cells of every box are enumerated first; boxes are
        then processed in groups whose summed candidate count stays under a
        fixed budget, each group's member slices gathered with a single CSR
        flat-gather and its candidate positions read in one fancy-index
        before the per-box filter runs on views of that shared buffer.
        Results and per-query counters match sequential :meth:`query`
        exactly.
        """
        box_list = list(boxes)
        if not box_list:
            return []
        self._require_built()
        pts = np.asarray(positions)

        cell_chunks: list[np.ndarray] = []
        per_box_counts = np.empty(len(box_list), dtype=np.int64)
        for box_index, box in enumerate(box_list):
            flat = self._cells_of_box(box)
            cell_chunks.append(flat)
            per_box_counts[box_index] = int(
                (self._cell_offsets[flat + 1] - self._cell_offsets[flat]).sum()
            )

        results: list[np.ndarray] = []
        group_start = 0
        while group_start < len(box_list):
            # Greedy box grouping: keep each shared gather under the budget
            # (a single box may exceed it; it then forms its own group).
            group_end = group_start + 1
            group_total = int(per_box_counts[group_start])
            while (
                group_end < len(box_list)
                and group_total + per_box_counts[group_end] <= _CANDIDATE_GATHER_BUDGET
            ):
                group_total += int(per_box_counts[group_end])
                group_end += 1

            group_cells = np.concatenate(cell_chunks[group_start:group_end])
            candidates, _ = csr_gather(self._cell_offsets, self._cell_members, group_cells)
            candidate_positions = pts[candidates]
            bounds = np.concatenate([[0], np.cumsum(per_box_counts[group_start:group_end])])

            for offset, box_index in enumerate(range(group_start, group_end)):
                lo_index, hi_index = int(bounds[offset]), int(bounds[offset + 1])
                box = box_list[box_index]
                box_candidates = candidates[lo_index:hi_index]
                counters = None if counters_list is None else counters_list[box_index]
                if counters is not None:
                    counters.index_nodes_visited += int(cell_chunks[box_index].size)
                if box_candidates.size == 0:
                    results.append(box_candidates)
                    continue
                if counters is not None:
                    counters.vertices_scanned += int(box_candidates.size)
                inside = points_in_box(candidate_positions[lo_index:hi_index], box)
                results.append(np.sort(box_candidates[inside]))
            group_start = group_end
        return results

    def memory_bytes(self) -> int:
        """Approximate footprint of the offsets, member and maintenance arrays."""
        if not self._built:
            return 0
        return int(
            self._cell_offsets.nbytes
            + self._cell_members.nbytes
            + (self._member_key.nbytes if self._member_key is not None else 0)
            + (self._vertex_cell.nbytes if self._vertex_cell is not None else 0)
        )
