"""The resilience layer: query budgets, invariant audits, degradation ladder.

The paper's setting is interactive simulation steering — queries arrive while
the mesh deforms and restructures underneath them — so a long-running service
must survive three failure classes that the offline parity suites can only
catch at test time:

* **pathological queries** that crawl an unbounded region of the mesh with no
  deadline (:class:`QueryBudget` bounds visited vertices, distance
  computations and wall-clock, checked inside the crawl/walk round loops);
* **corrupt change deltas** — a buggy producer emitting unsorted ids, lying
  dirty AABBs or NaN positions — applied on faith by every strategy's
  incremental maintenance (the :func:`validate_delta` /
  :func:`validate_topology_delta` audits quarantine them);
* **broken incremental state**, where the only safe answer is to fall back
  down a ladder of progressively blunter but better-understood tools:
  fused batch → sequential queries, incremental maintenance → full-delta
  maintenance → rebuild, budget-blown crawl → a plain linear scan of the
  live positions (:class:`ResilientStrategy`).

Every fallback is recorded as a :class:`FallbackEvent` so degraded execution
is *visible* in the maintenance ledger and
:class:`~repro.simulation.simulator.StrategyReport` — the contract is "recover
exactly or fail loudly", never a silent divergence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import (
    DegradedExecutionError,
    DeltaValidationError,
    GeometryError,
    MeshConnectivityError,
    QueryBudgetExceeded,
    QueryError,
)
from ..mesh import Box3D, PolyhedralMesh, points_in_box
from .delta import DeformationDelta, TopologyDelta
from .executor import ExecutionStrategy, StrategyWrapper
from .result import QueryCounters, QueryResult

__all__ = [
    "BudgetTracker",
    "FallbackEvent",
    "QueryBudget",
    "ResilientStrategy",
    "audit_adjacency",
    "audit_surface_index",
    "check_query_box",
    "check_query_boxes",
    "screen_positions",
    "validate_delta",
    "validate_topology_delta",
]


# ----------------------------------------------------------------------
# query validation (consistent degenerate-box handling for every strategy)
# ----------------------------------------------------------------------
def check_query_box(box: Box3D) -> None:
    """Reject a malformed query box with a :class:`QueryError`.

    :class:`~repro.mesh.Box3D` validates at construction, but its corner
    arrays are plain NumPy arrays that callers can mutate in place afterwards
    — an inverted ``lo > hi`` or non-finite box reaching a strategy would
    otherwise fail in backend-specific ways (empty here, garbage there, an
    unbounded crawl elsewhere).  Every strategy calls this at the top of
    ``query``/``query_many`` so degenerate queries fail identically
    everywhere.  Zero-volume boxes (``lo == hi`` on some axis) are *valid*:
    the box is closed, a plane/line/point query is well-defined.
    """
    if not isinstance(box, Box3D):
        raise QueryError(f"query must be a Box3D, got {type(box).__name__}")
    lo = np.asarray(box.lo, dtype=np.float64)
    hi = np.asarray(box.hi, dtype=np.float64)
    if lo.shape != (3,) or hi.shape != (3,):
        raise QueryError("query box corners must be length-3 vectors")
    if not (np.all(np.isfinite(lo)) and np.all(np.isfinite(hi))):
        raise QueryError("query box corners must be finite")
    if np.any(lo > hi):
        raise QueryError(
            f"query box minimum corner {lo.tolist()} exceeds maximum corner {hi.tolist()}"
        )


def check_query_boxes(boxes: Sequence[Box3D]) -> list[Box3D]:
    """Validate a whole batch (see :func:`check_query_box`); returns the list."""
    box_list = list(boxes)
    for index, box in enumerate(box_list):
        try:
            check_query_box(box)
        except QueryError as exc:
            if hasattr(exc, "add_note"):  # pragma: no branch - py3.11+
                exc.add_note(f"query_many: box {index} of {len(box_list)} is malformed")
            raise
    return box_list


# ----------------------------------------------------------------------
# query budgets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryBudget:
    """Resource limits for a single range query.

    Attributes
    ----------
    max_visited_vertices:
        Cap on vertices the crawl stamps/position-tests (``None`` = unbounded).
    max_distance_computations:
        Cap on the directed walk's point-to-box distance evaluations.
    max_wall_clock_s:
        Deadline in seconds, measured from :meth:`start`.  Unlike the two
        count budgets, a wall-clock budget is inherently machine-dependent:
        the fused and sequential paths may truncate at different points, so
        batch/sequential parity is only guaranteed for count budgets.
    on_exhausted:
        ``"raise"`` aborts the query with a structured
        :class:`~repro.errors.QueryBudgetExceeded`; ``"partial"`` stops the
        traversal and returns whatever was found so far as a
        :class:`~repro.core.result.QueryResult` flagged ``complete=False``.

    The surface probe is deliberately unbudgeted — it is bounded by the
    surface size, which prepare() fixed — and the budget meters the unbounded
    phases (walk + crawl) with **one** shared tracker per query, so a query
    cannot dodge its limit by splitting work across phases.
    """

    max_visited_vertices: int | None = None
    max_distance_computations: int | None = None
    max_wall_clock_s: float | None = None
    on_exhausted: str = "raise"

    POLICIES = ("raise", "partial")

    def __post_init__(self) -> None:
        if self.on_exhausted not in self.POLICIES:
            raise QueryError(
                f"on_exhausted must be one of {self.POLICIES}, got {self.on_exhausted!r}"
            )
        for label, limit in (
            ("max_visited_vertices", self.max_visited_vertices),
            ("max_distance_computations", self.max_distance_computations),
            ("max_wall_clock_s", self.max_wall_clock_s),
        ):
            if limit is not None and limit <= 0:
                raise QueryError(f"{label} must be positive when set")

    def start(
        self,
        strategy: str | None = None,
        step: int | None = None,
        query_index: int | None = None,
    ) -> "BudgetTracker":
        """A fresh per-query tracker.

        The wall-clock deadline is scoped to the query's *own* execution: the
        clock starts at the tracker's first :meth:`BudgetTracker.spend`, not
        here.  Executors build one tracker per query — sometimes a whole
        batch of them up-front — and a concurrent service may queue a query
        behind others before its work begins; neither construction order nor
        queue wait may be charged against the query's deadline.
        """
        return BudgetTracker(self, strategy=strategy, step=step, query_index=query_index)


class BudgetTracker:
    """Mutable per-query spend against one :class:`QueryBudget`.

    The crawl and walk round loops call :meth:`spend` once per round with
    that round's work; it returns ``False`` (and latches ``exhausted``) when
    a limit is crossed under the ``"partial"`` policy, or raises
    :class:`~repro.errors.QueryBudgetExceeded` under ``"raise"``.  The round
    that crosses the limit is always fully counted — budgets bound the *next*
    round, they never split one (that is what keeps the fused and sequential
    engines truncating at the identical point).
    """

    __slots__ = (
        "budget",
        "strategy",
        "step",
        "query_index",
        "visited",
        "distances",
        "started_at",
        "exhausted",
        "exhausted_resource",
    )

    def __init__(
        self,
        budget: QueryBudget,
        strategy: str | None = None,
        step: int | None = None,
        query_index: int | None = None,
    ) -> None:
        self.budget = budget
        self.strategy = strategy
        self.step = step
        self.query_index = query_index
        self.visited = 0
        self.distances = 0
        # Lazy deadline: the clock starts at the first spend(), so trackers
        # built up-front for a whole batch (or queries queued behind others
        # in a concurrent service) are not charged time they never used.
        self.started_at: float | None = None
        self.exhausted = False
        self.exhausted_resource: str | None = None

    def _exhaust(self, resource: str, spent: float, limit: float) -> bool:
        self.exhausted = True
        if self.exhausted_resource is None:
            self.exhausted_resource = resource
        if self.budget.on_exhausted == "raise":
            raise QueryBudgetExceeded(
                resource,
                spent,
                limit,
                strategy=self.strategy,
                step=self.step,
                query_index=self.query_index,
            )
        return False

    def spend(self, vertices: int = 0, distances: int = 0) -> bool:
        """Charge one round's work; True while the budget still has room."""
        if self.exhausted:
            return False
        if self.started_at is None:
            self.started_at = time.perf_counter()
        self.visited += vertices
        self.distances += distances
        budget = self.budget
        if (
            budget.max_visited_vertices is not None
            and self.visited > budget.max_visited_vertices
        ):
            return self._exhaust(
                "visited_vertices", self.visited, budget.max_visited_vertices
            )
        if (
            budget.max_distance_computations is not None
            and self.distances > budget.max_distance_computations
        ):
            return self._exhaust(
                "distance_computations", self.distances, budget.max_distance_computations
            )
        if budget.max_wall_clock_s is not None:
            elapsed = time.perf_counter() - self.started_at
            if elapsed > budget.max_wall_clock_s:
                return self._exhaust("wall_clock", elapsed, budget.max_wall_clock_s)
        return True


# ----------------------------------------------------------------------
# invariant audits (cheap, O(dirty) where a delta is involved)
# ----------------------------------------------------------------------
def screen_positions(
    positions: np.ndarray,
    what: str = "positions",
    strategy: str | None = None,
    step: int | None = None,
) -> None:
    """NaN/inf screen: reject non-finite coordinates."""
    pts = np.asarray(positions, dtype=np.float64)
    if pts.size and not np.all(np.isfinite(pts)):
        bad = int(np.count_nonzero(~np.isfinite(pts).all(axis=-1)))
        raise DeltaValidationError(
            "nan-positions",
            f"{what}: {bad} rows contain NaN/inf coordinates",
            strategy=strategy,
            step=step,
        )


def _check_sorted_unique_ids(
    ids: np.ndarray,
    n_vertices: int,
    what: str,
    strategy: str | None,
    step: int | None,
) -> None:
    if ids.ndim != 1 or not np.issubdtype(ids.dtype, np.integer):
        raise DeltaValidationError(
            "malformed-ids", f"{what}: ids must be a 1-D integer array",
            strategy=strategy, step=step,
        )
    if ids.size == 0:
        return
    if ids[0] < 0 or ids[-1] >= n_vertices:
        raise DeltaValidationError(
            "ids-out-of-range",
            f"{what}: ids span [{int(ids[0]) if ids.size else 0}, {int(ids[-1])}] "
            f"outside [0, {n_vertices})",
            strategy=strategy, step=step,
        )
    if ids.size > 1 and not np.all(ids[1:] > ids[:-1]):
        reason = "duplicate-ids" if np.any(ids[1:] == ids[:-1]) else "unsorted-ids"
        raise DeltaValidationError(
            reason, f"{what}: ids must be strictly increasing",
            strategy=strategy, step=step,
        )


def validate_delta(
    delta: DeformationDelta,
    mesh: PolyhedralMesh | None = None,
    strategy: str | None = None,
    step: int | None = None,
) -> None:
    """Audit a deformation delta against its own invariants and the mesh.

    O(n_moved): checks the id-array contract (sorted, unique, in range), the
    position-array shapes and finiteness, and that the dirty AABB really
    covers every old and new position.  Raises
    :class:`~repro.errors.DeltaValidationError` with a machine-friendly
    ``reason`` tag; passing silently means every incremental consumer can
    apply the delta safely.
    """
    if not isinstance(delta, DeformationDelta):
        raise DeltaValidationError(
            "wrong-type", f"expected a DeformationDelta, got {type(delta).__name__}",
            strategy=strategy, step=step,
        )
    if delta.n_vertices < 0:
        raise DeltaValidationError(
            "negative-count", "delta reports a negative vertex count",
            strategy=strategy, step=step,
        )
    if mesh is not None and delta.n_vertices != mesh.n_vertices:
        raise DeltaValidationError(
            "vertex-count-mismatch",
            f"delta says {delta.n_vertices} vertices, mesh has {mesh.n_vertices}",
            strategy=strategy, step=step,
        )
    if delta.is_full:
        return
    ids = delta.moved_ids
    _check_sorted_unique_ids(ids, delta.n_vertices, "deformation delta", strategy, step)
    for label, pts in (("old_positions", delta.old_positions), ("new_positions", delta.new_positions)):
        if pts is None:
            continue
        arr = np.asarray(pts)
        if arr.shape != (ids.size, 3):
            raise DeltaValidationError(
                "shape-mismatch",
                f"deformation delta {label} has shape {arr.shape}, "
                f"expected ({ids.size}, 3)",
                strategy=strategy, step=step,
            )
        screen_positions(arr, f"deformation delta {label}", strategy, step)
    if delta.dirty_box is not None:
        for label, pts in (
            ("old_positions", delta.old_positions),
            ("new_positions", delta.new_positions),
        ):
            if pts is None or np.asarray(pts).size == 0:
                continue
            if not bool(np.all(points_in_box(np.asarray(pts, dtype=np.float64), delta.dirty_box))):
                raise DeltaValidationError(
                    "dirty-box-mismatch",
                    f"deformation delta dirty AABB does not cover its {label}",
                    strategy=strategy, step=step,
                )


def validate_topology_delta(
    delta: TopologyDelta,
    mesh: PolyhedralMesh | None = None,
    strategy: str | None = None,
    step: int | None = None,
) -> None:
    """Audit a topology delta (O(n_dirty) plus the cheap scalar checks).

    Checks the dirty-id contract, the appended-tail contract (new vertices
    occupy ``[n_vertices - n_vertices_added, n_vertices)`` *inside* the dirty
    set), non-negative cell counts, agreement with the mesh's vertex count,
    and that the dirty AABB covers the dirty vertices' current positions.
    """
    if not isinstance(delta, TopologyDelta):
        raise DeltaValidationError(
            "wrong-type", f"expected a TopologyDelta, got {type(delta).__name__}",
            strategy=strategy, step=step,
        )
    if mesh is not None and delta.n_vertices != mesh.n_vertices:
        raise DeltaValidationError(
            "vertex-count-mismatch",
            f"topology delta says {delta.n_vertices} vertices, mesh has {mesh.n_vertices}",
            strategy=strategy, step=step,
        )
    if (
        delta.n_vertices_added < 0
        or delta.n_cells_added < 0
        or delta.n_cells_removed < 0
        or delta.n_vertices_added > delta.n_vertices
    ):
        raise DeltaValidationError(
            "negative-count", "topology delta change counts out of range",
            strategy=strategy, step=step,
        )
    if delta.is_full:
        return
    ids = delta.dirty_ids
    _check_sorted_unique_ids(ids, delta.n_vertices, "topology delta", strategy, step)
    if delta.is_empty:
        if delta.n_vertices_added or delta.n_cells_added or delta.n_cells_removed:
            raise DeltaValidationError(
                "changes-without-dirty",
                "topology delta reports changes but an empty dirty set",
                strategy=strategy, step=step,
            )
        return
    if delta.n_vertices_added:
        added = delta.added_vertex_ids()
        if not np.all(np.isin(added, ids)):
            raise DeltaValidationError(
                "added-outside-dirty",
                "appended vertex ids are not all inside the dirty set",
                strategy=strategy, step=step,
            )
    if mesh is not None:
        dirty_positions = mesh.vertices[ids]
        screen_positions(dirty_positions, "dirty vertex positions", strategy, step)
        if delta.dirty_box is not None and not bool(
            np.all(points_in_box(dirty_positions, delta.dirty_box))
        ):
            raise DeltaValidationError(
                "dirty-box-mismatch",
                "topology delta dirty AABB does not cover the dirty vertices",
                strategy=strategy, step=step,
            )


def audit_adjacency(mesh: PolyhedralMesh, vertex_ids: np.ndarray | None = None) -> None:
    """CSR adjacency audit: structure globally, content for the given ids.

    The structural part (monotone ``indptr``, index range) is a few
    vectorised passes; the content part checks that every neighbour of the
    audited vertices is a valid, distinct vertex — O(degree · n_audited), so
    paranoid restructuring passes the delta's dirty ids to stay O(dirty).
    Raises :class:`~repro.errors.MeshConnectivityError` on corruption.
    """
    adjacency = mesh.adjacency
    indptr, indices = adjacency.indptr, adjacency.indices
    n = mesh.n_vertices
    if indptr.shape != (n + 1,) or indptr[0] != 0 or indptr[-1] != indices.size:
        raise MeshConnectivityError("adjacency indptr does not frame the index array")
    if indptr.size > 1 and np.any(indptr[1:] < indptr[:-1]):
        raise MeshConnectivityError("adjacency indptr is not monotone")
    if indices.size and (indices.min() < 0 or indices.max() >= n):
        raise MeshConnectivityError("adjacency indices reference vertices out of range")
    if vertex_ids is not None:
        for vid in np.asarray(vertex_ids, dtype=np.int64):
            row = indices[indptr[vid] : indptr[vid + 1]]
            if np.any(row == vid):
                raise MeshConnectivityError(f"vertex {int(vid)} lists itself as a neighbour")


def audit_surface_index(executor) -> None:
    """Surface-index consistency audit for an OCTOPUS executor.

    Recomputes the mesh's surface vertex set and compares it with the
    executor's surface table — the structure whose corruption silently drops
    query results (a vertex missing from the table is never probed).  Raises
    :class:`~repro.errors.MeshConnectivityError` on divergence; a stale index
    (connectivity changed without a refresh) is reported too, since a query
    at this point would answer against the wrong surface.
    """
    surface = executor.surface_index
    if surface.is_stale():
        raise MeshConnectivityError(
            "surface index is stale: mesh connectivity changed without a refresh"
        )
    expected = np.asarray(executor.mesh.surface_vertices(), dtype=np.int64)
    actual = np.sort(np.asarray(surface.surface_ids(), dtype=np.int64))
    if not np.array_equal(np.sort(expected), actual):
        raise MeshConnectivityError(
            f"surface index holds {actual.size} ids but the mesh surface has "
            f"{expected.size}; the sets differ"
        )


# ----------------------------------------------------------------------
# degradation ladder
# ----------------------------------------------------------------------
@dataclass
class FallbackEvent:
    """One recorded descent down the degradation ladder."""

    #: wrapped strategy name
    strategy: str
    #: lifecycle operation that degraded ("query", "query_many", "on_step", "on_restructure")
    operation: str
    #: ladder rung taken ("sequential", "scan", "quarantine", "full-delta", "rebuild")
    rung: str
    #: short classification ("budget-exhausted", "delta-invalid", "strategy-error", ...)
    reason: str
    #: repr of the triggering exception (or validator message)
    error: str
    #: simulation step, when the caller provided one via note_step()
    step: int | None = None

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "operation": self.operation,
            "rung": self.rung,
            "reason": self.reason,
            "error": self.error,
            "step": self.step,
        }


class ResilientStrategy(StrategyWrapper):
    """Wrap any :class:`~repro.core.executor.ExecutionStrategy` in the ladder.

    Failure classes and the rung each one takes:

    * a batch (`query_many`) raising → retry the boxes **sequentially**
      through the inner ``query`` (one bad box no longer poisons the batch);
    * a single query raising, or blowing its budget under the ``"raise"``
      policy → answer it with a **linear scan** of the live vertex positions
      (always correct: the scan reads the mesh, not any index state);
    * paranoid mode finding an invalid delta → **quarantine** it and hand the
      inner strategy a whole-mesh ``full()`` delta derived from the *mesh's*
      vertex count (never the lying delta's);
    * incremental ``on_step``/``on_restructure`` raising → retry with the
      **full delta**, then with a complete **rebuild** (``prepare``);
    * everything failing → a structured
      :class:`~repro.errors.DegradedExecutionError` with the original cause.

    Malformed *queries* (:class:`~repro.errors.QueryError` other than budget
    exhaustion, :class:`~repro.errors.GeometryError`) are caller errors and
    propagate — degrading them would mask bugs in the caller, not recover
    from faults below.

    Every descent is appended to :attr:`degradation_events`
    (:meth:`drain_degradation_events` consumes them; the simulator drains
    after each step and aggregates into the
    :class:`~repro.simulation.simulator.StrategyReport`).  Wrapper overhead
    (validation, bookkeeping) on the maintenance path is charged to the inner
    strategy's ``maintenance_time`` so the reported response time stays
    honest about what resilience costs.
    """

    def __init__(self, inner: ExecutionStrategy, paranoid: bool = False) -> None:
        super().__init__(inner)
        self.paranoid = paranoid
        self.degradation_events: list[FallbackEvent] = []
        self._step: int | None = None

    # -- event plumbing -------------------------------------------------
    def note_step(self, step: int | None) -> None:
        """Tag subsequent fallback events with the simulation step."""
        self._step = step
        super().note_step(step)

    def drain_degradation_events(self) -> list[FallbackEvent]:
        """Return and clear the recorded fallback events (own + inner's)."""
        events = self.degradation_events
        self.degradation_events = []
        events.extend(super().drain_degradation_events())
        return events

    def _record(self, operation: str, rung: str, reason: str, error: BaseException | str) -> None:
        self.degradation_events.append(
            FallbackEvent(
                strategy=self.name,
                operation=operation,
                rung=rung,
                reason=reason,
                error=repr(error) if isinstance(error, BaseException) else str(error),
                step=self._step,
            )
        )

    # -- lifecycle ------------------------------------------------------
    def _maintain(
        self,
        operation: str,
        delta,
        apply: Callable[[object], float],
        full_delta: Callable[[], object],
        validate: Callable[[object], None],
    ) -> float:
        """Shared maintenance ladder: validate → apply → full delta → rebuild."""
        wrapper_start = time.perf_counter()
        inner_time_before = self.inner.maintenance_time
        used = delta
        if self.paranoid:
            try:
                validate(delta)
            except DeltaValidationError as exc:
                self._record(operation, "quarantine", exc.reason, exc)
                used = full_delta()
        try:
            apply(used)
        except (QueryError, GeometryError):
            raise  # caller errors, not index-state faults
        except Exception as exc:
            self._record(operation, "full-delta", "strategy-error", exc)
            try:
                if not getattr(used, "is_full", False):
                    apply(full_delta())
                else:
                    # the failing delta already was the full one; retrying it
                    # is pointless, go straight to the rebuild rung
                    raise exc
            except Exception as full_exc:
                self._record(operation, "rebuild", "strategy-error", full_exc)
                try:
                    self.inner.prepare(self.mesh)
                except Exception as rebuild_exc:
                    raise DegradedExecutionError(
                        f"{self.name}: {operation} failed on the incremental, "
                        "full-delta and rebuild rungs",
                        strategy=self.name,
                        step=self._step,
                    ) from rebuild_exc
        inner_spent = self.inner.maintenance_time - inner_time_before
        total = time.perf_counter() - wrapper_start
        overhead = max(0.0, total - inner_spent)
        self.inner.maintenance_time += overhead
        return inner_spent + overhead

    def on_step(self, delta: DeformationDelta) -> float:
        return self._maintain(
            "on_step",
            delta,
            self.inner.on_step,
            lambda: DeformationDelta.full(self.mesh.n_vertices),
            lambda d: validate_delta(d, self.mesh, strategy=self.name, step=self._step),
        )

    def on_restructure(self, delta: TopologyDelta) -> float:
        return self._maintain(
            "on_restructure",
            delta,
            self.inner.on_restructure,
            lambda: TopologyDelta.full(self.mesh.n_vertices),
            lambda d: validate_topology_delta(d, self.mesh, strategy=self.name, step=self._step),
        )

    # -- querying -------------------------------------------------------
    def _scan_answer(self, box: Box3D) -> QueryResult:
        """Last-resort rung: linear scan of the live vertex positions.

        Correct by construction — it consults no index state, only the mesh —
        and its cost is O(n_vertices), predictable where a degenerate crawl
        is not.
        """
        start = time.perf_counter()
        positions = self.mesh.vertices
        counters = QueryCounters(vertices_scanned=int(positions.shape[0]))
        if positions.shape[0]:
            ids = np.nonzero(points_in_box(positions, box))[0].astype(np.int64)
        else:
            ids = np.empty(0, dtype=np.int64)
        elapsed = time.perf_counter() - start
        return QueryResult(
            vertex_ids=ids, counters=counters, scan_time=elapsed, total_time=elapsed
        )

    def query(self, box: Box3D) -> QueryResult:
        check_query_box(box)
        try:
            return self.inner.query(box)
        except QueryBudgetExceeded as exc:
            self._record("query", "scan", "budget-exhausted", exc)
            return self._scan_answer(box)
        except (QueryError, GeometryError):
            raise  # malformed query: the caller's bug, do not degrade
        except Exception as exc:
            self._record("query", "scan", "strategy-error", exc)
            try:
                return self._scan_answer(box)
            except Exception as scan_exc:
                raise DegradedExecutionError(
                    f"{self.name}: query failed and so did the scan fallback",
                    strategy=self.name,
                    step=self._step,
                ) from scan_exc

    def query_many(self, boxes: Sequence[Box3D]) -> list[QueryResult]:
        box_list = check_query_boxes(boxes)
        try:
            return self.inner.query_many(box_list)
        except (QueryError, GeometryError) as exc:
            if not isinstance(exc, QueryBudgetExceeded):
                raise
            first_error: Exception = exc
        except Exception as exc:
            first_error = exc
        # Rung 1: the batch engine failed (or one query blew its budget under
        # the all-or-nothing contract) — answer the boxes one by one, each
        # with its own scan fallback (rung 2) behind it.
        self._record("query_many", "sequential", _classify(first_error), first_error)
        self.last_fused_crawl = None
        return [self.query(box) for box in box_list]

    # -- accounting -----------------------------------------------------
    def describe(self) -> dict:
        record = super().describe()
        record["resilient"] = True
        record["paranoid"] = self.paranoid
        return record


def _classify(error: BaseException) -> str:
    """Short reason tag for a ladder descent."""
    if isinstance(error, QueryBudgetExceeded):
        return "budget-exhausted"
    if isinstance(error, DeltaValidationError):
        return "delta-invalid"
    return "strategy-error"
