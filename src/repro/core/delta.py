"""Deformation deltas: "what moved" as a first-class value.

The paper's headline metric is the total query response time *including* index
maintenance on dynamic meshes.  The simulation→strategy contract therefore
threads a :class:`DeformationDelta` through every time step: each
:meth:`~repro.simulation.deformation.DeformationModel.apply` returns one, and
every :meth:`~repro.core.executor.ExecutionStrategy.on_step` consumes it, so a
strategy can pay maintenance proportional to the *motion* instead of the mesh
size when only part of the mesh deformed.

A delta is one of three shapes:

* **full** — (almost) every vertex moved, the classic mesh-simulation workload
  of Section III-A.  :meth:`DeformationDelta.full` is the cheap fast path: no
  id array and no position copies are materialised, consumers branch on
  :attr:`is_full` and fall back to their whole-mesh maintenance.
* **sparse** — an explicit set of moved vertex ids with their old and new
  positions and the dirty AABB covering both.  Strategies with incremental
  maintenance (grid relocation, moved-only R-tree checks, moved-only RUM
  inserts) key off exactly this.
* **empty** — a sparse delta with zero moved vertices (e.g. a rest step of a
  pulsed workload); maintenance is skipped entirely.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..mesh import Box3D

__all__ = ["DeformationDelta"]


class DeformationDelta:
    """Description of one deformation step's vertex motion.

    Attributes
    ----------
    n_vertices:
        Total vertex count of the mesh when the delta was emitted.
    moved_ids:
        Sorted ``int64`` ids of the vertices whose position changed, or
        ``None`` for a full delta (every vertex treated as moved).
    old_positions / new_positions:
        ``(n_moved, 3)`` positions of the moved vertices before and after the
        step, aligned with :attr:`moved_ids`; ``None`` on the full fast path
        (consumers read current positions straight from the mesh).
    dirty_box:
        Axis-aligned box covering the old *and* new positions of every moved
        vertex — the region whose spatial-index content can have changed.
        ``None`` when nothing moved or on the full fast path.
    """

    __slots__ = ("n_vertices", "moved_ids", "old_positions", "new_positions", "dirty_box")

    def __init__(
        self,
        n_vertices: int,
        moved_ids: np.ndarray | None,
        old_positions: np.ndarray | None = None,
        new_positions: np.ndarray | None = None,
        dirty_box: Box3D | None = None,
    ) -> None:
        self.n_vertices = int(n_vertices)
        self.moved_ids = moved_ids
        self.old_positions = old_positions
        self.new_positions = new_positions
        self.dirty_box = dirty_box

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def full(cls, n_vertices: int) -> "DeformationDelta":
        """The cheap whole-mesh fast path: every vertex is treated as moved.

        Nothing proportional to the mesh is allocated; :attr:`moved_ids`
        stays ``None`` and consumers branch on :attr:`is_full`.
        """
        return cls(n_vertices, None)

    @classmethod
    def empty(cls, n_vertices: int) -> "DeformationDelta":
        """A step in which no vertex moved (maintenance can be skipped)."""
        return cls(n_vertices, np.empty(0, dtype=np.int64))

    @classmethod
    def sparse(
        cls,
        n_vertices: int,
        moved_ids: np.ndarray,
        old_positions: np.ndarray,
        new_positions: np.ndarray,
    ) -> "DeformationDelta":
        """An explicit moved set; ids are sorted (positions re-aligned) and the
        dirty AABB is derived from the union of old and new positions."""
        ids = np.asarray(moved_ids, dtype=np.int64)
        old = np.asarray(old_positions, dtype=np.float64)
        new = np.asarray(new_positions, dtype=np.float64)
        if ids.ndim != 1 or old.shape != (ids.size, 3) or new.shape != (ids.size, 3):
            raise SimulationError(
                "sparse delta needs (k,) moved ids with aligned (k, 3) old/new positions"
            )
        if ids.size == 0:
            return cls.empty(n_vertices)
        if ids.size > 1 and not np.all(ids[1:] > ids[:-1]):
            order = np.argsort(ids, kind="stable")
            ids = ids[order]
            if ids.size > 1 and not np.all(ids[1:] > ids[:-1]):
                raise SimulationError("sparse delta moved ids must be unique")
            old = old[order]
            new = new[order]
        lo = np.minimum(old.min(axis=0), new.min(axis=0))
        hi = np.maximum(old.max(axis=0), new.max(axis=0))
        return cls(n_vertices, ids, old, new, Box3D(lo, hi))

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def is_full(self) -> bool:
        """True on the whole-mesh fast path (no explicit moved set)."""
        return self.moved_ids is None

    @property
    def n_moved(self) -> int:
        """Number of vertices that moved (``n_vertices`` on the full path)."""
        if self.moved_ids is None:
            return self.n_vertices
        return int(self.moved_ids.size)

    def ids(self) -> np.ndarray:
        """The moved ids as a sorted array (materialises ``arange`` when full)."""
        if self.moved_ids is None:
            return np.arange(self.n_vertices, dtype=np.int64)
        return self.moved_ids

    def as_full(self) -> "DeformationDelta":
        """This step viewed through the whole-mesh fast path.

        The full-recompute reference of the delta-parity suite and the
        benchmark's full-maintenance contender consume exactly this: the same
        mesh state, with the motion information discarded.
        """
        return DeformationDelta.full(self.n_vertices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shape = "full" if self.is_full else f"sparse[{self.n_moved}]"
        return f"DeformationDelta({shape}, n_vertices={self.n_vertices})"
