"""Change deltas: "what changed this step" as first-class values.

The paper's headline metric is the total query response time *including* index
maintenance on dynamic meshes.  The simulation→strategy contract therefore
threads explicit change descriptions through every time step, one per kind of
mesh change:

* :class:`DeformationDelta` — *geometry* changed: vertex positions were
  overwritten in place.  Each
  :meth:`~repro.simulation.deformation.DeformationModel.apply` returns one,
  and every :meth:`~repro.core.executor.ExecutionStrategy.on_step` consumes
  it, so a strategy can pay maintenance proportional to the *motion* instead
  of the mesh size when only part of the mesh deformed.
* :class:`TopologyDelta` — *connectivity* changed: cells were split or
  removed (Section IV-E2's rare mesh restructuring).  Each restructuring
  operation (:func:`~repro.simulation.restructuring.split_cells`,
  :func:`~repro.simulation.restructuring.remove_cells`) derives one, and
  every :meth:`~repro.core.executor.ExecutionStrategy.on_restructure`
  consumes it, so a strategy can splice the few affected index entries
  instead of rebuilding over the whole mesh.

Both deltas share the same three shapes:

* **full** — the cheap "everything may have changed" fast path: no id arrays
  are materialised, consumers branch on ``is_full`` and fall back to their
  whole-mesh maintenance (rebuild / full reconciliation).  This is also the
  delta-blind reference the parity suites compare incremental maintenance
  against (``as_full()``).
* **sparse** — an explicit set of affected vertex ids plus the dirty AABB
  covering them (and, for deformation, the old/new positions).  Incremental
  maintenance keys off exactly this.
* **empty** — a step in which nothing changed; maintenance is skipped
  entirely.

The two contracts the sparse fast paths rely on:

* vertex ids are **stable** across both kinds of change — deformation moves
  positions under fixed ids, and restructuring preserves every pre-existing
  vertex id (removed cells leave their vertices in place, possibly isolated);
* new vertices are only ever **appended** — a split's centroids occupy the id
  range ``[n_before, n_after)``, so position indexes can treat additions as a
  tail splice.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..mesh import Box3D

__all__ = ["DeformationDelta", "TopologyDelta"]


class DeformationDelta:
    """Description of one deformation step's vertex motion.

    Attributes
    ----------
    n_vertices:
        Total vertex count of the mesh when the delta was emitted.
    moved_ids:
        Sorted ``int64`` ids of the vertices whose position changed, or
        ``None`` for a full delta (every vertex treated as moved).
    old_positions / new_positions:
        ``(n_moved, 3)`` positions of the moved vertices before and after the
        step, aligned with :attr:`moved_ids`; ``None`` on the full fast path
        (consumers read current positions straight from the mesh).
    dirty_box:
        Axis-aligned box covering the old *and* new positions of every moved
        vertex — the region whose spatial-index content can have changed.
        ``None`` when nothing moved or on the full fast path.
    """

    __slots__ = ("n_vertices", "moved_ids", "old_positions", "new_positions", "dirty_box")

    def __init__(
        self,
        n_vertices: int,
        moved_ids: np.ndarray | None,
        old_positions: np.ndarray | None = None,
        new_positions: np.ndarray | None = None,
        dirty_box: Box3D | None = None,
    ) -> None:
        self.n_vertices = int(n_vertices)
        self.moved_ids = moved_ids
        self.old_positions = old_positions
        self.new_positions = new_positions
        self.dirty_box = dirty_box

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def full(cls, n_vertices: int) -> "DeformationDelta":
        """The cheap whole-mesh fast path: every vertex is treated as moved.

        Nothing proportional to the mesh is allocated; :attr:`moved_ids`
        stays ``None`` and consumers branch on :attr:`is_full`.
        """
        return cls(n_vertices, None)

    @classmethod
    def empty(cls, n_vertices: int) -> "DeformationDelta":
        """A step in which no vertex moved (maintenance can be skipped)."""
        return cls(n_vertices, np.empty(0, dtype=np.int64))

    @classmethod
    def sparse(
        cls,
        n_vertices: int,
        moved_ids: np.ndarray,
        old_positions: np.ndarray,
        new_positions: np.ndarray,
    ) -> "DeformationDelta":
        """An explicit moved set; ids are sorted (positions re-aligned) and the
        dirty AABB is derived from the union of old and new positions."""
        ids = np.asarray(moved_ids, dtype=np.int64)
        old = np.asarray(old_positions, dtype=np.float64)
        new = np.asarray(new_positions, dtype=np.float64)
        if ids.ndim != 1 or old.shape != (ids.size, 3) or new.shape != (ids.size, 3):
            raise SimulationError(
                "sparse delta needs (k,) moved ids with aligned (k, 3) old/new positions"
            )
        if ids.size == 0:
            return cls.empty(n_vertices)
        if ids.size > 1 and not np.all(ids[1:] > ids[:-1]):
            order = np.argsort(ids, kind="stable")
            ids = ids[order]
            if ids.size > 1 and not np.all(ids[1:] > ids[:-1]):
                raise SimulationError("sparse delta moved ids must be unique")
            old = old[order]
            new = new[order]
        lo = np.minimum(old.min(axis=0), new.min(axis=0))
        hi = np.maximum(old.max(axis=0), new.max(axis=0))
        return cls(n_vertices, ids, old, new, Box3D(lo, hi))

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def is_full(self) -> bool:
        """True on the whole-mesh fast path (no explicit moved set)."""
        return self.moved_ids is None

    @property
    def n_moved(self) -> int:
        """Number of vertices that moved (``n_vertices`` on the full path)."""
        if self.moved_ids is None:
            return self.n_vertices
        return int(self.moved_ids.size)

    def ids(self) -> np.ndarray:
        """The moved ids as a sorted array (materialises ``arange`` when full)."""
        if self.moved_ids is None:
            return np.arange(self.n_vertices, dtype=np.int64)
        return self.moved_ids

    def as_full(self) -> "DeformationDelta":
        """This step viewed through the whole-mesh fast path.

        The full-recompute reference of the delta-parity suite and the
        benchmark's full-maintenance contender consume exactly this: the same
        mesh state, with the motion information discarded.
        """
        return DeformationDelta.full(self.n_vertices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shape = "full" if self.is_full else f"sparse[{self.n_moved}]"
        return f"DeformationDelta({shape}, n_vertices={self.n_vertices})"


class TopologyDelta:
    """Description of one restructuring step's connectivity change.

    Attributes
    ----------
    n_vertices:
        Total vertex count of the mesh *after* the restructuring.
    dirty_ids:
        Sorted ``int64`` ids of the vertices whose index entries may have
        changed — the vertices of every affected cell plus any newly inserted
        vertices (surface membership can only change inside this set, and new
        vertices only appear inside it), or ``None`` for a full delta.
    n_vertices_added:
        Vertices appended by the operation (splits insert centroids); their
        ids are always the tail range ``[n_vertices - n_vertices_added,
        n_vertices)``, see :meth:`added_vertex_ids`.
    n_cells_added / n_cells_removed:
        Cells appended to / deleted from the cell array (a 1-to-4 split
        removes one cell and adds four).
    dirty_box:
        Axis-aligned box covering the current positions of the dirty
        vertices, or ``None`` when nothing changed or on the full fast path.
    """

    __slots__ = (
        "n_vertices",
        "dirty_ids",
        "n_vertices_added",
        "n_cells_added",
        "n_cells_removed",
        "dirty_box",
    )

    def __init__(
        self,
        n_vertices: int,
        dirty_ids: np.ndarray | None,
        n_vertices_added: int = 0,
        n_cells_added: int = 0,
        n_cells_removed: int = 0,
        dirty_box: Box3D | None = None,
    ) -> None:
        self.n_vertices = int(n_vertices)
        self.dirty_ids = dirty_ids
        self.n_vertices_added = int(n_vertices_added)
        self.n_cells_added = int(n_cells_added)
        self.n_cells_removed = int(n_cells_removed)
        self.dirty_box = dirty_box

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def full(cls, n_vertices: int) -> "TopologyDelta":
        """The cheap "anything may have changed" fast path.

        Nothing proportional to the mesh is allocated; :attr:`dirty_ids`
        stays ``None`` and consumers fall back to their whole-mesh
        maintenance (rebuild or full reconciliation).
        """
        return cls(n_vertices, None)

    @classmethod
    def empty(cls, n_vertices: int) -> "TopologyDelta":
        """A step in which the connectivity did not change (skip fast path)."""
        return cls(n_vertices, np.empty(0, dtype=np.int64))

    @classmethod
    def sparse(
        cls,
        n_vertices: int,
        dirty_ids: np.ndarray,
        positions: np.ndarray,
        n_vertices_added: int = 0,
        n_cells_added: int = 0,
        n_cells_removed: int = 0,
    ) -> "TopologyDelta":
        """An explicit localized change; ids are deduplicated and sorted and
        the dirty AABB is derived from their current ``positions`` (the full
        ``(n, 3)`` mesh position array)."""
        ids = np.unique(np.asarray(dirty_ids, dtype=np.int64))
        if ids.size and (ids[0] < 0 or ids[-1] >= n_vertices):
            raise SimulationError("topology delta dirty ids out of range")
        if n_vertices_added < 0 or n_vertices_added > n_vertices:
            raise SimulationError("topology delta vertex-addition count out of range")
        if ids.size == 0 and (n_vertices_added or n_cells_added or n_cells_removed):
            raise SimulationError("topology delta with changes needs a non-empty dirty set")
        if ids.size == 0:
            return cls.empty(n_vertices)
        dirty_positions = np.asarray(positions, dtype=np.float64)[ids]
        box = Box3D(dirty_positions.min(axis=0), dirty_positions.max(axis=0))
        return cls(n_vertices, ids, n_vertices_added, n_cells_added, n_cells_removed, box)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def is_full(self) -> bool:
        """True on the "anything may have changed" fast path (no dirty set)."""
        return self.dirty_ids is None

    @property
    def is_empty(self) -> bool:
        """True when the step changed nothing (maintenance can be skipped)."""
        return self.dirty_ids is not None and self.dirty_ids.size == 0

    @property
    def n_dirty(self) -> int:
        """Number of dirty vertices (``n_vertices`` on the full path)."""
        if self.dirty_ids is None:
            return self.n_vertices
        return int(self.dirty_ids.size)

    def ids(self) -> np.ndarray:
        """The dirty ids as a sorted array (materialises ``arange`` when full)."""
        if self.dirty_ids is None:
            return np.arange(self.n_vertices, dtype=np.int64)
        return self.dirty_ids

    def added_vertex_ids(self) -> np.ndarray:
        """Ids of the vertices this restructuring appended (the tail range)."""
        return np.arange(
            self.n_vertices - self.n_vertices_added, self.n_vertices, dtype=np.int64
        )

    def as_full(self) -> "TopologyDelta":
        """This step viewed through the delta-blind fast path.

        The full-recompute reference of the restructuring-parity suite and
        the benchmark's rebuild contender consume exactly this: the same mesh
        state, with the change information discarded.
        """
        return TopologyDelta.full(self.n_vertices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_full:
            shape = "full"
        elif self.is_empty:
            shape = "empty"
        else:
            shape = (
                f"sparse[{self.n_dirty} dirty, +{self.n_vertices_added}v, "
                f"+{self.n_cells_added}/-{self.n_cells_removed}c]"
            )
        return f"TopologyDelta({shape}, n_vertices={self.n_vertices})"
