"""Surface approximation analysis helpers (Section IV-H2 / Figure 12).

The optimisation itself lives in :class:`~repro.core.octopus.OctopusExecutor`
(the ``surface_sample_fraction`` parameter).  This module provides the
measurement side: given a mesh and a workload, run OCTOPUS at several
approximation levels and report the accuracy (recall against the exact result)
and the speedup relative to the unapproximated execution — the two curves of
Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ExperimentError
from ..mesh import Box3D, PolyhedralMesh
from .octopus import OctopusExecutor

__all__ = ["ApproximationPoint", "evaluate_surface_approximation"]


@dataclass(frozen=True)
class ApproximationPoint:
    """Accuracy and cost of one approximation level.

    Attributes
    ----------
    fraction:
        Fraction of the surface vertices probed (1.0 = exact OCTOPUS).
    accuracy:
        Mean recall against the exact result over the workload.
    mean_probe_work:
        Mean number of surface vertices probed per query.
    mean_total_work:
        Mean total vertex accesses per query (probe + walk + crawl).
    speedup_vs_exact:
        Exact OCTOPUS total work divided by this level's total work.
    """

    fraction: float
    accuracy: float
    mean_probe_work: float
    mean_total_work: float
    speedup_vs_exact: float


def evaluate_surface_approximation(
    mesh: PolyhedralMesh,
    queries: Sequence[Box3D],
    fractions: Sequence[float],
    seed: int = 0,
) -> list[ApproximationPoint]:
    """Run OCTOPUS at several surface-approximation levels over a workload.

    Parameters
    ----------
    mesh:
        The dataset to query.
    queries:
        The range-query workload.
    fractions:
        Approximation levels to evaluate, each in (0, 1]; the exact executor
        (fraction 1.0) is always evaluated as the reference.
    seed:
        Seed for the sampled surface subsets.
    """
    if not queries:
        raise ExperimentError("need at least one query")
    if not fractions:
        raise ExperimentError("need at least one approximation fraction")

    exact = OctopusExecutor()
    exact.prepare(mesh)
    exact_results = [exact.query(box) for box in queries]
    exact_work = float(
        np.mean([r.counters.total_vertex_accesses() for r in exact_results])
    ) or 1.0

    points: list[ApproximationPoint] = []
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise ExperimentError("approximation fractions must lie in (0, 1]")
        if fraction >= 1.0:
            approx_results = exact_results
        else:
            executor = OctopusExecutor(surface_sample_fraction=fraction, seed=seed)
            executor.prepare(mesh)
            approx_results = [executor.query(box) for box in queries]
        recalls = [
            approx.recall_against(reference)
            for approx, reference in zip(approx_results, exact_results)
        ]
        probe_work = float(np.mean([r.counters.surface_probed for r in approx_results]))
        total_work = float(
            np.mean([r.counters.total_vertex_accesses() for r in approx_results])
        )
        points.append(
            ApproximationPoint(
                fraction=float(fraction),
                accuracy=float(np.mean(recalls)),
                mean_probe_work=probe_work,
                mean_total_work=total_work,
                speedup_vs_exact=exact_work / max(total_work, 1.0),
            )
        )
    return points
