"""Query results and machine-independent work counters.

Every execution strategy in the library (OCTOPUS, OCTOPUS-CON and all the
baselines) returns a :class:`QueryResult`, which carries the result vertex ids
plus a :class:`QueryCounters` record of how much work was done to produce
them.  The counters are the machine-independent backbone of the experiment
harness: wall-clock numbers from a pure-Python reproduction are noisy and not
comparable with the paper's C++ implementation, whereas "vertices scanned /
edges followed / index nodes visited" reproduce the paper's cost model
directly (Section IV-G measures exactly these quantities times per-operation
constants).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

__all__ = ["QueryCounters", "QueryResult"]


@dataclass
class QueryCounters:
    """Work performed while answering one range query.

    Attributes
    ----------
    surface_probed:
        Surface vertices tested during the surface probe (OCTOPUS).
    probe_distance_computations:
        Point-to-box distance evaluations performed by the surface probe to
        find the closest outside vertex (only incurred when no surface vertex
        lies inside the query).  These reuse positions already counted in
        ``surface_probed``, so they are reported separately and excluded from
        :meth:`total_vertex_accesses`.
    walk_vertices_visited:
        Vertices visited during the directed walk.
    walk_distance_computations:
        Point-to-box distance evaluations during the directed walk.
    crawl_vertices_visited:
        Vertices whose position was tested during the crawl (inside or not).
    crawl_edges_followed:
        Mesh edges traversed by the crawl.
    vertices_scanned:
        Vertices tested by a full scan (linear scan baseline).
    index_nodes_visited:
        Tree/grid nodes visited while descending a spatial index.
    index_entries_updated:
        Index entries touched by maintenance work attributable to this query's
        time step (reported by the simulation harness, zero per query).
    """

    surface_probed: int = 0
    probe_distance_computations: int = 0
    walk_vertices_visited: int = 0
    walk_distance_computations: int = 0
    crawl_vertices_visited: int = 0
    crawl_edges_followed: int = 0
    vertices_scanned: int = 0
    index_nodes_visited: int = 0
    index_entries_updated: int = 0

    def merge(self, other: "QueryCounters") -> "QueryCounters":
        """Return a new counter record with the component-wise sum."""
        merged = QueryCounters()
        for f in fields(QueryCounters):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    def __iadd__(self, other: "QueryCounters") -> "QueryCounters":
        for f in fields(QueryCounters):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def total_vertex_accesses(self) -> int:
        """All vertex-position reads, regardless of which phase performed them."""
        return (
            self.surface_probed
            + self.walk_distance_computations
            + self.crawl_vertices_visited
            + self.vertices_scanned
        )

    def as_dict(self) -> dict:
        """Plain-dict view (used by reports and benchmarks)."""
        return {f.name: getattr(self, f.name) for f in fields(QueryCounters)}


@dataclass
class QueryResult:
    """Result of a range query plus the work and time spent computing it.

    Attributes
    ----------
    vertex_ids:
        Sorted array of the vertex ids whose current position lies inside the
        query box.
    counters:
        Machine-independent work counters.
    probe_time / walk_time / crawl_time / scan_time / index_time:
        Wall-clock seconds per phase (phases a strategy does not have stay 0).
    total_time:
        Wall-clock seconds for the whole query.
    complete:
        ``False`` when a :class:`~repro.core.resilience.QueryBudget` under the
        ``"partial"`` policy truncated the traversal: ``vertex_ids`` is then a
        (possibly empty) *subset* of the exact answer.  Always ``True`` on
        unbudgeted queries.
    """

    vertex_ids: np.ndarray
    counters: QueryCounters = field(default_factory=QueryCounters)
    probe_time: float = 0.0
    walk_time: float = 0.0
    crawl_time: float = 0.0
    scan_time: float = 0.0
    index_time: float = 0.0
    total_time: float = 0.0
    complete: bool = True

    def __post_init__(self) -> None:
        self.vertex_ids = np.unique(np.asarray(self.vertex_ids, dtype=np.int64))

    @property
    def n_results(self) -> int:
        """Number of vertices the query retrieved."""
        return int(self.vertex_ids.size)

    def same_vertices_as(self, other: "QueryResult") -> bool:
        """True when both results contain exactly the same vertex ids."""
        return bool(np.array_equal(self.vertex_ids, other.vertex_ids))

    def recall_against(self, reference: "QueryResult") -> float:
        """Fraction of the reference result retrieved by this result.

        Used by the surface-approximation experiment (Figure 12), where the
        reference is the exact result of the unapproximated OCTOPUS/linear scan.
        """
        if reference.n_results == 0:
            return 1.0
        found = np.intersect1d(self.vertex_ids, reference.vertex_ids, assume_unique=True)
        return float(found.size / reference.n_results)
