"""Reusable per-executor scratch memory for the query hot path.

The crawl needs a "have I visited this vertex?" test over all mesh vertices.
Allocating (and zeroing) a fresh boolean array per query re-introduces an
O(n_vertices) term into every query — exactly the dataset-size dependence the
crawl is designed to avoid (Section IV claims cost proportional to selectivity
and mesh degree only).  :class:`CrawlScratch` removes it with the classic
epoch-stamping trick: one persistent ``int32`` array holds, per vertex, the
epoch of the last query that visited it.  A vertex is "visited" in the current
query iff its stamp equals the current epoch, so starting a new query is a
single integer increment — no clearing, no allocation.

The arena also keeps a growable identity ramp (``0, 1, 2, ...``) that the
CSR neighbour gather slices instead of re-materialising ``np.arange`` per
frontier expansion.

For the fused multi-query crawl the scratch additionally owns a
*(vertex, query-bitset)* arena: per vertex, a row of ``uint64`` words whose
bit ``q`` of word ``q // 64`` records "visited by query ``q`` of the current
batch", guarded by its own epoch-stamp array so that starting a new batch is
again a single increment (a stale stamp means the row is garbage and is
treated as all-zeros).  The word axis widens on demand, so one fused crawl
serves arbitrarily large batches — there is no 64-query ceiling.

The fused directed walk keeps its per-query state (best distance, best
vertex, step counts, frontier slots) in a :class:`WalkArena` owned by the
scratch, so batched walks allocate nothing per call either.

Delta-aware maintenance reuses the same trick through a third epoch-stamped
arena (:meth:`CrawlScratch.acquire_delta`): incremental index updates need a
"is this vertex in the moved set?" test over all mesh vertices (e.g. the
grid relocation filtering departing members out of its CSR arrays), and the
delta arena provides it as a single epoch increment per step — no per-step
boolean allocation, no clearing.

A scratch instance is owned by one thread at a time and is **not**
thread-safe; two concurrent queries must use two scratches.  That contract
used to be documentation only — now it is enforced: the crawl and walk round
loops re-check the arena epoch every round and raise
:class:`~repro.errors.ConcurrencyError` when another acquisition moved it
mid-query (the signature of a second thread sharing the arena), and
executors route concurrent callers onto distinct arenas through
:class:`ThreadLocalScratch`, which lazily grows one :class:`CrawlScratch`
per worker thread.
"""

from __future__ import annotations

import threading

import numpy as np

from ..errors import ConcurrencyError

__all__ = ["CrawlScratch", "ThreadLocalScratch", "WalkArena"]

#: stamp value reserved for "never visited" (fresh arenas are zero-filled)
_NEVER = 0
_EPOCH_LIMIT = np.iinfo(np.int32).max - 1


class WalkArena:
    """Per-query state arrays for the fused directed walk.

    One row per query of the current batch; all arrays are overwritten by
    :func:`~repro.core.directed_walk.directed_walk_many` at batch start, so no
    epoch guard is needed.  ``frontier`` holds up to ``beam_width`` candidate
    vertices per query (``frontier_len`` of them valid), ``best_distance`` /
    ``best_id`` the closest vertex seen so far, ``found`` the vertex reached
    inside the box (-1 while searching), and ``n_steps`` / ``n_distance`` the
    per-query work counters the sequential walk would have reported.
    """

    __slots__ = (
        "best_distance",
        "best_id",
        "found",
        "n_steps",
        "n_distance",
        "active",
        "frontier",
        "frontier_len",
        "generation",
    )

    def __init__(self) -> None:
        self.best_distance = np.empty(0, dtype=np.float64)
        self.best_id = np.empty(0, dtype=np.int64)
        self.found = np.empty(0, dtype=np.int64)
        self.n_steps = np.empty(0, dtype=np.int64)
        self.n_distance = np.empty(0, dtype=np.int64)
        self.active = np.empty(0, dtype=bool)
        self.frontier = np.empty((0, 1), dtype=np.int64)
        self.frontier_len = np.empty(0, dtype=np.int64)
        #: bumped by every :meth:`~CrawlScratch.acquire_walk`; the fused walk
        #: re-checks it each round to detect a second thread taking the arena
        self.generation = 0

    def check_generation(self, generation: int) -> None:
        """Assert the arena still belongs to the walk batch that acquired it."""
        if self.generation != generation:
            raise ConcurrencyError(
                f"WalkArena re-acquired mid-batch (generation moved "
                f"{generation} -> {self.generation}); a scratch serves one thread "
                "at a time — use one scratch per thread (see ThreadLocalScratch)"
            )

    def reserve(self, n_queries: int, beam_width: int) -> None:
        """Grow the per-query rows to cover ``n_queries`` × ``beam_width``."""
        if self.best_distance.size < n_queries:
            capacity = max(n_queries, 2 * self.best_distance.size)
            self.best_distance = np.empty(capacity, dtype=np.float64)
            self.best_id = np.empty(capacity, dtype=np.int64)
            self.found = np.empty(capacity, dtype=np.int64)
            self.n_steps = np.empty(capacity, dtype=np.int64)
            self.n_distance = np.empty(capacity, dtype=np.int64)
            self.active = np.empty(capacity, dtype=bool)
            self.frontier_len = np.empty(capacity, dtype=np.int64)
        rows, cols = self.frontier.shape
        if rows < self.best_distance.size or cols < beam_width:
            self.frontier = np.empty(
                (self.best_distance.size, max(beam_width, cols)), dtype=np.int64
            )

    def memory_bytes(self) -> int:
        """Current footprint of the per-query walk state arrays."""
        return int(
            self.best_distance.nbytes
            + self.best_id.nbytes
            + self.found.nbytes
            + self.n_steps.nbytes
            + self.n_distance.nbytes
            + self.active.nbytes
            + self.frontier.nbytes
            + self.frontier_len.nbytes
        )


class CrawlScratch:
    """Epoch-stamped visited arena plus reusable gather buffers.

    Usage::

        stamps, epoch = scratch.acquire(mesh.n_vertices)
        stamps[v] = epoch            # mark v visited
        stamps[ids] == epoch         # visited test, vectorised

    ``acquire`` starts a new query: it bumps the epoch (making every previous
    stamp stale at zero cost) and grows the arena if the mesh gained vertices
    since the last query (e.g. after a restructuring step).
    """

    __slots__ = (
        "_stamps",
        "_epoch",
        "_iota",
        "_batch_stamps",
        "_batch_words",
        "_batch_epoch",
        "_walk_arena",
        "_delta_stamps",
        "_delta_epoch",
    )

    def __init__(self) -> None:
        self._stamps = np.empty(0, dtype=np.int32)
        self._epoch = _NEVER
        self._iota = np.empty(0, dtype=np.int64)
        self._batch_stamps = np.empty(0, dtype=np.int32)
        self._batch_words = np.empty((0, 1), dtype=np.uint64)
        self._batch_epoch = _NEVER
        self._walk_arena = WalkArena()
        self._delta_stamps = np.empty(0, dtype=np.int32)
        self._delta_epoch = _NEVER

    # ------------------------------------------------------------------
    # the visited arena
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Epoch of the most recent :meth:`acquire` (0 before any query)."""
        return self._epoch

    def acquire(self, n_vertices: int) -> tuple[np.ndarray, int]:
        """Begin a new query; returns ``(stamps, epoch)`` covering ``n_vertices``.

        The returned array may be larger than ``n_vertices`` (capacity is kept
        across mesh shrinkage); only indices below ``n_vertices`` are
        meaningful to the caller.
        """
        if self._stamps.size < n_vertices:
            # Grow geometrically so repeated restructuring amortises; a grow
            # resets all stamps, which the epoch rollover below accounts for.
            capacity = max(n_vertices, 2 * self._stamps.size)
            self._stamps = np.zeros(capacity, dtype=np.int32)
            self._epoch = _NEVER
        elif self._epoch >= _EPOCH_LIMIT:
            # int32 epochs last ~2 billion queries; on rollover pay one clear.
            self._stamps.fill(_NEVER)
            self._epoch = _NEVER
        self._epoch += 1
        return self._stamps, self._epoch

    # ------------------------------------------------------------------
    # the (vertex, query-bitset) batch arena
    # ------------------------------------------------------------------
    @property
    def batch_epoch(self) -> int:
        """Epoch of the most recent :meth:`acquire_batch` (0 before any batch)."""
        return self._batch_epoch

    def acquire_batch(
        self, n_vertices: int, n_words: int = 1
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Begin a fused multi-query group; returns ``(stamps, words, epoch)``.

        ``words[v]`` is a row of ``n_words`` ``uint64`` bitset words whose bit
        ``q % 64`` of word ``q // 64`` means "vertex ``v`` was visited by
        query ``q`` of the current group" — but only where
        ``stamps[v] == epoch``; a stale stamp marks the row as garbage from an
        earlier group, to be treated as all-zeros and overwritten.  Like
        :meth:`acquire`, starting a group is a single epoch increment: the
        words are never cleared (``np.empty`` on growth), only the ``int32``
        stamp array pays a bulk clear on growth or on epoch rollover.

        The word axis grows to the widest batch seen so far, so the ownership
        bitsets have no intrinsic query-count limit; memory scales as
        ``8 * n_vertices * ceil(n_queries / 64)`` bytes.
        """
        if n_words < 1:
            raise ValueError("acquire_batch: n_words must be at least 1")
        if self._batch_stamps.size < n_vertices or self._batch_words.shape[1] < n_words:
            if self._batch_stamps.size < n_vertices:
                capacity = max(n_vertices, 2 * self._batch_stamps.size)
            else:
                # Widening only the word axis keeps the current row capacity —
                # doubling rows is for vertex growth, not wider batches.
                capacity = self._batch_stamps.size
            word_capacity = max(n_words, self._batch_words.shape[1])
            self._batch_stamps = np.zeros(capacity, dtype=np.int32)
            self._batch_words = np.empty((capacity, word_capacity), dtype=np.uint64)
            self._batch_epoch = _NEVER
        elif self._batch_epoch >= _EPOCH_LIMIT:
            self._batch_stamps.fill(_NEVER)
            self._batch_epoch = _NEVER
        self._batch_epoch += 1
        return self._batch_stamps, self._batch_words, self._batch_epoch

    # ------------------------------------------------------------------
    # the fused directed-walk arena
    # ------------------------------------------------------------------
    def acquire_walk(self, n_queries: int, beam_width: int = 1) -> WalkArena:
        """Per-query state rows for a fused directed walk over ``n_queries``.

        The returned arena is reused (and regrown geometrically) across
        batches; its arrays carry garbage from earlier walks and must be fully
        initialised by the caller for rows ``[0, n_queries)``.
        """
        self._walk_arena.reserve(n_queries, beam_width)
        self._walk_arena.generation += 1
        return self._walk_arena

    # ------------------------------------------------------------------
    # the delta-maintenance arena
    # ------------------------------------------------------------------
    @property
    def delta_epoch(self) -> int:
        """Epoch of the most recent :meth:`acquire_delta` (0 before any step)."""
        return self._delta_epoch

    def acquire_delta(self, n_vertices: int) -> tuple[np.ndarray, int]:
        """Begin one incremental-maintenance step; returns ``(stamps, epoch)``.

        The returned arena provides the delta's moved-set membership test:
        stamp ``stamps[moved_ids] = epoch`` once, then ``stamps[v] == epoch``
        answers "did vertex ``v`` move this step?" for any vertex array in one
        vectorised gather.  Starting a step is a single epoch increment — the
        arena is never cleared (except on growth or int32 rollover), exactly
        like the visited arena — so delta-keyed maintenance allocates nothing
        proportional to the mesh.  Kept separate from the query-time arenas so
        maintenance never perturbs an in-flight crawl's epochs.
        """
        if self._delta_stamps.size < n_vertices:
            capacity = max(n_vertices, 2 * self._delta_stamps.size)
            self._delta_stamps = np.zeros(capacity, dtype=np.int32)
            self._delta_epoch = _NEVER
        elif self._delta_epoch >= _EPOCH_LIMIT:
            self._delta_stamps.fill(_NEVER)
            self._delta_epoch = _NEVER
        self._delta_epoch += 1
        return self._delta_stamps, self._delta_epoch

    # ------------------------------------------------------------------
    # single-owner enforcement
    # ------------------------------------------------------------------
    def check_epoch(self, epoch: int) -> None:
        """Assert the visited arena still belongs to the query that acquired it.

        The crawl round loop calls this with the epoch its :meth:`acquire`
        returned; a mismatch means another :meth:`acquire` ran mid-query —
        i.e. a second thread is sharing this scratch — and the visited stamps
        the caller is reading are garbage.  One integer compare per round.
        """
        if self._epoch != epoch:
            raise ConcurrencyError(
                f"CrawlScratch visited arena re-acquired mid-query (epoch moved "
                f"{epoch} -> {self._epoch}); a scratch serves one thread at a time — "
                "use one scratch per thread (see ThreadLocalScratch)"
            )

    def check_batch_epoch(self, epoch: int) -> None:
        """Same guard as :meth:`check_epoch` for the fused batch arena."""
        if self._batch_epoch != epoch:
            raise ConcurrencyError(
                f"CrawlScratch batch arena re-acquired mid-batch (epoch moved "
                f"{epoch} -> {self._batch_epoch}); a scratch serves one thread at a "
                "time — use one scratch per thread (see ThreadLocalScratch)"
            )

    # ------------------------------------------------------------------
    # gather buffers
    # ------------------------------------------------------------------
    def iota(self, n: int) -> np.ndarray:
        """A read-only view of ``[0, 1, ..., n-1]`` backed by a reused buffer."""
        if self._iota.size < n:
            self._iota = np.arange(max(n, 2 * self._iota.size, 1024), dtype=np.int64)
        return self._iota[:n]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Current footprint of the arenas and buffers."""
        return int(
            self._stamps.nbytes
            + self._iota.nbytes
            + self._batch_stamps.nbytes
            + self._batch_words.nbytes
            + self._walk_arena.memory_bytes()
            + self._delta_stamps.nbytes
        )

    #: steady-state arena bytes per vertex: 4 (visited stamps) + 4 (batch
    #: stamps) + 8 (one uint64 ownership word) — batching is the harness
    #: default, so both arenas count; batches beyond 64 queries widen the
    #: ownership rows by 8 bytes per vertex per additional 64 queries, which
    #: ``memory_bytes()`` reflects once such a batch has run
    BYTES_PER_VERTEX = 16

    def expected_bytes(self, n_vertices: int) -> int:
        """Steady-state footprint for serving queries on an ``n_vertices`` mesh.

        Used by ``memory_overhead_bytes()`` so executors report a stable
        scratch cost regardless of whether the lazily grown arenas (visited
        stamps, batch stamps + ownership words) have been touched yet — the
        reported overhead must not jump depending on query history.
        """
        return max(self.memory_bytes(), self.BYTES_PER_VERTEX * int(n_vertices))


class ThreadLocalScratch:
    """One lazily created :class:`CrawlScratch` per calling thread.

    A :class:`CrawlScratch` is strictly single-owner — its epoch trick is a
    read-modify-write on shared arrays — so an executor that may be queried
    from several threads (the sharded query service fans work out across a
    pool) must hand each thread its own arena.  This holder does exactly
    that: :meth:`get` returns the calling thread's scratch, creating it on
    first use, and keeps a registry of every arena created so memory
    accounting still sees the whole footprint.

    Maintenance and queries keep working unchanged on the single-threaded
    paths: the first (only) thread always receives the same arena it would
    have owned before.
    """

    __slots__ = ("_local", "_arenas", "_lock")

    def __init__(self) -> None:
        self._local = threading.local()
        self._arenas: list[CrawlScratch] = []
        self._lock = threading.Lock()

    def get(self) -> CrawlScratch:
        """The calling thread's scratch arena (created on first use)."""
        scratch = getattr(self._local, "scratch", None)
        if scratch is None:
            scratch = CrawlScratch()
            with self._lock:
                self._arenas.append(scratch)
            self._local.scratch = scratch
        return scratch

    @property
    def n_arenas(self) -> int:
        """Number of distinct threads that have acquired a scratch so far."""
        with self._lock:
            return len(self._arenas)

    def memory_bytes(self) -> int:
        """Combined footprint of every per-thread arena created so far."""
        with self._lock:
            return sum(arena.memory_bytes() for arena in self._arenas)

    def expected_bytes(self, n_vertices: int) -> int:
        """Steady-state footprint: at least one arena's worth, plus any extras.

        Mirrors :meth:`CrawlScratch.expected_bytes` for the common
        single-threaded case (exactly one arena) so reported overheads do not
        change when an executor is wrapped by the service but only ever
        queried from one thread.
        """
        with self._lock:
            arenas = list(self._arenas)
        if not arenas:
            return CrawlScratch.BYTES_PER_VERTEX * int(n_vertices)
        return sum(arena.expected_bytes(n_vertices) for arena in arenas)
