"""Reusable per-executor scratch memory for the query hot path.

The crawl needs a "have I visited this vertex?" test over all mesh vertices.
Allocating (and zeroing) a fresh boolean array per query re-introduces an
O(n_vertices) term into every query — exactly the dataset-size dependence the
crawl is designed to avoid (Section IV claims cost proportional to selectivity
and mesh degree only).  :class:`CrawlScratch` removes it with the classic
epoch-stamping trick: one persistent ``int32`` array holds, per vertex, the
epoch of the last query that visited it.  A vertex is "visited" in the current
query iff its stamp equals the current epoch, so starting a new query is a
single integer increment — no clearing, no allocation.

The arena also keeps a growable identity ramp (``0, 1, 2, ...``) that the
CSR neighbour gather slices instead of re-materialising ``np.arange`` per
frontier expansion.

For the fused multi-query crawl the scratch additionally owns a
*(vertex, query-bitset)* arena: per vertex, a ``uint64`` word whose bit ``q``
records "visited by query ``q`` of the current batch", guarded by its own
epoch-stamp array so that starting a new batch is again a single increment
(a stale stamp means the word is garbage and is treated as all-zeros).

A scratch instance is owned by one executor and is **not** thread-safe; two
concurrent queries must use two scratches.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CrawlScratch"]

#: stamp value reserved for "never visited" (fresh arenas are zero-filled)
_NEVER = 0
_EPOCH_LIMIT = np.iinfo(np.int32).max - 1


class CrawlScratch:
    """Epoch-stamped visited arena plus reusable gather buffers.

    Usage::

        stamps, epoch = scratch.acquire(mesh.n_vertices)
        stamps[v] = epoch            # mark v visited
        stamps[ids] == epoch         # visited test, vectorised

    ``acquire`` starts a new query: it bumps the epoch (making every previous
    stamp stale at zero cost) and grows the arena if the mesh gained vertices
    since the last query (e.g. after a restructuring step).
    """

    __slots__ = ("_stamps", "_epoch", "_iota", "_batch_stamps", "_batch_words", "_batch_epoch")

    def __init__(self) -> None:
        self._stamps = np.empty(0, dtype=np.int32)
        self._epoch = _NEVER
        self._iota = np.empty(0, dtype=np.int64)
        self._batch_stamps = np.empty(0, dtype=np.int32)
        self._batch_words = np.empty(0, dtype=np.uint64)
        self._batch_epoch = _NEVER

    # ------------------------------------------------------------------
    # the visited arena
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Epoch of the most recent :meth:`acquire` (0 before any query)."""
        return self._epoch

    def acquire(self, n_vertices: int) -> tuple[np.ndarray, int]:
        """Begin a new query; returns ``(stamps, epoch)`` covering ``n_vertices``.

        The returned array may be larger than ``n_vertices`` (capacity is kept
        across mesh shrinkage); only indices below ``n_vertices`` are
        meaningful to the caller.
        """
        if self._stamps.size < n_vertices:
            # Grow geometrically so repeated restructuring amortises; a grow
            # resets all stamps, which the epoch rollover below accounts for.
            capacity = max(n_vertices, 2 * self._stamps.size)
            self._stamps = np.zeros(capacity, dtype=np.int32)
            self._epoch = _NEVER
        elif self._epoch >= _EPOCH_LIMIT:
            # int32 epochs last ~2 billion queries; on rollover pay one clear.
            self._stamps.fill(_NEVER)
            self._epoch = _NEVER
        self._epoch += 1
        return self._stamps, self._epoch

    # ------------------------------------------------------------------
    # the (vertex, query-bitset) batch arena
    # ------------------------------------------------------------------
    @property
    def batch_epoch(self) -> int:
        """Epoch of the most recent :meth:`acquire_batch` (0 before any batch)."""
        return self._batch_epoch

    def acquire_batch(self, n_vertices: int) -> tuple[np.ndarray, np.ndarray, int]:
        """Begin a fused multi-query group; returns ``(stamps, words, epoch)``.

        ``words[v]`` is a ``uint64`` bitset whose bit ``q`` means "vertex ``v``
        was visited by query ``q`` of the current group" — but only where
        ``stamps[v] == epoch``; a stale stamp marks the word as garbage from an
        earlier group, to be treated as all-zeros and overwritten.  Like
        :meth:`acquire`, starting a group is a single epoch increment: the
        words are never cleared (``np.empty`` on growth), only the ``int32``
        stamp array pays a bulk clear on growth or on epoch rollover.
        """
        if self._batch_stamps.size < n_vertices:
            capacity = max(n_vertices, 2 * self._batch_stamps.size)
            self._batch_stamps = np.zeros(capacity, dtype=np.int32)
            self._batch_words = np.empty(capacity, dtype=np.uint64)
            self._batch_epoch = _NEVER
        elif self._batch_epoch >= _EPOCH_LIMIT:
            self._batch_stamps.fill(_NEVER)
            self._batch_epoch = _NEVER
        self._batch_epoch += 1
        return self._batch_stamps, self._batch_words, self._batch_epoch

    # ------------------------------------------------------------------
    # gather buffers
    # ------------------------------------------------------------------
    def iota(self, n: int) -> np.ndarray:
        """A read-only view of ``[0, 1, ..., n-1]`` backed by a reused buffer."""
        if self._iota.size < n:
            self._iota = np.arange(max(n, 2 * self._iota.size, 1024), dtype=np.int64)
        return self._iota[:n]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Current footprint of the arenas and buffers."""
        return int(
            self._stamps.nbytes
            + self._iota.nbytes
            + self._batch_stamps.nbytes
            + self._batch_words.nbytes
        )

    #: steady-state arena bytes per vertex: 4 (visited stamps) + 4 (batch
    #: stamps) + 8 (uint64 ownership words) — batching is the harness default,
    #: so both arenas count
    BYTES_PER_VERTEX = 16

    def expected_bytes(self, n_vertices: int) -> int:
        """Steady-state footprint for serving queries on an ``n_vertices`` mesh.

        Used by ``memory_overhead_bytes()`` so executors report a stable
        scratch cost regardless of whether the lazily grown arenas (visited
        stamps, batch stamps + ownership words) have been touched yet — the
        reported overhead must not jump depending on query history.
        """
        return max(self.memory_bytes(), self.BYTES_PER_VERTEX * int(n_vertices))
