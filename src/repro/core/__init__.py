"""OCTOPUS core: the paper's primary contribution."""

from .approximation import ApproximationPoint, evaluate_surface_approximation
from .cost_model import CostModel, calibrate_cost_model
from .crawler import BatchCrawlOutcome, CrawlOutcome, crawl, crawl_many
from .delta import DeformationDelta, TopologyDelta
from .directed_walk import BatchWalkOutcome, WalkOutcome, directed_walk, directed_walk_many
from .executor import ExecutionStrategy, StrategyWrapper
from .octopus import OctopusExecutor
from .octopus_con import OctopusConExecutor
from .resilience import (
    FallbackEvent,
    QueryBudget,
    ResilientStrategy,
    audit_adjacency,
    audit_surface_index,
    check_query_box,
    check_query_boxes,
    validate_delta,
    validate_topology_delta,
)
from .result import QueryCounters, QueryResult
from .scratch import CrawlScratch, ThreadLocalScratch, WalkArena
from .surface_index import SurfaceIndex, SurfaceProbeOutcome
from .uniform_grid import UniformGrid

__all__ = [
    "ApproximationPoint",
    "BatchCrawlOutcome",
    "BatchWalkOutcome",
    "CostModel",
    "CrawlOutcome",
    "CrawlScratch",
    "DeformationDelta",
    "ExecutionStrategy",
    "FallbackEvent",
    "OctopusConExecutor",
    "OctopusExecutor",
    "QueryBudget",
    "QueryCounters",
    "QueryResult",
    "ResilientStrategy",
    "StrategyWrapper",
    "SurfaceIndex",
    "SurfaceProbeOutcome",
    "ThreadLocalScratch",
    "TopologyDelta",
    "UniformGrid",
    "WalkArena",
    "WalkOutcome",
    "audit_adjacency",
    "audit_surface_index",
    "calibrate_cost_model",
    "check_query_box",
    "check_query_boxes",
    "crawl",
    "crawl_many",
    "directed_walk",
    "directed_walk_many",
    "evaluate_surface_approximation",
    "validate_delta",
    "validate_topology_delta",
]
