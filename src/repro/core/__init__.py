"""OCTOPUS core: the paper's primary contribution."""

from .approximation import ApproximationPoint, evaluate_surface_approximation
from .cost_model import CostModel, calibrate_cost_model
from .crawler import BatchCrawlOutcome, CrawlOutcome, crawl, crawl_many
from .delta import DeformationDelta, TopologyDelta
from .directed_walk import BatchWalkOutcome, WalkOutcome, directed_walk, directed_walk_many
from .executor import ExecutionStrategy
from .octopus import OctopusExecutor
from .octopus_con import OctopusConExecutor
from .result import QueryCounters, QueryResult
from .scratch import CrawlScratch, WalkArena
from .surface_index import SurfaceIndex, SurfaceProbeOutcome
from .uniform_grid import UniformGrid

__all__ = [
    "ApproximationPoint",
    "BatchCrawlOutcome",
    "BatchWalkOutcome",
    "CostModel",
    "CrawlOutcome",
    "CrawlScratch",
    "DeformationDelta",
    "ExecutionStrategy",
    "OctopusConExecutor",
    "OctopusExecutor",
    "QueryCounters",
    "QueryResult",
    "SurfaceIndex",
    "SurfaceProbeOutcome",
    "TopologyDelta",
    "UniformGrid",
    "WalkArena",
    "WalkOutcome",
    "calibrate_cost_model",
    "crawl",
    "crawl_many",
    "directed_walk",
    "directed_walk_many",
    "evaluate_surface_approximation",
]
