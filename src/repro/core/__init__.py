"""OCTOPUS core: the paper's primary contribution."""

from .approximation import ApproximationPoint, evaluate_surface_approximation
from .cost_model import CostModel, calibrate_cost_model
from .crawler import BatchCrawlOutcome, CrawlOutcome, crawl, crawl_many
from .directed_walk import WalkOutcome, directed_walk
from .executor import ExecutionStrategy
from .octopus import OctopusExecutor
from .octopus_con import OctopusConExecutor
from .result import QueryCounters, QueryResult
from .scratch import CrawlScratch
from .surface_index import SurfaceIndex, SurfaceProbeOutcome
from .uniform_grid import UniformGrid

__all__ = [
    "ApproximationPoint",
    "BatchCrawlOutcome",
    "CostModel",
    "CrawlOutcome",
    "CrawlScratch",
    "ExecutionStrategy",
    "OctopusConExecutor",
    "OctopusExecutor",
    "QueryCounters",
    "QueryResult",
    "SurfaceIndex",
    "SurfaceProbeOutcome",
    "UniformGrid",
    "WalkOutcome",
    "calibrate_cost_model",
    "crawl",
    "crawl_many",
    "directed_walk",
    "evaluate_surface_approximation",
]
