"""The OCTOPUS query execution strategy (Section IV, Algorithm 1).

A query is answered in three phases:

1. **Surface probe** — every vertex in the surface index is tested against the
   query box; the ones inside become crawl start vertices.  If none is inside,
   the probe also reports the surface vertex closest to the box.
2. **Directed walk** — only when the probe found no start vertex: walk from
   the closest surface vertex greedily towards the box.  Reaching a vertex
   inside the box yields a single start vertex; getting stuck means the query
   does not intersect the mesh and the result is empty.
3. **Crawling** — breadth-first traversal of mesh edges from the start
   vertices, restricted to the query box.

Because phases 1–3 read vertex positions directly from the mesh at query time,
OCTOPUS needs **no maintenance whatsoever** when the simulation deforms the
mesh; only the rare restructuring of connectivity requires updating the
surface index (handled in :meth:`OctopusExecutor.on_step`).
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import QueryError
from ..mesh import Box3D, PolyhedralMesh
from .crawler import crawl
from .directed_walk import directed_walk
from .executor import ExecutionStrategy
from .result import QueryCounters, QueryResult
from .surface_index import SurfaceIndex

__all__ = ["OctopusExecutor"]


class OctopusExecutor(ExecutionStrategy):
    """Range-query execution on dynamic meshes via surface probe + crawl.

    Parameters
    ----------
    surface_sample_fraction:
        Optional surface-approximation factor in (0, 1]: probe only this
        fraction of the surface vertices (chosen uniformly at random once, at
        prepare time).  ``None`` or 1.0 probes the full surface and guarantees
        exact results (Section IV-H2 / Figure 12 trade accuracy for speed).
    seed:
        Seed for the approximation sample.
    """

    name = "octopus"

    def __init__(self, surface_sample_fraction: float | None = None, seed: int = 0) -> None:
        super().__init__()
        if surface_sample_fraction is not None and not 0.0 < surface_sample_fraction <= 1.0:
            raise QueryError("surface_sample_fraction must lie in (0, 1]")
        self.surface_sample_fraction = surface_sample_fraction
        self.seed = seed
        self._surface_index: SurfaceIndex | None = None
        self._probe_ids: np.ndarray | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _build(self) -> float:
        start = time.perf_counter()
        self._surface_index = SurfaceIndex(self.mesh)
        self._refresh_probe_sample()
        return time.perf_counter() - start

    def _refresh_probe_sample(self) -> None:
        """Recompute which surface vertices the probe will examine."""
        assert self._surface_index is not None
        ids = self._surface_index.surface_ids()
        if self.surface_sample_fraction is None or self.surface_sample_fraction >= 1.0:
            self._probe_ids = ids
            return
        rng = np.random.default_rng(self.seed)
        sample_size = max(1, int(round(ids.size * self.surface_sample_fraction)))
        self._probe_ids = np.sort(rng.choice(ids, size=sample_size, replace=False))

    @property
    def surface_index(self) -> SurfaceIndex:
        if self._surface_index is None:
            raise RuntimeError("octopus: prepare() has not been called")
        return self._surface_index

    @property
    def is_approximate(self) -> bool:
        """True when the probe examines only a sample of the surface."""
        return self.surface_sample_fraction is not None and self.surface_sample_fraction < 1.0

    def on_step(self) -> float:
        """Maintenance after a simulation step.

        Mesh deformation requires nothing.  If the mesh was restructured since
        the index was built, the surface index is reconciled with insert and
        delete operations (the paper's hash-table maintenance) and the time is
        charged as maintenance.
        """
        if self._surface_index is None or not self._surface_index.is_stale():
            return 0.0
        start = time.perf_counter()
        inserted, removed = self._surface_index.refresh_from_mesh()
        self._refresh_probe_sample()
        elapsed = time.perf_counter() - start
        self.maintenance_time += elapsed
        self.maintenance_entries += inserted + removed
        return elapsed

    # ------------------------------------------------------------------
    # query execution (Algorithm 1)
    # ------------------------------------------------------------------
    def query(self, box: Box3D) -> QueryResult:
        mesh = self.mesh
        counters = QueryCounters()
        total_start = time.perf_counter()

        # Phase 1: surface probe over the (possibly sampled) surface vertex set.
        probe_start = time.perf_counter()
        probe_ids = self._probe_ids if self._probe_ids is not None else self.surface_index.surface_ids()
        counters.surface_probed += int(probe_ids.size)
        start_vertices: np.ndarray
        closest_id: int | None = None
        if probe_ids.size:
            positions = mesh.vertices[probe_ids]
            inside = np.all((positions >= box.lo) & (positions <= box.hi), axis=1)
            start_vertices = probe_ids[inside]
            if start_vertices.size == 0:
                delta = np.maximum(box.lo - positions, 0.0) + np.maximum(positions - box.hi, 0.0)
                distances = np.einsum("ij,ij->i", delta, delta)
                closest_id = int(probe_ids[np.argmin(distances)])
        else:
            start_vertices = np.empty(0, dtype=np.int64)
        probe_time = time.perf_counter() - probe_start

        # Phase 2: directed walk, only when the probe produced no start vertex.
        walk_time = 0.0
        if start_vertices.size == 0 and closest_id is not None:
            walk_start = time.perf_counter()
            walk = directed_walk(mesh, box, closest_id, counters)
            walk_time = time.perf_counter() - walk_start
            if walk.found_id is not None:
                start_vertices = np.asarray([walk.found_id], dtype=np.int64)

        # Phase 3: crawling from all start vertices.
        crawl_start = time.perf_counter()
        outcome = crawl(mesh, box, start_vertices, counters)
        crawl_time = time.perf_counter() - crawl_start

        total_time = time.perf_counter() - total_start
        return QueryResult(
            vertex_ids=outcome.result_ids,
            counters=counters,
            probe_time=probe_time,
            walk_time=walk_time,
            crawl_time=crawl_time,
            total_time=total_time,
        )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_overhead_bytes(self) -> int:
        """Surface index plus the crawl's visited bitmap (per-query scratch)."""
        if self._surface_index is None:
            return 0
        crawl_scratch = self.mesh.n_vertices  # one byte per vertex for the visited mask
        return self._surface_index.memory_bytes() + crawl_scratch
