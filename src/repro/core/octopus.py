"""The OCTOPUS query execution strategy (Section IV, Algorithm 1).

A query is answered in three phases:

1. **Surface probe** — every vertex in the surface index is tested against the
   query box; the ones inside become crawl start vertices.  If none is inside,
   the probe also reports the surface vertex closest to the box.
2. **Directed walk** — only when the probe found no start vertex: walk from
   the closest surface vertex greedily towards the box.  Reaching a vertex
   inside the box yields a single start vertex; getting stuck means the query
   does not intersect the mesh and the result is empty.
3. **Crawling** — breadth-first traversal of mesh edges from the start
   vertices, restricted to the query box.

Because phases 1–3 read vertex positions directly from the mesh at query time,
OCTOPUS needs **no maintenance whatsoever** when the simulation deforms the
mesh; only the rare restructuring of connectivity requires updating the
surface index (handled in :meth:`OctopusExecutor.on_step`).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..errors import QueryError
from ..kernels import KernelBackend, get_backend
from ..mesh import (
    Box3D,
    box_batch_chunk,
    boxes_to_arrays,
    points_boxes_distance_sq,
)
from .crawler import BatchCrawlOutcome, crawl, crawl_many
from .delta import DeformationDelta, TopologyDelta
from .directed_walk import directed_walk, fused_walk_phase
from .executor import ExecutionStrategy
from .resilience import check_query_box, check_query_boxes
from .result import QueryCounters, QueryResult
from .scratch import CrawlScratch, ThreadLocalScratch
from .surface_index import SurfaceIndex

__all__ = ["OctopusExecutor"]


class OctopusExecutor(ExecutionStrategy):
    """Range-query execution on dynamic meshes via surface probe + crawl.

    Parameters
    ----------
    surface_sample_fraction:
        Optional surface-approximation factor in (0, 1]: probe only this
        fraction of the surface vertices (chosen uniformly at random once, at
        prepare time).  ``None`` or 1.0 probes the full surface and guarantees
        exact results (Section IV-H2 / Figure 12 trade accuracy for speed).
    seed:
        Seed for the approximation sample.
    kernels:
        Kernel backend for the batched hot loops — a
        :class:`~repro.kernels.KernelBackend`, a spec string such as
        ``"numba"`` or ``"numpy:float32"``, or ``None`` to consult the
        ``REPRO_KERNEL_BACKEND`` environment variable (default NumPy).
        Sequential :meth:`query` calls always use the NumPy float64 path.
    """

    name = "octopus"

    def __init__(
        self,
        surface_sample_fraction: float | None = None,
        seed: int = 0,
        kernels: KernelBackend | str | None = None,
    ) -> None:
        super().__init__()
        if surface_sample_fraction is not None and not 0.0 < surface_sample_fraction <= 1.0:
            raise QueryError("surface_sample_fraction must lie in (0, 1]")
        self.surface_sample_fraction = surface_sample_fraction
        self.seed = seed
        self.kernels = get_backend(kernels)
        self._surface_index: SurfaceIndex | None = None
        self._probe_ids: np.ndarray | None = None
        #: per-thread crawl arenas (epoch-stamped visited + buffers); one
        #: CrawlScratch per thread keeps concurrent queries off each other's
        #: stamps — see the thread-safety contract in repro.core.scratch
        self._scratch = ThreadLocalScratch()
        #: fused-crawl accounting of the most recent query_many() batch
        self.last_fused_crawl: BatchCrawlOutcome | None = None

    @property
    def scratch(self) -> CrawlScratch:
        """The calling thread's crawl arena (created on first use)."""
        return self._scratch.get()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _build(self) -> float:
        start = time.perf_counter()
        self._surface_index = SurfaceIndex(self.mesh)
        self._refresh_probe_sample()
        return time.perf_counter() - start

    def _refresh_probe_sample(self) -> None:
        """Recompute which surface vertices the probe will examine."""
        assert self._surface_index is not None
        ids = self._surface_index.surface_ids()
        if self.surface_sample_fraction is None or self.surface_sample_fraction >= 1.0:
            self._probe_ids = ids
            return
        rng = np.random.default_rng(self.seed)
        sample_size = max(1, int(round(ids.size * self.surface_sample_fraction)))
        self._probe_ids = np.sort(rng.choice(ids, size=sample_size, replace=False))

    @property
    def surface_index(self) -> SurfaceIndex:
        """The surface index built at prepare time (raises before prepare())."""
        if self._surface_index is None:
            raise RuntimeError("octopus: prepare() has not been called")
        return self._surface_index

    @property
    def is_approximate(self) -> bool:
        """True when the probe examines only a sample of the surface."""
        return self.surface_sample_fraction is not None and self.surface_sample_fraction < 1.0

    def on_step(self, delta: DeformationDelta) -> float:
        """Maintenance after a simulation step.

        Mesh *deformation* requires nothing, however many vertices the delta
        reports moved: the surface index stores ids, not positions.  If the
        mesh was restructured since the index was built *without* the event
        pipeline announcing it (no :meth:`on_restructure` call), the surface
        index is reconciled here with a whole-surface diff — the safety net
        for ad-hoc ``replace_cells`` flows; event-driven restructuring goes
        through :meth:`on_restructure`, which narrows the reconciliation to
        the event's dirty ids.
        """
        if self._surface_index is None or not self._surface_index.is_stale():
            return 0.0
        start = time.perf_counter()
        inserted, removed = self._surface_index.refresh_from_mesh()
        self._refresh_probe_sample()
        elapsed = time.perf_counter() - start
        self.maintenance_time += elapsed
        self.maintenance_entries += inserted + removed
        return elapsed

    def on_restructure(self, delta: TopologyDelta) -> float:
        """Reconcile the surface index with a restructuring event.

        The paper's hash-table maintenance: individual vertex ids are
        inserted into or removed from the surface table.  A sparse delta
        narrows the reconciliation to its dirty ids (every surface-membership
        change lies inside them, see
        :class:`~repro.core.delta.TopologyDelta`), through the scratch's
        epoch-stamped delta arena, so the index work is proportional to the
        event — only the mesh-side surface re-extraction remains global.  A
        full delta falls back to the whole-surface diff, as does an index
        more than one connectivity version behind or an *empty* delta on a
        stale index (either way someone mutated connectivity outside the
        event pipeline, and those changes' membership flips can lie outside
        this event's dirty set — see :meth:`SurfaceIndex.versions_behind`).
        Every path leaves the identical table, hence bit-identical queries
        and counters.  The probe sample is re-drawn either way (the surface
        id set may have changed).
        """
        if self._surface_index is None:
            return 0.0
        if delta.is_empty and not self._surface_index.is_stale():
            return 0.0
        start = time.perf_counter()
        if delta.is_full or delta.is_empty or self._surface_index.versions_behind() > 1:
            inserted, removed = self._surface_index.refresh_from_mesh()
        else:
            inserted, removed = self._surface_index.refresh_from_mesh(
                dirty_ids=delta.dirty_ids, scratch=self.scratch
            )
        self._refresh_probe_sample()
        elapsed = time.perf_counter() - start
        self.maintenance_time += elapsed
        self.maintenance_entries += inserted + removed
        return elapsed

    # ------------------------------------------------------------------
    # query execution (Algorithm 1)
    # ------------------------------------------------------------------
    def query(self, box: Box3D) -> QueryResult:
        """Answer one range query via Algorithm 1: probe, walk, crawl.

        When a :attr:`~repro.core.executor.ExecutionStrategy.query_budget` is
        installed, one tracker meters the walk and crawl phases together (the
        probe is bounded by the surface size and stays unbudgeted).
        """
        check_query_box(box)
        counters = QueryCounters()

        # Phase 1: surface probe over the (possibly sampled) surface vertex set.
        probe_start = time.perf_counter()
        probe = self.surface_index.probe(box, counters, ids=self._probe_ids)
        probe_time = time.perf_counter() - probe_start

        # Phases 2 and 3: directed walk (only on a probe miss) and crawl.
        return self._walk_and_crawl(box, probe.inside_ids, probe.closest_id, counters, probe_time)

    def _walk_for_start(
        self,
        box: Box3D,
        start_vertices: np.ndarray,
        closest_id: int | None,
        counters: QueryCounters,
        budget=None,
    ) -> tuple[np.ndarray, float, bool]:
        """Phase 2 of Algorithm 1 (shared by the sequential and batched paths).

        On a probe miss, walks from the closest surface vertex towards the
        box; returns the (possibly updated) crawl start vertices, the walk
        seconds, and whether the walk ran to completion (budgets may truncate
        it).
        """
        walk_time = 0.0
        complete = True
        if start_vertices.size == 0 and closest_id is not None:
            walk_start = time.perf_counter()
            walk = directed_walk(
                self.mesh, box, closest_id, counters, scratch=self.scratch, budget=budget
            )
            walk_time = time.perf_counter() - walk_start
            complete = walk.complete
            if walk.found_id is not None:
                start_vertices = np.asarray([walk.found_id], dtype=np.int64)
        return start_vertices, walk_time, complete

    def _walk_and_crawl(
        self,
        box: Box3D,
        start_vertices: np.ndarray,
        closest_id: int | None,
        counters: QueryCounters,
        probe_time: float,
    ) -> QueryResult:
        """Phases 2–3 of Algorithm 1 for one box (the sequential tail)."""
        mesh = self.mesh
        budget = self._start_budget()
        start_vertices, walk_time, walk_complete = self._walk_for_start(
            box, start_vertices, closest_id, counters, budget
        )

        crawl_start = time.perf_counter()
        outcome = crawl(mesh, box, start_vertices, counters, scratch=self.scratch, budget=budget)
        crawl_time = time.perf_counter() - crawl_start
        return QueryResult(
            vertex_ids=outcome.result_ids,
            counters=counters,
            probe_time=probe_time,
            walk_time=walk_time,
            crawl_time=crawl_time,
            total_time=probe_time + walk_time + crawl_time,
            complete=walk_complete and outcome.complete,
        )

    def query_many(self, boxes: Sequence[Box3D]) -> list[QueryResult]:
        """Batched Algorithm 1: broadcasted probe, fused walks, one fused crawl.

        The surface is tested against *all* query boxes in a single NumPy
        pass (chunked to bound the broadcast), which amortises the probe's
        dispatch overhead across the batch; the directed walks of all probe
        misses advance in lockstep through one fused beam walk
        (:func:`~repro.core.directed_walk.directed_walk_many`), and the
        crawls of the whole batch are fused into one shared-frontier BFS
        (:func:`~repro.core.crawler.crawl_many`) so overlapping boxes share
        CSR gathers and position tests.  Results, counters and result ids are
        identical to sequential :meth:`query` calls; the shared probe, walk
        and crawl wall-clock is apportioned evenly across the batch (walk
        time across the boxes that walked).
        """
        box_list = check_query_boxes(boxes)
        self.last_fused_crawl = None  # set again below iff this batch fuses
        if len(box_list) <= 1:
            return [self.query(box) for box in box_list]
        mesh = self.mesh
        surface = self.surface_index  # raises before prepare()
        probe_ids = self._probe_ids if self._probe_ids is not None else surface.surface_ids()
        if surface.is_stale() or probe_ids.size == 0:
            # Rare paths (stale-index error, surface-less mesh): keep the
            # sequential code as the single source of truth.
            return [self.query(box) for box in box_list]

        probe_start = time.perf_counter()
        los, his = boxes_to_arrays(box_list)
        positions = mesh.vertices[probe_ids]
        chunk = box_batch_chunk(probe_ids.size)
        start_lists: list[np.ndarray] = []
        closest_ids: list[int | None] = []
        for lo_index in range(0, len(box_list), chunk):
            hi_index = min(lo_index + chunk, len(box_list))
            inside = self.kernels.points_in_boxes(
                positions, los[lo_index:hi_index], his[lo_index:hi_index]
            )
            hits = inside.any(axis=1)
            misses = np.nonzero(~hits)[0]
            closest_of_miss: dict[int, int] = {}
            if misses.size:
                distances = points_boxes_distance_sq(
                    positions, los[lo_index + misses], his[lo_index + misses]
                )
                nearest = np.argmin(distances, axis=1)
                closest_of_miss = {
                    int(row): int(probe_ids[nearest[k]]) for k, row in enumerate(misses)
                }
            for row in range(hi_index - lo_index):
                if hits[row]:
                    start_lists.append(probe_ids[inside[row]])
                    closest_ids.append(None)
                else:
                    start_lists.append(np.empty(0, dtype=np.int64))
                    closest_ids.append(closest_of_miss[row])
        # The probe cost is shared by the whole batch; apportion it evenly.
        probe_time = (time.perf_counter() - probe_start) / len(box_list)

        # Phase 2 fused across the probe misses, then phase 3 fused across the
        # whole batch.
        counters_list: list[QueryCounters] = []
        crawl_starts: list[np.ndarray] = []
        walk_indices: list[int] = []
        for index, (start_vertices, closest_id) in enumerate(zip(start_lists, closest_ids)):
            counters = QueryCounters()
            counters.surface_probed += int(probe_ids.size)
            if start_vertices.size == 0 and closest_id is not None:
                # Mirrors probe(): the closest-vertex pass costs one distance
                # evaluation per probed vertex.
                counters.probe_distance_computations += int(probe_ids.size)
                walk_indices.append(index)
            counters_list.append(counters)
            crawl_starts.append(start_vertices)

        # One tracker per query, shared by its walk and crawl phases — the
        # same metering a sequential query() applies.
        budgets = None
        if self.query_budget is not None:
            budgets = [self._start_budget(query_index=i) for i in range(len(box_list))]

        walk_times, walk_starts, walk_batch = fused_walk_phase(
            mesh,
            box_list,
            walk_indices,
            closest_ids,
            counters_list,
            self.scratch,
            budgets,
            kernels=self.kernels,
        )
        for index, start_vertices in walk_starts.items():
            crawl_starts[index] = start_vertices
        walk_complete = [True] * len(box_list)
        if walk_batch is not None:
            for index, walk in zip(walk_indices, walk_batch.outcomes):
                walk_complete[index] = walk.complete

        crawl_start = time.perf_counter()
        batch = crawl_many(
            mesh,
            box_list,
            crawl_starts,
            counters_list,
            scratch=self.scratch,
            budgets=budgets,
            kernels=self.kernels,
        )
        crawl_time = (time.perf_counter() - crawl_start) / len(box_list)
        if walk_batch is not None:
            walk_batch.attach_to(batch)
        self.last_fused_crawl = batch

        results: list[QueryResult] = []
        for index, (outcome, counters, walk_time) in enumerate(
            zip(batch.outcomes, counters_list, walk_times)
        ):
            results.append(
                QueryResult(
                    vertex_ids=outcome.result_ids,
                    counters=counters,
                    probe_time=probe_time,
                    walk_time=walk_time,
                    crawl_time=crawl_time,
                    total_time=probe_time + walk_time + crawl_time,
                    complete=walk_complete[index] and outcome.complete,
                )
            )
        return results

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_overhead_bytes(self) -> int:
        """Surface index plus the reusable crawl scratch arena."""
        if self._surface_index is None:
            return 0
        return self._surface_index.memory_bytes() + self._scratch.expected_bytes(self.mesh.n_vertices)
