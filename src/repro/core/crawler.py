"""The crawling phase (Section IV-B): breadth-first traversal of mesh edges.

Starting from one or more vertices inside the query box, the crawl repeatedly
expands the frontier along mesh edges, testing each newly reached vertex
against the box and never expanding vertices that fall outside it.  The number
of vertices and edges visited therefore depends only on the query selectivity
and the mesh degree — not on the dataset size — which is the source of
OCTOPUS's sub-linear scaling.

The frontier expansion is vectorised: all neighbours of the current frontier
are gathered with one CSR slice-gather, deduplicated, and tested against the
box in a single NumPy operation.  The visit order differs from a textbook
queue-based BFS but the set of visited vertices (and hence the result and the
work counters) is identical.

Per-query memory is O(frontier + result) when the caller supplies a
:class:`~repro.core.scratch.CrawlScratch`: the visited test uses the scratch's
epoch-stamped arena instead of a fresh O(n_vertices) bitmap, so repeated
queries on a prepared executor never pay a dataset-size allocation.
"""

from __future__ import annotations

import numpy as np

from ..mesh import Box3D, PolyhedralMesh, points_in_box
from .result import QueryCounters
from .scratch import CrawlScratch

__all__ = ["crawl", "CrawlOutcome"]


class CrawlOutcome:
    """Vertices retrieved by a crawl plus the work it performed."""

    __slots__ = ("result_ids", "n_vertices_visited", "n_edges_followed")

    def __init__(self, result_ids: np.ndarray, n_vertices_visited: int, n_edges_followed: int) -> None:
        self.result_ids = result_ids
        self.n_vertices_visited = n_vertices_visited
        self.n_edges_followed = n_edges_followed


def _gather_neighbors(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    scratch: CrawlScratch | None = None,
) -> np.ndarray:
    """All neighbour ids of the frontier vertices (with duplicates)."""
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ramp = scratch.iota(total) if scratch is not None else np.arange(total, dtype=np.int64)
    owner = np.repeat(np.arange(frontier.size), counts)
    offsets = ramp - np.repeat(np.cumsum(counts) - counts, counts)
    return indices[starts[owner] + offsets]


def crawl(
    mesh: PolyhedralMesh,
    box: Box3D,
    start_vertices: np.ndarray,
    counters: QueryCounters | None = None,
    scratch: CrawlScratch | None = None,
) -> CrawlOutcome:
    """Breadth-first crawl of the mesh restricted to the query box.

    Parameters
    ----------
    mesh:
        The mesh whose *current* vertex positions define "inside the box".
    box:
        The range query.
    start_vertices:
        Candidate starting vertex ids.  Vertices outside the box are filtered
        out (they contribute position tests to the counters but are not
        expanded), so callers may pass the raw surface-probe output.
    counters:
        Optional counter record updated in place.
    scratch:
        Reusable arena for the visited test and gather buffers.  When omitted
        a throwaway arena is allocated, which restores the old
        one-allocation-per-call behaviour; executors pass their own so
        repeated queries allocate only O(frontier + result) memory.
    """
    adjacency = mesh.adjacency
    positions = mesh.vertices
    indptr, indices = adjacency.indptr, adjacency.indices

    starts = np.unique(np.asarray(start_vertices, dtype=np.int64))
    n_vertices_visited = 0
    n_edges_followed = 0
    if starts.size == 0:
        return CrawlOutcome(np.empty(0, dtype=np.int64), 0, 0)

    if scratch is None:
        scratch = CrawlScratch()
    stamps, epoch = scratch.acquire(mesh.n_vertices)
    stamps[starts] = epoch
    inside_mask = points_in_box(positions[starts], box)
    n_vertices_visited += int(starts.size)
    frontier = starts[inside_mask]
    collected = [frontier]

    while frontier.size:
        neighbors = _gather_neighbors(indptr, indices, frontier, scratch)
        n_edges_followed += int(neighbors.size)
        if neighbors.size == 0:
            break
        candidates = np.unique(neighbors)
        candidates = candidates[stamps[candidates] != epoch]
        if candidates.size == 0:
            break
        stamps[candidates] = epoch
        n_vertices_visited += int(candidates.size)
        inside = points_in_box(positions[candidates], box)
        frontier = candidates[inside]
        if frontier.size:
            collected.append(frontier)

    result_ids = np.sort(np.concatenate(collected)) if collected else np.empty(0, dtype=np.int64)
    if counters is not None:
        counters.crawl_vertices_visited += n_vertices_visited
        counters.crawl_edges_followed += n_edges_followed
    return CrawlOutcome(result_ids, n_vertices_visited, n_edges_followed)
