"""The crawling phase (Section IV-B): breadth-first traversal of mesh edges.

Starting from one or more vertices inside the query box, the crawl repeatedly
expands the frontier along mesh edges, testing each newly reached vertex
against the box and never expanding vertices that fall outside it.  The number
of vertices and edges visited therefore depends only on the query selectivity
and the mesh degree — not on the dataset size — which is the source of
OCTOPUS's sub-linear scaling.

The frontier expansion is vectorised: all neighbours of the current frontier
are gathered with one CSR slice-gather, deduplicated, and tested against the
box in a single NumPy operation.  The visit order differs from a textbook
queue-based BFS but the set of visited vertices (and hence the result and the
work counters) is identical.

Per-query memory is O(frontier + result) when the caller supplies a
:class:`~repro.core.scratch.CrawlScratch`: the visited test uses the scratch's
epoch-stamped arena instead of a fresh O(n_vertices) bitmap, so repeated
queries on a prepared executor never pay a dataset-size allocation.

:func:`crawl_many` fuses a whole *batch* of crawls into one shared-frontier
BFS: each vertex carries a row of ``uint64`` ownership words — bit ``q % 64``
of word ``q // 64`` means "in query ``q``'s BFS" — and every level expands the
*union* frontier with a single CSR gather, a single deduplication, and a
single broadcasted position test.  The word axis widens with the batch, so a
single fused crawl serves arbitrarily large batches (there is no 64-query
grouping).  Overlapping boxes share the work of walking the same mesh region,
while the ownership bitmask keeps per-query counters exactly attributable:
each query's reported vertex visits and edge follows are bit-identical to
what an independent :func:`crawl` would have counted, and they sum to the
batch's attributed work (each fused operation counted once per owning query).
The *unique* fused work — the operations the machine actually performed — is
reported separately and is never larger than the attributed total.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..kernels import KernelBackend, get_backend
from ..mesh import (
    Box3D,
    PolyhedralMesh,
    boxes_to_arrays,
    csr_gather,
    points_in_box,
)
from .result import QueryCounters
from .scratch import CrawlScratch

if TYPE_CHECKING:  # pragma: no cover - typing only (no runtime cycle)
    from .resilience import BudgetTracker

__all__ = ["crawl", "crawl_many", "CrawlOutcome", "BatchCrawlOutcome"]

#: queries per ownership word (the bit width of one uint64); batches larger
#: than this widen the per-vertex ownership row instead of being chunked
GROUP_SIZE = 64

#: cap on the (candidates x queries) attribution transients one fused-crawl
#: level materialises (boolean membership matrices and their int64 edge
#: products); the candidate axis is chunked to stay under it, so
#: multi-thousand-query batches on large meshes keep a bounded scratch
#: footprint instead of allocating n_frontier x n_queries at once
_ATTRIBUTION_BUDGET = 4_000_000


def _attribution_chunk(n_queries: int) -> int:
    """Candidate-axis chunk size keeping one attribution transient under budget."""
    return max(1, _ATTRIBUTION_BUDGET // max(n_queries, 1))


class CrawlOutcome:
    """Vertices retrieved by a crawl plus the work it performed.

    ``complete`` is ``False`` when a query budget truncated the BFS under the
    ``"partial"`` policy: ``result_ids`` then holds the vertices collected up
    to and including the level on which the budget ran out — a subset of the
    exact answer.
    """

    __slots__ = ("result_ids", "n_vertices_visited", "n_edges_followed", "complete")

    def __init__(
        self,
        result_ids: np.ndarray,
        n_vertices_visited: int,
        n_edges_followed: int,
        complete: bool = True,
    ) -> None:
        self.result_ids = result_ids
        self.n_vertices_visited = n_vertices_visited
        self.n_edges_followed = n_edges_followed
        self.complete = complete


def _gather_neighbors(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    scratch: CrawlScratch | None = None,
    return_counts: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """All neighbour ids of the frontier vertices (with duplicates).

    With ``return_counts`` the per-frontier-vertex neighbour counts (vertex
    degrees) are returned alongside, in frontier order — the fused crawl uses
    them to attribute the shared gather to the owning queries.
    """
    neighbors, counts = csr_gather(
        indptr, indices, frontier, ramp=scratch.iota if scratch is not None else None
    )
    return (neighbors, counts) if return_counts else neighbors


def crawl(
    mesh: PolyhedralMesh,
    box: Box3D,
    start_vertices: np.ndarray,
    counters: QueryCounters | None = None,
    scratch: CrawlScratch | None = None,
    budget: "BudgetTracker | None" = None,
) -> CrawlOutcome:
    """Breadth-first crawl of the mesh restricted to the query box.

    Parameters
    ----------
    mesh:
        The mesh whose *current* vertex positions define "inside the box".
    box:
        The range query.
    start_vertices:
        Candidate starting vertex ids.  Vertices outside the box are filtered
        out (they contribute position tests to the counters but are not
        expanded), so callers may pass the raw surface-probe output.
    counters:
        Optional counter record updated in place.
    scratch:
        Reusable arena for the visited test and gather buffers.  When omitted
        a throwaway arena is allocated, which restores the old
        one-allocation-per-call behaviour; executors pass their own so
        repeated queries allocate only O(frontier + result) memory.
    budget:
        Optional :class:`~repro.core.resilience.BudgetTracker` charged once
        per BFS level with that level's freshly stamped vertices.  Budgets
        bound the *next* level, never split one: the level that crosses the
        limit is fully counted and fully collected, then the BFS stops
        (``"partial"`` policy, outcome flagged ``complete=False``) or a
        :class:`~repro.errors.QueryBudgetExceeded` is raised (``"raise"``).
        The fused :func:`crawl_many` truncates at the identical point.
    """
    adjacency = mesh.adjacency
    positions = mesh.vertices
    indptr, indices = adjacency.indptr, adjacency.indices

    starts = np.unique(np.asarray(start_vertices, dtype=np.int64))
    n_vertices_visited = 0
    n_edges_followed = 0
    if starts.size == 0:
        return CrawlOutcome(np.empty(0, dtype=np.int64), 0, 0)

    if scratch is None:
        scratch = CrawlScratch()
    stamps, epoch = scratch.acquire(mesh.n_vertices)
    stamps[starts] = epoch
    inside_mask = points_in_box(positions[starts], box)
    n_vertices_visited += int(starts.size)
    frontier = starts[inside_mask]
    collected = [frontier]
    complete = True
    if budget is not None and not budget.spend(vertices=int(starts.size)):
        complete = False
        frontier = frontier[:0]

    while frontier.size:
        scratch.check_epoch(epoch)
        neighbors = _gather_neighbors(indptr, indices, frontier, scratch)
        n_edges_followed += int(neighbors.size)
        if neighbors.size == 0:
            break
        candidates = np.unique(neighbors)
        candidates = candidates[stamps[candidates] != epoch]
        if candidates.size == 0:
            break
        stamps[candidates] = epoch
        n_vertices_visited += int(candidates.size)
        inside = points_in_box(positions[candidates], box)
        frontier = candidates[inside]
        if frontier.size:
            collected.append(frontier)
        if budget is not None and not budget.spend(vertices=int(candidates.size)):
            complete = False
            break

    result_ids = np.sort(np.concatenate(collected)) if collected else np.empty(0, dtype=np.int64)
    if counters is not None:
        counters.crawl_vertices_visited += n_vertices_visited
        counters.crawl_edges_followed += n_edges_followed
    return CrawlOutcome(result_ids, n_vertices_visited, n_edges_followed, complete)


class BatchCrawlOutcome:
    """Per-query outcomes of a fused crawl plus the batch's work accounting.

    Attributes
    ----------
    outcomes:
        One :class:`CrawlOutcome` per query, in order, bit-identical (result
        ids and counters) to independent :func:`crawl` calls.
    n_unique_vertices_visited / n_unique_edges_followed:
        The work the fused BFS actually performed: vertices stamped and edges
        gathered over *union* frontiers, each counted once no matter how many
        queries share it.  Never larger than the attributed totals; strictly
        smaller whenever overlapping queries visit the same region at the same
        BFS level.
    n_attributed_vertex_visits / n_attributed_edge_follows:
        The same work counted once per *owning query* — exactly the sum of the
        per-query counters, which is also what the sequential crawls would
        have performed in total.
    n_unique_walk_distance_computations / n_attributed_walk_distance_computations:
        The walk-phase analogue, filled by the executors when the batch's
        directed walks also ran fused
        (:func:`~repro.core.directed_walk.directed_walk_many`): unique counts
        each candidate position gathered per lockstep round once, attributed
        counts it once per walking query — exactly the sum of the per-query
        ``walk_distance_computations`` counters.  Zero when no query in the
        batch needed a walk.
    n_words:
        Width of the per-vertex ownership row (``ceil(n_queries / 64)``
        ``uint64`` words); batches beyond 64 queries take the multi-word path.
    n_groups:
        Number of fused BFS passes the batch required — always 1 for a
        non-empty batch now that ownership rows widen instead of chunking
        (kept for compatibility with earlier ≤64-query grouping).
    """

    __slots__ = (
        "outcomes",
        "n_unique_vertices_visited",
        "n_unique_edges_followed",
        "n_attributed_vertex_visits",
        "n_attributed_edge_follows",
        "n_unique_walk_distance_computations",
        "n_attributed_walk_distance_computations",
        "n_words",
        "n_groups",
    )

    def __init__(self) -> None:
        self.outcomes: list[CrawlOutcome] = []
        self.n_unique_vertices_visited = 0
        self.n_unique_edges_followed = 0
        self.n_attributed_vertex_visits = 0
        self.n_attributed_edge_follows = 0
        self.n_unique_walk_distance_computations = 0
        self.n_attributed_walk_distance_computations = 0
        self.n_words = 0
        self.n_groups = 0


def _or_duplicates(ids: np.ndarray, bits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicate ``ids``, OR-combining the ownership ``bits`` of duplicates.

    ``bits`` is ``(n, n_words)``; returns sorted unique ids and, per unique
    id, the union of the bitset rows of all its occurrences.
    """
    order = np.argsort(ids)
    sorted_ids = ids[order]
    sorted_bits = bits[order]
    boundaries = np.empty(sorted_ids.size, dtype=bool)
    boundaries[0] = True
    np.not_equal(sorted_ids[1:], sorted_ids[:-1], out=boundaries[1:])
    starts = np.nonzero(boundaries)[0]
    return sorted_ids[starts], np.bitwise_or.reduceat(sorted_bits, starts, axis=0)


class _OwnershipBits:
    """Multi-word query-ownership bitsets for one fused batch.

    Query ``q`` owns bit ``q % 64`` of word ``q // 64``; a set of queries is a
    ``(n_words,)`` ``uint64`` row, and a set per vertex a ``(n, n_words)``
    array.  All batch-wide bit plumbing (membership matrices, packing a
    boolean membership back into rows) lives here so :func:`_crawl_fused`
    reads like the single-word version.
    """

    __slots__ = ("n_queries", "n_words", "word_of", "mask_of")

    def __init__(self, n_queries: int) -> None:
        self.n_queries = n_queries
        self.n_words = (n_queries + GROUP_SIZE - 1) // GROUP_SIZE
        self.word_of = np.arange(n_queries, dtype=np.int64) // GROUP_SIZE
        self.mask_of = np.left_shift(
            np.uint64(1), (np.arange(n_queries, dtype=np.uint64) % np.uint64(GROUP_SIZE))
        )

    def row_for_query(self, query_index: int) -> np.ndarray:
        """The ``(n_words,)`` row with only query ``query_index``'s bit set."""
        row = np.zeros(self.n_words, dtype=np.uint64)
        row[self.word_of[query_index]] = self.mask_of[query_index]
        return row

    def owned_matrix(self, rows: np.ndarray) -> np.ndarray:
        """``(n, n_queries)`` boolean membership from ``(n, n_words)`` rows.

        Expands word by word so the transient ``uint64`` broadcast stays at
        ``n x 64`` per slab instead of ``n x n_queries`` all at once (the
        boolean result is what attribution needs and is 8x smaller).
        """
        out = np.empty((rows.shape[0], self.n_queries), dtype=bool)
        for word in range(self.n_words):
            lo = word * GROUP_SIZE
            hi = min(lo + GROUP_SIZE, self.n_queries)
            out[:, lo:hi] = (rows[:, word, None] & self.mask_of[None, lo:hi]) != np.uint64(0)
        return out

    def pack(self, membership: np.ndarray) -> np.ndarray:
        """``(n, n_words)`` rows from an ``(n, n_queries)`` boolean membership."""
        packed = np.zeros((membership.shape[0], self.n_words), dtype=np.uint64)
        for word in range(self.n_words):
            lo = word * GROUP_SIZE
            hi = min(lo + GROUP_SIZE, self.n_queries)
            slab = membership[:, lo:hi].astype(np.uint64)
            packed[:, word] = (slab * self.mask_of[None, lo:hi]).sum(axis=1, dtype=np.uint64)
        return packed

    def query_mask(self, rows: np.ndarray, query_index: int) -> np.ndarray:
        """Boolean mask of which ``(n, n_words)`` rows contain ``query_index``."""
        return (rows[:, self.word_of[query_index]] & self.mask_of[query_index]) != np.uint64(0)


def _crawl_fused(
    positions: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    los: np.ndarray,
    his: np.ndarray,
    start_lists: Sequence[np.ndarray],
    scratch: CrawlScratch,
    n_vertices: int,
    budgets: "Sequence[BudgetTracker | None] | None" = None,
    kernels: KernelBackend | None = None,
) -> tuple[list[CrawlOutcome], int, int, int]:
    """Fused shared-frontier BFS over the whole batch (any number of queries).

    Returns the per-query outcomes plus the batch's unique (fused) vertex and
    edge work and the ownership-row width in words.  The BFS is
    level-synchronised: level ``k`` of every query runs in the same iteration,
    so each query's stamp/visit/expand sequence is exactly the one its
    independent crawl would have executed.

    ``kernels`` selects the stamp-and-test implementation (see
    :mod:`repro.kernels`); the default is the NumPy reference backend, and
    every float64 backend is bit-identical to it.
    """
    if kernels is None:
        kernels = get_backend("numpy")
    n_queries = len(start_lists)
    bits = _OwnershipBits(n_queries)
    zero = np.uint64(0)
    stamps, words, epoch = scratch.acquire_batch(n_vertices, bits.n_words)
    word_columns = words[:, : bits.n_words]

    visited_per_query = np.zeros(n_queries, dtype=np.int64)
    edges_per_query = np.zeros(n_queries, dtype=np.int64)
    unique_visited = 0
    unique_edges = 0
    level_ids: list[np.ndarray] = []
    level_bits: list[np.ndarray] = []
    complete = np.ones(n_queries, dtype=bool)
    charged = np.zeros(n_queries, dtype=np.int64)

    def apply_budgets(
        frontier: np.ndarray, frontier_bits: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Charge each query's budget with this level's fresh visits.

        Mirrors the sequential crawl exactly: the level that crosses the
        limit is fully counted and its frontier fully collected; the
        exhausted query merely stops expanding, so its ownership bit is
        stripped from the *next* gather's frontier (the collected level
        rows keep the bit — the partial result includes this level).
        """
        nonlocal charged
        if budgets is None:
            return frontier, frontier_bits
        stripped = False
        for query_index, tracker in enumerate(budgets):
            if tracker is None or not complete[query_index]:
                continue
            spent = int(visited_per_query[query_index] - charged[query_index])
            if spent and not tracker.spend(vertices=spent):
                complete[query_index] = False
                # copy-on-strip: the rows collected in level_bits must keep
                # this query's ownership of its final level
                frontier_bits = frontier_bits & ~bits.row_for_query(query_index)
                stripped = True
        charged[:] = visited_per_query
        if stripped and frontier.size:
            keep = (frontier_bits != zero).any(axis=1)
            if not keep.all():
                frontier = frontier[keep]
                frontier_bits = frontier_bits[keep]
        return frontier, frontier_bits

    def stamp_and_test(candidates: np.ndarray, reach_bits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Stamp newly reached (vertex, query) pairs, count them, test positions.

        Returns the next union frontier (vertices inside at least one owning
        box) and its ownership rows.  The loop itself lives in the kernel
        backend (:meth:`repro.kernels.KernelBackend.crawl_stamp_and_test`);
        the NumPy reference runs the per-query attribution and the position
        tests in candidate-axis chunks so the expanded
        ``(candidates, n_queries)`` boolean transients stay under
        ``_ATTRIBUTION_BUDGET`` however large the batch is, while compiled
        backends fuse the whole level into one pass — either way the
        accumulated counters and the resulting frontier are identical.
        """
        nonlocal unique_visited
        frontier, frontier_bits, n_fresh = kernels.crawl_stamp_and_test(
            candidates,
            reach_bits,
            stamps,
            word_columns,
            epoch,
            positions,
            los,
            his,
            bits,
            visited_per_query,
            _attribution_chunk(n_queries),
        )
        unique_visited += n_fresh
        if frontier.size:
            level_ids.append(frontier)
            level_bits.append(frontier_bits)
        return frontier, frontier_bits

    # Level 0: each query's deduplicated start vertices, merged into one
    # ownership-tagged union (a start shared by several queries is stamped,
    # counted, and position-tested once for all of them).
    id_chunks: list[np.ndarray] = []
    bit_chunks: list[np.ndarray] = []
    for query_index, raw_starts in enumerate(start_lists):
        starts = np.unique(np.asarray(raw_starts, dtype=np.int64))
        if starts.size:
            id_chunks.append(starts)
            bit_chunks.append(
                np.broadcast_to(bits.row_for_query(query_index), (starts.size, bits.n_words))
            )
    if id_chunks:
        candidates, reach_bits = _or_duplicates(
            np.concatenate(id_chunks), np.concatenate(bit_chunks)
        )
        frontier, frontier_bits = apply_budgets(*stamp_and_test(candidates, reach_bits))

        while frontier.size:
            scratch.check_batch_epoch(epoch)
            neighbors, degrees = _gather_neighbors(
                indptr, indices, frontier, scratch, return_counts=True
            )
            # Edge attribution in frontier-axis chunks: the expanded
            # (frontier, n_queries) int64 product is the largest transient of
            # the fused crawl, so it is the most important one to bound.
            chunk = _attribution_chunk(n_queries)
            for lo in range(0, frontier.size, chunk):
                hi = lo + chunk
                owned = bits.owned_matrix(frontier_bits[lo:hi])
                edges_per_query += (degrees[lo:hi, None] * owned).sum(axis=0)
            unique_edges += int(neighbors.size)
            if neighbors.size == 0:
                break
            neighbor_bits = np.repeat(frontier_bits, degrees, axis=0)
            candidates, reach_bits = _or_duplicates(neighbors, neighbor_bits)
            frontier, frontier_bits = apply_budgets(*stamp_and_test(candidates, reach_bits))

    if level_ids:
        all_ids = np.concatenate(level_ids)
        all_bits = np.concatenate(level_bits)
    else:
        all_ids = np.empty(0, dtype=np.int64)
        all_bits = np.empty((0, bits.n_words), dtype=np.uint64)
    outcomes = []
    for query_index in range(n_queries):
        mask = bits.query_mask(all_bits, query_index)
        outcomes.append(
            CrawlOutcome(
                np.sort(all_ids[mask]),
                int(visited_per_query[query_index]),
                int(edges_per_query[query_index]),
                bool(complete[query_index]),
            )
        )
    return outcomes, unique_visited, unique_edges, bits.n_words


def crawl_many(
    mesh: PolyhedralMesh,
    boxes: Sequence[Box3D],
    start_lists: Sequence[np.ndarray],
    counters_list: Sequence[QueryCounters | None] | None = None,
    scratch: CrawlScratch | None = None,
    budgets: "Sequence[BudgetTracker | None] | None" = None,
    kernels: KernelBackend | None = None,
) -> BatchCrawlOutcome:
    """Fused breadth-first crawl of a whole batch of range queries.

    All BFS levels run lock-step over one *union* frontier, so overlapping
    boxes share CSR gathers, deduplication, and position tests instead of
    re-walking the same region once per query.  Ownership is tracked with
    multi-word per-vertex bitsets (``ceil(n_queries / 64)`` ``uint64`` words),
    so the whole batch — however large — executes as **one** fused crawl;
    results and per-query counters are bit-identical to calling :func:`crawl`
    once per box with the same start vertices.

    Parameters
    ----------
    mesh:
        The mesh whose current vertex positions define "inside the box".
    boxes:
        The range queries.
    start_lists:
        One array of candidate start vertex ids per box (the surface-probe or
        grid/walk output); an empty array yields an empty result for that box.
    counters_list:
        Optional per-query counter records updated in place (entries may be
        ``None`` to skip a query's accounting).
    scratch:
        Reusable arena providing the (vertex, query-bitset) visited words and
        gather buffers; a throwaway arena is allocated when omitted.
    budgets:
        Optional per-query :class:`~repro.core.resilience.BudgetTracker`
        records (entries may be ``None``); each query truncates (or raises)
        at exactly the BFS level its sequential :func:`crawl` would, while
        the remaining queries keep crawling.
    kernels:
        Optional :class:`repro.kernels.KernelBackend` (or ``None`` for the
        NumPy reference) running the stamp-and-test hot loop; float64
        backends are bit-identical, the float32 mode trades boundary
        exactness for bandwidth (see ``docs/performance.md``).
    """
    box_list = list(boxes)
    if len(start_lists) != len(box_list):
        raise ValueError(
            f"crawl_many: {len(box_list)} boxes but {len(start_lists)} start lists"
        )
    if counters_list is not None and len(counters_list) != len(box_list):
        raise ValueError(
            f"crawl_many: {len(box_list)} boxes but {len(counters_list)} counter records"
        )
    if budgets is not None and len(budgets) != len(box_list):
        raise ValueError(
            f"crawl_many: {len(box_list)} boxes but {len(budgets)} budget trackers"
        )
    if scratch is None:
        scratch = CrawlScratch()

    batch = BatchCrawlOutcome()
    if not box_list:
        return batch
    adjacency = mesh.adjacency
    positions = mesh.vertices
    indptr, indices = adjacency.indptr, adjacency.indices

    los, his = boxes_to_arrays(box_list)
    outcomes, unique_visited, unique_edges, n_words = _crawl_fused(
        positions, indptr, indices, los, his, start_lists, scratch, mesh.n_vertices, budgets,
        kernels=kernels,
    )
    batch.outcomes.extend(outcomes)
    batch.n_unique_vertices_visited += unique_visited
    batch.n_unique_edges_followed += unique_edges
    batch.n_words = n_words
    batch.n_groups = 1

    for outcome in batch.outcomes:
        batch.n_attributed_vertex_visits += outcome.n_vertices_visited
        batch.n_attributed_edge_follows += outcome.n_edges_followed
    if counters_list is not None:
        for counters, outcome in zip(counters_list, batch.outcomes):
            if counters is not None:
                counters.crawl_vertices_visited += outcome.n_vertices_visited
                counters.crawl_edges_followed += outcome.n_edges_followed
    return batch
