"""The surface index (Section IV-E).

OCTOPUS's only auxiliary data structure is a hash table of the vertices on the
mesh surface.  It is built once from the global face list, is completely
oblivious to vertex positions (so mesh deformation never requires
maintenance), and only changes when the mesh is *restructured* — cells are
split or merged — in which case individual vertex ids are inserted into or
removed from the table.

The implementation keeps two views of the same set:

* ``_table`` — a Python dict keyed by vertex id, mirroring the paper's hash
  table of pointers and giving O(1) insert/delete/membership;
* ``_ids_cache`` — a NumPy array of the ids, rebuilt lazily after
  modifications, which lets the surface probe gather all surface positions in
  one vectorised operation.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from ..errors import SpatialIndexError
from ..mesh import Box3D, PolyhedralMesh, points_boxes_distance_sq, points_in_box
from .result import QueryCounters
from .scratch import CrawlScratch

__all__ = ["SurfaceIndex", "SurfaceProbeOutcome"]


class SurfaceProbeOutcome:
    """Result of probing the surface against one query box.

    Attributes
    ----------
    inside_ids:
        Surface vertex ids whose current position lies inside the query.
    closest_id:
        The surface vertex closest to the query (only computed when no surface
        vertex is inside, mirroring Algorithm 1), else ``None``.
    closest_distance:
        Distance of ``closest_id`` to the query box.
    n_probed:
        Number of surface vertices examined.
    """

    __slots__ = ("inside_ids", "closest_id", "closest_distance", "n_probed")

    def __init__(
        self,
        inside_ids: np.ndarray,
        closest_id: int | None,
        closest_distance: float,
        n_probed: int,
    ) -> None:
        self.inside_ids = inside_ids
        self.closest_id = closest_id
        self.closest_distance = closest_distance
        self.n_probed = n_probed


class SurfaceIndex:
    """Hash-table index over the vertices of the mesh surface."""

    def __init__(self, mesh: PolyhedralMesh) -> None:
        self._mesh = mesh
        start = time.perf_counter()
        surface_ids = mesh.surface_vertices()
        self._table: dict[int, bool] = {int(v): True for v in surface_ids}
        self._ids_cache: np.ndarray | None = np.asarray(surface_ids, dtype=np.int64)
        self._connectivity_version = mesh.connectivity_version
        #: seconds spent building the index (reported as preprocessing time)
        self.build_time = time.perf_counter() - start

    # ------------------------------------------------------------------
    # contents
    # ------------------------------------------------------------------
    @property
    def mesh(self) -> PolyhedralMesh:
        """The mesh this index was built over."""
        return self._mesh

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, vertex_id: int) -> bool:
        return int(vertex_id) in self._table

    def surface_ids(self) -> np.ndarray:
        """The surface vertex ids as a sorted NumPy array (cached)."""
        if self._ids_cache is None:
            ids = np.fromiter(self._table.keys(), dtype=np.int64, count=len(self._table))
            ids.sort()
            self._ids_cache = ids
        return self._ids_cache

    def memory_bytes(self) -> int:
        """Approximate footprint: one hash entry plus one cached id per vertex."""
        # A CPython dict entry costs ~100 bytes; the id cache costs 8 bytes/entry.
        return len(self._table) * 100 + len(self._table) * 8

    # ------------------------------------------------------------------
    # maintenance (only needed on mesh restructuring)
    # ------------------------------------------------------------------
    def insert(self, vertex_ids: Iterable[int]) -> int:
        """Insert vertices that joined the surface; returns how many were new."""
        added = 0
        for vertex_id in vertex_ids:
            key = int(vertex_id)
            if key not in self._table:
                self._table[key] = True
                added += 1
        if added:
            self._ids_cache = None
        return added

    def remove(self, vertex_ids: Iterable[int]) -> int:
        """Remove vertices that left the surface; returns how many were present."""
        removed = 0
        for vertex_id in vertex_ids:
            if self._table.pop(int(vertex_id), None) is not None:
                removed += 1
        if removed:
            self._ids_cache = None
        return removed

    def refresh_from_mesh(
        self,
        dirty_ids: np.ndarray | None = None,
        scratch: CrawlScratch | None = None,
    ) -> tuple[int, int]:
        """Reconcile the index with the mesh after a restructuring event.

        Computes the difference between the current table and the mesh's
        recomputed surface and applies the minimal set of inserts and deletes
        (the paper's hash-table maintenance).  Returns ``(inserted, removed)``.

        ``dirty_ids`` narrows the reconciliation to the given vertex ids —
        for localized restructuring events (the dirty set of a
        :class:`~repro.core.delta.TopologyDelta`, i.e. the affected cells'
        vertices plus any inserted centroids) only the dirty vertices'
        membership is diffed, instead of a whole-surface set difference.  The
        caller guarantees that every membership change lies inside
        ``dirty_ids``; vertices outside it are assumed unchanged (their
        entries are kept as they are).  The dirty-membership test
        binary-searches the fresh surface array (sorted by the extraction
        contract) — O(k log s) for k dirty vertices on an s-vertex surface,
        allocating nothing proportional to the surface; for *large* dirty
        sets ``scratch`` supplies the epoch-stamped delta arena
        (:meth:`~repro.core.scratch.CrawlScratch.acquire_delta`), whose one
        stamp pass and one gather beat k binary searches once k approaches
        the surface size.  The sorted id cache is spliced in place on the
        narrowed path (two ``searchsorted`` passes over the few changed
        ids), so the next probe never pays the whole-surface re-sort the
        lazy rebuild would cost.
        """
        # Sorted unique by the surface-extraction contract (np.unique over
        # the boundary faces); both the full path's set algebra and the
        # narrowed path's binary searches rely on it.
        fresh = np.asarray(self._mesh.surface_vertices(), dtype=np.int64)
        if dirty_ids is None:
            current = self.surface_ids()
            inserted = self.insert(np.setdiff1d(fresh, current, assume_unique=True))
            removed = self.remove(np.setdiff1d(current, fresh, assume_unique=True))
            # Both diffs were applied, so the fresh surface *is* the new id set.
            self._ids_cache = fresh
        else:
            dirty = np.unique(np.asarray(dirty_ids, dtype=np.int64))
            if fresh.size == 0:
                on_surface = np.zeros(dirty.size, dtype=bool)
            elif scratch is not None and dirty.size * 8 > fresh.size:
                stamps, epoch = scratch.acquire_delta(self._mesh.n_vertices)
                stamps[fresh] = epoch
                on_surface = stamps[dirty] == epoch
            else:
                slots = np.minimum(np.searchsorted(fresh, dirty), fresh.size - 1)
                on_surface = fresh[slots] == dirty
            cache = self._ids_cache
            to_insert = np.asarray(
                [v for v in dirty[on_surface] if int(v) not in self._table], dtype=np.int64
            )
            to_remove = np.asarray(
                [v for v in dirty[~on_surface] if int(v) in self._table], dtype=np.int64
            )
            inserted = self.insert(to_insert)
            removed = self.remove(to_remove)
            if cache is not None:
                # Splice the (sorted, deduplicated) changes into the sorted
                # cache instead of re-sorting the whole table lazily.
                if to_remove.size:
                    cache = np.delete(cache, np.searchsorted(cache, to_remove))
                if to_insert.size:
                    cache = np.insert(cache, np.searchsorted(cache, to_insert), to_insert)
                self._ids_cache = cache
        self._connectivity_version = self._mesh.connectivity_version
        return inserted, removed

    def is_stale(self) -> bool:
        """True when the mesh connectivity changed since the last refresh."""
        return self._connectivity_version != self._mesh.connectivity_version

    def versions_behind(self) -> int:
        """Connectivity bumps the index has not reconciled yet.

        One restructuring event corresponds to exactly one bump, so a caller
        holding a single event's dirty set may narrow the reconciliation only
        when this is at most 1 — a larger gap means additional, unannounced
        connectivity changes whose membership flips can lie outside the
        event's dirty ids, and only a whole-surface refresh is safe.
        """
        return self._mesh.connectivity_version - self._connectivity_version

    # ------------------------------------------------------------------
    # the surface probe (Section IV-C)
    # ------------------------------------------------------------------
    def probe(
        self,
        box: Box3D,
        counters: QueryCounters | None = None,
        ids: np.ndarray | None = None,
    ) -> SurfaceProbeOutcome:
        """Scan the surface vertices and split them into inside / closest-outside.

        The probe always reads the *current* vertex positions from the mesh,
        so it is correct regardless of how far vertices moved since the index
        was built.

        Parameters
        ----------
        box:
            The query box.
        counters:
            Optional counter record updated in place.
        ids:
            Optional subset of surface vertex ids to probe instead of the full
            surface (used by the approximate executor, which probes a fixed
            random sample).  Defaults to :meth:`surface_ids`.
        """
        if self.is_stale():
            raise SpatialIndexError(
                "surface index is stale: the mesh was restructured; call refresh_from_mesh()"
            )
        if ids is None:
            ids = self.surface_ids()
        n_probed = int(ids.size)
        if counters is not None:
            counters.surface_probed += n_probed
        if n_probed == 0:
            return SurfaceProbeOutcome(np.empty(0, dtype=np.int64), None, float("inf"), 0)
        positions = self._mesh.vertices[ids]
        inside_mask = points_in_box(positions, box)
        inside_ids = ids[inside_mask]
        if inside_ids.size:
            return SurfaceProbeOutcome(inside_ids, None, 0.0, n_probed)
        # Select the closest vertex on *squared* distances through the same
        # kernel the batched probe broadcasts, so sequential and batched paths
        # pick bit-identical argmins even on sqrt-rounding near-ties.
        distances_sq = points_boxes_distance_sq(positions, box.lo[None, :], box.hi[None, :])[0]
        if counters is not None:
            counters.probe_distance_computations += n_probed
        closest_pos = int(np.argmin(distances_sq))
        return SurfaceProbeOutcome(
            np.empty(0, dtype=np.int64),
            int(ids[closest_pos]),
            float(np.sqrt(distances_sq[closest_pos])),
            n_probed,
        )
