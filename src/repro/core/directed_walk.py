"""The directed walk phase (Section IV-D).

When no surface vertex lies inside the query box — either because the query is
fully enclosed in the mesh interior or because it misses the mesh entirely —
OCTOPUS walks from the surface vertex closest to the query, greedily stepping
to whichever neighbour is nearest to the query box, until it either enters the
box (success: the reached vertex seeds the crawl) or can no longer get closer
(the query does not intersect the mesh; the result is empty).
"""

from __future__ import annotations

import numpy as np

from ..mesh import Box3D, PolyhedralMesh, point_box_distance, points_box_distance
from .result import QueryCounters

__all__ = ["directed_walk", "WalkOutcome"]


class WalkOutcome:
    """Result of a directed walk.

    Attributes
    ----------
    found_id:
        Id of the first vertex reached inside the query box, or ``None`` when
        the walk got stuck (no neighbour closer to the box than the current
        vertex), which Algorithm 1 interprets as "the query misses the mesh".
    n_steps:
        Number of vertices stepped through (including the start).
    path:
        Vertex ids visited, in order (useful for debugging and visual examples).
    """

    __slots__ = ("found_id", "n_steps", "path")

    def __init__(self, found_id: int | None, n_steps: int, path: list[int]) -> None:
        self.found_id = found_id
        self.n_steps = n_steps
        self.path = path


def directed_walk(
    mesh: PolyhedralMesh,
    box: Box3D,
    start_vertex: int,
    counters: QueryCounters | None = None,
    max_steps: int | None = None,
) -> WalkOutcome:
    """Greedy walk along mesh edges towards the query box.

    Parameters
    ----------
    mesh:
        Mesh providing adjacency and *current* positions.
    box:
        Target query box.
    start_vertex:
        Vertex to start walking from (typically the surface vertex closest to
        the box, or a vertex suggested by the stale grid in OCTOPUS-CON).
    counters:
        Optional counter record updated in place.
    max_steps:
        Safety bound on the number of steps (defaults to the vertex count, so
        the walk always terminates even on adversarial inputs).
    """
    adjacency = mesh.adjacency
    positions = mesh.vertices
    limit = max_steps if max_steps is not None else mesh.n_vertices + 1

    current = int(start_vertex)
    current_distance = point_box_distance(positions[current], box)
    n_steps = 1
    n_distance = 1
    path = [current]

    found: int | None = None
    if current_distance == 0.0:
        found = current
    else:
        while n_steps < limit:
            neighbors = adjacency.neighbors(current)
            if neighbors.size == 0:
                break
            distances = points_box_distance(positions[neighbors], box)
            n_distance += int(neighbors.size)
            best = int(np.argmin(distances))
            best_distance = float(distances[best])
            if best_distance >= current_distance:
                # No neighbour is strictly closer: the walk is stuck, meaning
                # the query box does not intersect the mesh (Algorithm 1).
                break
            current = int(neighbors[best])
            current_distance = best_distance
            n_steps += 1
            path.append(current)
            if current_distance == 0.0:
                found = current
                break

    if counters is not None:
        counters.walk_vertices_visited += n_steps
        counters.walk_distance_computations += n_distance
    return WalkOutcome(found, n_steps, path)
