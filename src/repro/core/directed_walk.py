"""The directed walk phase (Section IV-D).

When no surface vertex lies inside the query box — either because the query is
fully enclosed in the mesh interior or because it misses the mesh entirely —
OCTOPUS walks from the surface vertex closest to the query, greedily stepping
towards the box until it either enters the box (success: the reached vertex
seeds the crawl) or can no longer get closer (the query does not intersect the
mesh; the result is empty).

The walk is vectorised as a greedy beam: each step gathers the neighbours of
up to ``beam_width`` frontier candidates in one CSR gather, evaluates all
their box distances in one NumPy pass, and keeps the ``beam_width`` closest
strict improvements.  The default width of 1 reproduces the paper's
single-vertex greedy walk (Algorithm 1) exactly — same steps, same stuck
condition, same work counters; wider beams are opt-in, amortise NumPy
dispatch over several candidates per step, and are strictly more robust (a
beam only gets stuck where every candidate is a local minimum).  Either way
the bounded outer loop over steps remains, but no per-vertex Python work
happens inside it.

The walk also accepts multiple start vertices (multi-source): OCTOPUS-CON can
seed it with several grid candidates and the batched query path can reuse one
call per query box.
"""

from __future__ import annotations

import numpy as np

from ..mesh import Box3D, PolyhedralMesh, points_box_distance
from .crawler import _gather_neighbors
from .result import QueryCounters
from .scratch import CrawlScratch

__all__ = ["directed_walk", "WalkOutcome"]


class WalkOutcome:
    """Result of a directed walk.

    Attributes
    ----------
    found_id:
        Id of the first vertex reached inside the query box, or ``None`` when
        the walk got stuck (no candidate closer to the box than the best
        vertex seen so far), which Algorithm 1 interprets as "the query misses
        the mesh".
    n_steps:
        Number of accepted steps (including the start); equals ``len(path)``.
    path:
        The best vertex id after each step, in order (useful for debugging and
        visual examples).  Distances along the path strictly decrease.
    """

    __slots__ = ("found_id", "n_steps", "path")

    def __init__(self, found_id: int | None, n_steps: int, path: list[int]) -> None:
        self.found_id = found_id
        self.n_steps = n_steps
        self.path = path


def directed_walk(
    mesh: PolyhedralMesh,
    box: Box3D,
    start_vertex: int | np.ndarray,
    counters: QueryCounters | None = None,
    max_steps: int | None = None,
    beam_width: int = 1,
    scratch: CrawlScratch | None = None,
) -> WalkOutcome:
    """Greedy beam walk along mesh edges towards the query box.

    Parameters
    ----------
    mesh:
        Mesh providing adjacency and *current* positions.
    box:
        Target query box.
    start_vertex:
        Vertex id — or array of vertex ids (multi-source) — to start walking
        from (typically the surface vertex closest to the box, or vertices
        suggested by the stale grid in OCTOPUS-CON).
    counters:
        Optional counter record updated in place.
    max_steps:
        Safety bound on the number of accepted steps (defaults to the vertex
        count, so the walk always terminates even on adversarial inputs).
    beam_width:
        Number of candidate vertices carried per step; the default of 1 is
        the paper's single-vertex greedy walk, wider beams trade extra
        distance computations for robustness on non-convex meshes.
    scratch:
        Optional shared arena whose gather buffers the CSR neighbour gather
        reuses.
    """
    if beam_width < 1:
        raise ValueError("beam_width must be at least 1")
    adjacency = mesh.adjacency
    positions = mesh.vertices
    indptr, indices = adjacency.indptr, adjacency.indices
    limit = max_steps if max_steps is not None else mesh.n_vertices + 1

    starts = np.unique(np.atleast_1d(np.asarray(start_vertex, dtype=np.int64)))
    if starts.size == 0:
        return WalkOutcome(None, 0, [])
    start_distances = points_box_distance(positions[starts], box)
    n_distance = int(starts.size)
    order = np.argsort(start_distances)[:beam_width]
    frontier = starts[order]
    best_distance = float(start_distances[order[0]])
    best_id = int(frontier[0])
    n_steps = 1
    path = [best_id]

    found: int | None = best_id if best_distance == 0.0 else None
    while found is None and n_steps < limit:
        neighbors = _gather_neighbors(indptr, indices, frontier, scratch)
        if neighbors.size == 0:
            break
        candidates = np.unique(neighbors)
        distances = points_box_distance(positions[candidates], box)
        n_distance += int(candidates.size)
        improving = distances < best_distance
        if not improving.any():
            # No candidate is strictly closer: the walk is stuck, meaning the
            # query box does not intersect the mesh (Algorithm 1).
            break
        candidates = candidates[improving]
        distances = distances[improving]
        order = np.argsort(distances)[:beam_width]
        frontier = candidates[order]
        best_distance = float(distances[order[0]])
        best_id = int(frontier[0])
        n_steps += 1
        path.append(best_id)
        if best_distance == 0.0:
            found = best_id

    if counters is not None:
        counters.walk_vertices_visited += n_steps
        counters.walk_distance_computations += n_distance
    return WalkOutcome(found, n_steps, path)
