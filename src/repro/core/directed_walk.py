"""The directed walk phase (Section IV-D).

When no surface vertex lies inside the query box — either because the query is
fully enclosed in the mesh interior or because it misses the mesh entirely —
OCTOPUS walks from the surface vertex closest to the query, greedily stepping
towards the box until it either enters the box (success: the reached vertex
seeds the crawl) or can no longer get closer (the query does not intersect the
mesh; the result is empty).

The walk is vectorised as a greedy beam: each step gathers the neighbours of
up to ``beam_width`` frontier candidates in one CSR gather, evaluates all
their box distances in one NumPy pass, and keeps the ``beam_width`` closest
strict improvements.  The default width of 1 reproduces the paper's
single-vertex greedy walk (Algorithm 1) exactly — same steps, same stuck
condition, same work counters; wider beams are opt-in, amortise NumPy
dispatch over several candidates per step, and are strictly more robust (a
beam only gets stuck where every candidate is a local minimum).  Either way
the bounded outer loop over steps remains, but no per-vertex Python work
happens inside it.

The walk also accepts multiple start vertices (multi-source): OCTOPUS-CON can
seed it with several grid candidates and the batched query path can reuse one
call per query box.

:func:`directed_walk_many` fuses the walks of a whole query batch: all
per-box beams advance in lockstep, so each round performs **one** CSR
neighbour gather over the union of the active frontiers and **one**
vectorised distance kernel over all (query, candidate) pairs — per-query work
(dedup, strict-improvement test, arg-sorted beam selection) operates on
segment views of those shared arrays.  Candidate positions are gathered once
per distinct vertex per round, however many queries reach it, which is the
batch's *unique* walk work; the per-query counters remain bit-identical to
sequential :func:`directed_walk` calls and sum to the *attributed* work.  The
per-query walk state lives in a :class:`~repro.core.scratch.WalkArena` owned
by the scratch, so the batched path allocates nothing proportional to the
mesh or the batch.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..kernels import KernelBackend, get_backend
from ..mesh import Box3D, PolyhedralMesh, boxes_to_arrays, csr_gather, points_box_distance
from .crawler import BatchCrawlOutcome, _gather_neighbors
from .result import QueryCounters
from .scratch import CrawlScratch

if TYPE_CHECKING:  # pragma: no cover - typing only (no runtime cycle)
    from .resilience import BudgetTracker

__all__ = [
    "directed_walk",
    "directed_walk_many",
    "fused_walk_phase",
    "WalkOutcome",
    "BatchWalkOutcome",
]


class WalkOutcome:
    """Result of a directed walk.

    Attributes
    ----------
    found_id:
        Id of the first vertex reached inside the query box, or ``None`` when
        the walk got stuck (no candidate closer to the box than the best
        vertex seen so far), which Algorithm 1 interprets as "the query misses
        the mesh".
    n_steps:
        Number of accepted steps (including the start); equals ``len(path)``.
    path:
        The best vertex id after each step, in order (useful for debugging and
        visual examples).  Distances along the path strictly decrease.
    complete:
        ``False`` when a query budget truncated the walk before it either
        entered the box or got stuck — ``found_id is None`` is then "ran out
        of budget", not "the query misses the mesh".  A walk that *found* its
        target is complete even if the budget ran out on the same round.
    """

    __slots__ = ("found_id", "n_steps", "path", "complete")

    def __init__(
        self,
        found_id: int | None,
        n_steps: int,
        path: list[int],
        complete: bool = True,
    ) -> None:
        self.found_id = found_id
        self.n_steps = n_steps
        self.path = path
        self.complete = complete


class BatchWalkOutcome:
    """Per-query outcomes of a fused directed walk plus its work accounting.

    Attributes
    ----------
    outcomes:
        One :class:`WalkOutcome` per query, in order, bit-identical (seed
        vertex, step count, path, counters) to independent
        :func:`directed_walk` calls.
    n_unique_distance_computations:
        Candidate positions the fused walk actually gathered and evaluated:
        per lockstep round, each distinct candidate vertex counts once no
        matter how many queries reached it.  Never larger than the attributed
        total; strictly smaller when overlapping walks traverse the same
        vertices in the same round.
    n_attributed_distance_computations:
        The same evaluations counted once per owning query — exactly the sum
        of the per-query ``walk_distance_computations`` counters, which is
        what the sequential walks would have performed in total.
    n_rounds:
        Lockstep iterations executed (shared CSR gathers + shared distance
        kernels, including the start-distance round); the sequential
        equivalent is the *sum* of the per-query step counts, the fused walk
        pays the *maximum*.
    n_unique_csr_gather_entries / n_attributed_csr_gather_entries:
        Adjacency entries the fused walk's CSR gathers physically read vs.
        what per-query gathers would have read: per round, the frontier is
        deduplicated *across queries* before the gather, so a vertex that
        sits on several queries' beams has its neighbour slice gathered once
        for all of them.  Equal when no beams coincide; strictly smaller when
        overlapping walks travel the same corridor.
    """

    __slots__ = (
        "outcomes",
        "n_unique_distance_computations",
        "n_attributed_distance_computations",
        "n_rounds",
        "n_unique_csr_gather_entries",
        "n_attributed_csr_gather_entries",
    )

    def __init__(self) -> None:
        self.outcomes: list[WalkOutcome] = []
        self.n_unique_distance_computations = 0
        self.n_attributed_distance_computations = 0
        self.n_rounds = 0
        self.n_unique_csr_gather_entries = 0
        self.n_attributed_csr_gather_entries = 0

    def attach_to(self, crawl_batch: BatchCrawlOutcome) -> None:
        """Copy the walk-phase work counters onto a fused crawl's accounting,
        so one :class:`~repro.core.crawler.BatchCrawlOutcome` accounts for the
        whole fused batch (what ``last_fused_crawl`` exposes)."""
        crawl_batch.n_unique_walk_distance_computations = self.n_unique_distance_computations
        crawl_batch.n_attributed_walk_distance_computations = (
            self.n_attributed_distance_computations
        )


def directed_walk(
    mesh: PolyhedralMesh,
    box: Box3D,
    start_vertex: int | np.ndarray,
    counters: QueryCounters | None = None,
    max_steps: int | None = None,
    beam_width: int = 1,
    scratch: CrawlScratch | None = None,
    budget: "BudgetTracker | None" = None,
) -> WalkOutcome:
    """Greedy beam walk along mesh edges towards the query box.

    Parameters
    ----------
    mesh:
        Mesh providing adjacency and *current* positions.
    box:
        Target query box.
    start_vertex:
        Vertex id — or array of vertex ids (multi-source) — to start walking
        from (typically the surface vertex closest to the box, or vertices
        suggested by the stale grid in OCTOPUS-CON).
    counters:
        Optional counter record updated in place.
    max_steps:
        Safety bound on the number of accepted steps (defaults to the vertex
        count, so the walk always terminates even on adversarial inputs).
    beam_width:
        Number of candidate vertices carried per step; the default of 1 is
        the paper's single-vertex greedy walk, wider beams trade extra
        distance computations for robustness on non-convex meshes.
    scratch:
        Optional shared arena whose gather buffers the CSR neighbour gather
        reuses.
    budget:
        Optional :class:`~repro.core.resilience.BudgetTracker` charged once
        per round with that round's distance evaluations (the round that
        crosses the limit is fully counted, then the walk stops).  The fused
        :func:`directed_walk_many` truncates at the identical round.
    """
    if beam_width < 1:
        raise ValueError("beam_width must be at least 1")
    adjacency = mesh.adjacency
    positions = mesh.vertices
    indptr, indices = adjacency.indptr, adjacency.indices
    limit = max_steps if max_steps is not None else mesh.n_vertices + 1

    starts = np.unique(np.atleast_1d(np.asarray(start_vertex, dtype=np.int64)))
    if starts.size == 0:
        return WalkOutcome(None, 0, [])
    start_distances = points_box_distance(positions[starts], box)
    n_distance = int(starts.size)
    order = np.argsort(start_distances)[:beam_width]
    frontier = starts[order]
    best_distance = float(start_distances[order[0]])
    best_id = int(frontier[0])
    n_steps = 1
    path = [best_id]

    found: int | None = best_id if best_distance == 0.0 else None
    truncated = False
    if budget is not None and not budget.spend(distances=int(starts.size)):
        truncated = True
    while not truncated and found is None and n_steps < limit:
        neighbors = _gather_neighbors(indptr, indices, frontier, scratch)
        if neighbors.size == 0:
            break
        candidates = np.unique(neighbors)
        distances = points_box_distance(positions[candidates], box)
        n_distance += int(candidates.size)
        if budget is not None and not budget.spend(distances=int(candidates.size)):
            truncated = True
            break
        improving = distances < best_distance
        if not improving.any():
            # No candidate is strictly closer: the walk is stuck, meaning the
            # query box does not intersect the mesh (Algorithm 1).
            break
        candidates = candidates[improving]
        distances = distances[improving]
        order = np.argsort(distances)[:beam_width]
        frontier = candidates[order]
        best_distance = float(distances[order[0]])
        best_id = int(frontier[0])
        n_steps += 1
        path.append(best_id)
        if best_distance == 0.0:
            found = best_id

    if counters is not None:
        counters.walk_vertices_visited += n_steps
        counters.walk_distance_computations += n_distance
    return WalkOutcome(found, n_steps, path, complete=found is not None or not truncated)


def _pair_distances(
    positions: np.ndarray,
    pair_vertices: np.ndarray,
    pair_owners: np.ndarray,
    los: np.ndarray,
    his: np.ndarray,
) -> tuple[np.ndarray, int]:
    """Box distances of (query, vertex) pairs, gathering each vertex once.

    Evaluates, for every pair, the distance from ``positions[vertex]`` to the
    owner query's box with the exact arithmetic of
    :func:`~repro.mesh.points_box_distance` (so results are bit-identical to
    the sequential walk).  Positions are gathered per *distinct* vertex and
    fanned back out, which is the fused walk's shared memory work; the count
    of distinct vertices is returned for the unique-work accounting.
    """
    unique_vertices, inverse = np.unique(pair_vertices, return_inverse=True)
    points = positions[unique_vertices][inverse]
    delta = np.maximum(los[pair_owners] - points, 0.0) + np.maximum(points - his[pair_owners], 0.0)
    return np.linalg.norm(delta, axis=1), int(unique_vertices.size)


# The fused walk dispatches its distance evaluations through a kernel backend
# (:meth:`repro.kernels.KernelBackend.pair_box_distances`); the NumPy
# reference backend computes exactly what :func:`_pair_distances` computes,
# which is kept above as the readable specification of the kernel.


def directed_walk_many(
    mesh: PolyhedralMesh,
    boxes: Sequence[Box3D],
    start_lists: Sequence[int | np.ndarray],
    counters_list: Sequence[QueryCounters | None] | None = None,
    max_steps: int | None = None,
    beam_width: int = 1,
    scratch: CrawlScratch | None = None,
    budgets: "Sequence[BudgetTracker | None] | None" = None,
    kernels: KernelBackend | None = None,
) -> BatchWalkOutcome:
    """Fused greedy beam walks for a whole batch of query boxes.

    All per-box walks advance in lockstep: each round performs one CSR
    neighbour gather over the union of the active frontiers and one
    vectorised distance kernel over all (query, candidate) pairs, then every
    active query selects its next beam from a segment view of the shared
    arrays.  Seed vertices, step counts, paths and counters are bit-identical
    to calling :func:`directed_walk` once per box with the same arguments.

    Parameters
    ----------
    mesh:
        Mesh providing adjacency and *current* positions.
    boxes:
        Target query boxes.
    start_lists:
        One start vertex id — or array of ids (multi-source) — per box; an
        empty array yields ``WalkOutcome(None, 0, [])`` for that box.
    counters_list:
        Optional per-query counter records updated in place (entries may be
        ``None`` to skip a query's accounting).
    max_steps / beam_width:
        As in :func:`directed_walk`, applied to every query.
    scratch:
        Reusable arena providing the per-query :class:`WalkArena` rows and
        gather buffers; a throwaway arena is allocated when omitted.
    budgets:
        Optional per-query :class:`~repro.core.resilience.BudgetTracker`
        records (entries may be ``None``); each query truncates (or raises)
        on exactly the round its sequential :func:`directed_walk` would.
    kernels:
        Optional :class:`repro.kernels.KernelBackend` (or ``None`` for the
        NumPy reference) running the pair-distance hot loop; float64
        backends are bit-identical, the float32 mode computes distances in
        float32 (see ``docs/performance.md``).
    """
    if beam_width < 1:
        raise ValueError("beam_width must be at least 1")
    box_list = list(boxes)
    if len(start_lists) != len(box_list):
        raise ValueError(
            f"directed_walk_many: {len(box_list)} boxes but {len(start_lists)} start lists"
        )
    if counters_list is not None and len(counters_list) != len(box_list):
        raise ValueError(
            f"directed_walk_many: {len(box_list)} boxes but {len(counters_list)} counter records"
        )
    if budgets is not None and len(budgets) != len(box_list):
        raise ValueError(
            f"directed_walk_many: {len(box_list)} boxes but {len(budgets)} budget trackers"
        )
    batch = BatchWalkOutcome()
    if not box_list:
        return batch
    if scratch is None:
        scratch = CrawlScratch()
    if kernels is None:
        kernels = get_backend("numpy")

    adjacency = mesh.adjacency
    positions = mesh.vertices
    indptr, indices = adjacency.indptr, adjacency.indices
    n_vertices = mesh.n_vertices
    limit = max_steps if max_steps is not None else n_vertices + 1
    n_queries = len(box_list)
    los, his = boxes_to_arrays(box_list)

    arena = scratch.acquire_walk(n_queries, beam_width)
    generation = arena.generation
    best_distance = arena.best_distance
    best_id = arena.best_id
    found = arena.found
    n_steps = arena.n_steps
    n_distance = arena.n_distance
    active = arena.active
    frontier = arena.frontier
    frontier_len = arena.frontier_len
    best_distance[:n_queries] = np.inf
    best_id[:n_queries] = -1
    found[:n_queries] = -1
    n_steps[:n_queries] = 0
    n_distance[:n_queries] = 0
    active[:n_queries] = False
    frontier_len[:n_queries] = 0
    paths: list[list[int]] = [[] for _ in range(n_queries)]
    truncated = np.zeros(n_queries, dtype=bool)

    def charge_budget(query: int, n_evaluations: int) -> bool:
        """Charge one round's distance evaluations; False deactivates the walk.

        Same placement as the sequential walk: the crossing round is fully
        counted, then the walk stops before gathering another frontier.
        """
        if budgets is None or budgets[query] is None:
            return True
        if budgets[query].spend(distances=n_evaluations):
            return True
        truncated[query] = True
        active[query] = False
        return False

    def select_beam(query: int, candidates: np.ndarray, distances: np.ndarray) -> None:
        """Accept a step for ``query`` from its candidate segment.

        Mirrors the sequential walk's beam update exactly: arg-sorted
        ``beam_width`` closest candidates, best-so-far update, path append,
        found/stuck bookkeeping.
        """
        order = np.argsort(distances)[:beam_width]
        chosen = candidates[order]
        frontier[query, : chosen.size] = chosen
        frontier_len[query] = chosen.size
        best_distance[query] = float(distances[order[0]])
        best_id[query] = int(chosen[0])
        n_steps[query] += 1
        paths[query].append(int(chosen[0]))
        if best_distance[query] == 0.0:
            found[query] = best_id[query]
            active[query] = False
        elif n_steps[query] >= limit:
            active[query] = False

    # Round 0: every query's deduplicated start vertices, distance-tested in
    # one fused kernel (each distinct start position gathered once).
    seed_ids: list[np.ndarray] = []
    seed_owners: list[np.ndarray] = []
    for query, raw_starts in enumerate(start_lists):
        starts = np.unique(np.atleast_1d(np.asarray(raw_starts, dtype=np.int64)))
        if starts.size == 0:
            continue
        active[query] = True
        seed_ids.append(starts)
        seed_owners.append(np.full(starts.size, query, dtype=np.int64))
    if seed_ids:
        pair_vertices = np.concatenate(seed_ids)
        pair_owners = np.concatenate(seed_owners)
        distances, unique_rows = kernels.pair_box_distances(
            positions, pair_vertices, pair_owners, los, his
        )
        batch.n_unique_distance_computations += unique_rows
        batch.n_attributed_distance_computations += int(pair_vertices.size)
        batch.n_rounds += 1
        offset = 0
        for starts, owners in zip(seed_ids, seed_owners):
            query = int(owners[0])
            segment = distances[offset : offset + starts.size]
            n_distance[query] = starts.size
            select_beam(query, starts, segment)
            charge_budget(query, int(starts.size))
            offset += starts.size

    # Lockstep rounds: one union gather + one distance kernel per round, then
    # per-query strict-improvement selection on segment views.
    while True:
        arena.check_generation(generation)
        active_queries = np.nonzero(active[:n_queries])[0]
        if active_queries.size == 0:
            break
        flat_frontier = np.concatenate(
            [frontier[query, : frontier_len[query]] for query in active_queries]
        )
        frontier_owners = np.repeat(active_queries, frontier_len[active_queries])
        # Share CSR gathers *across* queries: the union frontier is
        # deduplicated first, each distinct vertex's neighbour slice is
        # gathered once, and the per-entry views are fanned back out with a
        # second (cheap, index-space) CSR gather over the unique slices.
        unique_frontier, inverse = np.unique(flat_frontier, return_inverse=True)
        unique_neighbors, unique_degrees = _gather_neighbors(
            indptr, indices, unique_frontier, scratch, return_counts=True
        )
        if unique_neighbors.size == 0:
            active[active_queries] = False
            break
        unique_offsets = np.concatenate([[0], np.cumsum(unique_degrees)])
        neighbors, degrees = csr_gather(
            unique_offsets, unique_neighbors, inverse, ramp=scratch.iota
        )
        batch.n_unique_csr_gather_entries += int(unique_neighbors.size)
        batch.n_attributed_csr_gather_entries += int(neighbors.size)
        neighbor_owners = np.repeat(frontier_owners, degrees)
        # Deduplicate per (query, vertex): unique keys sort by query then by
        # vertex id, so each query's segment is exactly its np.unique() set.
        keys = np.unique(neighbor_owners * np.int64(n_vertices) + neighbors)
        pair_owners = keys // n_vertices
        pair_vertices = keys - pair_owners * n_vertices
        distances, unique_rows = kernels.pair_box_distances(
            positions, pair_vertices, pair_owners, los, his
        )
        batch.n_unique_distance_computations += unique_rows
        batch.n_attributed_distance_computations += int(pair_vertices.size)
        batch.n_rounds += 1
        segment_sizes = np.bincount(pair_owners, minlength=n_queries)
        segment_ends = np.cumsum(segment_sizes)
        for query in active_queries:
            size = int(segment_sizes[query])
            if size == 0:
                # This walker's frontier had no neighbours at all.
                active[query] = False
                continue
            end = int(segment_ends[query])
            candidates = pair_vertices[end - size : end]
            segment = distances[end - size : end]
            n_distance[query] += size
            if not charge_budget(query, size):
                continue
            improving = segment < best_distance[query]
            if not improving.any():
                # No candidate is strictly closer: stuck (Algorithm 1 reports
                # that the query box does not intersect the mesh).
                active[query] = False
                continue
            select_beam(query, candidates[improving], segment[improving])

    for query in range(n_queries):
        steps = int(n_steps[query])
        outcome = WalkOutcome(
            int(found[query]) if found[query] >= 0 else None,
            steps,
            paths[query],
            complete=bool(found[query] >= 0 or not truncated[query]),
        )
        batch.outcomes.append(outcome)
        if counters_list is not None and counters_list[query] is not None and steps:
            counters_list[query].walk_vertices_visited += steps
            counters_list[query].walk_distance_computations += int(n_distance[query])
    return batch


def fused_walk_phase(
    mesh: PolyhedralMesh,
    box_list: Sequence[Box3D],
    walk_indices: Sequence[int],
    start_ids: Sequence[int | np.ndarray | None],
    counters_list: Sequence[QueryCounters],
    scratch: CrawlScratch,
    budgets: "Sequence[BudgetTracker | None] | None" = None,
    kernels: KernelBackend | None = None,
) -> tuple[list[float], dict[int, np.ndarray], BatchWalkOutcome | None]:
    """The batched executors' walk phase: one fused walk over selected boxes.

    Runs :func:`directed_walk_many` for the boxes named by ``walk_indices``
    (whose per-box starts are ``start_ids[i]``), updating their counter
    records in place.  Returns per-box walk seconds (the shared fused-walk
    wall-clock apportioned evenly over the boxes that walked, 0.0 elsewhere),
    the crawl start vertices produced by successful walks (keyed by box
    index), and the :class:`BatchWalkOutcome` — ``None`` when nothing walked.
    ``budgets`` (when given) is indexed by *box*, like ``start_ids``; each
    walking box's tracker is threaded through to the fused walk.
    """
    walk_times = [0.0] * len(box_list)
    if not walk_indices:
        return walk_times, {}, None
    walk_start = time.perf_counter()
    batch = directed_walk_many(
        mesh,
        [box_list[i] for i in walk_indices],
        [start_ids[i] for i in walk_indices],
        [counters_list[i] for i in walk_indices],
        scratch=scratch,
        budgets=[budgets[i] for i in walk_indices] if budgets is not None else None,
        kernels=kernels,
    )
    shared_time = (time.perf_counter() - walk_start) / len(walk_indices)
    crawl_starts: dict[int, np.ndarray] = {}
    for index, walk in zip(walk_indices, batch.outcomes):
        walk_times[index] = shared_time
        if walk.found_id is not None:
            crawl_starts[index] = np.asarray([walk.found_id], dtype=np.int64)
    return walk_times, crawl_starts, batch
