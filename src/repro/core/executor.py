"""The common interface every range-query execution strategy implements.

The experiment harness drives OCTOPUS, OCTOPUS-CON and all baselines through
the same three-call protocol that mirrors the simulation timeline of
Figure 1(e):

1. :meth:`ExecutionStrategy.prepare` — once, after the mesh is loaded
   (preprocessing such as building the surface index or the initial R-tree;
   reported separately, not part of query response time, as in Section V-A);
2. :meth:`ExecutionStrategy.on_restructure` — after a simulation step
   *restructured* the mesh (cells split or removed, Section IV-E2; rare).
   The step's :class:`~repro.core.delta.TopologyDelta` — which vertices'
   index entries may have changed, how many vertices/cells appeared or
   vanished — is passed in, so strategies can splice the few affected
   entries instead of rebuilding over the whole mesh;
3. :meth:`ExecutionStrategy.on_step` — after every simulation step has
   updated the vertex positions (index maintenance or rebuild; *included*
   in the total query response time, as in Section V-A).  The step's
   :class:`~repro.core.delta.DeformationDelta` — which vertices moved, where
   from and where to — is passed in, so strategies with incremental
   maintenance pay a cost proportional to the motion, not the mesh size;
4. :meth:`ExecutionStrategy.query` / :meth:`ExecutionStrategy.query_many` —
   once per monitoring range query (or once per per-step batch).

Both maintenance hooks charge their seconds to ``maintenance_time`` and their
touched entries to ``maintenance_entries``, so the reported response time and
maintenance ledger cover deformation *and* restructuring work.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..mesh import Box3D, PolyhedralMesh
from .delta import DeformationDelta, TopologyDelta
from .result import QueryCounters, QueryResult

if TYPE_CHECKING:  # pragma: no cover - typing only (no runtime cycle)
    from .resilience import QueryBudget

__all__ = ["ExecutionStrategy", "StrategyWrapper"]


class ExecutionStrategy(ABC):
    """Abstract base class for range-query execution strategies."""

    #: short machine-friendly identifier used in reports ("octopus", "linear-scan", ...)
    name: str = "strategy"

    def __init__(self) -> None:
        self._mesh: PolyhedralMesh | None = None
        #: seconds spent in prepare(); excluded from query response time
        self.preprocessing_time = 0.0
        #: cumulative seconds spent in on_step(); included in query response time
        self.maintenance_time = 0.0
        #: cumulative number of index entries touched by maintenance
        self.maintenance_entries = 0
        #: optional per-query resource limits
        #: (:class:`~repro.core.resilience.QueryBudget`); ``None`` = unbounded.
        #: OCTOPUS and OCTOPUS-CON enforce it inside their walk/crawl round
        #: loops; for other strategies wrap in
        #: :class:`~repro.core.resilience.ResilientStrategy` to get at least
        #: post-hoc enforcement via the degradation ladder.
        self.query_budget: "QueryBudget | None" = None

    def set_query_budget(self, budget: "QueryBudget | None") -> None:
        """Install (or clear) the per-query resource limits for this strategy."""
        self.query_budget = budget

    def _start_budget(self, step: int | None = None, query_index: int | None = None):
        """A fresh per-query tracker from :attr:`query_budget` (or ``None``)."""
        if self.query_budget is None:
            return None
        return self.query_budget.start(
            strategy=self.name, step=step, query_index=query_index
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def mesh(self) -> PolyhedralMesh:
        """The mesh this strategy was prepared on (raises before prepare())."""
        if self._mesh is None:
            raise RuntimeError(f"{self.name}: prepare() has not been called")
        return self._mesh

    def prepare(self, mesh: PolyhedralMesh) -> float:
        """Bind the strategy to a mesh and build any one-time structures.

        Returns the preprocessing time in seconds.
        """
        self._mesh = mesh
        self.preprocessing_time = self._build()
        return self.preprocessing_time

    def _build(self) -> float:
        """Hook for subclasses: build one-time structures, return seconds spent."""
        return 0.0

    def on_step(self, delta: DeformationDelta) -> float:
        """React to the simulation having updated vertex positions in place.

        ``delta`` describes the step's motion (moved vertex ids, old/new
        positions, dirty AABB — or the cheap whole-mesh fast path, see
        :class:`~repro.core.delta.DeformationDelta`).  Strategies with
        incremental maintenance key their work off it; strategies that
        rebuild may still skip the rebuild entirely when ``delta.n_moved``
        is zero.  **Contract:** incremental maintenance must leave the index
        able to answer every query with results bit-identical to a full
        recomputation (enforced by ``tests/test_maintenance_parity.py``).

        Returns the maintenance seconds spent for this step; the default is a
        no-op (OCTOPUS and the linear scan need no per-deformation
        maintenance).
        """
        return 0.0

    def on_restructure(self, delta: TopologyDelta) -> float:
        """React to the simulation having restructured the mesh connectivity.

        ``delta`` describes the step's topology change (dirty vertex ids,
        added/removed cell counts, appended vertex count, dirty AABB — or the
        delta-blind ``full()`` fast path, see
        :class:`~repro.core.delta.TopologyDelta`).  Strategies with
        incremental topology maintenance key their work off it: positions and
        pre-existing vertex ids are untouched by restructuring, so a
        removal-only delta costs a position index nothing, and appended
        vertices are a tail splice/insert.  A ``full()`` delta must be
        answered with whole-mesh maintenance (rebuild or full
        reconciliation); an ``empty()`` delta may be skipped.  **Contract:**
        after the call the strategy answers every query against the
        restructured mesh exactly; the parity tiers (which strategies
        additionally reproduce the full path's counters bit-for-bit) are
        enforced by ``tests/test_restructuring_parity.py``.

        Returns the maintenance seconds spent; the default is a no-op (the
        linear scan reads live positions and needs no structures at all).
        """
        return 0.0

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    @abstractmethod
    def query(self, box: Box3D) -> QueryResult:
        """Answer one 3D range query against the current vertex positions."""

    def query_many(self, boxes: Sequence[Box3D]) -> list[QueryResult]:
        """Answer a batch of range queries against the current positions.

        Returns one :class:`QueryResult` per box, in order, identical to
        calling :meth:`query` sequentially.  The base implementation is that
        sequential loop; strategies with a vectorisable scan phase override it
        to amortise per-query NumPy dispatch across the whole batch (OCTOPUS
        fuses the surface probe *and* the crawls of the whole batch, the tree
        baselines share one index traversal, the linear scan tests all boxes
        against all vertices at once).

        **Failure contract (all-or-nothing):** if answering any box raises,
        the exception propagates and *no* results are returned — the
        :class:`QueryResult`\\ s (and their counters) of the boxes answered
        before the failure are discarded, never partially delivered.  Work
        counters live on those per-query results, so a failed batch leaves no
        half-accumulated counts behind; the strategy's cumulative accounting
        (``preprocessing_time``, ``maintenance_time``, ``maintenance_entries``)
        is never touched by a query batch and therefore keeps its pre-call
        values.  Internal scratch state (e.g. visited-arena epochs) may have
        advanced, which has no observable effect; callers who need the results
        of a partially failing batch must retry box by box via :meth:`query`.
        Overrides must preserve this contract.
        """
        box_list = list(boxes)
        results: list[QueryResult] = []
        for index, box in enumerate(box_list):
            try:
                results.append(self.query(box))
            except Exception as exc:
                if hasattr(exc, "add_note"):  # pragma: no branch - py3.11+
                    exc.add_note(
                        f"query_many: {self.name} failed on box {index} of "
                        f"{len(box_list)}; results of the {index} completed "
                        "queries were discarded (all-or-nothing contract)"
                    )
                raise
        return results

    def _shared_index_batch(
        self,
        boxes: Sequence[Box3D],
        run: Callable[[list[Box3D], list[QueryCounters]], list[np.ndarray]],
    ) -> list[QueryResult]:
        """Common ``query_many`` shape for the index-based strategies.

        ``run(box_list, counters_list)`` answers the whole batch with one
        shared traversal of the strategy's index, returning one vertex-id
        array per box and filling one counter record per box.  The shared
        traversal's wall-clock is apportioned evenly across the batch; single
        boxes short-circuit to :meth:`query` so the sequential code stays the
        single source of truth for that case.
        """
        box_list = list(boxes)
        if len(box_list) <= 1:
            return [self.query(box) for box in box_list]
        counters_list = [QueryCounters() for _ in box_list]
        start = time.perf_counter()
        ids_list = run(box_list, counters_list)
        elapsed = (time.perf_counter() - start) / len(box_list)
        return [
            QueryResult(vertex_ids=ids, counters=counters, index_time=elapsed, total_time=elapsed)
            for ids, counters in zip(ids_list, counters_list)
        ]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_overhead_bytes(self) -> int:
        """Bytes of auxiliary structures beyond the mesh itself (0 by default)."""
        return 0

    def describe(self) -> dict:
        """Small metadata record used by reports."""
        return {
            "name": self.name,
            "preprocessing_time": self.preprocessing_time,
            "maintenance_time": self.maintenance_time,
            "memory_overhead_bytes": self.memory_overhead_bytes(),
        }


class StrategyWrapper(ExecutionStrategy):
    """Base class for strategies that decorate another strategy.

    The repo grows wrappers — the resilience ladder
    (:class:`~repro.core.resilience.ResilientStrategy`), the delta-invalidated
    result cache (:class:`~repro.cache.CachingStrategy`) — and each one must
    forward the full lifecycle protocol *and* keep the accounting ledger
    single-sourced.  This base centralises both so a wrapper subclass only
    overrides the calls it actually changes:

    * **lifecycle forwarding** — :meth:`prepare`, :meth:`on_step`,
      :meth:`on_restructure`, :meth:`query`, :meth:`query_many`,
      :meth:`memory_overhead_bytes` and :meth:`describe` all delegate to
      :attr:`inner`;
    * **counter/ledger passthrough** — ``preprocessing_time``,
      ``maintenance_time``, ``maintenance_entries``, ``query_budget`` and
      ``last_fused_crawl`` are forwarding properties, so there is exactly one
      ledger no matter how deep the wrapper stack is and
      ``ResilientStrategy(CachingStrategy(octopus)).maintenance_time`` reads
      the same number at every level;
    * **event plumbing** — :meth:`note_step`,
      :meth:`drain_degradation_events`, :meth:`drain_cache_stats` and
      :meth:`drain_standing_stats` forward duck-typed, so a drain hook
      defined anywhere in the stack is reachable from the outermost wrapper
      (the simulator only talks to that one).

    Wrapping an already-prepared strategy preserves its accounting and
    budget: the constructor snapshots them around ``super().__init__()``
    because the base initialiser assigns the accounting attributes *through*
    the forwarding properties, which would otherwise zero the inner ledger.

    Use :func:`repro.build_strategy` to compose wrapper stacks by name
    instead of hand-nesting constructors.
    """

    def __init__(self, inner: ExecutionStrategy) -> None:
        self.inner = inner
        snapshot = (
            inner.preprocessing_time,
            inner.maintenance_time,
            inner.maintenance_entries,
            getattr(inner, "query_budget", None),
        )
        super().__init__()
        inner.preprocessing_time = snapshot[0]
        inner.maintenance_time = snapshot[1]
        inner.maintenance_entries = snapshot[2]
        inner.query_budget = snapshot[3]
        self.name = inner.name

    def unwrap(self) -> ExecutionStrategy:
        """The innermost (unwrapped) strategy of this wrapper stack."""
        strategy: ExecutionStrategy = self.inner
        while isinstance(strategy, StrategyWrapper):
            strategy = strategy.inner
        return strategy

    # -- counter/ledger passthrough (single ledger per wrapper stack) ----
    @property
    def preprocessing_time(self) -> float:
        return self.inner.preprocessing_time

    @preprocessing_time.setter
    def preprocessing_time(self, value: float) -> None:
        self.inner.preprocessing_time = value

    @property
    def maintenance_time(self) -> float:
        return self.inner.maintenance_time

    @maintenance_time.setter
    def maintenance_time(self, value: float) -> None:
        self.inner.maintenance_time = value

    @property
    def maintenance_entries(self) -> int:
        return self.inner.maintenance_entries

    @maintenance_entries.setter
    def maintenance_entries(self, value: int) -> None:
        self.inner.maintenance_entries = value

    @property
    def query_budget(self) -> "QueryBudget | None":
        return getattr(self.inner, "query_budget", None)

    @query_budget.setter
    def query_budget(self, budget: "QueryBudget | None") -> None:
        self.inner.query_budget = budget

    @property
    def last_fused_crawl(self):
        """Fused-batch accounting of the inner strategy's last query_many."""
        return getattr(self.inner, "last_fused_crawl", None)

    @last_fused_crawl.setter
    def last_fused_crawl(self, value) -> None:
        if hasattr(self.inner, "last_fused_crawl"):
            self.inner.last_fused_crawl = value

    # -- event plumbing (duck-typed, reachable through the whole stack) --
    def note_step(self, step: int | None) -> None:
        """Tag subsequent events with the simulation step (forwarded)."""
        inner_note = getattr(self.inner, "note_step", None)
        if inner_note is not None:
            inner_note(step)

    def drain_degradation_events(self) -> list:
        """Return and clear fallback events recorded anywhere in the stack."""
        drain = getattr(self.inner, "drain_degradation_events", None)
        return drain() if drain is not None else []

    def drain_cache_stats(self):
        """Return and reset cache statistics recorded anywhere in the stack.

        ``None`` when no layer of the stack maintains a result cache, so
        report code can distinguish "no cache" from "cache, zero traffic".
        """
        drain = getattr(self.inner, "drain_cache_stats", None)
        return drain() if drain is not None else None

    def drain_standing_stats(self):
        """Return and reset standing-query statistics recorded in the stack.

        ``None`` when no layer of the stack maintains a standing-query
        registry, so report code can distinguish "no subscriptions possible"
        from "registry, zero traffic".
        """
        drain = getattr(self.inner, "drain_standing_stats", None)
        return drain() if drain is not None else None

    # -- lifecycle forwarding --------------------------------------------
    @property
    def mesh(self) -> PolyhedralMesh:
        return self.inner.mesh

    def prepare(self, mesh: PolyhedralMesh) -> float:
        self._mesh = mesh
        return self.inner.prepare(mesh)

    def on_step(self, delta: DeformationDelta) -> float:
        return self.inner.on_step(delta)

    def on_restructure(self, delta: TopologyDelta) -> float:
        return self.inner.on_restructure(delta)

    def query(self, box: Box3D) -> QueryResult:
        return self.inner.query(box)

    def query_many(self, boxes: Sequence[Box3D]) -> list[QueryResult]:
        return self.inner.query_many(boxes)

    # -- accounting ------------------------------------------------------
    def memory_overhead_bytes(self) -> int:
        return self.inner.memory_overhead_bytes()

    def describe(self) -> dict:
        return self.inner.describe()
