"""OCTOPUS-CON: the convex-mesh variant with a stale grid index (Section IV-F).

Convex meshes satisfy internal reachability, so a crawl started from *any*
single vertex inside the query retrieves the complete result — no surface
probe is needed.  What remains is finding a starting vertex cheaply: the
directed walk could start anywhere, but walking across the whole mesh is
expensive, so OCTOPUS-CON builds a uniform grid over the *initial* vertex
positions and never updates it.  The grid is allowed to go stale: it only has
to suggest a vertex *near* the query centre, and the directed walk (which uses
live positions) closes the remaining gap.  Using a stale index to find a
starting point is safe; using a stale index to answer the query would not be.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import QueryError
from ..mesh import Box3D
from .crawler import crawl
from .directed_walk import directed_walk
from .executor import ExecutionStrategy
from .result import QueryCounters, QueryResult
from .uniform_grid import UniformGrid

__all__ = ["OctopusConExecutor"]


class OctopusConExecutor(ExecutionStrategy):
    """Range-query execution for meshes that remain convex during simulation.

    Parameters
    ----------
    grid_resolution:
        Cells per axis of the stale grid (total cells = resolution³; the paper
        sweeps 8–5832 total cells and settles on 1000, i.e. resolution 10).

    Notes
    -----
    Correctness requires the mesh to remain convex throughout the simulation;
    on non-convex meshes results may be incomplete (use
    :class:`~repro.core.octopus.OctopusExecutor` there instead).
    """

    name = "octopus-con"

    def __init__(self, grid_resolution: int = 10) -> None:
        super().__init__()
        if grid_resolution < 1:
            raise QueryError("grid_resolution must be at least 1")
        self.grid_resolution = grid_resolution
        self._grid: UniformGrid | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _build(self) -> float:
        self._grid = UniformGrid(self.grid_resolution)
        return self._grid.build(self.mesh.vertices)

    @property
    def grid(self) -> UniformGrid:
        if self._grid is None:
            raise RuntimeError("octopus-con: prepare() has not been called")
        return self._grid

    def on_step(self) -> float:
        """The stale grid is deliberately never maintained."""
        return 0.0

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def query(self, box: Box3D) -> QueryResult:
        mesh = self.mesh
        counters = QueryCounters()
        total_start = time.perf_counter()

        # Locate a starting vertex near the query centre using the stale grid.
        locate_start = time.perf_counter()
        start_id = self.grid.any_vertex_near(box.center, counters)
        locate_time = time.perf_counter() - locate_start

        walk_time = 0.0
        start_vertices = np.empty(0, dtype=np.int64)
        if start_id is not None:
            walk_start = time.perf_counter()
            walk = directed_walk(mesh, box, start_id, counters)
            walk_time = time.perf_counter() - walk_start
            if walk.found_id is not None:
                start_vertices = np.asarray([walk.found_id], dtype=np.int64)

        crawl_start = time.perf_counter()
        outcome = crawl(mesh, box, start_vertices, counters)
        crawl_time = time.perf_counter() - crawl_start

        total_time = time.perf_counter() - total_start
        return QueryResult(
            vertex_ids=outcome.result_ids,
            counters=counters,
            probe_time=locate_time,   # grid lookup takes the place of the probe phase
            walk_time=walk_time,
            crawl_time=crawl_time,
            total_time=total_time,
        )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_overhead_bytes(self) -> int:
        """Stale grid plus the crawl's visited bitmap."""
        if self._grid is None:
            return 0
        return self._grid.memory_bytes() + self.mesh.n_vertices
