"""OCTOPUS-CON: the convex-mesh variant with a stale grid index (Section IV-F).

Convex meshes satisfy internal reachability, so a crawl started from *any*
single vertex inside the query retrieves the complete result — no surface
probe is needed.  What remains is finding a starting vertex cheaply: the
directed walk could start anywhere, but walking across the whole mesh is
expensive, so OCTOPUS-CON builds a uniform grid over the *initial* vertex
positions and never updates it.  The grid is allowed to go stale: it only has
to suggest a vertex *near* the query centre, and the directed walk (which uses
live positions) closes the remaining gap.  Using a stale index to find a
starting point is safe; using a stale index to answer the query would not be.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..errors import QueryError
from ..kernels import KernelBackend, get_backend
from ..mesh import Box3D
from .crawler import BatchCrawlOutcome, crawl, crawl_many
from .delta import DeformationDelta, TopologyDelta
from .directed_walk import directed_walk, fused_walk_phase
from .executor import ExecutionStrategy
from .resilience import check_query_box, check_query_boxes
from .result import QueryCounters, QueryResult
from .scratch import CrawlScratch, ThreadLocalScratch
from .uniform_grid import UniformGrid

__all__ = ["OctopusConExecutor"]


class OctopusConExecutor(ExecutionStrategy):
    """Range-query execution for meshes that remain convex during simulation.

    Parameters
    ----------
    grid_resolution:
        Cells per axis of the stale grid (total cells = resolution³; the paper
        sweeps 8–5832 total cells and settles on 1000, i.e. resolution 10).
    grid_maintenance:
        How the grid reacts to deformation deltas:

        * ``"stale"`` (default, the paper's choice) — never maintained; the
          directed walk closes the growing gap between the stale suggestion
          and the live positions.
        * ``"incremental"`` — kept fresh at a cost proportional to the
          motion: sparse deltas relocate only the moved vertices between
          cells (:meth:`UniformGrid.relocate`), full deltas re-bin everything
          into the frozen cell geometry.
        * ``"rebuild"`` — kept fresh the expensive way: every step re-bins
          every vertex (:meth:`UniformGrid.rebin`).  The full-recompute
          reference for ``"incremental"``: both modes yield bit-identical
          grid arrays, hence bit-identical queries and counters.

        The maintained modes keep the cell geometry frozen at its build-time
        bounds (positions drifting outside clamp to border cells), so the
        incremental path never has to re-derive bounds; freshness only
        shortens the directed walks, correctness never depends on it.
    kernels:
        Kernel backend for the batched hot loops — a
        :class:`~repro.kernels.KernelBackend`, a spec string such as
        ``"numba"`` or ``"numpy:float32"``, or ``None`` to consult the
        ``REPRO_KERNEL_BACKEND`` environment variable (default NumPy).
        Sequential :meth:`query` calls always use the NumPy float64 path.

    Notes
    -----
    Correctness requires the mesh to remain convex throughout the simulation;
    on non-convex meshes results may be incomplete (use
    :class:`~repro.core.octopus.OctopusExecutor` there instead).
    """

    name = "octopus-con"

    GRID_MAINTENANCE_MODES = ("stale", "incremental", "rebuild")

    def __init__(
        self,
        grid_resolution: int = 10,
        grid_maintenance: str = "stale",
        kernels: KernelBackend | str | None = None,
    ) -> None:
        super().__init__()
        if grid_resolution < 1:
            raise QueryError("grid_resolution must be at least 1")
        if grid_maintenance not in self.GRID_MAINTENANCE_MODES:
            raise QueryError(
                f"grid_maintenance must be one of {self.GRID_MAINTENANCE_MODES}, "
                f"got {grid_maintenance!r}"
            )
        self.grid_resolution = grid_resolution
        self.grid_maintenance = grid_maintenance
        self.kernels = get_backend(kernels)
        self._grid: UniformGrid | None = None
        #: per-thread crawl arenas (epoch-stamped visited + buffers); one
        #: CrawlScratch per thread keeps concurrent queries off each other's
        #: stamps — see the thread-safety contract in repro.core.scratch
        self._scratch = ThreadLocalScratch()
        #: fused-crawl accounting of the most recent query_many() batch
        self.last_fused_crawl: BatchCrawlOutcome | None = None

    @property
    def scratch(self) -> CrawlScratch:
        """The calling thread's crawl arena (created on first use)."""
        return self._scratch.get()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _build(self) -> float:
        self._grid = UniformGrid(self.grid_resolution)
        if self.mesh.n_vertices == 0:
            # Empty meshes carry no grid; queries short-circuit to empty
            # results (consistent degenerate handling across strategies).
            return 0.0
        return self._grid.build(self.mesh.vertices)

    @property
    def grid(self) -> UniformGrid:
        """The (possibly stale) uniform grid (raises before prepare())."""
        if self._grid is None:
            raise RuntimeError("octopus-con: prepare() has not been called")
        return self._grid

    def _ensure_grid(self) -> UniformGrid:
        """The grid, lazily derived if prepare() ran on an empty mesh."""
        grid = self.grid
        if grid.n_points == 0 and self.mesh.n_vertices > 0:
            # Prepared on an empty mesh (no geometry to freeze then); derive
            # it on first use and charge it to preprocessing like prepare().
            self.preprocessing_time += grid.build(self.mesh.vertices)
        return grid

    def on_step(self, delta: DeformationDelta) -> float:
        """Grid maintenance keyed off the step's deformation delta.

        In the default ``"stale"`` mode this is the paper's no-op.  The
        maintained modes charge their work here: ``"incremental"`` relocates
        only the delta's moved vertices (falling back to a full re-bin on
        whole-mesh deltas or after restructuring changed the vertex count),
        ``"rebuild"`` re-bins everything every step.  Either way the grid
        arrays — and therefore every query and counter — end up bit-identical.
        """
        if self.grid_maintenance == "stale":
            return 0.0
        grid = self.grid
        start = time.perf_counter()
        if delta.n_moved == 0 and grid.n_points == self.mesh.n_vertices:
            touched = 0
        elif (
            self.grid_maintenance == "incremental"
            and not delta.is_full
            and grid.n_points == self.mesh.n_vertices
        ):
            # The delta carries the moved vertices' new positions (aligned
            # with its sorted ids); fall back to a mesh gather for hand-built
            # deltas that omit them.
            new_positions = delta.new_positions
            if new_positions is None:
                new_positions = self.mesh.vertices[delta.moved_ids]
            touched = grid.relocate(delta.moved_ids, new_positions)
        elif grid.n_points == self.mesh.n_vertices:
            touched = grid.rebin(self.mesh.vertices)
        else:
            # Restructuring changed the vertex count behind the event
            # pipeline's back (no on_restructure call): re-derive the
            # geometry.
            grid.build(self.mesh.vertices)
            touched = grid.n_points
        elapsed = time.perf_counter() - start
        self.maintenance_time += elapsed
        self.maintenance_entries += touched
        return elapsed

    def on_restructure(self, delta: TopologyDelta) -> float:
        """Grid maintenance keyed off a restructuring's topology delta.

        Restructuring never moves a pre-existing vertex, so the maintained
        grids only care about *appended* vertices: in ``"incremental"`` mode
        a sparse delta splices the new tail vertices into the frozen cell
        geometry (:meth:`UniformGrid.append_points`) at a cost proportional
        to the additions, and a removal-only delta costs nothing.  The
        ``"rebuild"`` mode — and the ``full()`` fallback of either maintained
        mode — re-bins every vertex into the *same* frozen geometry
        (:meth:`UniformGrid.rebin`), so the incremental splice and the full
        re-bin produce bit-identical grid arrays, hence bit-identical queries
        and counters.  The default ``"stale"`` mode stays the paper's no-op:
        pre-existing ids remain valid start-vertex suggestions and the
        directed walk closes any gap.
        """
        if self.grid_maintenance == "stale":
            return 0.0
        if self.mesh.n_vertices == 0:
            return 0.0
        grid = self.grid
        start = time.perf_counter()
        if delta.is_empty and grid.n_points == self.mesh.n_vertices:
            touched = 0
        elif grid.n_points == 0:
            # The executor was prepared on an empty mesh (no grid geometry to
            # splice into); derive it now that vertices exist.
            grid.build(self.mesh.vertices)
            touched = grid.n_points
        elif (
            self.grid_maintenance == "incremental"
            and not delta.is_full
            and grid.n_points + delta.n_vertices_added == self.mesh.n_vertices
        ):
            touched = grid.append_points(self.mesh.vertices[delta.added_vertex_ids()])
        else:
            touched = grid.rebin(self.mesh.vertices)
        elapsed = time.perf_counter() - start
        self.maintenance_time += elapsed
        self.maintenance_entries += touched
        return elapsed

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def query(self, box: Box3D) -> QueryResult:
        """Answer one range query: grid-located start, walk, crawl.

        When a :attr:`~repro.core.executor.ExecutionStrategy.query_budget` is
        installed, one tracker meters the walk and crawl together (the grid
        lookup is bounded by the grid resolution and stays unbudgeted).
        """
        check_query_box(box)
        counters = QueryCounters()
        if self.mesh.n_vertices == 0:
            return QueryResult(vertex_ids=np.empty(0, dtype=np.int64), counters=counters)

        # Locate a starting vertex near the query centre using the stale grid.
        locate_start = time.perf_counter()
        start_id = self._ensure_grid().any_vertex_near(box.center, counters)
        locate_time = time.perf_counter() - locate_start

        return self._walk_and_crawl(box, start_id, counters, locate_time)

    def _walk_for_start(
        self,
        box: Box3D,
        start_id: int | None,
        counters: QueryCounters,
        budget=None,
    ) -> tuple[np.ndarray, float, bool]:
        """Directed-walk phase (shared by the sequential and batched paths).

        Walks from the grid-suggested vertex towards the box; returns the
        crawl start vertices (empty when the walk got stuck or the grid was
        empty), the walk seconds, and whether the walk ran to completion
        (budgets may truncate it).
        """
        walk_time = 0.0
        complete = True
        start_vertices = np.empty(0, dtype=np.int64)
        if start_id is not None:
            walk_start = time.perf_counter()
            walk = directed_walk(
                self.mesh, box, start_id, counters, scratch=self.scratch, budget=budget
            )
            walk_time = time.perf_counter() - walk_start
            complete = walk.complete
            if walk.found_id is not None:
                start_vertices = np.asarray([walk.found_id], dtype=np.int64)
        return start_vertices, walk_time, complete

    def _walk_and_crawl(
        self,
        box: Box3D,
        start_id: int | None,
        counters: QueryCounters,
        locate_time: float,
    ) -> QueryResult:
        """Walk-then-crawl tail for one box (the sequential path)."""
        mesh = self.mesh
        budget = self._start_budget()
        start_vertices, walk_time, walk_complete = self._walk_for_start(
            box, start_id, counters, budget
        )

        crawl_start = time.perf_counter()
        outcome = crawl(mesh, box, start_vertices, counters, scratch=self.scratch, budget=budget)
        crawl_time = time.perf_counter() - crawl_start
        return QueryResult(
            vertex_ids=outcome.result_ids,
            counters=counters,
            probe_time=locate_time,   # grid lookup takes the place of the probe phase
            walk_time=walk_time,
            crawl_time=crawl_time,
            total_time=locate_time + walk_time + crawl_time,
            complete=walk_complete and outcome.complete,
        )

    def query_many(self, boxes: Sequence[Box3D]) -> list[QueryResult]:
        """Batched execution: vectorised grid lookup, fused walks, fused crawl.

        All box centres are located in the stale grid in a single pass (only
        the boxes whose centre cell is empty fall back to the sequential ring
        search), the directed walks of the whole batch advance in lockstep
        through one fused beam walk
        (:func:`~repro.core.directed_walk.directed_walk_many`), and the
        crawls are fused into one shared-frontier BFS
        (:func:`~repro.core.crawler.crawl_many`) against the shared scratch
        arena.  Results and counters match sequential :meth:`query` calls
        exactly.
        """
        box_list = check_query_boxes(boxes)
        self.last_fused_crawl = None  # set again below iff this batch fuses
        if len(box_list) <= 1 or self.mesh.n_vertices == 0:
            return [self.query(box) for box in box_list]
        mesh = self.mesh
        locate_start = time.perf_counter()
        centers = np.stack([box.center for box in box_list])
        first_hits = self._ensure_grid().locate_batch(centers)
        shared_locate_time = (time.perf_counter() - locate_start) / len(box_list)

        counters_list: list[QueryCounters] = []
        locate_times: list[float] = []
        start_ids: list[int | None] = []
        for box, hit in zip(box_list, first_hits):
            counters = QueryCounters()
            locate_time = shared_locate_time
            if hit >= 0:
                counters.index_nodes_visited += 1  # the centre cell, as in ring 0
                start_id: int | None = int(hit)
            else:
                ring_start = time.perf_counter()
                start_id = self.grid.any_vertex_near(box.center, counters)
                locate_time += time.perf_counter() - ring_start
            counters_list.append(counters)
            locate_times.append(locate_time)
            start_ids.append(start_id)

        walk_indices = [index for index, start_id in enumerate(start_ids) if start_id is not None]
        # One tracker per query, shared by its walk and crawl phases — the
        # same metering a sequential query() applies.
        budgets = None
        if self.query_budget is not None:
            budgets = [self._start_budget(query_index=i) for i in range(len(box_list))]
        walk_times, walk_starts, walk_batch = fused_walk_phase(
            mesh,
            box_list,
            walk_indices,
            start_ids,
            counters_list,
            self.scratch,
            budgets,
            kernels=self.kernels,
        )
        crawl_starts = [
            walk_starts.get(index, np.empty(0, dtype=np.int64))
            for index in range(len(box_list))
        ]
        walk_complete = [True] * len(box_list)
        if walk_batch is not None:
            for index, walk in zip(walk_indices, walk_batch.outcomes):
                walk_complete[index] = walk.complete

        crawl_start = time.perf_counter()
        batch = crawl_many(
            mesh,
            box_list,
            crawl_starts,
            counters_list,
            scratch=self.scratch,
            budgets=budgets,
            kernels=self.kernels,
        )
        crawl_time = (time.perf_counter() - crawl_start) / len(box_list)
        if walk_batch is not None:
            walk_batch.attach_to(batch)
        self.last_fused_crawl = batch

        results: list[QueryResult] = []
        for index, (outcome, counters, locate_time, walk_time) in enumerate(
            zip(batch.outcomes, counters_list, locate_times, walk_times)
        ):
            results.append(
                QueryResult(
                    vertex_ids=outcome.result_ids,
                    counters=counters,
                    probe_time=locate_time,  # grid lookup takes the place of the probe phase
                    walk_time=walk_time,
                    crawl_time=crawl_time,
                    total_time=locate_time + walk_time + crawl_time,
                    complete=walk_complete[index] and outcome.complete,
                )
            )
        return results

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_overhead_bytes(self) -> int:
        """Stale grid plus the reusable crawl scratch arena."""
        if self._grid is None:
            return 0
        return self._grid.memory_bytes() + self._scratch.expected_bytes(self.mesh.n_vertices)
