"""The sharded concurrent query service.

:class:`ShardedQueryService` is the front-end a monitoring workload talks
to: it cuts the mesh into K Hilbert-contiguous shards
(:func:`~repro.service.partition.partition_mesh`), runs one
:class:`~repro.core.executor.ExecutionStrategy` per shard, routes each
query box to the shards whose bounding box it overlaps, fans the routed
work out across a worker-thread pool through each shard's fused
``query_many`` path (the NumPy crawl/walk/gather kernels release the GIL,
so shards genuinely overlap), and merges the per-shard results back into
ordinary :class:`~repro.core.result.QueryResult`\\ s.

Merge semantics
---------------
A shard answers with *local* vertex ids over its submesh; the service maps
them through the shard's sorted ``global_ids`` and unions across shards.
Vertices on the shard-boundary overlap band (referenced by cells in more
than one shard) are retrieved by each owning shard and deduplicated by the
union, so the id set is exactly the one a whole-mesh executor returns.
Counters are **summed** across the routed shards — they keep their meaning
of "work this query caused", which now includes the overlap band being
visited once per owning shard; per-phase times are summed the same way,
and ``complete`` is the conjunction.  Merged output is a pure function of
the per-shard results, which are pure functions of mesh state — so results
are bit-identical however many threads carry the work.

Concurrency contract
--------------------
``query``/``query_many`` may be called from any number of client threads
concurrently; per-thread crawl scratches (see
:class:`~repro.core.scratch.ThreadLocalScratch`) keep the shard executors
safe under that load.  Maintenance (``on_step``/``on_restructure``) takes
the writer side of a readers-writer lock, so ticks exclude in-flight
queries and vice versa — queries always observe a fully applied tick,
never a half-deformed mesh.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Sequence

import numpy as np

from ..cache import CacheStats, CachingStrategy
from ..core import DeformationDelta, OctopusExecutor, QueryCounters, QueryResult, TopologyDelta
from ..core.executor import ExecutionStrategy
from ..core.resilience import check_query_box, check_query_boxes
from ..errors import SimulationError
from ..mesh import Box3D, PolyhedralMesh
from ..standing import MembershipUpdate, StandingQueryRegistry, StandingStats
from .partition import MeshShard, partition_mesh

__all__ = ["ShardedQueryService"]


def _normalize_caching(caching: bool | int | dict | None) -> dict | None:
    """Per-shard cache configuration -> CachingStrategy keyword arguments.

    ``None``/``False`` disables caching; ``True`` uses the defaults; an
    ``int`` bounds each shard cache's entries; a ``dict`` is forwarded
    verbatim.  A shared :class:`~repro.cache.QueryResultCache` instance is
    rejected: shard caches hold shard-*local* vertex ids, so one store
    cannot serve several shards.
    """
    if caching is None or caching is False:
        return None
    if caching is True:
        return {}
    if isinstance(caching, dict):
        return dict(caching)
    if isinstance(caching, int):
        return {"max_entries": caching}
    raise SimulationError(
        "caching must be True, an int (max_entries) or a kwargs dict; "
        f"got {caching!r} (per-shard caches cannot share one QueryResultCache)"
    )


class _RoutingGrid:
    """Occupancy-based routing: which shards have vertices inside a box?

    Shard bounding boxes overlap badly on ragged meshes (a Hilbert run is
    contiguous on the curve, not a brick in space), so AABB routing fans
    tiny queries out to ~2 shards.  This filter is finer: a coarse uniform
    grid over the mesh, one occupancy bitmap per shard ("shard k has a
    vertex in cell c"), stored as 3-D summed-area tables so "any occupied
    cell inside the box's cell range?" is eight integral lookups per
    (box, shard) — vectorised over both.  False positives only cost work
    (an empty sub-query); false negatives are impossible: a vertex inside
    the box lies in a cell the box's clipped cell range covers.
    """

    def __init__(self, resolution: int = 16) -> None:
        self.resolution = int(resolution)
        self._lo = np.zeros(3)
        self._inv_cell = np.ones(3)
        self._integrals = np.zeros((0, 2, 2, 2), dtype=np.int32)

    def rebuild(self, shards: Sequence[MeshShard]) -> None:
        """Recompute the per-shard occupancy integrals from current positions."""
        resolution = self.resolution
        los = np.min([shard.bounds.lo for shard in shards], axis=0)
        his = np.max([shard.bounds.hi for shard in shards], axis=0)
        extents = np.maximum(his - los, 1e-12)
        self._lo = los
        self._inv_cell = resolution / extents
        self._integrals = np.zeros(
            (len(shards), resolution + 1, resolution + 1, resolution + 1), dtype=np.int32
        )
        for k, shard in enumerate(shards):
            cells = ((shard.mesh.vertices - los) * self._inv_cell).astype(np.int64)
            np.clip(cells, 0, resolution - 1, out=cells)
            occupancy = np.zeros((resolution,) * 3, dtype=np.int32)
            occupancy[cells[:, 0], cells[:, 1], cells[:, 2]] = 1
            self._integrals[k, 1:, 1:, 1:] = (
                occupancy.cumsum(axis=0).cumsum(axis=1).cumsum(axis=2)
            )

    def overlap_matrix(self, los: np.ndarray, his: np.ndarray) -> np.ndarray:
        """(n_boxes, n_shards) bool: shard k owns a grid cell box i covers."""
        resolution = self.resolution
        lo_cells = np.clip(
            np.floor((los - self._lo) * self._inv_cell).astype(np.int64), 0, resolution - 1
        )
        hi_cells = (
            np.clip(
                np.floor((his - self._lo) * self._inv_cell).astype(np.int64),
                0,
                resolution - 1,
            )
            + 1
        )
        x1, y1, z1 = lo_cells[:, 0], lo_cells[:, 1], lo_cells[:, 2]
        x2, y2, z2 = hi_cells[:, 0], hi_cells[:, 1], hi_cells[:, 2]
        integral = self._integrals
        counts = (
            integral[:, x2, y2, z2]
            - integral[:, x1, y2, z2]
            - integral[:, x2, y1, z2]
            - integral[:, x2, y2, z1]
            + integral[:, x1, y1, z2]
            + integral[:, x1, y2, z1]
            + integral[:, x2, y1, z1]
            - integral[:, x1, y1, z1]
        )
        return counts.T > 0


class _ReadWriteLock:
    """Many concurrent readers (queries) or one writer (a maintenance tick).

    Writer-preferring: once a tick is waiting, new queries queue behind it,
    so steady query traffic cannot starve maintenance.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        """Hold shared (reader) access for the duration of the block."""
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        """Hold exclusive (writer) access for the duration of the block."""
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class ShardedQueryService(ExecutionStrategy):
    """Route, fan out, merge: concurrent range queries over K mesh shards.

    The service implements the full
    :class:`~repro.core.executor.ExecutionStrategy` protocol, so the
    simulator, the harness and the wrappers treat it like any other strategy
    (it can itself be wrapped, budgeted or registered in a
    :class:`~repro.simulation.MeshSimulation`).

    Parameters
    ----------
    strategy_factory:
        Zero-argument callable producing the per-shard
        :class:`~repro.core.executor.ExecutionStrategy` (one call per
        shard).  Defaults to :class:`~repro.core.OctopusExecutor`.
    n_shards:
        Target shard count (clamped to the cell count at prepare time).
    max_workers:
        Worker threads in the fan-out pool (default: the shard count).
    hilbert_bits:
        Curve resolution handed to the partitioner.
    caching:
        Wrap every shard strategy in a
        :class:`~repro.cache.CachingStrategy`: ``True`` with defaults, an
        ``int`` for ``max_entries``, a ``dict`` of
        :class:`~repro.cache.QueryResultCache` keyword arguments.  Each
        shard owns a private cache holding *local* vertex ids, so sliced
        deltas invalidate only the owning shard's entries and a repartition
        flushes every cache (shard strategies are re-prepared).
    """

    def __init__(
        self,
        strategy_factory: Callable[[], ExecutionStrategy] | None = None,
        n_shards: int = 4,
        max_workers: int | None = None,
        hilbert_bits: int = 10,
        caching: bool | int | dict | None = None,
    ) -> None:
        if n_shards < 1:
            raise SimulationError(f"n_shards must be at least 1, got {n_shards}")
        super().__init__()
        self.strategy_factory = strategy_factory or OctopusExecutor
        self.requested_shards = n_shards
        self.hilbert_bits = hilbert_bits
        self._max_workers = max_workers
        self._cache_kwargs = _normalize_caching(caching)
        self._shards: list[MeshShard] = []
        self._strategies: list[ExecutionStrategy] = []
        self._shard_los = np.empty((0, 3), dtype=np.float64)
        self._shard_his = np.empty((0, 3), dtype=np.float64)
        self._routing_grid = _RoutingGrid()
        self._pool: ThreadPoolExecutor | None = None
        self._lock = _ReadWriteLock()
        #: number of full repartitions forced by restructuring events
        self.n_repartitions = 0
        #: standing subscriptions over the whole service (global vertex ids);
        #: its re-queries route per shard and dedup the overlap band in _merge
        self._standing = StandingQueryRegistry()
        self._standing_used = False
        self._step: int | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _make_shard_strategy(self) -> ExecutionStrategy:
        strategy = self.strategy_factory()
        if self._cache_kwargs is not None:
            strategy = CachingStrategy(strategy, **self._cache_kwargs)
        return strategy

    @property
    def name(self) -> str:
        """Strategy-style label, e.g. ``sharded-octopusx4``."""
        inner = (
            self._strategies[0].name if self._strategies else self._make_shard_strategy().name
        )
        return f"sharded-{inner}x{len(self._shards) or self.requested_shards}"

    @property
    def mesh(self) -> PolyhedralMesh:
        """The live parent mesh handed to :meth:`prepare`."""
        if self._mesh is None:
            raise SimulationError("sharded service: prepare() has not been called")
        return self._mesh

    @property
    def shards(self) -> list[MeshShard]:
        """The current partition, one :class:`MeshShard` per shard."""
        return self._shards

    @property
    def strategies(self) -> list[ExecutionStrategy]:
        """The per-shard execution strategies, aligned with :attr:`shards`."""
        return self._strategies

    @property
    def n_shards(self) -> int:
        """Actual shard count after prepare-time clamping."""
        return len(self._shards)

    def prepare(self, mesh: PolyhedralMesh) -> float:
        """Partition the mesh, build one strategy per shard, start the pool."""
        start = time.perf_counter()
        self._mesh = mesh
        self._build_shards()
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers or max(1, len(self._shards)),
                thread_name_prefix="repro-shard",
            )
        self.preprocessing_time = time.perf_counter() - start
        return self.preprocessing_time

    def _build_shards(self) -> None:
        """(Re)partition the live mesh and (re)prepare the shard strategies."""
        assert self._mesh is not None
        self._shards, _ = partition_mesh(
            self._mesh, self.requested_shards, bits=self.hilbert_bits
        )
        if len(self._strategies) != len(self._shards):
            self._strategies = [self._make_shard_strategy() for _ in self._shards]
        # re-preparing a CachingStrategy flushes its cache, so a repartition
        # can never serve entries keyed to the previous partition's local ids
        for strategy, shard in zip(self._strategies, self._shards):
            strategy.prepare(shard.mesh)
        self._refresh_routing()

    def _refresh_routing(self) -> None:
        self._shard_los = np.stack([shard.bounds.lo for shard in self._shards])
        self._shard_his = np.stack([shard.bounds.hi for shard in self._shards])
        self._routing_grid.rebuild(self._shards)

    def warm(self) -> float:
        """Force every shard's lazily built structures now, in parallel.

        The crawl builds a shard's CSR adjacency on first use; in a serving
        context that cost belongs in preprocessing, not in some unlucky
        first request's latency.  Charged to :attr:`preprocessing_time`.
        """
        start = time.perf_counter()
        if self._pool is not None and len(self._shards) > 1:
            list(self._pool.map(lambda shard: shard.mesh.adjacency, self._shards))
        else:
            for shard in self._shards:
                shard.mesh.adjacency  # noqa: B018 - building the lazy CSR is the point
        elapsed = time.perf_counter() - start
        self.preprocessing_time += elapsed
        return elapsed

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _overlap_matrix(self, los: np.ndarray, his: np.ndarray) -> np.ndarray:
        """(n_boxes, n_shards) routing matrix: AABB test ∧ occupancy test.

        Complete by construction: every shard vertex lies inside its shard's
        bounds *and* in an occupied routing-grid cell, so a vertex inside the
        query box implies both tests pass for its shard — pruned shards
        cannot contain results.  The AABB term handles boxes that clip to
        border grid cells from far outside the mesh.
        """
        aabb = np.all(
            (los[:, None, :] <= self._shard_his[None, :, :])
            & (his[:, None, :] >= self._shard_los[None, :, :]),
            axis=2,
        )
        return aabb & self._routing_grid.overlap_matrix(los, his)

    def route(self, box: Box3D) -> np.ndarray:
        """Indices of the shards that can hold vertices inside ``box``."""
        matrix = self._overlap_matrix(
            np.asarray(box.lo, dtype=np.float64)[None, :],
            np.asarray(box.hi, dtype=np.float64)[None, :],
        )
        return np.nonzero(matrix[0])[0]

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------
    def _merge(self, pieces: Sequence[tuple[MeshShard, QueryResult]]) -> QueryResult:
        """Union per-shard results into one global :class:`QueryResult`."""
        if not pieces:
            return QueryResult(vertex_ids=np.empty(0, dtype=np.int64), counters=QueryCounters())
        if len(pieces) == 1:
            # Fast path for boxes routed to a single shard (the common case
            # with grid routing): the global ids of a sorted local id array
            # are already sorted and unique, and the per-shard result is
            # ephemeral, so its counters can be adopted without copying.
            shard, result = pieces[0]
            return QueryResult(
                vertex_ids=shard.to_global(result.vertex_ids),
                counters=result.counters,
                probe_time=result.probe_time,
                walk_time=result.walk_time,
                crawl_time=result.crawl_time,
                scan_time=result.scan_time,
                index_time=result.index_time,
                total_time=result.total_time,
                complete=result.complete,
            )
        counters = QueryCounters()
        ids: list[np.ndarray] = []
        probe = walk = crawl = scan = index = total = 0.0
        complete = True
        for shard, result in pieces:
            ids.append(shard.to_global(result.vertex_ids))
            counters += result.counters
            probe += result.probe_time
            walk += result.walk_time
            crawl += result.crawl_time
            scan += result.scan_time
            index += result.index_time
            total += result.total_time
            complete = complete and result.complete
        # QueryResult.__post_init__ sorts and dedups, which is exactly the
        # overlap-band union semantics — no need for a second unique pass.
        return QueryResult(
            vertex_ids=np.concatenate(ids),
            counters=counters,
            probe_time=probe,
            walk_time=walk,
            crawl_time=crawl,
            scan_time=scan,
            index_time=index,
            total_time=total,
            complete=complete,
        )

    def query(self, box: Box3D) -> QueryResult:
        """Answer one range query (safe to call from any thread)."""
        check_query_box(box)
        with self._lock.read():
            return self._query_unlocked(box)

    def _query_unlocked(self, box: Box3D) -> QueryResult:
        """Route/fan-out/merge with the service lock already held.

        Shared by :meth:`query` (reader side) and the standing-registry
        evaluation inside the maintenance hooks (writer side — the
        readers-writer lock is not reentrant, so the registry's re-queries
        must not reacquire it).
        """
        routed = self.route(box)
        if routed.size <= 1 or self._pool is None:
            pieces = [
                (self._shards[k], self._strategies[k].query(box)) for k in routed
            ]
        else:
            futures = [
                (k, self._pool.submit(self._strategies[k].query, box)) for k in routed
            ]
            pieces = [(self._shards[k], future.result()) for k, future in futures]
        return self._merge(pieces)

    def _standing_query_ids(self, box: Box3D) -> np.ndarray:
        """The registry's query_fn: per-shard slicing + overlap-band dedup.

        A subscription's re-query fans out only to the shards the routing
        matrix says can hold members (the per-shard slice of the standing
        work); :meth:`_merge` unions the per-shard answers back to global
        ids, deduplicating the overlap band exactly as one-shot queries do.
        """
        return self._query_unlocked(box).vertex_ids

    def query_many(self, boxes: Sequence[Box3D]) -> list[QueryResult]:
        """Answer a batch: route, fan out one fused sub-batch per shard, merge.

        Each routed shard receives its boxes as **one** ``query_many`` call,
        so the per-shard fused walk/crawl kernels amortise exactly as they do
        unsharded; the sub-batches run concurrently on the pool.  Failure
        stays all-or-nothing per sub-batch, matching the executors'
        ``query_many`` contract — an exception from any shard propagates.
        """
        box_list = check_query_boxes(boxes)
        if not box_list:
            return []
        with self._lock.read():
            los = np.stack([np.asarray(box.lo) for box in box_list])
            his = np.stack([np.asarray(box.hi) for box in box_list])
            # (n_boxes, n_shards) routing matrix: box i routes to shard k.
            overlap = self._overlap_matrix(los, his)
            per_shard: list[tuple[int, np.ndarray]] = []
            for k in range(len(self._shards)):
                routed = np.nonzero(overlap[:, k])[0]
                if routed.size:
                    per_shard.append((k, routed))

            def run_shard(k: int, routed: np.ndarray) -> list[QueryResult]:
                return self._strategies[k].query_many([box_list[i] for i in routed])

            if len(per_shard) <= 1 or self._pool is None:
                shard_results = [(k, routed, run_shard(k, routed)) for k, routed in per_shard]
            else:
                futures = [
                    (k, routed, self._pool.submit(run_shard, k, routed))
                    for k, routed in per_shard
                ]
                shard_results = [(k, routed, future.result()) for k, routed, future in futures]

            pieces_per_box: list[list[tuple[MeshShard, QueryResult]]] = [
                [] for _ in box_list
            ]
            for k, routed, results in shard_results:
                shard = self._shards[k]
                for box_index, result in zip(routed, results):
                    pieces_per_box[int(box_index)].append((shard, result))
            return [self._merge(pieces) for pieces in pieces_per_box]

    # ------------------------------------------------------------------
    # standing subscriptions
    # ------------------------------------------------------------------
    def subscribe(self, box: Box3D) -> int:
        """Register a standing query over the whole service; returns its id.

        The initial membership is evaluated immediately (one routed
        fan-out), queued as an ``"initial"``
        :class:`~repro.standing.MembershipUpdate`, and kept current by every
        subsequent maintenance tick: deformation ticks update it from the
        parent delta's moved set with pure point tests, restructuring ticks
        re-query only the subscriptions whose box intersects the dirty AABB
        — each re-query fanning out only to its routed shards, with the
        overlap band deduplicated by the merge.  Requires :meth:`prepare`.
        """
        if not self._shards:
            raise SimulationError("sharded service: subscribe() before prepare()")
        check_query_box(box)
        self._standing_used = True
        with self._lock.read():
            return self._standing.subscribe(box, self._standing_query_ids, step=self._step)

    def unsubscribe(self, sid: int) -> None:
        """Drop a standing subscription; queued updates stay drainable."""
        self._standing.unsubscribe(sid)

    def drain_membership_updates(self) -> list[MembershipUpdate]:
        """Return and clear the queued per-tick membership updates."""
        return self._standing.drain_updates()

    def standing_stats(self) -> StandingStats | None:
        """Snapshot of the registry counters (``None`` before any subscribe)."""
        return self._standing.stats() if self._standing_used else None

    def drain_standing_stats(self) -> StandingStats | None:
        """Registry counters since the last drain (``None`` before any subscribe)."""
        return self._standing.drain_stats() if self._standing_used else None

    # ------------------------------------------------------------------
    # maintenance (the writer side)
    # ------------------------------------------------------------------
    def on_step(self, delta: DeformationDelta) -> float:
        """Apply one deformation tick: slice the delta per shard, maintain.

        The parent mesh has already moved (deformation models rewrite it in
        place); this propagates the motion into each shard's submesh and
        hands each shard strategy its own local delta — full deltas stay
        full, sparse deltas narrow to the shard's moved members (usually one
        or two shards for a localized pulse), untouched shards see an empty
        delta and skip maintenance entirely.
        """
        start = time.perf_counter()
        with self._lock.write():
            parent = self.mesh
            for shard, strategy in zip(self._shards, self._strategies):
                local = self._slice_delta(delta, shard, parent)
                strategy.on_step(local)
                shard.refresh_bounds()
            self._refresh_routing()
            # the standing tick consumes the *parent* delta (global ids);
            # the rare re-query it needs routes per shard via the unlocked path
            self._standing.tick_deformation(delta, self._standing_query_ids, step=self._step)
        elapsed = time.perf_counter() - start
        self.maintenance_time += elapsed
        return elapsed

    def _slice_delta(
        self, delta: DeformationDelta, shard: MeshShard, parent: PolyhedralMesh
    ) -> DeformationDelta:
        """Project a parent-mesh deformation delta onto one shard."""
        if delta.is_full:
            shard.mesh.set_positions(parent.vertices[shard.global_ids])
            return DeformationDelta.full(shard.n_vertices)
        if delta.n_moved == 0:
            return DeformationDelta.empty(shard.n_vertices)
        local_ids, member = shard.local_ids_for(delta.moved_ids)
        if local_ids.size == 0:
            return DeformationDelta.empty(shard.n_vertices)
        new_positions = (
            delta.new_positions[member]
            if delta.new_positions is not None
            else parent.vertices[delta.moved_ids[member]]
        )
        old_positions = (
            delta.old_positions[member]
            if delta.old_positions is not None
            else shard.mesh.vertices[local_ids]
        )
        shard.mesh.displace_at(local_ids, new_positions - shard.mesh.vertices[local_ids])
        return DeformationDelta.sparse(
            shard.n_vertices, local_ids, old_positions, new_positions
        )

    def on_restructure(self, delta: TopologyDelta) -> float:
        """React to a restructuring event.

        A :class:`~repro.core.delta.TopologyDelta` names dirty *vertices*,
        not the cells whose membership changed, so an exact per-shard slice
        of a connectivity change is not derivable from the delta alone — a
        non-empty event therefore triggers a full repartition against the
        live mesh (counted in :attr:`n_repartitions`).  Empty events forward
        an empty delta to every shard, which is a no-op unless a shard
        detects staleness on its own.
        """
        start = time.perf_counter()
        with self._lock.write():
            if delta.is_empty:
                for shard, strategy in zip(self._shards, self._strategies):
                    strategy.on_restructure(TopologyDelta.empty(shard.n_vertices))
            else:
                self._build_shards()
                self.n_repartitions += 1
            # after the repartition the shard strategies answer against the
            # restructured mesh, so the narrowed re-queries see fresh state
            self._standing.tick_topology(delta, self._standing_query_ids, step=self._step)
        elapsed = time.perf_counter() - start
        self.maintenance_time += elapsed
        return elapsed

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def note_step(self, step: int | None) -> None:
        """Forward the simulation step tag to every shard strategy."""
        self._step = step
        for strategy in self._strategies:
            note = getattr(strategy, "note_step", None)
            if note is not None:
                note(step)

    def cache_stats(self) -> CacheStats | None:
        """Aggregated per-shard cache counters (``None`` when not caching)."""
        with self._lock.read():
            return self._collect_cache_stats("cache_stats")

    def drain_cache_stats(self) -> CacheStats | None:
        """Aggregate and reset per-shard cache counters since the last drain."""
        with self._lock.read():
            return self._collect_cache_stats("drain_cache_stats")

    def _collect_cache_stats(self, method: str) -> CacheStats | None:
        stats: CacheStats | None = None
        for strategy in self._strategies:
            collect = getattr(strategy, method, None)
            if collect is None:
                continue
            shard_stats = collect()
            if shard_stats is None:
                continue
            stats = shard_stats if stats is None else stats.merge(shard_stats)
        return stats

    def memory_overhead_bytes(self) -> int:
        """Shard submesh copies plus every shard strategy's own overhead."""
        return int(
            sum(shard.mesh.memory_bytes() for shard in self._shards)
            + sum(strategy.memory_overhead_bytes() for strategy in self._strategies)
            + self._standing.memory_bytes()
        )

    def describe(self) -> dict:
        """Service topology and accounting, for reports and logs."""
        record = {
            "name": self.name,
            "n_shards": self.n_shards,
            "shard_vertices": [shard.n_vertices for shard in self._shards],
            "overlap_vertices": self.overlap_band_size(),
            "preprocessing_time": self.preprocessing_time,
            "maintenance_time": self.maintenance_time,
            "n_repartitions": self.n_repartitions,
        }
        if self._cache_kwargs is not None:
            record["cached"] = True
        if self._standing_used:
            record["standing"] = self._standing.describe()
        return record

    def overlap_band_size(self) -> int:
        """Number of parent vertices owned by more than one shard."""
        if not self._shards:
            return 0
        all_ids = np.concatenate([shard.global_ids for shard in self._shards])
        _, counts = np.unique(all_ids, return_counts=True)
        return int((counts > 1).sum())
