"""Seeded mixed query/deformation load generator for the sharded service.

The benchmark cell the ROADMAP asks for is *service-shaped*: a mesh that
deforms every tick, with several concurrent clients each firing bursts of
range queries between ticks.  This module generates that traffic
deterministically (every box, every displacement and every request
boundary derives from one seed) and drives it against either

* the **sequential baseline** — one unsharded strategy answering every
  request in arrival order on one thread (``n_shards=0``), or
* the **sharded service** — a :class:`~repro.service.ShardedQueryService`
  with K shards, hammered by C client threads in parallel.

Each *request* is one ``query_many`` batch (that is the unit a monitoring
client ships); latency is measured per request, throughput over the whole
query phase.  Both drivers replay the identical workload and deformation
schedule, and report an order-independent checksum over all result id
arrays, so a cell's results can be asserted bit-identical to the
baseline's — the benchmark refuses to report a speedup for wrong answers.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core import OctopusConExecutor, OctopusExecutor
from ..core.executor import ExecutionStrategy
from ..errors import SimulationError
from ..mesh import Box3D, PolyhedralMesh
from ..simulation.deformation import LocalizedPulseDeformation
from ..workloads import random_query_workload
from .service import ShardedQueryService

__all__ = ["TRAFFIC_PROFILES", "TrafficProfile", "generate_requests", "run_traffic"]

#: strategy factories the traffic driver knows how to shard
STRATEGY_FACTORIES: dict[str, Callable[[], ExecutionStrategy]] = {
    "octopus": OctopusExecutor,
    "octopus-con": OctopusConExecutor,
}


@dataclass(frozen=True)
class TrafficProfile:
    """Shape of one traffic run (all randomness derives from ``seed``).

    ``n_steps`` deformation ticks; between consecutive ticks every client
    issues ``requests_per_client`` requests of ``queries_per_request``
    boxes each.  The deformation is a localized pulse moving
    ``deformation_sparsity`` of the vertices per tick — sparse deltas, the
    shape the per-shard delta slicing is built for.
    """

    n_steps: int = 3
    n_clients: int = 4
    requests_per_client: int = 2
    queries_per_request: int = 8
    selectivity: float = 0.003
    seed: int = 42
    deformation_sparsity: float = 0.03
    deformation_amplitude: float = 0.002

    def total_queries(self) -> int:
        """Boxes issued over the whole run (all steps, clients and requests)."""
        return (
            self.n_steps
            * self.n_clients
            * self.requests_per_client
            * self.queries_per_request
        )


#: per-dataset-profile traffic shapes shared by the CLI experiment and the
#: traffic benchmark: enough requests that the query phase dominates setup
TRAFFIC_PROFILES: dict[str, TrafficProfile] = {
    "tiny": TrafficProfile(
        n_steps=2, n_clients=4, requests_per_client=2, queries_per_request=8
    ),
    "small": TrafficProfile(
        n_steps=3, n_clients=4, requests_per_client=2, queries_per_request=32
    ),
    "medium": TrafficProfile(
        n_steps=3, n_clients=4, requests_per_client=4, queries_per_request=64
    ),
}


def generate_requests(
    mesh: PolyhedralMesh, profile: TrafficProfile
) -> list[list[list[list[Box3D]]]]:
    """The full request schedule: ``requests[step][client][request]`` -> boxes.

    Boxes are sized against the *initial* positions (the schedule must be
    identical for every cell replaying the same deformation), centred on
    seeded random vertices like the paper's monitoring workload.
    """
    workload = random_query_workload(
        mesh,
        selectivity=profile.selectivity,
        n_queries=profile.total_queries(),
        seed=profile.seed,
        description="traffic",
    )
    boxes = iter(workload.boxes)
    return [
        [
            [
                [next(boxes) for _ in range(profile.queries_per_request)]
                for _ in range(profile.requests_per_client)
            ]
            for _ in range(profile.n_clients)
        ]
        for _ in range(profile.n_steps)
    ]


def _request_checksum(results) -> int:
    """Order-independent digest of a request's result id arrays.

    Summing per-query digests keeps the value independent of which thread
    finished first, while still pinning every id of every result.
    """
    total = 0
    for result in results:
        ids = result.vertex_ids
        digest = int(ids.size) * 0x9E3779B97F4A7C15 + int(ids.sum()) * 0x100000001B3
        if ids.size:
            digest += int((ids * np.arange(1, ids.size + 1, dtype=np.int64)).sum())
        total = (total + digest) % (1 << 63)
    return total


def _percentile_ms(latencies: Sequence[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies, dtype=np.float64), q) * 1e3)


def run_traffic(
    mesh: PolyhedralMesh,
    profile: TrafficProfile,
    n_shards: int,
    n_clients: int | None = None,
    strategy: str = "octopus",
) -> dict:
    """Drive one traffic cell and report throughput, latency and a checksum.

    ``n_shards == 0`` runs the sequential single-strategy baseline (one
    thread, requests in arrival order); ``n_shards >= 1`` runs the sharded
    service with ``n_clients`` concurrent client threads.  The input mesh
    is copied, so cells are independent and replayable.
    """
    if strategy not in STRATEGY_FACTORIES:
        raise SimulationError(
            f"unknown traffic strategy {strategy!r}; expected one of "
            f"{sorted(STRATEGY_FACTORIES)}"
        )
    factory = STRATEGY_FACTORIES[strategy]
    n_clients = profile.n_clients if n_clients is None else n_clients
    requests = generate_requests(mesh, profile)
    run_mesh = mesh.copy(name=f"{mesh.name}-traffic")
    deformation = LocalizedPulseDeformation(
        sparsity=profile.deformation_sparsity,
        amplitude=profile.deformation_amplitude,
        seed=profile.seed,
    )
    deformation.bind(run_mesh)

    latencies: list[float] = []
    checksum = 0
    checksum_lock = threading.Lock()
    maintenance_s = 0.0
    query_wall_s = 0.0

    def serve_client(target, client_requests: list[list[Box3D]]) -> None:
        nonlocal checksum
        client_latencies = []
        client_digest = 0
        for boxes in client_requests:
            started = time.perf_counter()
            results = target.query_many(boxes)
            client_latencies.append(time.perf_counter() - started)
            client_digest = (client_digest + _request_checksum(results)) % (1 << 63)
        with checksum_lock:
            latencies.extend(client_latencies)
            checksum = (checksum + client_digest) % (1 << 63)

    # One unmeasured warmup request: the first query pays one-time lazy
    # costs (adjacency CSR build, allocator/BLAS warmup) that would swamp a
    # short measured run; queries are read-only, so replaying a request
    # changes nothing.
    warmup = requests[0][0][0]

    if n_shards == 0:
        executor = factory()
        prep_s = executor.prepare(run_mesh)
        run_mesh.adjacency  # noqa: B018 - build the lazy CSR outside the measured window
        executor.query_many(warmup)
        for step_index, step_requests in enumerate(requests):
            delta = deformation.apply(step_index + 1)
            maintenance_s += executor.on_step(delta)
            started = time.perf_counter()
            for client_requests in step_requests:
                serve_client(executor, client_requests)
            query_wall_s += time.perf_counter() - started
        label = f"sequential-{strategy}"
    else:
        with ShardedQueryService(factory, n_shards=n_shards) as service:
            prep_s = service.prepare(run_mesh)
            service.warm()
            service.query_many(warmup)
            for step_index, step_requests in enumerate(requests):
                delta = deformation.apply(step_index + 1)
                maintenance_s += service.on_step(delta)
                threads = [
                    threading.Thread(target=serve_client, args=(service, client_requests))
                    for client_requests in step_requests[:n_clients]
                ]
                started = time.perf_counter()
                for thread in threads:
                    thread.start()
                # Clients beyond the thread budget still replay their share
                # of the workload (so every cell answers the same queries),
                # just from the calling thread.
                for client_requests in step_requests[n_clients:]:
                    serve_client(service, client_requests)
                for thread in threads:
                    thread.join()
                query_wall_s += time.perf_counter() - started
        label = f"sharded-{strategy}"

    n_queries = profile.total_queries()
    return {
        "strategy": label,
        "n_shards": int(n_shards),
        "n_clients": int(n_clients if n_shards else 1),
        "n_queries": n_queries,
        "throughput_qps": n_queries / query_wall_s if query_wall_s else 0.0,
        "p50_ms": _percentile_ms(latencies, 50),
        "p99_ms": _percentile_ms(latencies, 99),
        "query_wall_s": query_wall_s,
        "maintenance_s": maintenance_s,
        "prepare_s": prep_s,
        "results_checksum": checksum,
    }
