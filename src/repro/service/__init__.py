"""Sharded concurrent query service: partition, route, fan out, merge.

The production-shaped layer over the single-threaded query engine: the mesh
is cut into Hilbert-contiguous shards (:mod:`repro.service.partition`),
each served by its own execution strategy on a worker-thread pool, behind a
front-end that routes boxes to overlapping shards and merges per-shard
results (:mod:`repro.service.service`).  A seeded mixed
query/deformation load generator (:mod:`repro.service.traffic`) drives it
for the throughput/latency benchmarks.  See ``docs/service.md``.
"""

from .partition import MeshShard, partition_mesh
from .service import ShardedQueryService
from .traffic import TRAFFIC_PROFILES, TrafficProfile, generate_requests, run_traffic

__all__ = [
    "TRAFFIC_PROFILES",
    "MeshShard",
    "ShardedQueryService",
    "TrafficProfile",
    "generate_requests",
    "partition_mesh",
    "run_traffic",
]
