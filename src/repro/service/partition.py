"""Hilbert-order spatial partitioning of a mesh into query shards.

The sharded query service needs the mesh cut into K pieces that are

* **spatially coherent** — a range query should overlap few shards, so
  routing by shard bounding box prunes most of the work; and
* **crawl-closed** — every cell lives in exactly one shard, so a shard's
  submesh carries all the edges among its vertices that the cell induces and
  a per-shard crawl retrieves every shard vertex inside the box.

Both fall out of the Hilbert machinery that already orders vertices for the
cache-friendly layouts (:mod:`repro.mesh.hilbert`): cells are sorted by the
Hilbert distance of their centroid and split into K contiguous, equally
sized runs.  Cells are atomic; vertices referenced by cells in more than one
shard are duplicated into each — the *overlap band* along shard boundaries —
and the service deduplicates them at merge time (result ids are global, so
the union is exact).

Vertices referenced by no cell belong to no shard; the crawl cannot reach
them either (no incident edges), so sharding preserves exactly the query
semantics OCTOPUS already has.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import SimulationError
from ..mesh import PolyhedralMesh, hilbert_sort_order

__all__ = ["MeshShard", "partition_mesh"]


class MeshShard:
    """One spatially coherent piece of a partitioned mesh.

    Attributes
    ----------
    index:
        Position of this shard in the partition (0-based).
    mesh:
        The shard's submesh: the vertices referenced by its cells (copied out
        of the parent), with cells relabelled to local ids.  Same mesh class
        as the parent, so per-shard strategies see an ordinary mesh.
    global_ids:
        Sorted ``int64`` parent-mesh id of every shard vertex; local id ``i``
        is the vertex ``global_ids[i]``.  The sorted order is what makes the
        local↔global maps a ``searchsorted``, and keeps local relative order
        equal to global relative order (id-stable results after the merge).
    cell_ids:
        Parent-mesh ids of the cells assigned to this shard.
    bounds:
        Axis-aligned box over the shard vertices' *current* positions; the
        routing test.  Refreshed by :meth:`refresh_bounds` after deformation.
    """

    __slots__ = ("index", "mesh", "global_ids", "cell_ids", "bounds")

    def __init__(
        self,
        index: int,
        mesh: PolyhedralMesh,
        global_ids: np.ndarray,
        cell_ids: np.ndarray,
    ) -> None:
        self.index = index
        self.mesh = mesh
        self.global_ids = global_ids
        self.cell_ids = cell_ids
        self.bounds = mesh.bounding_box()

    @property
    def n_vertices(self) -> int:
        """Number of vertices in the shard's submesh."""
        return int(self.global_ids.size)

    def to_global(self, local_ids: np.ndarray) -> np.ndarray:
        """Map local (shard-mesh) vertex ids back to parent-mesh ids."""
        return self.global_ids[local_ids]

    def local_ids_for(self, global_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map sorted parent-mesh ids to local ids, dropping non-members.

        Returns ``(local_ids, member_mask)`` where ``member_mask`` aligns
        with the input (True where the id belongs to this shard) and
        ``local_ids`` are the members' local ids, in input order.
        """
        ids = np.asarray(global_ids, dtype=np.int64)
        slots = np.searchsorted(self.global_ids, ids)
        slots = np.minimum(slots, self.global_ids.size - 1)
        member = self.global_ids[slots] == ids
        return slots[member], member

    def refresh_bounds(self) -> None:
        """Re-derive the routing box from the shard's current positions."""
        self.bounds = self.mesh.bounding_box()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MeshShard(index={self.index}, n_vertices={self.n_vertices}, "
            f"n_cells={self.cell_ids.size})"
        )


def partition_mesh(
    mesh: PolyhedralMesh, n_shards: int, bits: int = 10
) -> tuple[list[MeshShard], float]:
    """Cut ``mesh`` into ``n_shards`` Hilbert-contiguous shards.

    Cell centroids are sorted along the Hilbert curve
    (:func:`~repro.mesh.hilbert.hilbert_sort_order`) and dealt into K
    contiguous runs of near-equal cell count, so each shard covers one
    compact stretch of the curve — compact in space, balanced in load.
    Returns the shards plus the partitioning seconds (charged to the
    service's preprocessing time).

    ``n_shards`` is clamped to the cell count (a shard with no cells would
    have no vertices to crawl); a mesh with no cells yields one shard that
    simply copies the mesh, so degenerate inputs behave like the unsharded
    strategies.
    """
    if n_shards < 1:
        raise SimulationError(f"n_shards must be at least 1, got {n_shards}")
    start = time.perf_counter()
    if mesh.n_cells == 0:
        shard = MeshShard(
            index=0,
            mesh=mesh.copy(name=f"{mesh.name}-shard0"),
            global_ids=np.arange(mesh.n_vertices, dtype=np.int64),
            cell_ids=np.empty(0, dtype=np.int64),
        )
        return [shard], time.perf_counter() - start

    n_shards = min(n_shards, mesh.n_cells)
    order = hilbert_sort_order(mesh.cell_centroids(), bits=bits)
    shards: list[MeshShard] = []
    for index, run in enumerate(np.array_split(order, n_shards)):
        cell_ids = np.sort(run)
        cells = mesh.cells[cell_ids]
        global_ids = np.unique(cells)
        local_cells = np.searchsorted(global_ids, cells)
        submesh = type(mesh)(
            mesh.vertices[global_ids],
            local_cells,
            name=f"{mesh.name}-shard{index}",
        )
        shards.append(MeshShard(index, submesh, global_ids, cell_ids))
    return shards, time.perf_counter() - start
