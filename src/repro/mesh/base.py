"""Base polyhedral mesh type shared by tetrahedral, hexahedral and triangle meshes.

A mesh couples three things:

* a mutable ``(n, 3)`` float array of vertex positions — the simulation
  overwrites this array in place at every time step;
* an immutable ``(m, k)`` integer cell array describing the polyhedra;
* connectivity derived lazily from the cells: the CSR adjacency list used by
  the crawl and the surface extraction used by the surface index.

Connectivity only depends on the cell array, so deforming the mesh (changing
positions) never invalidates it; restructuring the mesh (changing cells) does,
and :meth:`PolyhedralMesh.replace_cells` invalidates the caches accordingly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import MeshConnectivityError, MeshError
from .adjacency import AdjacencyList
from .geometry import Box3D
from .surface import SurfaceExtraction, extract_surface

__all__ = ["PolyhedralMesh"]


class PolyhedralMesh:
    """A 3D mesh of identical polyhedral primitives.

    Parameters
    ----------
    vertices:
        ``(n, 3)`` float array of vertex positions.  The array is used
        directly (not copied) when it is already a contiguous float64 array,
        which lets simulations update positions in place.
    cells:
        ``(m, k)`` int array of vertex ids per cell, where ``k`` matches
        :attr:`cell_arity`.
    name:
        Optional human readable dataset name used in reports.
    """

    #: number of vertices each cell references (3, 4 or 8); set by subclasses
    cell_arity: int = 0
    #: human readable primitive name ("tetrahedron", ...); set by subclasses
    primitive: str = "polyhedron"

    def __init__(
        self,
        vertices: np.ndarray,
        cells: np.ndarray,
        name: str = "mesh",
    ) -> None:
        vertex_arr = np.ascontiguousarray(vertices, dtype=np.float64)
        if vertex_arr.ndim != 2 or vertex_arr.shape[1] != 3:
            raise MeshError("vertices must be an (n, 3) array")
        cell_arr = np.ascontiguousarray(cells, dtype=np.int64)
        if cell_arr.size == 0:
            cell_arr = cell_arr.reshape(0, self.cell_arity or 4)
        if cell_arr.ndim != 2:
            raise MeshError("cells must be an (m, k) array")
        if self.cell_arity and cell_arr.shape[1] != self.cell_arity:
            raise MeshError(
                f"{type(self).__name__} cells must have {self.cell_arity} vertices, "
                f"got {cell_arr.shape[1]}"
            )
        if cell_arr.size and (cell_arr.min() < 0 or cell_arr.max() >= vertex_arr.shape[0]):
            raise MeshConnectivityError("cell vertex ids out of range")
        self._vertices = vertex_arr
        self._cells = cell_arr
        self.name = name
        self._adjacency: Optional[AdjacencyList] = None
        self._surface: Optional[SurfaceExtraction] = None
        #: incremented every time the cell array is replaced (restructuring);
        #: indexes that cache connectivity can compare against it.
        self.connectivity_version = 0
        #: incremented every time vertex positions change through the mesh API.
        self.geometry_version = 0

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> np.ndarray:
        """The live ``(n, 3)`` position array (mutated in place by simulations)."""
        return self._vertices

    @property
    def cells(self) -> np.ndarray:
        """The ``(m, k)`` cell array."""
        return self._cells

    @property
    def n_vertices(self) -> int:
        return int(self._vertices.shape[0])

    @property
    def n_cells(self) -> int:
        return int(self._cells.shape[0])

    def __len__(self) -> int:
        return self.n_vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(name={self.name!r}, vertices={self.n_vertices}, "
            f"cells={self.n_cells})"
        )

    # ------------------------------------------------------------------
    # connectivity (lazy, invalidated on restructuring)
    # ------------------------------------------------------------------
    @property
    def adjacency(self) -> AdjacencyList:
        """CSR adjacency over the mesh edges (built lazily, cached)."""
        if self._adjacency is None:
            self._adjacency = AdjacencyList.from_cells(self.n_vertices, self._cells)
        return self._adjacency

    @property
    def surface(self) -> SurfaceExtraction:
        """Surface faces/vertices derived from the global face list (cached)."""
        if self._surface is None:
            self._surface = extract_surface(self._cells)
        return self._surface

    def surface_vertices(self) -> np.ndarray:
        """Sorted ids of vertices on the mesh surface."""
        return self.surface.surface_vertices

    def mesh_degree(self) -> float:
        """Average number of edges per vertex (the paper's parameter M)."""
        return self.adjacency.average_degree()

    def surface_to_volume_ratio(self) -> float:
        """Surface vertices divided by total vertices (the paper's parameter S)."""
        if self.n_vertices == 0:
            raise MeshError("empty mesh has no surface-to-volume ratio")
        return self.surface.n_surface_vertices / self.n_vertices

    # ------------------------------------------------------------------
    # geometry updates (deformation)
    # ------------------------------------------------------------------
    def set_positions(self, positions: np.ndarray) -> None:
        """Overwrite all vertex positions in place (mesh deformation)."""
        pos = np.asarray(positions, dtype=np.float64)
        if pos.shape != self._vertices.shape:
            raise MeshError(
                f"positions shape {pos.shape} does not match mesh {self._vertices.shape}"
            )
        self._vertices[...] = pos
        self.geometry_version += 1

    def displace(self, displacement: np.ndarray) -> None:
        """Add a displacement field to all vertex positions in place."""
        disp = np.asarray(displacement, dtype=np.float64)
        if disp.shape != self._vertices.shape:
            raise MeshError(
                f"displacement shape {disp.shape} does not match mesh {self._vertices.shape}"
            )
        self._vertices += disp
        self.geometry_version += 1

    def displace_at(self, vertex_ids: np.ndarray, displacement: np.ndarray) -> None:
        """Add a displacement to the selected vertices only (sparse deformation).

        The localized deformation models move a small subset of vertices per
        step; going through this method (rather than poking the position array
        directly) keeps :attr:`geometry_version` honest.
        """
        ids = np.asarray(vertex_ids, dtype=np.int64)
        disp = np.asarray(displacement, dtype=np.float64)
        if ids.ndim != 1 or disp.shape != (ids.size, 3):
            raise MeshError("displace_at needs (k,) vertex ids and a (k, 3) displacement")
        if ids.size and (ids.min() < 0 or ids.max() >= self.n_vertices):
            raise MeshError("displace_at vertex ids out of range")
        self._vertices[ids] += disp
        self.geometry_version += 1

    # ------------------------------------------------------------------
    # connectivity updates (restructuring)
    # ------------------------------------------------------------------
    def replace_cells(self, cells: np.ndarray) -> None:
        """Replace the cell array (mesh restructuring) and invalidate caches.

        Restructuring is the rare transformation that changes the surface;
        OCTOPUS's surface index listens for it via :attr:`connectivity_version`.
        """
        cell_arr = np.ascontiguousarray(cells, dtype=np.int64)
        if cell_arr.ndim != 2 or (self.cell_arity and cell_arr.shape[1] != self.cell_arity):
            raise MeshError("replacement cells have the wrong shape")
        if cell_arr.size and (cell_arr.min() < 0 or cell_arr.max() >= self.n_vertices):
            raise MeshConnectivityError("replacement cell vertex ids out of range")
        self._cells = cell_arr
        self._adjacency = None
        self._surface = None
        self.connectivity_version += 1

    def restructure(self, vertices: np.ndarray, cells: np.ndarray) -> None:
        """Replace vertices *and* cells in place (restructuring that adds vertices).

        Cell splits insert new vertices, which :meth:`replace_cells` alone
        cannot express (its cells may not reference ids beyond the current
        vertex count).  This method swaps in both arrays at once, preserving
        the two contracts the delta pipeline relies on: pre-existing vertex
        ids keep their meaning (the new position array must extend the old
        numbering) and new vertices occupy the appended tail.

        When the vertex count is unchanged (cell removal) the positions are
        written *into the existing array*, so holders of a direct reference
        to :attr:`vertices` — an R-tree's captured position array, a
        deformation model's view — stay valid.  Only a vertex-count change
        (cell splits appending centroids) swaps the array object; holders
        must then re-read it, which the execution strategies do in their
        ``on_restructure`` (the tree strategies re-bind explicitly, everything
        else fetches ``mesh.vertices`` per call).
        """
        vertex_arr = np.ascontiguousarray(vertices, dtype=np.float64)
        if vertex_arr.ndim != 2 or vertex_arr.shape[1] != 3:
            raise MeshError("replacement vertices must be an (n, 3) array")
        cell_arr = np.ascontiguousarray(cells, dtype=np.int64)
        if cell_arr.ndim != 2 or (self.cell_arity and cell_arr.shape[1] != self.cell_arity):
            raise MeshError("replacement cells have the wrong shape")
        if cell_arr.size and (cell_arr.min() < 0 or cell_arr.max() >= vertex_arr.shape[0]):
            raise MeshConnectivityError("replacement cell vertex ids out of range")
        if vertex_arr.shape == self._vertices.shape:
            self._vertices[...] = vertex_arr
        else:
            self._vertices = vertex_arr
        self._cells = cell_arr
        self._adjacency = None
        self._surface = None
        self.connectivity_version += 1
        self.geometry_version += 1

    # ------------------------------------------------------------------
    # derived geometry
    # ------------------------------------------------------------------
    def bounding_box(self) -> Box3D:
        """Tight axis-aligned bounding box of the current vertex positions."""
        if self.n_vertices == 0:
            raise MeshError("empty mesh has no bounding box")
        return Box3D.from_points(self._vertices)

    def cell_centroids(self) -> np.ndarray:
        """Centroid of every cell, shape ``(m, 3)``."""
        return self._vertices[self._cells].mean(axis=1)

    def connected_components(self) -> list[np.ndarray]:
        """Partition vertex ids into connected components of the edge graph.

        Isolated vertices (referenced by no cell) each form their own
        component.  Used by generators and tests to reason about internal
        reachability.
        """
        adjacency = self.adjacency
        n = self.n_vertices
        seen = np.zeros(n, dtype=bool)
        components: list[np.ndarray] = []
        for start in range(n):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            members = [start]
            while stack:
                v = stack.pop()
                for w in adjacency.neighbors(v):
                    if not seen[w]:
                        seen[w] = True
                        stack.append(int(w))
                        members.append(int(w))
            components.append(np.asarray(sorted(members), dtype=np.int64))
        return components

    def memory_bytes(self) -> int:
        """Approximate in-memory size of positions, cells and adjacency."""
        total = int(self._vertices.nbytes + self._cells.nbytes)
        if self._adjacency is not None:
            total += self._adjacency.memory_bytes()
        return total

    # ------------------------------------------------------------------
    # copies
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "PolyhedralMesh":
        """Deep copy of positions and cells (connectivity caches are rebuilt lazily)."""
        clone = type(self)(
            self._vertices.copy(), self._cells.copy(), name=name or self.name
        )
        return clone

    def with_vertex_order(self, new_ids: np.ndarray) -> "PolyhedralMesh":
        """Return a copy whose vertex ``v`` has been renamed to ``new_ids[v]``.

        Positions and cell references are permuted consistently.  Used by the
        Hilbert layout optimisation.
        """
        new_ids = np.asarray(new_ids, dtype=np.int64)
        if new_ids.shape != (self.n_vertices,) or not np.array_equal(
            np.sort(new_ids), np.arange(self.n_vertices)
        ):
            raise MeshError("new_ids must be a permutation of vertex ids")
        new_vertices = np.empty_like(self._vertices)
        new_vertices[new_ids] = self._vertices
        new_cells = new_ids[self._cells]
        return type(self)(new_vertices, new_cells, name=self.name)

    def relabeled(self, new_ids: np.ndarray) -> "PolyhedralMesh":
        """Like :meth:`with_vertex_order`, but carrying connectivity caches.

        The adjacency CSR and the surface extraction are permuted through the
        same relabel map instead of being rebuilt from the cells — everything
        a strategy reads (positions, cells, adjacency, surface) moves through
        one permutation, which is the paper's Section IV-H1 layout pass.  Only
        caches that were already built are carried; absent ones stay lazy.
        """
        clone = self.with_vertex_order(new_ids)
        if self._adjacency is not None:
            clone._adjacency = self._adjacency.relabeled(new_ids)
        if self._surface is not None:
            clone._surface = self._surface.relabeled(new_ids)
        return clone
