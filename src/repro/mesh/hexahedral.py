"""Hexahedral meshes (8-vertex brick cells).

The paper's Figure 1(b) shows hexahedral meshes as an alternative primitive;
OCTOPUS itself is primitive-agnostic because it only ever follows edges.  This
class exists so the library (and its tests) exercise that claim.
"""

from __future__ import annotations

import numpy as np

from ..errors import MeshError
from .base import PolyhedralMesh

__all__ = ["HexahedralMesh"]


class HexahedralMesh(PolyhedralMesh):
    """A mesh whose cells are hexahedra (bricks with 8 vertices and 6 quad faces).

    The local vertex order follows the usual finite-element convention:
    vertices 0-3 form the bottom quad (counter-clockwise) and vertices 4-7 the
    top quad directly above them.
    """

    cell_arity = 8
    primitive = "hexahedron"

    def cell_volumes(self) -> np.ndarray:
        """Approximate volume of every hexahedron.

        Each hexahedron is decomposed into five tetrahedra; the sum of their
        absolute volumes is exact for convex (in particular axis-aligned)
        bricks and a good approximation for mildly deformed ones.
        """
        if self.n_cells == 0:
            return np.empty(0, dtype=np.float64)
        # Standard 5-tet decomposition of a hexahedron with the FE ordering.
        tet_corners = np.asarray(
            [
                (0, 1, 3, 4),
                (1, 2, 3, 6),
                (1, 4, 5, 6),
                (3, 4, 6, 7),
                (1, 3, 4, 6),
            ],
            dtype=np.int64,
        )
        verts = self.vertices[self.cells]            # (m, 8, 3)
        total = np.zeros(self.n_cells, dtype=np.float64)
        for corners in tet_corners:
            p0, p1, p2, p3 = (verts[:, c] for c in corners)
            a = p1 - p0
            b = p2 - p0
            c = p3 - p0
            total += np.abs(np.einsum("ij,ij->i", a, np.cross(b, c))) / 6.0
        return total

    def total_volume(self) -> float:
        """Sum of all hexahedron volumes."""
        return float(self.cell_volumes().sum())

    def characterize(self) -> dict:
        """Dataset characterisation row (analogue of Figure 4 for hex meshes)."""
        if self.n_vertices == 0:
            raise MeshError("cannot characterise an empty mesh")
        return {
            "name": self.name,
            "n_hexahedra": self.n_cells,
            "n_vertices": self.n_vertices,
            "mesh_degree": self.mesh_degree(),
            "surface_to_volume": self.surface_to_volume_ratio(),
            "memory_bytes": self.memory_bytes(),
        }
