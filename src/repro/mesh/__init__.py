"""Mesh substrate: geometry, connectivity, surface extraction and layouts."""

from .adjacency import AdjacencyList, csr_gather, edges_from_cells
from .base import PolyhedralMesh
from .convexity import convexity_defect, is_convex_point_set, mesh_is_convex
from .geometry import (
    Box3D,
    bounding_box,
    box_batch_chunk,
    boxes_overlap_volume,
    boxes_to_arrays,
    point_box_distance,
    points_box_distance,
    points_boxes_distance_sq,
    points_in_box,
    points_in_boxes,
)
from .hexahedral import HexahedralMesh
from .hilbert import hilbert_distances, hilbert_sort_order
from .io import load_mesh, load_sequence, save_mesh, save_sequence
from .layout import (
    LAYOUTS,
    apply_layout,
    hilbert_layout,
    hilbert_relabel,
    layout_locality_score,
    random_layout,
)
from .surface import SurfaceExtraction, cell_faces, extract_surface
from .tetrahedral import TetrahedralMesh
from .triangle import TriangleMesh
from .validation import (
    MeshValidationReport,
    density_statistics,
    quality_statistics,
    validate_mesh,
)

__all__ = [
    "AdjacencyList",
    "Box3D",
    "HexahedralMesh",
    "LAYOUTS",
    "MeshValidationReport",
    "PolyhedralMesh",
    "SurfaceExtraction",
    "TetrahedralMesh",
    "TriangleMesh",
    "apply_layout",
    "bounding_box",
    "box_batch_chunk",
    "boxes_overlap_volume",
    "boxes_to_arrays",
    "cell_faces",
    "convexity_defect",
    "density_statistics",
    "csr_gather",
    "edges_from_cells",
    "extract_surface",
    "hilbert_distances",
    "hilbert_layout",
    "hilbert_relabel",
    "hilbert_sort_order",
    "is_convex_point_set",
    "layout_locality_score",
    "load_mesh",
    "load_sequence",
    "mesh_is_convex",
    "point_box_distance",
    "points_box_distance",
    "points_boxes_distance_sq",
    "points_in_box",
    "points_in_boxes",
    "quality_statistics",
    "random_layout",
    "save_mesh",
    "save_sequence",
    "validate_mesh",
]
