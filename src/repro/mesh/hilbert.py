"""3D Hilbert space-filling curve encoding.

Section IV-H1 of the paper sorts mesh vertices along a Hilbert curve so that
spatially close vertices end up close together in memory, improving cache
locality during the crawl.  This module provides the integer Hilbert distance
of 3D points, computed with the classic Skilling transpose algorithm, plus a
convenience wrapper that maps floating point coordinates into the curve's
integer lattice.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError

__all__ = ["hilbert_distances", "hilbert_sort_order"]


def _transpose_to_hilbert_integer(coords: np.ndarray, bits: int) -> np.ndarray:
    """Convert lattice coordinates into Hilbert indices (Skilling's algorithm).

    ``coords`` is an ``(n, 3)`` array of unsigned integers, each below
    ``2**bits``.  The return value is an ``(n,)`` array of Hilbert indices in
    ``[0, 2**(3*bits))``.
    """
    x = coords.astype(np.uint64).copy()
    n_dims = 3
    # Inverse undo excess work (Skilling 2004, "Programming the Hilbert curve").
    m = np.uint64(1) << np.uint64(bits - 1)
    q = m
    while q > np.uint64(1):
        p = q - np.uint64(1)
        for i in range(n_dims):
            toggle = (x[:, i] & q) != 0
            # Invert low bits of the first axis where the bit is set...
            x[toggle, 0] ^= p
            # ...and exchange low bits of axis 0 and axis i elsewhere.
            swap_mask = ~toggle
            t = (x[swap_mask, 0] ^ x[swap_mask, i]) & p
            x[swap_mask, 0] ^= t
            x[swap_mask, i] ^= t
        q >>= np.uint64(1)
    # Gray encode.
    for i in range(1, n_dims):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(x.shape[0], dtype=np.uint64)
    q = m
    while q > np.uint64(1):
        mask = (x[:, n_dims - 1] & q) != 0
        t[mask] ^= q - np.uint64(1)
        q >>= np.uint64(1)
    for i in range(n_dims):
        x[:, i] ^= t
    # Interleave the transposed bits into a single integer per point.
    result = np.zeros(x.shape[0], dtype=np.uint64)
    for bit in range(bits - 1, -1, -1):
        for i in range(n_dims):
            result = (result << np.uint64(1)) | ((x[:, i] >> np.uint64(bit)) & np.uint64(1))
    return result


def hilbert_distances(points: np.ndarray, bits: int = 10) -> np.ndarray:
    """Hilbert curve index of each 3D point.

    Points are first normalised into the unit cube spanned by their bounding
    box and then quantised onto a ``2**bits`` lattice per axis.

    Parameters
    ----------
    points:
        ``(n, 3)`` array of coordinates.
    bits:
        Bits of precision per axis (1-20); the Hilbert index uses ``3 * bits``
        bits in total.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise GeometryError("hilbert_distances expects an (n, 3) array")
    if not 1 <= bits <= 20:
        raise GeometryError("bits must be between 1 and 20")
    if pts.shape[0] == 0:
        return np.empty(0, dtype=np.uint64)
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    max_coord = (1 << bits) - 1
    lattice = np.clip(((pts - lo) / span) * max_coord, 0, max_coord)
    lattice = np.rint(lattice).astype(np.uint64)
    return _transpose_to_hilbert_integer(lattice, bits)


def hilbert_sort_order(points: np.ndarray, bits: int = 10) -> np.ndarray:
    """Return the permutation that sorts points along the Hilbert curve.

    ``order[i]`` is the id of the point that should be placed at position
    ``i`` in Hilbert order.  Ties are broken by the original id so the result
    is deterministic.
    """
    distances = hilbert_distances(points, bits=bits)
    return np.argsort(distances, kind="stable")
