"""Hilbert data-layout optimisation (Section IV-H1).

The crawl phase follows edges between randomly located vertices; when vertex
records are stored in an arbitrary order this causes cache-unfriendly random
access.  Sorting vertex records along a Hilbert curve keeps spatially close
vertices close in memory.  In this Python reproduction the effect is modelled
two ways:

* :func:`hilbert_layout` physically permutes the vertex arrays (just like the
  paper's C++ implementation would), and
* :func:`layout_locality_score` measures the resulting locality as the mean
  absolute id distance between edge endpoints, a machine-independent proxy for
  cache friendliness that the Figure 13 benchmark reports alongside wall-clock
  timings.
"""

from __future__ import annotations

import numpy as np

from ..errors import MeshError
from .base import PolyhedralMesh
from .hilbert import hilbert_sort_order

__all__ = [
    "LAYOUTS",
    "apply_layout",
    "hilbert_layout",
    "hilbert_relabel",
    "layout_locality_score",
    "random_layout",
]

#: layout names accepted by :func:`apply_layout` (and the CLI's ``--layout``)
LAYOUTS = ("native", "hilbert", "random")


def hilbert_layout(mesh: PolyhedralMesh, bits: int = 10) -> PolyhedralMesh:
    """Return a copy of ``mesh`` with vertices renumbered in Hilbert order.

    Vertex ``v`` of the input becomes vertex ``new_ids[v]`` of the output; the
    cell array is rewritten accordingly so the output describes the same
    geometry with a cache-friendlier vertex ordering.
    """
    order = hilbert_sort_order(mesh.vertices, bits=bits)
    new_ids = np.empty(mesh.n_vertices, dtype=np.int64)
    new_ids[order] = np.arange(mesh.n_vertices)
    return mesh.with_vertex_order(new_ids)


def hilbert_relabel(mesh: PolyhedralMesh, bits: int = 10) -> PolyhedralMesh:
    """Physically permute the whole mesh into Hilbert order via one relabel map.

    The end-to-end locality pass (Section IV-H1): vertex positions, cell
    connectivity, the adjacency CSR and the surface extraction all move
    through the same permutation (:meth:`~repro.mesh.PolyhedralMesh.
    relabeled`), so already-built connectivity caches are carried instead of
    recomputed.  Apply it *before* strategies ``prepare()`` and before any
    delta is issued — afterwards the new ids are canonical and the delta
    pipeline's id contracts (stable pre-existing ids, appended tails) hold
    unchanged.  Unlike :func:`hilbert_layout` (the cache-dropping primitive
    this wraps), the result is ready for querying without re-deriving
    connectivity.
    """
    order = hilbert_sort_order(mesh.vertices, bits=bits)
    new_ids = np.empty(mesh.n_vertices, dtype=np.int64)
    new_ids[order] = np.arange(mesh.n_vertices)
    return mesh.relabeled(new_ids)


def apply_layout(mesh: PolyhedralMesh, layout: str, seed: int = 0) -> PolyhedralMesh:
    """Apply a named vertex layout: ``"native"``, ``"hilbert"`` or ``"random"``.

    ``"native"`` returns the mesh unchanged (the generator's order);
    ``"hilbert"`` runs :func:`hilbert_relabel`; ``"random"`` shuffles via
    :func:`random_layout` (the adversarial baseline).  This is the single
    dispatch point behind ``MeshSimulation(layout=...)`` and the CLI's
    ``--layout`` flag.
    """
    if layout == "native":
        return mesh
    if layout == "hilbert":
        return hilbert_relabel(mesh)
    if layout == "random":
        return random_layout(mesh, seed=seed)
    raise MeshError(f"unknown layout {layout!r}; expected one of {LAYOUTS}")


def random_layout(mesh: PolyhedralMesh, seed: int = 0) -> PolyhedralMesh:
    """Return a copy of ``mesh`` with a random vertex numbering.

    This is the adversarial baseline for the Figure 13 ablation: generators
    often emit vertices in an already fairly local order, so comparing the
    Hilbert layout against a deliberately shuffled layout isolates the effect.
    """
    rng = np.random.default_rng(seed)
    new_ids = rng.permutation(mesh.n_vertices).astype(np.int64)
    return mesh.with_vertex_order(new_ids)


def layout_locality_score(mesh: PolyhedralMesh) -> float:
    """Mean absolute difference of the vertex ids across each mesh edge.

    Lower is better: a perfectly local layout stores every pair of neighbours
    adjacently.  The score is normalised by the number of vertices so that
    meshes of different sizes are comparable.
    """
    adjacency = mesh.adjacency
    if adjacency.indices.size == 0 or mesh.n_vertices == 0:
        return 0.0
    src = np.repeat(np.arange(mesh.n_vertices), np.diff(adjacency.indptr))
    dst = adjacency.indices
    gaps = np.abs(src - dst)
    return float(gaps.mean() / mesh.n_vertices)
