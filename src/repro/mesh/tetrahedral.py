"""Tetrahedral meshes — the primitive used by the paper's main experiments."""

from __future__ import annotations

import numpy as np

from ..errors import MeshError
from .base import PolyhedralMesh

__all__ = ["TetrahedralMesh"]


class TetrahedralMesh(PolyhedralMesh):
    """A mesh whose cells are tetrahedra (4 vertices, 4 triangular faces).

    Tetrahedral meshes dominate finite-element simulations; the neuroscience
    and earthquake datasets in the paper both use them.  In addition to the
    generic :class:`~repro.mesh.base.PolyhedralMesh` interface this class
    provides signed volumes and simple element-quality measures used by the
    mesh-quality monitoring application.
    """

    cell_arity = 4
    primitive = "tetrahedron"

    # ------------------------------------------------------------------
    # per-cell geometry
    # ------------------------------------------------------------------
    def cell_volumes(self, signed: bool = False) -> np.ndarray:
        """Volume of every tetrahedron.

        Parameters
        ----------
        signed:
            When True, return signed volumes (negative for inverted
            elements); otherwise absolute values.
        """
        if self.n_cells == 0:
            return np.empty(0, dtype=np.float64)
        verts = self.vertices[self.cells]          # (m, 4, 3)
        a = verts[:, 1] - verts[:, 0]
        b = verts[:, 2] - verts[:, 0]
        c = verts[:, 3] - verts[:, 0]
        volumes = np.einsum("ij,ij->i", a, np.cross(b, c)) / 6.0
        return volumes if signed else np.abs(volumes)

    def total_volume(self) -> float:
        """Sum of all tetrahedron volumes."""
        return float(self.cell_volumes().sum())

    def inverted_cells(self) -> np.ndarray:
        """Ids of cells whose signed volume is non-positive (degenerate/flipped)."""
        signed = self.cell_volumes(signed=True)
        return np.nonzero(signed <= 0.0)[0]

    def edge_lengths(self) -> np.ndarray:
        """Length of every unique mesh edge."""
        adjacency = self.adjacency
        # Each undirected edge appears twice in the CSR structure; keep v < w.
        src = np.repeat(np.arange(self.n_vertices), np.diff(adjacency.indptr))
        dst = adjacency.indices
        mask = src < dst
        delta = self.vertices[src[mask]] - self.vertices[dst[mask]]
        return np.linalg.norm(delta, axis=1)

    def aspect_ratios(self) -> np.ndarray:
        """Simple per-cell quality measure: longest edge / shortest edge.

        A perfectly regular tetrahedron scores 1.0; values grow as cells become
        slivers.  The mesh-quality monitoring application thresholds on this.
        """
        if self.n_cells == 0:
            return np.empty(0, dtype=np.float64)
        verts = self.vertices[self.cells]          # (m, 4, 3)
        pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        lengths = np.stack(
            [np.linalg.norm(verts[:, i] - verts[:, j], axis=1) for i, j in pairs], axis=1
        )
        shortest = lengths.min(axis=1)
        longest = lengths.max(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(shortest > 0, longest / shortest, np.inf)
        return ratio

    # ------------------------------------------------------------------
    # characterisation
    # ------------------------------------------------------------------
    def characterize(self) -> dict:
        """Dataset characterisation row in the style of Figure 4 of the paper."""
        if self.n_vertices == 0:
            raise MeshError("cannot characterise an empty mesh")
        return {
            "name": self.name,
            "n_tetrahedra": self.n_cells,
            "n_vertices": self.n_vertices,
            "mesh_degree": self.mesh_degree(),
            "surface_to_volume": self.surface_to_volume_ratio(),
            "memory_bytes": self.memory_bytes(),
        }
