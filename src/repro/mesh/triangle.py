"""Triangle surface meshes.

The deforming animation datasets of Section VIII (horse gallop, facial
expression, camel compress) are triangle meshes: every vertex lies on the
surface, so the surface-to-volume ratio is 1 unless the animation generator
embeds the surface in a thin volumetric shell.  Having the type available lets
the library and its tests exercise OCTOPUS's worst case (S = 1), where it
degrades to a surface scan, exactly as Section VIII-B predicts.
"""

from __future__ import annotations

import numpy as np

from ..errors import MeshError
from .base import PolyhedralMesh

__all__ = ["TriangleMesh"]


class TriangleMesh(PolyhedralMesh):
    """A surface mesh made of triangles (3 vertices per cell)."""

    cell_arity = 3
    primitive = "triangle"

    def cell_areas(self) -> np.ndarray:
        """Area of every triangle."""
        if self.n_cells == 0:
            return np.empty(0, dtype=np.float64)
        verts = self.vertices[self.cells]            # (m, 3, 3)
        a = verts[:, 1] - verts[:, 0]
        b = verts[:, 2] - verts[:, 0]
        return 0.5 * np.linalg.norm(np.cross(a, b), axis=1)

    def total_area(self) -> float:
        """Sum of all triangle areas."""
        return float(self.cell_areas().sum())

    def characterize(self) -> dict:
        """Dataset characterisation row (analogue of Figure 14)."""
        if self.n_vertices == 0:
            raise MeshError("cannot characterise an empty mesh")
        return {
            "name": self.name,
            "n_triangles": self.n_cells,
            "n_vertices": self.n_vertices,
            "mesh_degree": self.mesh_degree(),
            "surface_to_volume": self.surface_to_volume_ratio(),
            "memory_bytes": self.memory_bytes(),
        }
