"""Axis-aligned boxes and basic 3D geometry used throughout the library.

The central type is :class:`Box3D`, which represents both range queries and
bounding boxes.  All operations are vectorised over NumPy arrays of points so
that the linear scan baseline and the surface probe can test millions of
vertices without Python-level loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import GeometryError

__all__ = [
    "Box3D",
    "points_in_box",
    "points_in_boxes",
    "point_box_distance",
    "points_box_distance",
    "points_boxes_distance_sq",
    "boxes_to_arrays",
    "box_batch_chunk",
    "bounding_box",
    "boxes_overlap_volume",
]

#: cap on the (n_boxes x n_points) elements a batched box kernel materialises
_BROADCAST_ELEMENT_BUDGET = 4_000_000


@dataclass(frozen=True)
class Box3D:
    """An axis-aligned three dimensional box (used for range queries and MBRs).

    Parameters
    ----------
    lo:
        Length-3 array-like with the minimum corner ``(x, y, z)``.
    hi:
        Length-3 array-like with the maximum corner ``(x, y, z)``.

    The box is closed: points exactly on a face are considered inside.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float64).reshape(3)
        hi = np.asarray(self.hi, dtype=np.float64).reshape(3)
        if not (np.all(np.isfinite(lo)) and np.all(np.isfinite(hi))):
            raise GeometryError("box corners must be finite")
        if np.any(lo > hi):
            raise GeometryError(f"box minimum corner {lo} exceeds maximum corner {hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_center(cls, center: Sequence[float], extents: Sequence[float]) -> "Box3D":
        """Build a box from its center and full edge lengths."""
        center_arr = np.asarray(center, dtype=np.float64).reshape(3)
        extents_arr = np.asarray(extents, dtype=np.float64).reshape(3)
        if np.any(extents_arr < 0):
            raise GeometryError("box extents must be non-negative")
        half = extents_arr / 2.0
        return cls(center_arr - half, center_arr + half)

    @classmethod
    def cube(cls, center: Sequence[float], side: float) -> "Box3D":
        """Build an axis-aligned cube of the given side length."""
        return cls.from_center(center, (side, side, side))

    @classmethod
    def from_points(cls, points: np.ndarray) -> "Box3D":
        """Return the tight bounding box of a non-empty ``(n, 3)`` point set."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] == 0:
            raise GeometryError("from_points expects a non-empty (n, 3) array")
        return cls(pts.min(axis=0), pts.max(axis=0))

    # ------------------------------------------------------------------
    # scalar properties
    # ------------------------------------------------------------------
    @property
    def center(self) -> np.ndarray:
        """The center point of the box."""
        return (self.lo + self.hi) / 2.0

    @property
    def extents(self) -> np.ndarray:
        """Full edge lengths along each axis."""
        return self.hi - self.lo

    @property
    def volume(self) -> float:
        """Volume of the box (0 for degenerate boxes)."""
        return float(np.prod(self.extents))

    @property
    def surface_area(self) -> float:
        """Total surface area of the box."""
        dx, dy, dz = self.extents
        return float(2.0 * (dx * dy + dy * dz + dz * dx))

    # ------------------------------------------------------------------
    # point predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: Sequence[float]) -> bool:
        """Return True if ``point`` lies inside (or on the boundary of) the box."""
        p = np.asarray(point, dtype=np.float64).reshape(3)
        return bool(np.all(p >= self.lo) and np.all(p <= self.hi))

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorised membership test for an ``(n, 3)`` array of points."""
        return points_in_box(points, self)

    def distance_to_point(self, point: Sequence[float]) -> float:
        """Euclidean distance from ``point`` to the box (0 if inside)."""
        return point_box_distance(np.asarray(point, dtype=np.float64), self)

    # ------------------------------------------------------------------
    # box/box predicates
    # ------------------------------------------------------------------
    def intersects(self, other: "Box3D") -> bool:
        """Return True if the two boxes share at least one point."""
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def contains_box(self, other: "Box3D") -> bool:
        """Return True if ``other`` lies entirely inside this box."""
        return bool(np.all(self.lo <= other.lo) and np.all(other.hi <= self.hi))

    def intersection(self, other: "Box3D") -> "Box3D | None":
        """Return the overlap box, or None if the boxes are disjoint."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        if np.any(lo > hi):
            return None
        return Box3D(lo, hi)

    def union(self, other: "Box3D") -> "Box3D":
        """Return the smallest box enclosing both boxes."""
        return Box3D(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def expanded(self, margin: float) -> "Box3D":
        """Return a copy grown by ``margin`` on every side (shrunk if negative)."""
        lo = self.lo - margin
        hi = self.hi + margin
        if np.any(lo > hi):
            raise GeometryError("negative margin collapses the box")
        return Box3D(lo, hi)

    def scaled(self, factor: float) -> "Box3D":
        """Return a copy scaled about its center by ``factor`` per axis."""
        if factor < 0:
            raise GeometryError("scale factor must be non-negative")
        return Box3D.from_center(self.center, self.extents * factor)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def corners(self) -> np.ndarray:
        """Return the 8 corner points of the box as an ``(8, 3)`` array."""
        xs = (self.lo[0], self.hi[0])
        ys = (self.lo[1], self.hi[1])
        zs = (self.lo[2], self.hi[2])
        return np.array([(x, y, z) for x in xs for y in ys for z in zs], dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box3D(lo={self.lo.tolist()}, hi={self.hi.tolist()})"


def points_in_box(points: np.ndarray, box: Box3D) -> np.ndarray:
    """Return a boolean mask of which rows of ``points`` lie inside ``box``.

    Parameters
    ----------
    points:
        ``(n, 3)`` array of coordinates.
    box:
        The query box.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise GeometryError("points_in_box expects an (n, 3) array")
    return np.all((pts >= box.lo) & (pts <= box.hi), axis=1)


def point_box_distance(point: np.ndarray, box: Box3D) -> float:
    """Euclidean distance from a single point to a box (0 inside the box)."""
    p = np.asarray(point, dtype=np.float64).reshape(3)
    delta = np.maximum(box.lo - p, 0.0) + np.maximum(p - box.hi, 0.0)
    return float(np.linalg.norm(delta))


def points_box_distance(points: np.ndarray, box: Box3D) -> np.ndarray:
    """Vectorised Euclidean distance from each row of ``points`` to ``box``."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise GeometryError("points_box_distance expects an (n, 3) array")
    delta = np.maximum(box.lo - pts, 0.0) + np.maximum(pts - box.hi, 0.0)
    return np.linalg.norm(delta, axis=1)


def boxes_to_arrays(boxes: "Iterable[Box3D]") -> tuple[np.ndarray, np.ndarray]:
    """Stack a sequence of boxes into ``(n_boxes, 3)`` lo and hi corner arrays.

    The stacked form is what the batched query paths broadcast against whole
    point sets, testing every box in a single NumPy pass.
    """
    box_list = list(boxes)
    if not box_list:
        empty = np.empty((0, 3), dtype=np.float64)
        return empty, empty.copy()
    los = np.stack([b.lo for b in box_list])
    his = np.stack([b.hi for b in box_list])
    return los, his


def _contiguous_columns(points: np.ndarray, caller: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The x/y/z columns of an ``(n, 3)`` point array as contiguous 1-D arrays.

    The box-batch kernels below work axis by axis on 2-D ``(m, n)``
    broadcasts — an order of magnitude faster than materialising the
    ``(m, n, 3)`` cube and reducing over the last axis.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise GeometryError(f"{caller} expects an (n, 3) point array")
    return (
        np.ascontiguousarray(pts[:, 0]),
        np.ascontiguousarray(pts[:, 1]),
        np.ascontiguousarray(pts[:, 2]),
    )


def box_batch_chunk(n_points: int) -> int:
    """How many boxes :func:`points_in_boxes` / :func:`points_boxes_distance_sq`
    should be fed per call against ``n_points`` points.

    Keeps each ``(chunk, n_points)`` intermediate under a fixed element
    budget; callers loop over the box axis in slices of this size.
    """
    return max(1, _BROADCAST_ELEMENT_BUDGET // (int(n_points) + 1))


def points_in_boxes(points: np.ndarray, los: np.ndarray, his: np.ndarray) -> np.ndarray:
    """Membership of ``(n, 3)`` points in each of ``(m, 3)`` lo/hi boxes.

    Returns an ``(m, n)`` boolean mask.  Intermediates are ``m * n``
    elements, so callers with very large batches should chunk over the box
    axis (see :func:`box_batch_chunk`).
    """
    xs, ys, zs = _contiguous_columns(points, "points_in_boxes")
    inside = (xs >= los[:, 0, None]) & (xs <= his[:, 0, None])
    inside &= (ys >= los[:, 1, None]) & (ys <= his[:, 1, None])
    inside &= (zs >= los[:, 2, None]) & (zs <= his[:, 2, None])
    return inside


def points_boxes_distance_sq(points: np.ndarray, los: np.ndarray, his: np.ndarray) -> np.ndarray:
    """Squared distance of ``(n, 3)`` points to each of ``(m, 3)`` lo/hi boxes.

    Returns an ``(m, n)`` array; squared distances preserve the argmin the
    batched probe needs while skipping the square root.
    """
    xs, ys, zs = _contiguous_columns(points, "points_boxes_distance_sq")
    dx = np.maximum(los[:, 0, None] - xs, 0.0) + np.maximum(xs - his[:, 0, None], 0.0)
    dy = np.maximum(los[:, 1, None] - ys, 0.0) + np.maximum(ys - his[:, 1, None], 0.0)
    dz = np.maximum(los[:, 2, None] - zs, 0.0) + np.maximum(zs - his[:, 2, None], 0.0)
    return dx * dx + dy * dy + dz * dz


def bounding_box(points: np.ndarray) -> Box3D:
    """Return the tight axis-aligned bounding box of a point set."""
    return Box3D.from_points(points)


def boxes_overlap_volume(a: Box3D, b: Box3D) -> float:
    """Volume of the intersection of two boxes (0 when disjoint)."""
    overlap = a.intersection(b)
    return 0.0 if overlap is None else overlap.volume
