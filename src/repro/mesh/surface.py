"""Surface extraction from polyhedral cell lists.

Section IV-E of the paper identifies surface vertices by building the *global
face list*: every cell contributes its faces, a face shared by two adjacent
cells appears twice, and a face appearing exactly once lies on the mesh
surface.  The vertices of those boundary faces are the *surface vertices* that
OCTOPUS's surface index keeps track of.

The extraction here is purely combinatorial — it only looks at connectivity,
never at vertex positions — which is exactly why the surface index survives
arbitrary mesh deformation without maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MeshConnectivityError

__all__ = ["SurfaceExtraction", "extract_surface", "cell_faces"]

# Local vertex indices of each face for the supported primitives.
_TETRAHEDRON_FACES = (
    (0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3),
)
_HEXAHEDRON_FACES = (
    (0, 1, 2, 3),  # bottom
    (4, 5, 6, 7),  # top
    (0, 1, 5, 4),
    (1, 2, 6, 5),
    (2, 3, 7, 6),
    (3, 0, 4, 7),
)
# A triangle (surface-only mesh) is its own single "face".
_TRIANGLE_FACES = ((0, 1, 2),)

_FACE_PATTERNS = {
    3: _TRIANGLE_FACES,
    4: _TETRAHEDRON_FACES,
    8: _HEXAHEDRON_FACES,
}


@dataclass(frozen=True)
class SurfaceExtraction:
    """Result of a surface extraction.

    Attributes
    ----------
    surface_vertices:
        Sorted int array of vertex ids that lie on the mesh surface.
    surface_faces:
        ``(f, k)`` array of boundary faces (``k`` = 3 for tetrahedral and
        triangle meshes, 4 for hexahedral meshes).
    n_faces_total:
        Number of entries in the global face list (with duplicates), i.e.
        ``cells * faces_per_cell``.
    """

    surface_vertices: np.ndarray
    surface_faces: np.ndarray
    n_faces_total: int

    @property
    def n_surface_vertices(self) -> int:
        return int(self.surface_vertices.size)

    def surface_to_volume_ratio(self, n_vertices: int) -> float:
        """Paper's S parameter: surface vertices divided by total vertices."""
        if n_vertices <= 0:
            raise MeshConnectivityError("n_vertices must be positive")
        return self.n_surface_vertices / n_vertices

    def relabeled(self, new_ids: np.ndarray) -> "SurfaceExtraction":
        """Return the extraction after renaming old vertex ``v`` to ``new_ids[v]``.

        Surface membership is purely combinatorial, so a vertex relabel maps
        the extraction through the same permutation instead of re-running the
        global face list — the Hilbert layout pass uses this to carry the
        surface cache across :meth:`repro.mesh.PolyhedralMesh.relabeled`.
        """
        new_ids = np.asarray(new_ids, dtype=np.int64)
        return SurfaceExtraction(
            surface_vertices=np.sort(new_ids[self.surface_vertices]),
            surface_faces=new_ids[self.surface_faces],
            n_faces_total=self.n_faces_total,
        )


def cell_faces(cells: np.ndarray) -> np.ndarray:
    """Return the global face list of a cell array (duplicates included).

    The output has shape ``(n_cells * faces_per_cell, face_arity)`` and each
    face keeps the original vertex order of the cell definition.
    """
    cell_arr = np.asarray(cells, dtype=np.int64)
    if cell_arr.size == 0:
        return np.empty((0, 3), dtype=np.int64)
    if cell_arr.ndim != 2:
        raise MeshConnectivityError("cells must be a 2-D array")
    k = cell_arr.shape[1]
    if k not in _FACE_PATTERNS:
        raise MeshConnectivityError(f"unsupported cell arity {k}; expected 3, 4 or 8")
    pattern = np.asarray(_FACE_PATTERNS[k], dtype=np.int64)
    return cell_arr[:, pattern].reshape(-1, pattern.shape[1])


def extract_surface(cells: np.ndarray) -> SurfaceExtraction:
    """Identify surface faces and vertices from a polyhedral cell array.

    A face is on the surface when it occurs exactly once in the global face
    list; faces occurring twice are interior faces shared by two cells.  A
    face occurring more than twice indicates a broken (non-manifold) mesh and
    raises :class:`MeshConnectivityError`.
    """
    faces = cell_faces(cells)
    if faces.shape[0] == 0:
        return SurfaceExtraction(
            surface_vertices=np.empty(0, dtype=np.int64),
            surface_faces=np.empty((0, 3), dtype=np.int64),
            n_faces_total=0,
        )
    # Canonicalise each face by sorting its vertex ids so that the two copies
    # of a shared face compare equal regardless of orientation.
    canonical = np.sort(faces, axis=1)
    unique_faces, first_index, counts = np.unique(
        canonical, axis=0, return_index=True, return_counts=True
    )
    if np.any(counts > 2):
        bad = unique_faces[counts > 2][0]
        raise MeshConnectivityError(
            f"non-manifold mesh: face {bad.tolist()} is shared by more than two cells"
        )
    boundary_mask = counts == 1
    # Report boundary faces with their original (oriented) vertex order.
    surface_faces = faces[first_index[boundary_mask]]
    surface_vertices = np.unique(surface_faces)
    return SurfaceExtraction(
        surface_vertices=surface_vertices,
        surface_faces=surface_faces,
        n_faces_total=int(faces.shape[0]),
    )
