"""Structural validation and quality reporting for meshes.

Two of the monitoring applications in Section III-B — *structural validation*
and *mesh quality* — compute statistics over query results.  The functions
here implement those statistics, plus a whole-mesh validation used by the
generators' tests to guarantee the synthetic datasets are well formed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import MeshError
from .base import PolyhedralMesh
from .tetrahedral import TetrahedralMesh

__all__ = ["MeshValidationReport", "validate_mesh", "density_statistics", "quality_statistics"]


@dataclass
class MeshValidationReport:
    """Outcome of :func:`validate_mesh`.

    Attributes
    ----------
    is_valid:
        True when no structural problems were found.
    issues:
        Human readable description of every problem encountered.
    n_isolated_vertices:
        Vertices referenced by no cell.
    n_duplicate_cells:
        Cells listed more than once.
    n_degenerate_cells:
        Cells that repeat a vertex id.
    n_components:
        Connected components of the edge graph.
    """

    is_valid: bool
    issues: list[str] = field(default_factory=list)
    n_isolated_vertices: int = 0
    n_duplicate_cells: int = 0
    n_degenerate_cells: int = 0
    n_components: int = 0


def validate_mesh(mesh: PolyhedralMesh) -> MeshValidationReport:
    """Check a mesh for the structural problems that would break a crawl.

    The checks are intentionally connectivity-only (no geometry): OCTOPUS's
    correctness argument is about reachability along edges, so the validation
    mirrors that.
    """
    if mesh.n_vertices == 0:
        raise MeshError("cannot validate an empty mesh")
    issues: list[str] = []

    referenced = np.zeros(mesh.n_vertices, dtype=bool)
    if mesh.n_cells:
        referenced[np.unique(mesh.cells)] = True
    n_isolated = int((~referenced).sum())
    if n_isolated:
        issues.append(f"{n_isolated} vertices are not referenced by any cell")

    n_duplicates = 0
    if mesh.n_cells:
        canonical = np.sort(mesh.cells, axis=1)
        unique = np.unique(canonical, axis=0)
        n_duplicates = int(mesh.n_cells - unique.shape[0])
        if n_duplicates:
            issues.append(f"{n_duplicates} duplicate cells")

    n_degenerate = 0
    if mesh.n_cells:
        sorted_cells = np.sort(mesh.cells, axis=1)
        repeats = np.any(np.diff(sorted_cells, axis=1) == 0, axis=1)
        n_degenerate = int(repeats.sum())
        if n_degenerate:
            issues.append(f"{n_degenerate} degenerate cells repeat a vertex")

    components = mesh.connected_components()
    n_components = len(components)

    nonfinite = int((~np.isfinite(mesh.vertices)).any(axis=1).sum())
    if nonfinite:
        issues.append(f"{nonfinite} vertices have non-finite coordinates")

    return MeshValidationReport(
        is_valid=not issues,
        issues=issues,
        n_isolated_vertices=n_isolated,
        n_duplicate_cells=n_duplicates,
        n_degenerate_cells=n_degenerate,
        n_components=n_components,
    )


def density_statistics(mesh: PolyhedralMesh, vertex_ids: np.ndarray, region_volume: float) -> dict:
    """Structural-validation statistics over a query result.

    Parameters
    ----------
    mesh:
        The queried mesh.
    vertex_ids:
        Result vertex ids of a range query.
    region_volume:
        Volume of the query region, used for the density figure.
    """
    ids = np.asarray(vertex_ids, dtype=np.int64)
    if region_volume <= 0:
        raise MeshError("region_volume must be positive")
    if ids.size == 0:
        return {"n_vertices": 0, "density": 0.0, "mean_degree": 0.0}
    degrees = mesh.adjacency.degrees()[ids]
    return {
        "n_vertices": int(ids.size),
        "density": float(ids.size / region_volume),
        "mean_degree": float(degrees.mean()),
    }


def quality_statistics(mesh: TetrahedralMesh, cell_ids: np.ndarray | None = None) -> dict:
    """Mesh-quality statistics (aspect ratios, inverted elements).

    Restricting to ``cell_ids`` models the mesh-quality monitoring application,
    which only inspects the cells retrieved by a range query.
    """
    ratios = mesh.aspect_ratios()
    signed = mesh.cell_volumes(signed=True)
    if cell_ids is not None:
        ids = np.asarray(cell_ids, dtype=np.int64)
        ratios = ratios[ids]
        signed = signed[ids]
    if ratios.size == 0:
        return {"n_cells": 0, "max_aspect_ratio": 0.0, "mean_aspect_ratio": 0.0, "n_inverted": 0}
    finite = ratios[np.isfinite(ratios)]
    return {
        "n_cells": int(ratios.size),
        "max_aspect_ratio": float(finite.max()) if finite.size else float("inf"),
        "mean_aspect_ratio": float(finite.mean()) if finite.size else float("inf"),
        "n_inverted": int((signed <= 0).sum()),
    }
