"""Compressed sparse row (CSR) vertex adjacency.

The paper stores the mesh as an adjacency list: for each vertex, its position
plus pointers to the vertices it shares an edge with.  :class:`AdjacencyList`
is the NumPy analogue — two integer arrays, ``indptr`` and ``indices`` — which
gives O(1) neighbour slicing (the crawl's inner loop) and a predictable memory
footprint that the experiment harness can account for.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..errors import MeshConnectivityError

__all__ = ["AdjacencyList", "csr_gather", "edges_from_cells"]


def csr_gather(
    offsets: np.ndarray,
    values: np.ndarray,
    keys: np.ndarray,
    ramp: "Callable[[int], np.ndarray] | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR slices ``values[offsets[k]:offsets[k + 1]]`` per key.

    One vectorised flat-gather instead of a Python loop over ``keys``: the
    inner loop of the crawl's frontier expansion and of the grid's batched
    candidate gathering.  Returns ``(gathered, counts)`` where ``counts[i]``
    is the slice length of ``keys[i]`` (so ``gathered`` splits back per key
    with ``np.cumsum(counts)``).  ``ramp`` may supply a reusable identity
    ramp (``0, 1, ..., total - 1``) as a callable mapping the needed length
    to one (e.g. ``CrawlScratch.iota``) to avoid the ``np.arange``
    allocation.
    """
    starts = offsets[keys]
    counts = offsets[keys + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=values.dtype), counts
    base = np.arange(total, dtype=np.int64) if ramp is None else ramp(total)
    owner = np.repeat(np.arange(keys.size), counts)
    inner = base - np.repeat(np.cumsum(counts) - counts, counts)
    return values[starts[owner] + inner], counts

# Vertex-pair index offsets that enumerate the edges of the supported
# polyhedral primitives, expressed against the cell's vertex tuple.
_TETRAHEDRON_EDGES = (
    (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
)
_HEXAHEDRON_EDGES = (
    (0, 1), (1, 2), (2, 3), (3, 0),          # bottom face
    (4, 5), (5, 6), (6, 7), (7, 4),          # top face
    (0, 4), (1, 5), (2, 6), (3, 7),          # vertical edges
)
_TRIANGLE_EDGES = ((0, 1), (1, 2), (2, 0))

_EDGE_PATTERNS = {
    3: _TRIANGLE_EDGES,
    4: _TETRAHEDRON_EDGES,
    8: _HEXAHEDRON_EDGES,
}


class AdjacencyList:
    """Immutable CSR adjacency structure over ``n_vertices`` vertices.

    Parameters
    ----------
    indptr:
        ``(n_vertices + 1,)`` int array; neighbours of vertex ``v`` are
        ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        Flat int array of neighbour vertex ids.
    """

    __slots__ = ("indptr", "indices", "n_vertices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise MeshConnectivityError("indptr and indices must be 1-D arrays")
        if indptr.size == 0 or indptr[0] != 0 or indptr[-1] != indices.size:
            raise MeshConnectivityError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise MeshConnectivityError("indptr must be non-decreasing")
        n_vertices = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n_vertices):
            raise MeshConnectivityError("neighbour ids out of range")
        self.indptr = indptr
        self.indices = indices
        self.n_vertices = n_vertices

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n_vertices: int, edges: np.ndarray) -> "AdjacencyList":
        """Build a symmetric adjacency from an ``(m, 2)`` array of undirected edges.

        Duplicate edges and self loops are removed.
        """
        edge_arr = np.asarray(edges, dtype=np.int64)
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise MeshConnectivityError("edges must be an (m, 2) array")
        if edge_arr.size and (edge_arr.min() < 0 or edge_arr.max() >= n_vertices):
            raise MeshConnectivityError("edge endpoints out of range")
        # Drop self loops and canonicalise before deduplication.
        keep = edge_arr[:, 0] != edge_arr[:, 1]
        edge_arr = edge_arr[keep]
        lo = np.minimum(edge_arr[:, 0], edge_arr[:, 1])
        hi = np.maximum(edge_arr[:, 0], edge_arr[:, 1])
        unique = np.unique(np.stack([lo, hi], axis=1), axis=0) if edge_arr.size else edge_arr
        # Symmetrise: each undirected edge produces two directed entries.
        if unique.size:
            src = np.concatenate([unique[:, 0], unique[:, 1]])
            dst = np.concatenate([unique[:, 1], unique[:, 0]])
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
        # Canonical CSR form: rows sorted ascending.  ``relabeled`` emits the
        # same form, so a permuted cache is indistinguishable from a rebuild
        # (identical downstream tie-breaking either way).
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        counts = np.bincount(src, minlength=n_vertices)
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return cls(indptr, dst)

    @classmethod
    def from_cells(cls, n_vertices: int, cells: np.ndarray) -> "AdjacencyList":
        """Build the adjacency implied by the edges of polyhedral cells.

        ``cells`` is an ``(m, k)`` array where ``k`` is 3 (triangles),
        4 (tetrahedra) or 8 (hexahedra).
        """
        edges = edges_from_cells(cells)
        return cls.from_edges(n_vertices, edges)

    @classmethod
    def from_neighbor_lists(cls, neighbor_lists: Sequence[Iterable[int]]) -> "AdjacencyList":
        """Build an adjacency from one iterable of neighbour ids per vertex."""
        indptr = np.zeros(len(neighbor_lists) + 1, dtype=np.int64)
        chunks = []
        for i, neighbors in enumerate(neighbor_lists):
            arr = np.asarray(list(neighbors), dtype=np.int64)
            chunks.append(arr)
            indptr[i + 1] = indptr[i] + arr.size
        indices = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        return cls(indptr, indices)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def neighbors(self, vertex: int) -> np.ndarray:
        """Return the neighbour ids of ``vertex`` as a view into ``indices``."""
        return self.indices[self.indptr[vertex]:self.indptr[vertex + 1]]

    def degree(self, vertex: int) -> int:
        """Number of neighbours of ``vertex``."""
        return int(self.indptr[vertex + 1] - self.indptr[vertex])

    def degrees(self) -> np.ndarray:
        """Array of vertex degrees."""
        return np.diff(self.indptr)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.indices.size // 2)

    def average_degree(self) -> float:
        """Mean number of neighbours per vertex (the paper's mesh degree M)."""
        if self.n_vertices == 0:
            return 0.0
        return float(self.indices.size / self.n_vertices)

    def __len__(self) -> int:
        return self.n_vertices

    def __iter__(self) -> Iterator[np.ndarray]:
        for v in range(self.n_vertices):
            yield self.neighbors(v)

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def relabeled(self, new_ids: np.ndarray) -> "AdjacencyList":
        """Return a new adjacency where old vertex ``v`` becomes ``new_ids[v]``.

        ``new_ids`` must be a permutation of ``0..n_vertices-1``.  Used by the
        Hilbert layout optimisation, which renames vertices so that spatially
        close vertices get nearby ids.
        """
        new_ids = np.asarray(new_ids, dtype=np.int64)
        if new_ids.shape != (self.n_vertices,) or not np.array_equal(
            np.sort(new_ids), np.arange(self.n_vertices)
        ):
            raise MeshConnectivityError("new_ids must be a permutation of vertex ids")
        old_of_new = np.empty(self.n_vertices, dtype=np.int64)
        old_of_new[new_ids] = np.arange(self.n_vertices)
        counts = np.diff(self.indptr)[old_of_new]
        indptr = np.concatenate([[0], np.cumsum(counts)])
        # Pure CSR permutation, no per-vertex loop: build flat gather offsets
        # into the old indices array (row start of each new row repeated over
        # its degree, plus a within-row ramp), then rename the endpoints.
        total = int(indptr[-1])
        row_of_entry = np.repeat(np.arange(self.n_vertices), counts)
        within_row = np.arange(total) - np.repeat(indptr[:-1], counts)
        flat_src = self.indptr[old_of_new][row_of_entry] + within_row
        indices = new_ids[self.indices[flat_src]]
        # Sort neighbours within each row in one pass by keying on the row.
        order = np.argsort(row_of_entry * np.int64(self.n_vertices) + indices, kind="stable")
        return AdjacencyList(indptr, indices[order])

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the CSR arrays in bytes."""
        return int(self.indptr.nbytes + self.indices.nbytes)


def edges_from_cells(cells: np.ndarray) -> np.ndarray:
    """Expand polyhedral cells into their unique undirected edges.

    Supports triangles (3 vertices), tetrahedra (4) and hexahedra (8).
    """
    cell_arr = np.asarray(cells, dtype=np.int64)
    if cell_arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if cell_arr.ndim != 2:
        raise MeshConnectivityError("cells must be a 2-D array")
    k = cell_arr.shape[1]
    if k not in _EDGE_PATTERNS:
        raise MeshConnectivityError(f"unsupported cell arity {k}; expected 3, 4 or 8")
    pattern = np.asarray(_EDGE_PATTERNS[k], dtype=np.int64)
    edges = cell_arr[:, pattern]          # (m, n_edges_per_cell, 2)
    edges = edges.reshape(-1, 2)
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    return np.unique(np.stack([lo, hi], axis=1), axis=0)
