"""Convexity tests for meshes.

OCTOPUS-CON (Section IV-F) may only be used when the mesh stays convex during
the simulation: convexity guarantees internal reachability, so a crawl started
from any single vertex inside the query retrieves the complete result.  This
module provides a practical convexity check used by generators, tests and the
executor-selection helper.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import ConvexHull, QhullError

from ..errors import MeshError
from .base import PolyhedralMesh

__all__ = ["is_convex_point_set", "mesh_is_convex", "convexity_defect"]


def is_convex_point_set(
    points: np.ndarray, surface_points: np.ndarray, tolerance: float = 1e-6
) -> bool:
    """Check whether ``surface_points`` all lie on the convex hull of ``points``.

    A volumetric mesh is convex exactly when its surface vertices coincide with
    its convex hull: any surface vertex strictly inside the hull indicates a
    concavity (a dent or a hole).

    ``tolerance`` is relative to the bounding-box diagonal.
    """
    pts = np.asarray(points, dtype=np.float64)
    surf = np.asarray(surface_points, dtype=np.float64)
    if pts.shape[0] < 4:
        return True
    try:
        hull = ConvexHull(pts)
    except QhullError as exc:  # degenerate (flat) point set
        raise MeshError(f"cannot compute convex hull: {exc}") from exc
    diag = float(np.linalg.norm(pts.max(axis=0) - pts.min(axis=0)))
    abs_tol = tolerance * max(diag, 1.0)
    # hull.equations rows are (a, b, c, d) with a*x + b*y + c*z + d <= 0 inside.
    normals = hull.equations[:, :3]
    offsets = hull.equations[:, 3]
    # Distance of every surface point to its nearest hull facet plane.
    signed = surf @ normals.T + offsets          # (n_surface, n_facets)
    nearest_facet_distance = -signed.max(axis=1)  # >= 0 means inside by that much
    return bool(np.all(nearest_facet_distance <= abs_tol))


def convexity_defect(mesh: PolyhedralMesh) -> float:
    """Largest distance from any surface vertex to the convex hull boundary.

    Zero (up to numerical noise) for convex meshes; grows with the depth of
    concavities.  Normalised by the bounding-box diagonal so values are
    comparable across meshes.
    """
    pts = mesh.vertices
    if pts.shape[0] < 4:
        return 0.0
    surf = pts[mesh.surface_vertices()]
    try:
        hull = ConvexHull(pts)
    except QhullError as exc:
        raise MeshError(f"cannot compute convex hull: {exc}") from exc
    normals = hull.equations[:, :3]
    offsets = hull.equations[:, 3]
    signed = surf @ normals.T + offsets
    nearest_facet_distance = -signed.max(axis=1)
    diag = float(np.linalg.norm(pts.max(axis=0) - pts.min(axis=0)))
    if diag <= 0:
        return 0.0
    return float(max(nearest_facet_distance.max(), 0.0) / diag)


def mesh_is_convex(mesh: PolyhedralMesh, tolerance: float = 1e-3) -> bool:
    """Return True if the mesh's surface vertices all lie on its convex hull."""
    if mesh.n_vertices == 0:
        raise MeshError("empty mesh has no convexity")
    return is_convex_point_set(mesh.vertices, mesh.vertices[mesh.surface_vertices()], tolerance)
