"""Saving and loading meshes and deforming mesh sequences.

Simulation runs are long; persisting the generated datasets lets benchmarks
reuse them across processes.  The format is a plain ``.npz`` archive with the
vertex and cell arrays plus a small amount of metadata, so no dependency
beyond NumPy is required.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence, Type

import numpy as np

from ..errors import MeshError
from .base import PolyhedralMesh
from .hexahedral import HexahedralMesh
from .tetrahedral import TetrahedralMesh
from .triangle import TriangleMesh

__all__ = ["save_mesh", "load_mesh", "save_sequence", "load_sequence"]

_MESH_CLASSES: dict[str, Type[PolyhedralMesh]] = {
    "tetrahedron": TetrahedralMesh,
    "hexahedron": HexahedralMesh,
    "triangle": TriangleMesh,
}


def save_mesh(mesh: PolyhedralMesh, path: str | Path) -> Path:
    """Write a mesh to ``path`` as a compressed ``.npz`` archive."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        target,
        vertices=mesh.vertices,
        cells=mesh.cells,
        primitive=np.asarray(mesh.primitive),
        name=np.asarray(mesh.name),
    )
    # np.savez appends .npz when missing; report the real path back.
    return target if target.suffix == ".npz" else target.with_suffix(target.suffix + ".npz")


def load_mesh(path: str | Path) -> PolyhedralMesh:
    """Load a mesh previously written by :func:`save_mesh`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        primitive = str(archive["primitive"])
        if primitive not in _MESH_CLASSES:
            raise MeshError(f"unknown mesh primitive {primitive!r} in {path}")
        mesh_cls = _MESH_CLASSES[primitive]
        return mesh_cls(
            archive["vertices"].copy(), archive["cells"].copy(), name=str(archive["name"])
        )


def save_sequence(
    base_mesh: PolyhedralMesh, positions_per_step: Sequence[np.ndarray], path: str | Path
) -> Path:
    """Persist a deforming mesh sequence (shared connectivity, per-step positions)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    frames = {f"frame_{i:04d}": np.asarray(p, dtype=np.float64) for i, p in enumerate(positions_per_step)}
    for frame in frames.values():
        if frame.shape != base_mesh.vertices.shape:
            raise MeshError("every frame must match the base mesh vertex array shape")
    np.savez_compressed(
        target,
        vertices=base_mesh.vertices,
        cells=base_mesh.cells,
        primitive=np.asarray(base_mesh.primitive),
        name=np.asarray(base_mesh.name),
        n_frames=np.asarray(len(positions_per_step)),
        **frames,
    )
    return target if target.suffix == ".npz" else target.with_suffix(target.suffix + ".npz")


def load_sequence(path: str | Path) -> tuple[PolyhedralMesh, list[np.ndarray]]:
    """Load a deforming mesh sequence written by :func:`save_sequence`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        primitive = str(archive["primitive"])
        if primitive not in _MESH_CLASSES:
            raise MeshError(f"unknown mesh primitive {primitive!r} in {path}")
        mesh_cls = _MESH_CLASSES[primitive]
        mesh = mesh_cls(
            archive["vertices"].copy(), archive["cells"].copy(), name=str(archive["name"])
        )
        n_frames = int(archive["n_frames"])
        frames = [archive[f"frame_{i:04d}"].copy() for i in range(n_frames)]
    return mesh, frames
