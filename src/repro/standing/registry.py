"""Standing (continuous) range queries, evaluated incrementally off deltas.

The paper's steering scenario is not one-shot queries but scientists
*watching* regions of a deforming mesh tick after tick.  A
:class:`StandingQueryRegistry` turns that into a subscription model: a
client calls :meth:`~StandingQueryRegistry.subscribe` with a box once and
thereafter receives a :class:`MembershipUpdate` (which vertex ids entered,
which exited, the full current membership) only on the ticks where its
region actually changed.

The whole point is what the registry does *not* do: it never re-crawls a
subscription whose region a tick could not have touched.  The incremental
contract mirrors the result cache's invalidation certificates
(:mod:`repro.cache`), reading the same deltas a strategy's maintenance
hooks already consume:

* a vertex's membership in a box can only change if the vertex appears in
  the :class:`~repro.core.delta.DeformationDelta` moved set, appears in a
  :class:`~repro.core.delta.TopologyDelta` dirty set, or the box intersects
  the delta's dirty AABB (closed-box intersection, exactly the cache's
  rule — an abutting box counts as intersecting);
* **deformation, sparse:** for the subscriptions whose box intersects the
  dirty AABB, membership is updated by point-in-box tests on the moved
  vertices' *new* positions — ids are stable and unmoved vertices cannot
  change membership, so the update is exact with no re-query at all;
* **topology, sparse:** connectivity changes can alter crawl reachability,
  which positional tests cannot see, so each intersecting subscription is
  answered by one narrowed re-query of its box through the strategy (the
  same conservative stance the cache takes for topology invalidation);
* **full deltas** (and a missing dirty box on a non-empty delta) force a
  re-query of every subscription;
* everything else is an O(1)-per-subscription skip: one vectorised
  AABB-overlap test over the subscription corner arrays, no per-vertex work.

Quiet ticks therefore emit nothing; the updates a client drains are exactly
the ticks on which its membership changed.  Bit-identical equivalence with
naive per-tick re-querying is pinned by ``tests/test_standing_parity.py``
across every registered strategy.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.resilience import check_query_box
from ..mesh import Box3D, points_in_boxes

__all__ = ["MembershipUpdate", "StandingStats", "StandingQueryRegistry"]

#: signature of the evaluation callback handed to the tick methods:
#: ``box -> sorted int64 vertex ids`` (typically ``strategy.query(box).vertex_ids``)
QueryFn = Callable[[Box3D], np.ndarray]


@dataclass(frozen=True)
class MembershipUpdate:
    """One subscription's membership change on one tick.

    Emitted only when the membership actually changed (or on the initial
    evaluation at subscribe time, where ``entered`` equals ``current``).
    All id arrays are sorted ``int64``.
    """

    #: the subscription this update belongs to
    subscription_id: int
    #: simulation step the change happened on (``None`` outside a simulation)
    step: int | None
    #: what produced the update: "initial", "deformation", "topology" or "rebase"
    reason: str
    #: ids that entered the box this tick
    entered: np.ndarray
    #: ids that left the box this tick
    exited: np.ndarray
    #: the full membership after the tick
    current: np.ndarray
    #: whether this update needed a re-query through the strategy (as opposed
    #: to the pure point-test incremental path)
    recrawled: bool = False


@dataclass
class StandingStats:
    """Counters of the registry's incremental evaluation work.

    Follows the :class:`~repro.cache.CacheStats` drain idiom: the simulator
    drains one of these per step per strategy and accumulates the totals on
    the :class:`~repro.simulation.StrategyReport`.
    """

    #: live subscriptions at drain time (a gauge, not additive)
    subscriptions: int = 0
    #: deformation/topology ticks the registry evaluated
    ticks: int = 0
    #: membership updates emitted (changed subscriptions only)
    updates: int = 0
    #: ids that entered / exited any subscription, summed
    entered: int = 0
    exited: int = 0
    #: subscriptions dismissed by the O(1) dirty-AABB overlap test
    skips: int = 0
    #: subscriptions that needed targeted work (point tests or a re-query)
    touched: int = 0
    #: narrowed re-queries through the strategy (topology / full-delta path)
    recrawls: int = 0
    #: whole-registry re-evaluations forced by full deltas or rebasing
    full_reevals: int = 0
    #: point-in-box tests performed on moved vertices (the incremental work)
    moved_tests: int = 0

    def merge(self, other: "StandingStats") -> "StandingStats":
        """Counter-wise sum (the gauge takes the larger snapshot)."""
        return StandingStats(
            subscriptions=max(self.subscriptions, other.subscriptions),
            ticks=self.ticks + other.ticks,
            updates=self.updates + other.updates,
            entered=self.entered + other.entered,
            exited=self.exited + other.exited,
            skips=self.skips + other.skips,
            touched=self.touched + other.touched,
            recrawls=self.recrawls + other.recrawls,
            full_reevals=self.full_reevals + other.full_reevals,
            moved_tests=self.moved_tests + other.moved_tests,
        )

    def __iadd__(self, other: "StandingStats") -> "StandingStats":
        merged = self.merge(other)
        self.__dict__.update(merged.__dict__)
        return self

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _Subscription:
    """Registry-internal record of one standing query."""

    sid: int
    box: Box3D
    #: sorted int64 membership as of the last evaluated tick
    current: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))


class StandingQueryRegistry:
    """Standing range-query subscriptions with delta-incremental evaluation.

    The registry is passive: it holds boxes and memberships, and somebody —
    a :class:`~repro.standing.StandingStrategy`, the
    :class:`~repro.service.ShardedQueryService` — feeds it the per-tick
    deltas plus a ``query_fn`` for the rare paths that need a re-query.
    All methods are thread-safe behind one lock.  ``query_fn`` is invoked
    *while that lock is held*, so callers must hand in a function that does
    not re-enter the registry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscriptions: dict[int, _Subscription] = {}
        self._next_id = 1
        self._updates: list[MembershipUpdate] = []
        self._stats = StandingStats()
        # subscription corner arrays, aligned with sorted(self._subscriptions):
        # rebuilt on subscribe/unsubscribe so every tick's overlap test is one
        # vectorised comparison instead of a Python loop
        self._sids: list[int] = []
        self._los = np.empty((0, 3), dtype=np.float64)
        self._his = np.empty((0, 3), dtype=np.float64)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._subscriptions)

    def subscribe(
        self,
        box: Box3D,
        query_fn: QueryFn | None = None,
        step: int | None = None,
    ) -> int:
        """Register a standing query; returns the subscription id.

        ``box`` is validated with the same rules as a one-shot query
        (:func:`~repro.core.resilience.check_query_box`): zero-volume boxes
        are valid (the box is closed), malformed ones raise ``QueryError``.
        Duplicate boxes are independent subscriptions.  When ``query_fn`` is
        given the initial membership is evaluated immediately and an
        ``"initial"`` update (``entered == current``) is queued; otherwise
        the membership starts empty and is established by the next rebase.
        """
        check_query_box(box)
        with self._lock:
            sid = self._next_id
            self._next_id += 1
            subscription = _Subscription(sid=sid, box=box)
            self._subscriptions[sid] = subscription
            self._rebuild_corners()
            if query_fn is not None:
                # _emit diffs against the empty starting membership, so the
                # "initial" update reports entered == current
                current = self._evaluate(subscription.box, query_fn)
                self._emit(subscription, current, "initial", step, recrawled=True)
            return sid

    def unsubscribe(self, sid: int) -> None:
        """Remove a subscription; pending updates for it stay drainable."""
        with self._lock:
            if sid not in self._subscriptions:
                raise KeyError(f"unknown standing subscription id {sid}")
            del self._subscriptions[sid]
            self._rebuild_corners()

    def boxes(self) -> dict[int, Box3D]:
        """Live subscriptions as ``{subscription_id: box}``."""
        with self._lock:
            return {sid: sub.box for sid, sub in sorted(self._subscriptions.items())}

    def membership(self, sid: int) -> np.ndarray:
        """The current membership of one subscription (a copy)."""
        with self._lock:
            return self._subscriptions[sid].current.copy()

    def _rebuild_corners(self) -> None:
        self._sids = sorted(self._subscriptions)
        if self._sids:
            self._los = np.stack(
                [np.asarray(self._subscriptions[s].box.lo, dtype=np.float64) for s in self._sids]
            )
            self._his = np.stack(
                [np.asarray(self._subscriptions[s].box.hi, dtype=np.float64) for s in self._sids]
            )
        else:
            self._los = np.empty((0, 3), dtype=np.float64)
            self._his = np.empty((0, 3), dtype=np.float64)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    @staticmethod
    def _evaluate(box: Box3D, query_fn: QueryFn) -> np.ndarray:
        ids = np.asarray(query_fn(box), dtype=np.int64)
        return ids if ids.ndim == 1 else ids.reshape(-1)

    def _emit(
        self,
        subscription: _Subscription,
        new_current: np.ndarray,
        reason: str,
        step: int | None,
        recrawled: bool,
        entered: np.ndarray | None = None,
        exited: np.ndarray | None = None,
    ) -> bool:
        """Diff, queue an update when changed, count; returns "changed"."""
        if entered is None:
            entered = np.setdiff1d(new_current, subscription.current, assume_unique=True)
        if exited is None:
            exited = np.setdiff1d(subscription.current, new_current, assume_unique=True)
        if entered.size == 0 and exited.size == 0 and reason != "initial":
            return False
        subscription.current = new_current
        self._updates.append(
            MembershipUpdate(
                subscription_id=subscription.sid,
                step=step,
                reason=reason,
                entered=entered,
                exited=exited,
                current=new_current,
                recrawled=recrawled,
            )
        )
        self._stats.updates += 1
        self._stats.entered += int(entered.size)
        self._stats.exited += int(exited.size)
        return True

    def _intersecting(self, dirty: Box3D) -> np.ndarray:
        """Subscription rows whose box intersects the dirty AABB (closed-box
        rule: abutting counts, matching the cache's invalidation contract)."""
        lo = np.asarray(dirty.lo, dtype=np.float64)
        hi = np.asarray(dirty.hi, dtype=np.float64)
        mask = np.all(self._los <= hi, axis=1) & np.all(self._his >= lo, axis=1)
        return np.nonzero(mask)[0]

    def rebase(self, query_fn: QueryFn, step: int | None = None) -> None:
        """Re-evaluate every subscription from scratch (mesh replaced/re-prepared)."""
        with self._lock:
            if not self._subscriptions:
                return
            self._stats.full_reevals += 1
            for sid in self._sids:
                subscription = self._subscriptions[sid]
                self._stats.recrawls += 1
                current = self._evaluate(subscription.box, query_fn)
                self._emit(subscription, current, "rebase", step, recrawled=True)

    def tick_deformation(
        self, delta, query_fn: QueryFn, step: int | None = None
    ) -> None:
        """Evaluate one deformation tick against every subscription.

        Must be called *after* the mesh positions moved and after the
        strategy's own maintenance, so ``query_fn`` answers against the
        post-tick state on the paths that need it.
        """
        with self._lock:
            if not self._subscriptions:
                return
            self._stats.ticks += 1
            if delta.is_full or (delta.n_moved and delta.dirty_box is None):
                self._reevaluate_all(query_fn, "deformation", step)
                return
            if delta.n_moved == 0:
                self._stats.skips += len(self._sids)
                return
            rows = self._intersecting(delta.dirty_box)
            self._stats.skips += len(self._sids) - rows.size
            self._stats.touched += int(rows.size)
            if rows.size == 0:
                return
            # positional update: for moved vertices, membership after the tick
            # is exactly "new position inside the box"; everything else is
            # untouched because ids are stable and only the moved set moved
            moved_ids = delta.moved_ids
            new_in = points_in_boxes(
                delta.new_positions, self._los[rows], self._his[rows]
            )
            self._stats.moved_tests += int(rows.size) * int(moved_ids.size)
            for row_index, row in enumerate(rows):
                subscription = self._subscriptions[self._sids[int(row)]]
                inside = new_in[row_index]
                was_member = np.isin(moved_ids, subscription.current, assume_unique=True)
                entered = moved_ids[inside & ~was_member]
                exited = moved_ids[~inside & was_member]
                if entered.size == 0 and exited.size == 0:
                    continue
                current = np.union1d(
                    np.setdiff1d(subscription.current, exited, assume_unique=True),
                    entered,
                )
                self._emit(
                    subscription,
                    current,
                    "deformation",
                    step,
                    recrawled=False,
                    entered=entered,
                    exited=exited,
                )

    def tick_topology(self, delta, query_fn: QueryFn, step: int | None = None) -> None:
        """Evaluate one restructuring tick against every subscription.

        Connectivity changes can alter crawl reachability, which positional
        tests cannot observe — so every subscription whose box intersects the
        dirty AABB is answered by one narrowed re-query through ``query_fn``
        (the strategy has already restructured/re-prepared by the time this
        runs).  Restructuring never moves pre-existing vertices and appended
        vertices lie inside the dirty AABB, so subscriptions outside it are
        provably unchanged — the same conservative certificate the result
        cache uses for topology invalidation.
        """
        with self._lock:
            if not self._subscriptions:
                return
            self._stats.ticks += 1
            if delta.is_empty:
                self._stats.skips += len(self._sids)
                return
            if delta.is_full or delta.dirty_box is None:
                self._reevaluate_all(query_fn, "topology", step)
                return
            rows = self._intersecting(delta.dirty_box)
            self._stats.skips += len(self._sids) - rows.size
            self._stats.touched += int(rows.size)
            for row in rows:
                subscription = self._subscriptions[self._sids[int(row)]]
                self._stats.recrawls += 1
                current = self._evaluate(subscription.box, query_fn)
                self._emit(subscription, current, "topology", step, recrawled=True)

    def _reevaluate_all(self, query_fn: QueryFn, reason: str, step: int | None) -> None:
        self._stats.full_reevals += 1
        self._stats.touched += len(self._sids)
        for sid in self._sids:
            subscription = self._subscriptions[sid]
            self._stats.recrawls += 1
            current = self._evaluate(subscription.box, query_fn)
            self._emit(subscription, current, reason, step, recrawled=True)

    # ------------------------------------------------------------------
    # delivery and accounting
    # ------------------------------------------------------------------
    def drain_updates(self) -> list[MembershipUpdate]:
        """Return and clear the queued membership updates, in emission order."""
        with self._lock:
            updates, self._updates = self._updates, []
            return updates

    def drain_stats(self) -> StandingStats:
        """Counters since the last drain (the gauge reads the live count)."""
        with self._lock:
            stats, self._stats = self._stats, StandingStats()
            stats.subscriptions = len(self._subscriptions)
            return stats

    def stats(self) -> StandingStats:
        """Non-destructive snapshot of the counters."""
        with self._lock:
            snapshot = StandingStats(**self._stats.as_dict())
            snapshot.subscriptions = len(self._subscriptions)
            return snapshot

    def memory_bytes(self) -> int:
        """Bytes held in memberships and corner arrays."""
        with self._lock:
            return int(
                self._los.nbytes
                + self._his.nbytes
                + sum(sub.current.nbytes for sub in self._subscriptions.values())
            )

    def describe(self) -> dict:
        with self._lock:
            return {
                "subscriptions": len(self._subscriptions),
                "pending_updates": len(self._updates),
                **self._stats.as_dict(),
            }
