"""Standing (continuous) range queries over the delta stream.

Clients :meth:`~repro.standing.StandingQueryRegistry.subscribe` a box once
and receive per-tick :class:`~repro.standing.MembershipUpdate`\\ s — which
vertex ids entered, which exited, the full current membership — evaluated
*incrementally* from the same deformation/topology deltas a strategy's
maintenance hooks already consume.  Ticks that provably cannot have touched
a subscription cost O(1) per subscription; see ``docs/standing.md``.

:class:`~repro.standing.StandingStrategy` is the
:class:`~repro.core.executor.StrategyWrapper` hookup
(``build_strategy(name, standing=...)``); the
:class:`~repro.service.ShardedQueryService` exposes the same subscribe
surface with per-shard slicing of the re-query work.
"""

from .registry import MembershipUpdate, StandingQueryRegistry, StandingStats
from .strategy import StandingStrategy

__all__ = [
    "MembershipUpdate",
    "StandingQueryRegistry",
    "StandingStats",
    "StandingStrategy",
]
