"""The standing wrapper: any strategy + incremental subscription evaluation.

:class:`StandingStrategy` composes through the
:class:`~repro.core.executor.StrategyWrapper` surface like the cache and the
resilience ladder.  The recommended stack puts standing outermost —
``build_strategy("octopus", caching=True, standing=True)`` produces
``StandingStrategy(CachingStrategy(octopus))`` — so the registry's narrowed
re-queries flow through the result cache and share its invalidation stream:
a tick that leaves a subscription's region untouched also leaves the cached
entry for that box valid, and the rare re-crawl of an unchanged box is a
cache hit, not a new crawl.

Evaluation order inside the maintenance hooks mirrors
:class:`~repro.cache.CachingStrategy`: the inner maintenance forwards
*first* (indexes catch up with the already-mutated mesh), then the registry
ticks — so any re-query the tick needs is answered against the fully
maintained post-tick state.  The registry's wall-clock is charged to the
shared ``maintenance_time`` ledger; keeping subscriptions current is
maintenance work and reported response times stay honest about it.

In ``paranoid`` mode the wrapper validates every delta before trusting it
incrementally (the same validators the resilience ladder uses); a lying
delta is quarantined — recorded as a
:class:`~repro.core.resilience.FallbackEvent` on the ``standing-reeval``
rung — and the tick degrades to a full re-evaluation of every subscription
through ``query``, which reads the true mesh state.  A faulted paranoid run
therefore emits exactly the updates of a clean run, with the recoveries
visible in the degradation ledger (``tests/test_fault_injection.py``).
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from ..core.delta import DeformationDelta, TopologyDelta
from ..core.executor import ExecutionStrategy, StrategyWrapper
from ..core.resilience import FallbackEvent, validate_delta, validate_topology_delta
from ..errors import DeltaValidationError
from ..mesh import Box3D, PolyhedralMesh
from .registry import MembershipUpdate, StandingQueryRegistry, StandingStats

__all__ = ["StandingStrategy"]


class StandingStrategy(StrategyWrapper):
    """Maintain standing subscriptions incrementally over any strategy.

    Parameters
    ----------
    inner:
        The strategy (or wrapper stack) that answers the registry's
        re-queries and initial evaluations.
    registry:
        An existing :class:`~repro.standing.StandingQueryRegistry` to adopt;
        ``None`` builds a fresh one.
    boxes:
        Subscriptions to register up front.  They are subscribed immediately
        (initial membership evaluated at :meth:`prepare` when the wrapper is
        built before the strategy is prepared).
    paranoid:
        Validate every delta before using it incrementally; invalid deltas
        are quarantined and the tick degrades to a full re-evaluation (see
        module docstring).  ``build_strategy`` turns this on automatically
        when the stack's resilience is paranoid.

    The wrapper registers under ``standing-<inner name>`` so a simulation
    can run the standing and plain variants of one strategy side by side —
    the differential parity suite relies on exactly that pairing.
    """

    def __init__(
        self,
        inner: ExecutionStrategy,
        registry: StandingQueryRegistry | None = None,
        *,
        boxes: Iterable[Box3D] | None = None,
        paranoid: bool = False,
    ) -> None:
        super().__init__(inner)
        self.registry = registry if registry is not None else StandingQueryRegistry()
        self.paranoid = paranoid
        self.name = f"standing-{inner.name}"
        self._step: int | None = None
        self._events: list[FallbackEvent] = []
        if boxes is not None:
            for box in boxes:
                self.subscribe(box)

    # -- subscription surface -------------------------------------------
    def _query_ids(self, box: Box3D) -> np.ndarray:
        return super().query(box).vertex_ids

    @property
    def _prepared(self) -> bool:
        return getattr(self.inner, "_mesh", None) is not None or self._mesh is not None

    def subscribe(self, box: Box3D) -> int:
        """Register a standing query; returns the subscription id.

        When the strategy is already prepared the initial membership is
        evaluated immediately (one query through the stack below) and an
        ``"initial"`` update is queued; otherwise evaluation is deferred to
        :meth:`prepare`.
        """
        query_fn = self._query_ids if self._prepared else None
        return self.registry.subscribe(box, query_fn, step=self._step)

    def unsubscribe(self, sid: int) -> None:
        """Drop a subscription; already-queued updates stay drainable."""
        self.registry.unsubscribe(sid)

    def drain_membership_updates(self) -> list[MembershipUpdate]:
        """Return and clear the queued per-tick membership updates."""
        return self.registry.drain_updates()

    # -- lifecycle ------------------------------------------------------
    def prepare(self, mesh: PolyhedralMesh) -> float:
        """Forward, then (re)establish every subscription's membership."""
        spent = super().prepare(mesh)
        self.registry.rebase(self._query_ids, step=self._step)
        return spent

    def _ticked_forward(self, forward, tick, validate, delta) -> float:
        # forward FIRST: the tick's re-queries must see the fully maintained
        # post-step state (the mirror image of the cache's invalidate-first
        # rule — the registry reads results, the cache drops them)
        spent = forward(delta)
        start = time.perf_counter()
        use = delta
        if self.paranoid and len(self.registry):
            try:
                validate(delta, self.mesh)
            except DeltaValidationError as exc:
                # quarantine: never feed a lying delta to the incremental
                # paths — degrade to a full re-evaluation via query, which
                # reads the true (already maintained) mesh state
                self._events.append(
                    FallbackEvent(
                        strategy=self.name,
                        operation="standing-tick",
                        rung="standing-reeval",
                        reason="delta-invalid",
                        error=repr(exc),
                        step=self._step,
                    )
                )
                use = delta.as_full()
        tick(use, self._query_ids, step=self._step)
        overhead = time.perf_counter() - start
        # registry evaluation is maintenance work; charge the shared ledger
        self.inner.maintenance_time += overhead
        return spent + overhead

    def on_step(self, delta: DeformationDelta) -> float:
        return self._ticked_forward(
            super().on_step, self.registry.tick_deformation, validate_delta, delta
        )

    def on_restructure(self, delta: TopologyDelta) -> float:
        return self._ticked_forward(
            super().on_restructure,
            self.registry.tick_topology,
            validate_topology_delta,
            delta,
        )

    # -- event plumbing -------------------------------------------------
    def note_step(self, step: int | None) -> None:
        self._step = step
        super().note_step(step)

    def drain_degradation_events(self) -> list:
        events, self._events = self._events, []
        return events + super().drain_degradation_events()

    def drain_standing_stats(self) -> StandingStats:
        """Counters since the last drain, merged with any nested registry's."""
        stats = self.registry.drain_stats()
        inner_stats = super().drain_standing_stats()
        if inner_stats is not None:
            stats += inner_stats
        return stats

    def standing_stats(self) -> StandingStats:
        """Non-destructive snapshot of this layer's registry counters."""
        return self.registry.stats()

    # -- accounting -----------------------------------------------------
    def memory_overhead_bytes(self) -> int:
        return super().memory_overhead_bytes() + self.registry.memory_bytes()

    def describe(self) -> dict:
        record = super().describe()
        record["standing"] = self.registry.describe()
        return record
