"""Baseline range-query execution strategies the paper compares against."""

from .grid_index import ThrowawayGridExecutor
from .kdtree import KDTree, ThrowawayKDTreeExecutor
from .linear_scan import LinearScanExecutor
from .lur_tree import LURTreeExecutor
from .octree import Octree, ThrowawayOctreeExecutor
from .qu_trade import QUTradeExecutor
from .rtree import RTree, RTreeNode
from .rum_tree import RUMTreeExecutor

__all__ = [
    "KDTree",
    "LURTreeExecutor",
    "LinearScanExecutor",
    "Octree",
    "QUTradeExecutor",
    "RTree",
    "RTreeNode",
    "RUMTreeExecutor",
    "ThrowawayGridExecutor",
    "ThrowawayKDTreeExecutor",
    "ThrowawayOctreeExecutor",
]
