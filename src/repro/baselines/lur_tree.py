"""The LUR-Tree baseline (lazy update R-tree, Kwon et al. 2002).

The LUR-Tree avoids costly R-tree maintenance when an updated object stays
inside the minimum bounding rectangle of its current leaf: in that case only
the stored position changes (which in this reproduction is automatic, since
the index reads positions straight from the mesh's live array).  For objects
that step just outside their leaf MBR the LUR-Tree applies its lazy *MBR
extension* operation (grow the leaf rectangle instead of reorganising the
tree); only objects that move far trigger a delete followed by a reinsert.

With the "almost every vertex moves a little every step" workload of mesh
simulations, the check itself already costs a pass over all objects per step,
MBR extensions accumulate overlap that hurts queries, and the far movers still
trigger R-tree restructuring — which is why the paper measures the LUR-Tree
spending ~80% of its time on maintenance (Figure 6a).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.executor import ExecutionStrategy
from ..core.result import QueryCounters, QueryResult
from ..mesh import Box3D
from .rtree import RTree

__all__ = ["LURTreeExecutor"]


class LURTreeExecutor(ExecutionStrategy):
    """Lazy-update R-tree over the mesh vertices.

    Parameters
    ----------
    fanout:
        R-tree fanout (the paper uses 110).
    extension_fraction:
        Moves shorter than this fraction of the mesh bounding-box diagonal are
        absorbed by extending the leaf MBR (the LUR-Tree's lazy extension);
        longer moves are handled with delete + reinsert.
    """

    name = "lur-tree"

    def __init__(self, fanout: int = 110, extension_fraction: float = 0.02) -> None:
        super().__init__()
        self.fanout = fanout
        self.extension_fraction = extension_fraction
        self._tree: RTree | None = None
        self._extension_distance = 0.0
        #: objects handled by delete + reinsert (as opposed to MBR extension)
        self.n_reinserts = 0
        #: objects handled by the cheap MBR-extension path
        self.n_extensions = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _build(self) -> float:
        self._tree = RTree(fanout=self.fanout)
        seconds = self._tree.bulk_load(self.mesh.vertices)
        diagonal = float(np.linalg.norm(self.mesh.bounding_box().extents))
        self._extension_distance = self.extension_fraction * diagonal
        return seconds

    @property
    def tree(self) -> RTree:
        if self._tree is None:
            raise RuntimeError("lur-tree: prepare() has not been called")
        return self._tree

    def on_step(self) -> float:
        """Lazy maintenance after every vertex position changed in place.

        Vertices still inside their leaf MBR need nothing.  Vertices slightly
        outside are absorbed by extending the leaf MBR (and its ancestors).
        Vertices that moved far are deleted and reinserted.
        """
        tree = self.tree
        positions = self.mesh.vertices
        threshold = self._extension_distance
        start = time.perf_counter()
        touched = 0
        # Group the containment test by leaf so the inner check is vectorised.
        leaves = {id(leaf): leaf for leaf in tree._leaf_of.values()}
        reinserts: list[int] = []
        for leaf in leaves.values():
            if not leaf.entries:
                continue
            ids = np.asarray(leaf.entries, dtype=np.int64)
            pts = positions[ids]
            overshoot = np.maximum(leaf.lo - pts, 0.0) + np.maximum(pts - leaf.hi, 0.0)
            distance = np.linalg.norm(overshoot, axis=1)
            escaped = distance > 0.0
            if not escaped.any():
                continue
            near = escaped & (distance <= threshold)
            far = escaped & (distance > threshold)
            if near.any():
                # Lazy MBR extension: grow this leaf (and ancestors) to cover
                # the nearby movers without touching the tree structure.
                near_pts = pts[near]
                new_lo = np.minimum(leaf.lo, near_pts.min(axis=0))
                new_hi = np.maximum(leaf.hi, near_pts.max(axis=0))
                leaf.lo, leaf.hi = new_lo, new_hi
                parent = leaf.parent
                while parent is not None:
                    parent.lo = np.minimum(parent.lo, new_lo)
                    parent.hi = np.maximum(parent.hi, new_hi)
                    parent = parent.parent
                self.n_extensions += int(near.sum())
                touched += int(near.sum())
            if far.any():
                reinserts.extend(int(i) for i in ids[far])
        for entry_id in reinserts:
            tree.delete(entry_id)
            tree.insert(entry_id, positions[entry_id])
        self.n_reinserts += len(reinserts)
        touched += len(reinserts)
        elapsed = time.perf_counter() - start
        self.maintenance_time += elapsed
        self.maintenance_entries += touched
        return elapsed

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, box: Box3D) -> QueryResult:
        counters = QueryCounters()
        start = time.perf_counter()
        ids = self.tree.query(box, self.mesh.vertices, counters)
        elapsed = time.perf_counter() - start
        return QueryResult(
            vertex_ids=ids, counters=counters, index_time=elapsed, total_time=elapsed
        )

    def query_many(self, boxes: Sequence[Box3D]) -> list[QueryResult]:
        """Batched queries through one shared R-tree traversal.

        Results and counters are identical to sequential :meth:`query` calls;
        the shared traversal's wall-clock is apportioned evenly.
        """
        return self._shared_index_batch(
            boxes,
            lambda box_list, counters: self.tree.query_many(
                box_list, self.mesh.vertices, counters
            ),
        )

    def memory_overhead_bytes(self) -> int:
        return self.tree.memory_bytes() if self._tree is not None else 0
