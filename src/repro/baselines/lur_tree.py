"""The LUR-Tree baseline (lazy update R-tree, Kwon et al. 2002).

The LUR-Tree avoids costly R-tree maintenance when an updated object stays
inside the minimum bounding rectangle of its current leaf: in that case only
the stored position changes (which in this reproduction is automatic, since
the index reads positions straight from the mesh's live array).  For objects
that step just outside their leaf MBR the LUR-Tree applies its lazy *MBR
extension* operation (grow the leaf rectangle instead of reorganising the
tree); only objects that move far trigger a delete followed by a reinsert.

With the "almost every vertex moves a little every step" workload of mesh
simulations, the check itself already costs a pass over all objects per step,
MBR extensions accumulate overlap that hurts queries, and the far movers still
trigger R-tree restructuring — which is why the paper measures the LUR-Tree
spending ~80% of its time on maintenance (Figure 6a).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.delta import DeformationDelta, TopologyDelta
from ..core.executor import ExecutionStrategy
from ..core.resilience import check_query_box, check_query_boxes
from ..core.result import QueryCounters, QueryResult
from ..mesh import Box3D
from .rtree import RTree, RTreeNode

__all__ = ["LURTreeExecutor"]


class LURTreeExecutor(ExecutionStrategy):
    """Lazy-update R-tree over the mesh vertices.

    Parameters
    ----------
    fanout:
        R-tree fanout (the paper uses 110).
    extension_fraction:
        Moves shorter than this fraction of the mesh bounding-box diagonal are
        absorbed by extending the leaf MBR (the LUR-Tree's lazy extension);
        longer moves are handled with delete + reinsert.
    """

    name = "lur-tree"

    def __init__(self, fanout: int = 110, extension_fraction: float = 0.02) -> None:
        super().__init__()
        self.fanout = fanout
        self.extension_fraction = extension_fraction
        self._tree: RTree | None = None
        self._extension_distance = 0.0
        #: objects handled by delete + reinsert (as opposed to MBR extension)
        self.n_reinserts = 0
        #: objects handled by the cheap MBR-extension path
        self.n_extensions = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _build(self) -> float:
        self._tree = RTree(fanout=self.fanout)
        if self.mesh.n_vertices == 0:
            # Empty meshes carry no tree; queries short-circuit to empty
            # results (consistent degenerate handling across strategies).
            self._extension_distance = 0.0
            return 0.0
        seconds = self._tree.bulk_load(self.mesh.vertices)
        diagonal = float(np.linalg.norm(self.mesh.bounding_box().extents))
        self._extension_distance = self.extension_fraction * diagonal
        return seconds

    @property
    def tree(self) -> RTree:
        if self._tree is None:
            raise RuntimeError("lur-tree: prepare() has not been called")
        return self._tree

    def on_step(self, delta: DeformationDelta) -> float:
        """Lazy maintenance keyed off the step's deformation delta.

        Vertices still inside their leaf MBR need nothing.  Vertices slightly
        outside are absorbed by extending the leaf MBR (and its ancestors).
        Vertices that moved far are deleted and reinserted.

        Only *moved* vertices can escape their leaf MBR (every entry ends each
        step inside its leaf's rectangle), so a sparse delta narrows the check
        to the moved set — cost proportional to the motion — while a full
        delta falls back to the classic all-leaves scan.  Both paths find the
        same escapees, apply the same extensions, and relocate the far movers
        in the same ascending-id order, leaving bit-identical tree state.
        """
        if self.mesh.n_vertices == 0:
            return 0.0
        tree = self.tree
        positions = self.mesh.vertices
        start = time.perf_counter()
        touched = 0
        escapees = np.empty(0, dtype=np.int64)
        if len(tree._leaf_of) != positions.shape[0]:
            # Restructuring changed the vertex set — entries appeared or
            # vanished, which lazy maintenance cannot express: rebuild.
            tree.bulk_load(positions)
            touched += positions.shape[0]
        elif delta.n_moved == 0:
            pass
        elif not delta.is_full:
            escapees, extended = self._check_moved(delta.moved_ids, positions)
            touched += extended
        else:
            escapees, extended = self._check_all_leaves(positions)
            touched += extended
        if escapees.size:
            touched += tree.reinsert(escapees, positions)
            self.n_reinserts += int(escapees.size)
        elapsed = time.perf_counter() - start
        self.maintenance_time += elapsed
        self.maintenance_entries += touched
        return elapsed

    def on_restructure(self, delta: TopologyDelta) -> float:
        """Topology maintenance keyed off the restructuring delta.

        Restructuring never moves a pre-existing vertex, so the tree's
        entries and MBRs remain exact: a removal-only delta costs nothing,
        and appended vertices are inserted one by one in ascending id order
        (the canonical order shared with :meth:`RTree.reinsert`) at a cost
        proportional to the additions.  A full delta — the delta-blind
        reference — bulk-loads from scratch; the incremental inserts answer
        queries identically but legitimately grow a different tree *shape*
        than an STR re-pack, so the restructuring-parity suite holds this
        strategy to result parity (not counter parity) across split events.
        """
        if self.mesh.n_vertices == 0:
            return 0.0
        tree = self.tree
        positions = self.mesh.vertices
        start = time.perf_counter()
        touched = 0
        n = positions.shape[0]
        if (
            not delta.is_full
            and len(tree._leaf_of)
            and len(tree._leaf_of) + delta.n_vertices_added == n
        ):
            # The mesh preserves the position array object across
            # equal-count restructurings, but re-bind defensively either way
            # so every later MBR recompute reads the live array.
            tree.rebind_positions(positions)
            if delta.n_vertices_added:
                for vertex_id in delta.added_vertex_ids():
                    tree.insert(int(vertex_id), positions[int(vertex_id)])
                touched = delta.n_vertices_added
        else:
            tree.bulk_load(positions)
            touched = n
        elapsed = time.perf_counter() - start
        self.maintenance_time += elapsed
        self.maintenance_entries += touched
        return elapsed

    def _extend_leaf(self, leaf: RTreeNode, near_pts: np.ndarray) -> None:
        """Lazy MBR extension: grow ``leaf`` (and ancestors) over ``near_pts``
        without touching the tree structure."""
        new_lo = np.minimum(leaf.lo, near_pts.min(axis=0))
        new_hi = np.maximum(leaf.hi, near_pts.max(axis=0))
        leaf.lo, leaf.hi = new_lo, new_hi
        parent = leaf.parent
        while parent is not None:
            parent.lo = np.minimum(parent.lo, new_lo)
            parent.hi = np.maximum(parent.hi, new_hi)
            parent = parent.parent

    def _check_all_leaves(self, positions: np.ndarray) -> tuple[np.ndarray, int]:
        """Full-mesh pass: test every entry of every leaf (the delta-blind path).

        Returns the far escapee ids and the number of MBR extensions applied.
        """
        threshold = self._extension_distance
        tree = self.tree
        extended = 0
        reinserts: list[np.ndarray] = []
        # Group the containment test by leaf so the inner check is vectorised.
        leaves = {id(leaf): leaf for leaf in tree._leaf_of.values()}
        for leaf in leaves.values():
            if not leaf.entries:
                continue
            ids = np.asarray(leaf.entries, dtype=np.int64)
            pts = positions[ids]
            overshoot = np.maximum(leaf.lo - pts, 0.0) + np.maximum(pts - leaf.hi, 0.0)
            distance = np.linalg.norm(overshoot, axis=1)
            escaped = distance > 0.0
            if not escaped.any():
                continue
            near = escaped & (distance <= threshold)
            far = escaped & (distance > threshold)
            if near.any():
                self._extend_leaf(leaf, pts[near])
                self.n_extensions += int(near.sum())
                extended += int(near.sum())
            if far.any():
                reinserts.append(ids[far])
        escapees = (
            np.concatenate(reinserts) if reinserts else np.empty(0, dtype=np.int64)
        )
        return escapees, extended

    def _check_moved(
        self, moved_ids: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Delta path: test only the moved entries against their own leaf MBRs.

        One vectorised overshoot evaluation over the moved set, then MBR
        extensions grouped by leaf exactly as the full scan would have applied
        them (unmoved entries sit at overshoot zero, so the decisions match).
        """
        threshold = self._extension_distance
        tree = self.tree
        leaf_refs = [tree._leaf_of[int(i)] for i in moved_ids]
        lo = np.array([leaf.lo for leaf in leaf_refs])
        hi = np.array([leaf.hi for leaf in leaf_refs])
        pts = positions[moved_ids]
        overshoot = np.maximum(lo - pts, 0.0) + np.maximum(pts - hi, 0.0)
        distance = np.linalg.norm(overshoot, axis=1)
        escaped = distance > 0.0
        extended = 0
        if not escaped.any():
            return np.empty(0, dtype=np.int64), extended
        near = escaped & (distance <= threshold)
        if near.any():
            by_leaf: dict[int, tuple[RTreeNode, list[int]]] = {}
            for row in np.nonzero(near)[0]:
                leaf = leaf_refs[int(row)]
                by_leaf.setdefault(id(leaf), (leaf, []))[1].append(int(row))
            for leaf, rows in by_leaf.values():
                self._extend_leaf(leaf, pts[rows])
                self.n_extensions += len(rows)
                extended += len(rows)
        return moved_ids[escaped & ~near], extended

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, box: Box3D) -> QueryResult:
        check_query_box(box)
        counters = QueryCounters()
        if self.mesh.n_vertices == 0:
            return QueryResult(vertex_ids=np.empty(0, dtype=np.int64), counters=counters)
        start = time.perf_counter()
        ids = self.tree.query(box, self.mesh.vertices, counters)
        elapsed = time.perf_counter() - start
        return QueryResult(
            vertex_ids=ids, counters=counters, index_time=elapsed, total_time=elapsed
        )

    def query_many(self, boxes: Sequence[Box3D]) -> list[QueryResult]:
        """Batched queries through one shared R-tree traversal.

        Results and counters are identical to sequential :meth:`query` calls;
        the shared traversal's wall-clock is apportioned evenly.
        """
        box_list = check_query_boxes(boxes)
        if self.mesh.n_vertices == 0:
            return [self.query(box) for box in box_list]
        return self._shared_index_batch(
            box_list,
            lambda batch, counters: self.tree.query_many(
                batch, self.mesh.vertices, counters
            ),
        )

    def memory_overhead_bytes(self) -> int:
        return self.tree.memory_bytes() if self._tree is not None else 0
