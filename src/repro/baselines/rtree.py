"""An in-memory R-tree over vertex positions.

This is the substrate shared by the LUR-Tree and QU-Trade baselines (both of
which the paper implements "based on the same in-memory R-Tree implementation
with a fanout of 110", Section V-A).  The tree is bulk-loaded with the Sort-
Tile-Recursive (STR) algorithm and supports point deletion, insertion with
least-enlargement leaf choice, node splitting on overflow, and range queries
that count visited nodes.

Positions are read through a reference to the caller's position array, so the
tree sees in-place updates automatically; what it maintains itself are the
entry-to-leaf assignments and the node MBRs.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..core.result import QueryCounters
from ..errors import SpatialIndexError
from ..mesh import Box3D, boxes_to_arrays, points_in_box, points_in_boxes

__all__ = ["RTree", "RTreeNode"]


class RTreeNode:
    """A node of the R-tree (leaf nodes hold point ids, internal nodes hold children)."""

    __slots__ = ("lo", "hi", "children", "entries", "parent", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.lo = np.full(3, np.inf)
        self.hi = np.full(3, -np.inf)
        self.children: list["RTreeNode"] = []
        self.entries: list[int] = []
        self.parent: Optional["RTreeNode"] = None

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def mbr(self) -> Box3D:
        return Box3D(self.lo, self.hi)

    def contains_point(self, point: np.ndarray) -> bool:
        return bool(np.all(point >= self.lo) and np.all(point <= self.hi))

    def intersects_box(self, box: Box3D) -> bool:
        return bool(np.all(self.lo <= box.hi) and np.all(box.lo <= self.hi))

    def enlargement_for(self, point: np.ndarray) -> float:
        """Volume increase required to include ``point`` in this node's MBR."""
        new_lo = np.minimum(self.lo, point)
        new_hi = np.maximum(self.hi, point)
        old_volume = float(np.prod(np.maximum(self.hi - self.lo, 0.0)))
        new_volume = float(np.prod(np.maximum(new_hi - new_lo, 0.0)))
        return new_volume - old_volume

    def extend_to_point(self, point: np.ndarray) -> None:
        self.lo = np.minimum(self.lo, point)
        self.hi = np.maximum(self.hi, point)

    def recompute_mbr(self, positions: np.ndarray) -> None:
        """Tighten the MBR from current children / entries."""
        if self.is_leaf:
            if self.entries:
                pts = positions[np.asarray(self.entries, dtype=np.int64)]
                self.lo = pts.min(axis=0)
                self.hi = pts.max(axis=0)
            else:
                self.lo = np.full(3, np.inf)
                self.hi = np.full(3, -np.inf)
        else:
            if self.children:
                self.lo = np.min([c.lo for c in self.children], axis=0)
                self.hi = np.max([c.hi for c in self.children], axis=0)
            else:
                self.lo = np.full(3, np.inf)
                self.hi = np.full(3, -np.inf)


class RTree:
    """STR-bulk-loaded R-tree over a point set with insert/delete support.

    Parameters
    ----------
    fanout:
        Maximum number of entries per leaf and children per internal node
        (the paper uses 110).
    """

    def __init__(self, fanout: int = 110) -> None:
        if fanout < 4:
            raise SpatialIndexError("R-tree fanout must be at least 4")
        self.fanout = fanout
        self.root: Optional[RTreeNode] = None
        self._positions: Optional[np.ndarray] = None
        self._leaf_of: dict[int, RTreeNode] = {}
        self.n_nodes = 0
        self.build_time = 0.0

    # ------------------------------------------------------------------
    # bulk loading (STR)
    # ------------------------------------------------------------------
    def bulk_load(self, positions: np.ndarray) -> float:
        """Build the tree from scratch with Sort-Tile-Recursive packing."""
        start = time.perf_counter()
        pts = np.asarray(positions, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] == 0:
            raise SpatialIndexError("bulk_load needs a non-empty (n, 3) position array")
        self._positions = pts
        ids = np.arange(pts.shape[0], dtype=np.int64)
        leaf_groups = self._str_partition(ids, pts)
        leaves = []
        self._leaf_of = {}
        for group in leaf_groups:
            node = RTreeNode(is_leaf=True)
            node.entries = [int(i) for i in group]
            node.recompute_mbr(pts)
            for i in node.entries:
                self._leaf_of[i] = node
            leaves.append(node)
        self.root = self._build_upper_levels(leaves)
        self.n_nodes = self._count_nodes(self.root)
        self.build_time = time.perf_counter() - start
        return self.build_time

    def _str_partition(self, ids: np.ndarray, pts: np.ndarray) -> list[np.ndarray]:
        """Partition point ids into leaf-sized groups with STR tiling."""
        capacity = self.fanout
        n = ids.size
        n_leaves = int(np.ceil(n / capacity))
        slabs_x = int(np.ceil(n_leaves ** (1.0 / 3.0)))
        # Sort by x, slice into vertical slabs.
        order_x = ids[np.argsort(pts[ids, 0], kind="stable")]
        slab_size_x = int(np.ceil(n / slabs_x))
        groups: list[np.ndarray] = []
        for sx in range(0, n, slab_size_x):
            slab = order_x[sx:sx + slab_size_x]
            slabs_y = int(np.ceil(np.ceil(slab.size / capacity) ** 0.5))
            order_y = slab[np.argsort(pts[slab, 1], kind="stable")]
            slab_size_y = int(np.ceil(slab.size / max(slabs_y, 1)))
            for sy in range(0, slab.size, max(slab_size_y, 1)):
                column = order_y[sy:sy + slab_size_y]
                order_z = column[np.argsort(pts[column, 2], kind="stable")]
                for sz in range(0, column.size, capacity):
                    groups.append(order_z[sz:sz + capacity])
        return groups

    def _build_upper_levels(self, nodes: list[RTreeNode]) -> RTreeNode:
        """Pack nodes bottom-up until a single root remains."""
        if len(nodes) == 1:
            nodes[0].parent = None
            return nodes[0]
        level = nodes
        while len(level) > 1:
            # Order parents along x of child centroids for spatial locality.
            centers = np.array([(n.lo + n.hi) / 2.0 for n in level])
            order = np.argsort(centers[:, 0], kind="stable")
            parents = []
            for start in range(0, len(level), self.fanout):
                parent = RTreeNode(is_leaf=False)
                for idx in order[start:start + self.fanout]:
                    child = level[int(idx)]
                    child.parent = parent
                    parent.children.append(child)
                parent.lo = np.min([c.lo for c in parent.children], axis=0)
                parent.hi = np.max([c.hi for c in parent.children], axis=0)
                parents.append(parent)
            level = parents
        level[0].parent = None
        return level[0]

    def _count_nodes(self, node: Optional[RTreeNode]) -> int:
        if node is None:
            return 0
        if node.is_leaf:
            return 1
        return 1 + sum(self._count_nodes(child) for child in node.children)

    def _require_built(self) -> RTreeNode:
        if self.root is None or self._positions is None:
            raise SpatialIndexError("R-tree has not been bulk loaded")
        return self.root

    # ------------------------------------------------------------------
    # dynamic maintenance
    # ------------------------------------------------------------------
    def leaf_of(self, entry_id: int) -> RTreeNode:
        """The leaf currently storing ``entry_id``."""
        self._require_built()
        try:
            return self._leaf_of[int(entry_id)]
        except KeyError as exc:
            raise SpatialIndexError(f"entry {entry_id} is not in the R-tree") from exc

    def rebind_positions(self, positions: np.ndarray) -> None:
        """Re-point the tree at a grown position array (mesh restructuring).

        Restructuring replaces the mesh's position array object (appending
        new vertices to the tail), so the reference captured at
        :meth:`bulk_load` time goes stale.  Entry-to-leaf assignments and
        MBRs are untouched — pre-existing ids keep their positions — the tree
        merely reads positions through the new array from now on, which is
        required before :meth:`insert` can place entries for the new tail
        ids.
        """
        pts = np.asarray(positions, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] < len(self._leaf_of):
            raise SpatialIndexError("rebind_positions needs an (n, 3) array covering every entry")
        self._positions = pts

    def delete(self, entry_id: int) -> None:
        """Remove one entry from its leaf and tighten MBRs up the path."""
        leaf = self.leaf_of(entry_id)
        leaf.entries.remove(int(entry_id))
        del self._leaf_of[int(entry_id)]
        self._tighten_upwards(leaf)

    def reinsert(self, entry_ids: np.ndarray, positions: np.ndarray) -> int:
        """Relocate a batch of entries: delete + insert each at its new position.

        The entries are processed in ascending id order regardless of the
        order given, so delta-keyed incremental maintenance and a full-scan
        pass that found the same escapee set mutate the tree through the
        *identical* operation sequence — leaving bit-identical tree structure
        and therefore bit-identical query traversals and counters.  Returns
        the number of entries relocated.
        """
        ids = np.sort(np.asarray(entry_ids, dtype=np.int64))
        pts = np.asarray(positions)
        for entry_id in ids:
            self.delete(int(entry_id))
            self.insert(int(entry_id), pts[int(entry_id)])
        return int(ids.size)

    def insert(self, entry_id: int, point: np.ndarray) -> int:
        """Insert an entry at ``point``; returns the number of nodes visited."""
        root = self._require_built()
        visited = 0
        node = root
        while not node.is_leaf:
            visited += 1
            best = min(node.children, key=lambda child: (child.enlargement_for(point),
                                                         float(np.prod(np.maximum(child.hi - child.lo, 0.0)))))
            node = best
        visited += 1
        node.entries.append(int(entry_id))
        self._leaf_of[int(entry_id)] = node
        self._enlarge_upwards(node, point)
        if len(node.entries) > self.fanout:
            self._split_leaf(node)
        return visited

    def _enlarge_upwards(self, node: RTreeNode, point: np.ndarray) -> None:
        current: Optional[RTreeNode] = node
        while current is not None:
            current.extend_to_point(point)
            current = current.parent

    def _tighten_upwards(self, node: RTreeNode) -> None:
        positions = self._positions
        current: Optional[RTreeNode] = node
        while current is not None:
            current.recompute_mbr(positions)
            current = current.parent

    def _split_leaf(self, leaf: RTreeNode) -> None:
        """Split an overflowing leaf along its longest MBR axis (midpoint split)."""
        positions = self._positions
        entries = np.asarray(leaf.entries, dtype=np.int64)
        pts = positions[entries]
        axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
        order = np.argsort(pts[:, axis], kind="stable")
        half = entries.size // 2
        left_ids = entries[order[:half]]
        right_ids = entries[order[half:]]

        leaf.entries = [int(i) for i in left_ids]
        sibling = RTreeNode(is_leaf=True)
        sibling.entries = [int(i) for i in right_ids]
        for i in sibling.entries:
            self._leaf_of[i] = sibling
        leaf.recompute_mbr(positions)
        sibling.recompute_mbr(positions)
        self.n_nodes += 1

        parent = leaf.parent
        if parent is None:
            # The leaf was the root: grow the tree by one level.
            new_root = RTreeNode(is_leaf=False)
            new_root.children = [leaf, sibling]
            leaf.parent = new_root
            sibling.parent = new_root
            new_root.recompute_mbr(positions)
            self.root = new_root
            self.n_nodes += 1
            return
        sibling.parent = parent
        parent.children.append(sibling)
        parent.recompute_mbr(positions)
        if len(parent.children) > self.fanout:
            self._split_internal(parent)

    def _split_internal(self, node: RTreeNode) -> None:
        """Split an overflowing internal node along the longest axis of child centres."""
        positions = self._positions
        centers = np.array([(c.lo + c.hi) / 2.0 for c in node.children])
        axis = int(np.argmax(centers.max(axis=0) - centers.min(axis=0)))
        order = np.argsort(centers[:, axis], kind="stable")
        half = len(node.children) // 2
        children = [node.children[int(i)] for i in order]
        left, right = children[:half], children[half:]

        node.children = left
        sibling = RTreeNode(is_leaf=False)
        sibling.children = right
        for child in right:
            child.parent = sibling
        node.recompute_mbr(positions)
        sibling.recompute_mbr(positions)
        self.n_nodes += 1

        parent = node.parent
        if parent is None:
            new_root = RTreeNode(is_leaf=False)
            new_root.children = [node, sibling]
            node.parent = new_root
            sibling.parent = new_root
            new_root.recompute_mbr(positions)
            self.root = new_root
            self.n_nodes += 1
            return
        sibling.parent = parent
        parent.children.append(sibling)
        parent.recompute_mbr(positions)
        if len(parent.children) > self.fanout:
            self._split_internal(parent)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(
        self,
        box: Box3D,
        positions: np.ndarray | None = None,
        counters: QueryCounters | None = None,
        mbr_expansion: float = 0.0,
    ) -> np.ndarray:
        """Range query: ids of entries whose position in ``positions`` lies in ``box``.

        ``mbr_expansion`` expands every node MBR during traversal; QU-Trade
        uses this to account for its grace windows.
        """
        root = self._require_built()
        pts = np.asarray(positions if positions is not None else self._positions)
        found: list[np.ndarray] = []
        stack = [root]
        nodes_visited = 0
        scanned = 0
        while stack:
            node = stack.pop()
            nodes_visited += 1
            node_box = Box3D(node.lo - mbr_expansion, node.hi + mbr_expansion) \
                if np.all(np.isfinite(node.lo)) else None
            if node_box is None or not node_box.intersects(box):
                continue
            if node.is_leaf:
                if node.entries:
                    ids = np.asarray(node.entries, dtype=np.int64)
                    scanned += ids.size
                    inside = points_in_box(pts[ids], box)
                    if inside.any():
                        found.append(ids[inside])
            else:
                stack.extend(node.children)
        if counters is not None:
            counters.index_nodes_visited += nodes_visited
            counters.vertices_scanned += scanned
        return np.sort(np.concatenate(found)) if found else np.empty(0, dtype=np.int64)

    def query_many(
        self,
        boxes: Sequence[Box3D],
        positions: np.ndarray | None = None,
        counters_list: Sequence[QueryCounters | None] | None = None,
        mbr_expansion: float = 0.0,
    ) -> list[np.ndarray]:
        """Answer a batch of range queries with one shared tree traversal.

        The tree is walked once per batch: every node carries the set of
        queries still *active* at it (the queries whose traversal would have
        reached it), node MBRs are tested against all active boxes in one
        vectorised pass, and each leaf's entry positions are gathered once and
        tested against every intersecting box with a single broadcast.
        Results and per-query counters are bit-identical to calling
        :meth:`query` once per box.
        """
        box_list = list(boxes)
        if not box_list:
            return []
        root = self._require_built()
        pts = np.asarray(positions if positions is not None else self._positions)
        los, his = boxes_to_arrays(box_list)
        n_queries = len(box_list)
        nodes_visited = np.zeros(n_queries, dtype=np.int64)
        scanned = np.zeros(n_queries, dtype=np.int64)
        found: list[list[np.ndarray]] = [[] for _ in range(n_queries)]

        stack: list[tuple[RTreeNode, np.ndarray]] = [(root, np.arange(n_queries))]
        while stack:
            node, active = stack.pop()
            nodes_visited[active] += 1
            if not np.all(np.isfinite(node.lo)):
                continue
            node_lo = node.lo - mbr_expansion
            node_hi = node.hi + mbr_expansion
            hit = np.all((node_lo <= his[active]) & (los[active] <= node_hi), axis=1)
            live = active[hit]
            if live.size == 0:
                continue
            if node.is_leaf:
                if node.entries:
                    ids = np.asarray(node.entries, dtype=np.int64)
                    scanned[live] += ids.size
                    inside = points_in_boxes(pts[ids], los[live], his[live])
                    for row, query_index in enumerate(live):
                        mask = inside[row]
                        if mask.any():
                            found[query_index].append(ids[mask])
            else:
                for child in node.children:
                    stack.append((child, live))

        if counters_list is not None:
            for query_index, counters in enumerate(counters_list):
                if counters is not None:
                    counters.index_nodes_visited += int(nodes_visited[query_index])
                    counters.vertices_scanned += int(scanned[query_index])
        return [
            np.sort(np.concatenate(pieces)) if pieces else np.empty(0, dtype=np.int64)
            for pieces in found
        ]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def height(self) -> int:
        """Number of levels of the tree."""
        node = self._require_built()
        levels = 1
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    def memory_bytes(self) -> int:
        """Approximate footprint: MBRs, child/entry lists, and the entry-to-leaf map."""
        if self.root is None:
            return 0
        per_node = 2 * 3 * 8 + 64           # two MBR corners plus object overhead
        n_entries = len(self._leaf_of)
        return self.n_nodes * per_node + n_entries * 16 + n_entries * 100
