"""Throwaway uniform-grid baseline.

A uniform grid rebuilt from scratch after every simulation step.  Shares the
:class:`~repro.core.uniform_grid.UniformGrid` structure with OCTOPUS-CON; the
difference is purely in the lifecycle — this baseline keeps the grid fresh and
answers queries from it directly, while OCTOPUS-CON lets it go stale and only
uses it to pick a crawl starting vertex.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.delta import DeformationDelta, TopologyDelta
from ..core.executor import ExecutionStrategy
from ..core.resilience import check_query_box, check_query_boxes
from ..core.result import QueryCounters, QueryResult
from ..core.uniform_grid import UniformGrid
from ..mesh import Box3D

__all__ = ["ThrowawayGridExecutor"]


class ThrowawayGridExecutor(ExecutionStrategy):
    """Uniform grid rebuilt after every simulation step."""

    name = "grid"

    def __init__(self, resolution: int = 16) -> None:
        super().__init__()
        self.resolution = resolution
        self._grid: UniformGrid | None = None

    def _build(self) -> float:
        self._grid = UniformGrid(self.resolution)
        if self.mesh.n_vertices == 0:
            # Empty meshes carry no grid; queries short-circuit to empty
            # results (consistent degenerate handling across strategies).
            return 0.0
        return self._grid.build(self.mesh.vertices)

    @property
    def grid(self) -> UniformGrid:
        if self._grid is None:
            raise RuntimeError("grid: prepare() has not been called")
        return self._grid

    def on_step(self, delta: DeformationDelta) -> float:
        """Full-rebuild fallback; skipped entirely when nothing moved.

        The skip is guarded by the built size: a restructuring that changed
        the vertex set forces a rebuild even on a zero-motion step.
        """
        if self.mesh.n_vertices == 0:
            return 0.0
        if delta.n_moved == 0 and self.grid.n_points == self.mesh.n_vertices:
            return 0.0
        elapsed = self.grid.build(self.mesh.vertices)
        self.maintenance_time += elapsed
        self.maintenance_entries += self.mesh.n_vertices
        return elapsed

    def on_restructure(self, delta: TopologyDelta) -> float:
        """Rebuild only when the restructuring changed the vertex set.

        A throwaway index over vertex positions is untouched by cell removal
        — ids and positions are preserved — so a sparse delta with no
        appended vertices skips the rebuild entirely; splits (or a full
        delta) rebuild over the grown vertex array.
        """
        if self.mesh.n_vertices == 0:
            return 0.0
        if (
            not delta.is_full
            and delta.n_vertices_added == 0
            and self.grid.n_points == self.mesh.n_vertices
        ):
            return 0.0
        elapsed = self.grid.build(self.mesh.vertices)
        self.maintenance_time += elapsed
        self.maintenance_entries += self.mesh.n_vertices
        return elapsed

    def query(self, box: Box3D) -> QueryResult:
        check_query_box(box)
        counters = QueryCounters()
        if self.mesh.n_vertices == 0:
            return QueryResult(vertex_ids=np.empty(0, dtype=np.int64), counters=counters)
        start = time.perf_counter()
        ids = self.grid.query(box, self.mesh.vertices, counters)
        elapsed = time.perf_counter() - start
        return QueryResult(
            vertex_ids=ids, counters=counters, index_time=elapsed, total_time=elapsed
        )

    def query_many(self, boxes: Sequence[Box3D]) -> list[QueryResult]:
        """Batched queries sharing one candidate gather across all boxes.

        Results and counters are identical to sequential :meth:`query` calls;
        the shared gather's wall-clock is apportioned evenly.
        """
        box_list = check_query_boxes(boxes)
        if self.mesh.n_vertices == 0:
            return [self.query(box) for box in box_list]
        return self._shared_index_batch(
            box_list,
            lambda batch, counters: self.grid.query_many(
                batch, self.mesh.vertices, counters
            ),
        )

    def memory_overhead_bytes(self) -> int:
        return self.grid.memory_bytes() if self._grid is not None else 0
