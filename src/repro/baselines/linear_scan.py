"""The linear scan baseline.

The simplest correct approach: test every vertex of the mesh against the query
box.  It needs no auxiliary structures and no maintenance, but its cost is
proportional to the dataset size — exactly the scaling problem OCTOPUS is
designed to beat (Sections I and III-C).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.executor import ExecutionStrategy
from ..core.result import QueryCounters, QueryResult
from ..mesh import Box3D, points_in_box

__all__ = ["LinearScanExecutor"]


class LinearScanExecutor(ExecutionStrategy):
    """Full scan of all vertex positions for every query."""

    name = "linear-scan"

    def query(self, box: Box3D) -> QueryResult:
        mesh = self.mesh
        counters = QueryCounters()
        start = time.perf_counter()
        inside = points_in_box(mesh.vertices, box)
        vertex_ids = np.nonzero(inside)[0].astype(np.int64)
        elapsed = time.perf_counter() - start
        counters.vertices_scanned += mesh.n_vertices
        return QueryResult(
            vertex_ids=vertex_ids,
            counters=counters,
            scan_time=elapsed,
            total_time=elapsed,
        )

    def memory_overhead_bytes(self) -> int:
        """The linear scan keeps no auxiliary data structures."""
        return 0
