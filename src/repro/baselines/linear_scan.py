"""The linear scan baseline.

The simplest correct approach: test every vertex of the mesh against the query
box.  It needs no auxiliary structures and no maintenance, but its cost is
proportional to the dataset size — exactly the scaling problem OCTOPUS is
designed to beat (Sections I and III-C).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.executor import ExecutionStrategy
from ..core.resilience import check_query_box, check_query_boxes
from ..core.result import QueryCounters, QueryResult
from ..mesh import Box3D, box_batch_chunk, boxes_to_arrays, points_in_box, points_in_boxes

__all__ = ["LinearScanExecutor"]


class LinearScanExecutor(ExecutionStrategy):
    """Full scan of all vertex positions for every query."""

    name = "linear-scan"

    def query(self, box: Box3D) -> QueryResult:
        check_query_box(box)
        mesh = self.mesh
        counters = QueryCounters()
        start = time.perf_counter()
        inside = points_in_box(mesh.vertices, box)
        vertex_ids = np.nonzero(inside)[0].astype(np.int64)
        elapsed = time.perf_counter() - start
        counters.vertices_scanned += mesh.n_vertices
        return QueryResult(
            vertex_ids=vertex_ids,
            counters=counters,
            scan_time=elapsed,
            total_time=elapsed,
        )

    def query_many(self, boxes: Sequence[Box3D]) -> list[QueryResult]:
        """Batched scan: test all boxes against all vertices in one broadcast.

        Chunked over the box axis to bound the broadcast; results and counters
        are identical to sequential :meth:`query` calls.
        """
        box_list = check_query_boxes(boxes)
        if len(box_list) <= 1:
            return [self.query(box) for box in box_list]
        mesh = self.mesh
        start = time.perf_counter()
        los, his = boxes_to_arrays(box_list)
        chunk = box_batch_chunk(mesh.n_vertices)
        ids_per_box: list[np.ndarray] = []
        for lo_index in range(0, len(box_list), chunk):
            inside = points_in_boxes(
                mesh.vertices, los[lo_index:lo_index + chunk], his[lo_index:lo_index + chunk]
            )
            ids_per_box.extend(np.nonzero(inside[row])[0] for row in range(inside.shape[0]))
        per_box_time = (time.perf_counter() - start) / len(box_list)

        results = []
        for vertex_ids in ids_per_box:
            counters = QueryCounters()
            counters.vertices_scanned += mesh.n_vertices
            results.append(
                QueryResult(
                    vertex_ids=vertex_ids.astype(np.int64),
                    counters=counters,
                    scan_time=per_box_time,
                    total_time=per_box_time,
                )
            )
        return results

    def memory_overhead_bytes(self) -> int:
        """The linear scan keeps no auxiliary data structures."""
        return 0
