"""The RUM-Tree baseline (memo-based R-tree updates, Silva et al., VLDBJ 2009).

The RUM-Tree handles an object's position update by *inserting* the new
position into the R-tree and merely invalidating (not deleting) the old entry:
a memo table maps each object to its latest entry, queries filter out obsolete
entries, and a garbage-collection pass eventually reclaims them.

Section II-A of the OCTOPUS paper argues that under mesh-simulation workloads
— where every vertex moves at every time step — this strategy degenerates to
re-inserting the whole dataset each step, "which clearly is slower than
bulkloading a new index".  This implementation exists to make that comparison
concrete: every :meth:`RUMTreeExecutor.on_step` inserts one new entry per
vertex, and once the share of obsolete entries exceeds a threshold the
executor performs the garbage-collection rebuild.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.delta import DeformationDelta, TopologyDelta
from ..core.executor import ExecutionStrategy
from ..core.resilience import check_query_box, check_query_boxes
from ..core.result import QueryCounters, QueryResult
from ..errors import SpatialIndexError
from ..mesh import Box3D
from .rtree import RTree

__all__ = ["RUMTreeExecutor"]


class RUMTreeExecutor(ExecutionStrategy):
    """Memo-based R-tree over the mesh vertices.

    Parameters
    ----------
    fanout:
        R-tree fanout (the paper's R-tree baselines use 110).
    garbage_threshold:
        When obsolete entries exceed this multiple of the live entry count,
        the garbage collector rebuilds the tree from the current positions.
    """

    name = "rum-tree"

    def __init__(self, fanout: int = 110, garbage_threshold: float = 2.0) -> None:
        super().__init__()
        if garbage_threshold <= 0:
            raise SpatialIndexError("garbage_threshold must be positive")
        self.fanout = fanout
        self.garbage_threshold = garbage_threshold
        self._tree: RTree | None = None
        #: stored position of every entry key ever inserted (grows until GC)
        self._stored_positions: np.ndarray | None = None
        #: memo table: vertex id -> its latest entry key
        self._memo: np.ndarray | None = None
        #: vertex id of every entry key
        self._entry_vertex: np.ndarray | None = None
        self._n_obsolete = 0
        #: number of garbage-collection rebuilds performed
        self.n_garbage_collections = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _build(self) -> float:
        start = time.perf_counter()
        self._rebuild_from_current()
        return time.perf_counter() - start

    def _rebuild_from_current(self) -> None:
        """Bulk load a fresh tree whose entry keys are exactly the vertex ids."""
        n = self.mesh.n_vertices
        self._stored_positions = self.mesh.vertices.copy()
        self._entry_vertex = np.arange(n, dtype=np.int64)
        self._memo = np.arange(n, dtype=np.int64)
        self._n_obsolete = 0
        self._tree = RTree(fanout=self.fanout)
        if n:
            self._tree.bulk_load(self._stored_positions)
        # An empty mesh keeps the tree unbuilt; queries short-circuit to
        # empty results (consistent degenerate handling across strategies).

    @property
    def tree(self) -> RTree:
        if self._tree is None:
            raise RuntimeError("rum-tree: prepare() has not been called")
        return self._tree

    @property
    def n_entries(self) -> int:
        """Total entries currently stored in the tree (live + obsolete)."""
        return 0 if self._entry_vertex is None else int(self._entry_vertex.size)

    @property
    def n_obsolete_entries(self) -> int:
        """Entries invalidated by a newer version but not yet garbage collected."""
        return self._n_obsolete

    def on_step(self, delta: DeformationDelta) -> float:
        """Insert each moved vertex's new position and invalidate its old entry.

        The memo protocol only requires an entry for positions that *changed*
        — an unmoved vertex's latest entry still stores its current position —
        so a sparse delta inserts (and obsoletes) only the moved vertices,
        which is where the RUM-Tree stops degenerating to "re-insert the whole
        dataset each step".  A full delta reproduces exactly that degenerate
        behaviour (Section II-A of the OCTOPUS paper), and either way query
        results equal the exact current-position answer.
        """
        if self.mesh.n_vertices == 0:
            return 0.0
        start = time.perf_counter()
        mesh = self.mesh
        n = mesh.n_vertices
        touched = 0

        if self._memo.size != n:
            # Restructuring changed the vertex set: rebuild outright (this
            # must run even on a zero-motion step).
            self._rebuild_from_current()
            touched += n
        elif delta.n_moved == 0:
            # Rest step: no new entries, no new garbage — even an overdue
            # garbage collection can wait for the next active step.
            pass
        elif self._n_obsolete >= self.garbage_threshold * n:
            # Garbage collection: reclaim all obsolete entries at once by
            # rebuilding from the current positions (the cheapest cleaner for
            # an all-objects-moved workload).
            self._rebuild_from_current()
            self.n_garbage_collections += 1
            touched += n
        else:
            moved = delta.ids()
            current = mesh.vertices
            new_positions = current if delta.is_full else current[moved]
            first_new_key = self._stored_positions.shape[0]
            self._stored_positions = np.vstack([self._stored_positions, new_positions])
            self._entry_vertex = np.concatenate([self._entry_vertex, moved])
            # Old entries become obsolete; the memo now points at the new keys.
            self._n_obsolete += int(moved.size)
            self._memo[moved] = first_new_key + np.arange(moved.size, dtype=np.int64)
            tree = self.tree
            tree._positions = self._stored_positions
            for offset, vertex_id in enumerate(moved):
                tree.insert(first_new_key + offset, current[vertex_id])
            touched += int(moved.size)

        elapsed = time.perf_counter() - start
        self.maintenance_time += elapsed
        self.maintenance_entries += touched
        return elapsed

    def on_restructure(self, delta: TopologyDelta) -> float:
        """Topology maintenance keyed off the restructuring delta.

        Pre-existing entries (and their memo pointers) stay valid across
        restructuring, so a removal-only delta costs nothing; appended
        vertices get one fresh entry each — new key, new memo slot, one
        R-tree insert in ascending id order — which is exactly the memo
        protocol's insert path, producing no obsolete entries.  A full delta
        garbage-collects everything by rebuilding from the current positions;
        the incremental inserts answer queries identically (the memo filter
        keeps results exact) but grow a different tree shape, so the
        restructuring-parity suite holds this strategy to result parity.
        """
        start = time.perf_counter()
        mesh = self.mesh
        n = mesh.n_vertices
        touched = 0
        if delta.is_full or self._memo.size + delta.n_vertices_added != n:
            self._rebuild_from_current()
            touched = n
        elif delta.n_vertices_added:
            new_ids = delta.added_vertex_ids()
            new_positions = mesh.vertices[new_ids]
            first_new_key = self._stored_positions.shape[0]
            self._stored_positions = np.vstack([self._stored_positions, new_positions])
            self._entry_vertex = np.concatenate([self._entry_vertex, new_ids])
            # New vertices have no prior entry to obsolete; the memo simply
            # grows (ids are the tail, so concatenation keeps it id-indexed).
            self._memo = np.concatenate(
                [self._memo, first_new_key + np.arange(new_ids.size, dtype=np.int64)]
            )
            tree = self.tree
            tree.rebind_positions(self._stored_positions)
            for offset in range(int(new_ids.size)):
                tree.insert(first_new_key + offset, new_positions[offset])
            touched = int(new_ids.size)
        elapsed = time.perf_counter() - start
        self.maintenance_time += elapsed
        self.maintenance_entries += touched
        return elapsed

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, box: Box3D) -> QueryResult:
        check_query_box(box)
        counters = QueryCounters()
        if self.mesh.n_vertices == 0:
            return QueryResult(vertex_ids=np.empty(0, dtype=np.int64), counters=counters)
        start = time.perf_counter()
        keys = self.tree.query(box, self._stored_positions, counters)
        vertex_ids = self._filter_obsolete(keys)
        elapsed = time.perf_counter() - start
        return QueryResult(
            vertex_ids=vertex_ids, counters=counters, index_time=elapsed, total_time=elapsed
        )

    def _filter_obsolete(self, keys: np.ndarray) -> np.ndarray:
        """Entry keys -> vertex ids, keeping only the memo's current entries."""
        if not keys.size:
            return keys
        vertices = self._entry_vertex[keys]
        live = self._memo[vertices] == keys
        return np.unique(vertices[live])

    def query_many(self, boxes: Sequence[Box3D]) -> list[QueryResult]:
        """Batched queries: one shared R-tree traversal plus per-box memo filters.

        Results and counters are identical to sequential :meth:`query` calls;
        the shared traversal's wall-clock is apportioned evenly.
        """
        box_list = check_query_boxes(boxes)
        if self.mesh.n_vertices == 0:
            return [self.query(box) for box in box_list]
        return self._shared_index_batch(
            box_list,
            lambda batch, counters: [
                self._filter_obsolete(keys)
                for keys in self.tree.query_many(batch, self._stored_positions, counters)
            ],
        )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_overhead_bytes(self) -> int:
        if self._tree is None:
            return 0
        stored = 0 if self._stored_positions is None else int(self._stored_positions.nbytes)
        memo = 0 if self._memo is None else int(self._memo.nbytes)
        return self.tree.memory_bytes() + stored + memo
