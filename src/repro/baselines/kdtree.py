"""Throwaway k-d tree baseline.

One of the memory-based spatial indexes the paper lists as candidates for the
rebuild-every-step strategy (Section II-A, [4]).  Median-split bucket k-d tree
rebuilt from scratch after every simulation step.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.delta import DeformationDelta, TopologyDelta
from ..core.executor import ExecutionStrategy
from ..core.resilience import check_query_box, check_query_boxes
from ..core.result import QueryCounters, QueryResult
from ..errors import SpatialIndexError
from ..mesh import Box3D, boxes_to_arrays, points_in_box, points_in_boxes

__all__ = ["KDTree", "ThrowawayKDTreeExecutor"]


class _KDNode:
    __slots__ = ("axis", "split", "left", "right", "entry_ids")

    def __init__(self) -> None:
        self.axis = -1
        self.split = 0.0
        self.left: "_KDNode | None" = None
        self.right: "_KDNode | None" = None
        self.entry_ids: np.ndarray | None = None


class KDTree:
    """Median-split bucket k-d tree over a point set."""

    def __init__(self, bucket_size: int = 128) -> None:
        if bucket_size < 1:
            raise SpatialIndexError("bucket_size must be at least 1")
        self.bucket_size = bucket_size
        self.root: _KDNode | None = None
        self.n_nodes = 0
        self.n_points = 0
        self.build_time = 0.0

    def build(self, positions: np.ndarray) -> float:
        start = time.perf_counter()
        pts = np.asarray(positions, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] == 0:
            raise SpatialIndexError("kd-tree build needs a non-empty (n, 3) position array")
        self.n_points = pts.shape[0]
        self.n_nodes = 0
        self.root = self._build_node(pts, np.arange(pts.shape[0], dtype=np.int64), 0)
        self.build_time = time.perf_counter() - start
        return self.build_time

    def _build_node(self, pts: np.ndarray, ids: np.ndarray, depth: int) -> _KDNode:
        node = _KDNode()
        self.n_nodes += 1
        if ids.size <= self.bucket_size:
            node.entry_ids = ids
            return node
        axis = depth % 3
        values = pts[ids, axis]
        median = float(np.median(values))
        left_mask = values <= median
        # Guard against all points collapsing onto one side (duplicate coords).
        if left_mask.all() or not left_mask.any():
            node.entry_ids = ids
            return node
        node.axis = axis
        node.split = median
        node.left = self._build_node(pts, ids[left_mask], depth + 1)
        node.right = self._build_node(pts, ids[~left_mask], depth + 1)
        return node

    def query(
        self, box: Box3D, positions: np.ndarray, counters: QueryCounters | None = None
    ) -> np.ndarray:
        if self.root is None:
            raise SpatialIndexError("kd-tree has not been built")
        pts = np.asarray(positions)
        found: list[np.ndarray] = []
        nodes_visited = 0
        scanned = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            nodes_visited += 1
            if node.entry_ids is not None:
                scanned += node.entry_ids.size
                inside = points_in_box(pts[node.entry_ids], box)
                if inside.any():
                    found.append(node.entry_ids[inside])
                continue
            if box.lo[node.axis] <= node.split and node.left is not None:
                stack.append(node.left)
            if box.hi[node.axis] >= node.split and node.right is not None:
                stack.append(node.right)
        if counters is not None:
            counters.index_nodes_visited += nodes_visited
            counters.vertices_scanned += scanned
        return np.sort(np.concatenate(found)) if found else np.empty(0, dtype=np.int64)

    def query_many(
        self,
        boxes: Sequence[Box3D],
        positions: np.ndarray,
        counters_list: Sequence[QueryCounters | None] | None = None,
    ) -> list[np.ndarray]:
        """Batch of range queries via one shared descent (see ``RTree.query_many``).

        Each node carries its still-active query set; the split-plane test is
        evaluated for all active queries at once and bucket positions are
        gathered once per leaf and broadcast-tested.  Results and per-query
        counters match sequential :meth:`query` exactly.
        """
        box_list = list(boxes)
        if not box_list:
            return []
        if self.root is None:
            raise SpatialIndexError("kd-tree has not been built")
        pts = np.asarray(positions)
        los, his = boxes_to_arrays(box_list)
        n_queries = len(box_list)
        nodes_visited = np.zeros(n_queries, dtype=np.int64)
        scanned = np.zeros(n_queries, dtype=np.int64)
        found: list[list[np.ndarray]] = [[] for _ in range(n_queries)]

        stack: list[tuple[_KDNode, np.ndarray]] = [(self.root, np.arange(n_queries))]
        while stack:
            node, active = stack.pop()
            nodes_visited[active] += 1
            if node.entry_ids is not None:
                # Sequential query() scans a popped bucket unconditionally.
                scanned[active] += node.entry_ids.size
                inside = points_in_boxes(pts[node.entry_ids], los[active], his[active])
                for row, query_index in enumerate(active):
                    mask = inside[row]
                    if mask.any():
                        found[query_index].append(node.entry_ids[mask])
                continue
            left_active = active[los[active, node.axis] <= node.split]
            if left_active.size and node.left is not None:
                stack.append((node.left, left_active))
            right_active = active[his[active, node.axis] >= node.split]
            if right_active.size and node.right is not None:
                stack.append((node.right, right_active))

        if counters_list is not None:
            for query_index, counters in enumerate(counters_list):
                if counters is not None:
                    counters.index_nodes_visited += int(nodes_visited[query_index])
                    counters.vertices_scanned += int(scanned[query_index])
        return [
            np.sort(np.concatenate(pieces)) if pieces else np.empty(0, dtype=np.int64)
            for pieces in found
        ]

    def memory_bytes(self) -> int:
        if self.root is None:
            return 0
        stored_entries = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.entry_ids is not None:
                stored_entries += int(node.entry_ids.size)
            else:
                stack.extend([node.left, node.right])
        return self.n_nodes * 64 + stored_entries * 8


class ThrowawayKDTreeExecutor(ExecutionStrategy):
    """k-d tree rebuilt from scratch after every simulation step."""

    name = "kd-tree"

    def __init__(self, bucket_size: int = 128) -> None:
        super().__init__()
        self.bucket_size = bucket_size
        self._tree: KDTree | None = None

    def _build(self) -> float:
        self._tree = KDTree(bucket_size=self.bucket_size)
        if self.mesh.n_vertices == 0:
            # Empty meshes carry no tree; queries short-circuit to empty
            # results (consistent degenerate handling across strategies).
            return 0.0
        return self._tree.build(self.mesh.vertices)

    @property
    def kdtree(self) -> KDTree:
        if self._tree is None:
            raise RuntimeError("kd-tree: prepare() has not been called")
        return self._tree

    def on_step(self, delta: DeformationDelta) -> float:
        """Full-rebuild fallback; skipped entirely when nothing moved.

        The skip is guarded by the built size: a restructuring that changed
        the vertex set forces a rebuild even on a zero-motion step.
        """
        if self.mesh.n_vertices == 0:
            return 0.0
        if delta.n_moved == 0 and self.kdtree.n_points == self.mesh.n_vertices:
            return 0.0
        elapsed = self.kdtree.build(self.mesh.vertices)
        self.maintenance_time += elapsed
        self.maintenance_entries += self.mesh.n_vertices
        return elapsed

    def on_restructure(self, delta: TopologyDelta) -> float:
        """Rebuild only when the restructuring changed the vertex set.

        Cell removal preserves ids and positions, so a sparse delta with no
        appended vertices skips the rebuild; splits (or a full delta) rebuild
        over the grown vertex array.
        """
        if self.mesh.n_vertices == 0:
            return 0.0
        if (
            not delta.is_full
            and delta.n_vertices_added == 0
            and self.kdtree.n_points == self.mesh.n_vertices
        ):
            return 0.0
        elapsed = self.kdtree.build(self.mesh.vertices)
        self.maintenance_time += elapsed
        self.maintenance_entries += self.mesh.n_vertices
        return elapsed

    def query(self, box: Box3D) -> QueryResult:
        check_query_box(box)
        counters = QueryCounters()
        if self.mesh.n_vertices == 0:
            return QueryResult(vertex_ids=np.empty(0, dtype=np.int64), counters=counters)
        start = time.perf_counter()
        ids = self.kdtree.query(box, self.mesh.vertices, counters)
        elapsed = time.perf_counter() - start
        return QueryResult(
            vertex_ids=ids, counters=counters, index_time=elapsed, total_time=elapsed
        )

    def query_many(self, boxes: Sequence[Box3D]) -> list[QueryResult]:
        """Batched queries through one shared kd-tree descent.

        Results and counters are identical to sequential :meth:`query` calls;
        the shared descent's wall-clock is apportioned evenly.
        """
        box_list = check_query_boxes(boxes)
        if self.mesh.n_vertices == 0:
            return [self.query(box) for box in box_list]
        return self._shared_index_batch(
            box_list,
            lambda batch, counters: self.kdtree.query_many(
                batch, self.mesh.vertices, counters
            ),
        )

    def memory_overhead_bytes(self) -> int:
        return self.kdtree.memory_bytes() if self._tree is not None else 0
