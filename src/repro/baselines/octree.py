"""Throwaway bucket Octree, rebuilt from scratch at every time step.

The paper's "lightweight throwaway index" baseline (Dittrich et al., SSTD
2009): when almost everything moves, rebuilding a cheap index each step can
beat maintaining a sophisticated one.  The Octree here uses a bucket strategy
— a node splits into its eight octants when it holds more than
``bucket_size`` vertices — exactly as described in Section V-A (the paper uses
a 10,000-vertex bucket; the default here is scaled down with the datasets).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.delta import DeformationDelta, TopologyDelta
from ..core.executor import ExecutionStrategy
from ..core.resilience import check_query_box, check_query_boxes
from ..core.result import QueryCounters, QueryResult
from ..errors import SpatialIndexError
from ..mesh import Box3D, boxes_to_arrays, points_in_box, points_in_boxes

__all__ = ["Octree", "ThrowawayOctreeExecutor"]


class _OctreeNode:
    __slots__ = ("lo", "hi", "children", "entry_ids")

    def __init__(self, lo: np.ndarray, hi: np.ndarray) -> None:
        self.lo = lo
        self.hi = hi
        self.children: list["_OctreeNode"] = []
        self.entry_ids: np.ndarray | None = None


class Octree:
    """Bucket octree over a point set."""

    def __init__(self, bucket_size: int = 256, max_depth: int = 16) -> None:
        if bucket_size < 1:
            raise SpatialIndexError("bucket_size must be at least 1")
        self.bucket_size = bucket_size
        self.max_depth = max_depth
        self.root: _OctreeNode | None = None
        self.n_nodes = 0
        self.n_points = 0
        self.build_time = 0.0

    def build(self, positions: np.ndarray) -> float:
        start = time.perf_counter()
        pts = np.asarray(positions, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] == 0:
            raise SpatialIndexError("octree build needs a non-empty (n, 3) position array")
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        self.n_points = pts.shape[0]
        self.n_nodes = 0
        self.root = self._build_node(pts, np.arange(pts.shape[0], dtype=np.int64), lo, hi, 0)
        self.build_time = time.perf_counter() - start
        return self.build_time

    def _build_node(
        self, pts: np.ndarray, ids: np.ndarray, lo: np.ndarray, hi: np.ndarray, depth: int
    ) -> _OctreeNode:
        node = _OctreeNode(lo, hi)
        self.n_nodes += 1
        if ids.size <= self.bucket_size or depth >= self.max_depth:
            node.entry_ids = ids
            return node
        center = (lo + hi) / 2.0
        coords = pts[ids]
        octant = (
            (coords[:, 0] > center[0]).astype(np.int64)
            + 2 * (coords[:, 1] > center[1]).astype(np.int64)
            + 4 * (coords[:, 2] > center[2]).astype(np.int64)
        )
        for code in range(8):
            members = ids[octant == code]
            if members.size == 0:
                continue
            child_lo = lo.copy()
            child_hi = hi.copy()
            for axis in range(3):
                if (code >> axis) & 1:
                    child_lo[axis] = center[axis]
                else:
                    child_hi[axis] = center[axis]
            node.children.append(self._build_node(pts, members, child_lo, child_hi, depth + 1))
        return node

    def query(
        self, box: Box3D, positions: np.ndarray, counters: QueryCounters | None = None
    ) -> np.ndarray:
        if self.root is None:
            raise SpatialIndexError("octree has not been built")
        pts = np.asarray(positions)
        stack = [self.root]
        found: list[np.ndarray] = []
        nodes_visited = 0
        scanned = 0
        while stack:
            node = stack.pop()
            nodes_visited += 1
            if not (np.all(node.lo <= box.hi) and np.all(box.lo <= node.hi)):
                continue
            if node.entry_ids is not None:
                scanned += node.entry_ids.size
                inside = points_in_box(pts[node.entry_ids], box)
                if inside.any():
                    found.append(node.entry_ids[inside])
            else:
                stack.extend(node.children)
        if counters is not None:
            counters.index_nodes_visited += nodes_visited
            counters.vertices_scanned += scanned
        return np.sort(np.concatenate(found)) if found else np.empty(0, dtype=np.int64)

    def query_many(
        self,
        boxes: Sequence[Box3D],
        positions: np.ndarray,
        counters_list: Sequence[QueryCounters | None] | None = None,
    ) -> list[np.ndarray]:
        """Batch of range queries via one shared traversal (see ``RTree.query_many``).

        Nodes carry the set of still-active queries, node extents are tested
        against all active boxes in one pass, and each bucket's positions are
        gathered once and broadcast-tested against every intersecting box.
        Results and per-query counters match sequential :meth:`query` exactly.
        """
        box_list = list(boxes)
        if not box_list:
            return []
        if self.root is None:
            raise SpatialIndexError("octree has not been built")
        pts = np.asarray(positions)
        los, his = boxes_to_arrays(box_list)
        n_queries = len(box_list)
        nodes_visited = np.zeros(n_queries, dtype=np.int64)
        scanned = np.zeros(n_queries, dtype=np.int64)
        found: list[list[np.ndarray]] = [[] for _ in range(n_queries)]

        stack: list[tuple[_OctreeNode, np.ndarray]] = [(self.root, np.arange(n_queries))]
        while stack:
            node, active = stack.pop()
            nodes_visited[active] += 1
            hit = np.all((node.lo <= his[active]) & (los[active] <= node.hi), axis=1)
            live = active[hit]
            if live.size == 0:
                continue
            if node.entry_ids is not None:
                scanned[live] += node.entry_ids.size
                inside = points_in_boxes(pts[node.entry_ids], los[live], his[live])
                for row, query_index in enumerate(live):
                    mask = inside[row]
                    if mask.any():
                        found[query_index].append(node.entry_ids[mask])
            else:
                for child in node.children:
                    stack.append((child, live))

        if counters_list is not None:
            for query_index, counters in enumerate(counters_list):
                if counters is not None:
                    counters.index_nodes_visited += int(nodes_visited[query_index])
                    counters.vertices_scanned += int(scanned[query_index])
        return [
            np.sort(np.concatenate(pieces)) if pieces else np.empty(0, dtype=np.int64)
            for pieces in found
        ]

    def memory_bytes(self) -> int:
        if self.root is None:
            return 0
        per_node = 2 * 3 * 8 + 64
        stored_entries = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.entry_ids is not None:
                stored_entries += int(node.entry_ids.size)
            stack.extend(node.children)
        return self.n_nodes * per_node + stored_entries * 8


class ThrowawayOctreeExecutor(ExecutionStrategy):
    """Octree rebuilt from scratch after every simulation step."""

    name = "octree"

    def __init__(self, bucket_size: int = 256) -> None:
        super().__init__()
        self.bucket_size = bucket_size
        self._octree: Octree | None = None

    def _build(self) -> float:
        self._octree = Octree(bucket_size=self.bucket_size)
        if self.mesh.n_vertices == 0:
            # Empty meshes carry no tree; queries short-circuit to empty
            # results (consistent degenerate handling across strategies).
            return 0.0
        return self._octree.build(self.mesh.vertices)

    @property
    def octree(self) -> Octree:
        if self._octree is None:
            raise RuntimeError("octree: prepare() has not been called")
        return self._octree

    def on_step(self, delta: DeformationDelta) -> float:
        """Throw the old tree away and rebuild it on the new positions.

        A throwaway index has no incremental path — its full-rebuild fallback
        *is* the strategy — but a delta reporting zero moved vertices skips
        the rebuild entirely (the old tree is still exact).  The skip is
        guarded by the built size: a restructuring that changed the vertex
        set forces a rebuild even on a zero-motion step.
        """
        if self.mesh.n_vertices == 0:
            return 0.0
        if delta.n_moved == 0 and self.octree.n_points == self.mesh.n_vertices:
            return 0.0
        elapsed = self.octree.build(self.mesh.vertices)
        self.maintenance_time += elapsed
        self.maintenance_entries += self.mesh.n_vertices
        return elapsed

    def on_restructure(self, delta: TopologyDelta) -> float:
        """Rebuild only when the restructuring changed the vertex set.

        Cell removal preserves ids and positions, so a sparse delta with no
        appended vertices skips the rebuild; splits (or a full delta) rebuild
        over the grown vertex array.
        """
        if self.mesh.n_vertices == 0:
            return 0.0
        if (
            not delta.is_full
            and delta.n_vertices_added == 0
            and self.octree.n_points == self.mesh.n_vertices
        ):
            return 0.0
        elapsed = self.octree.build(self.mesh.vertices)
        self.maintenance_time += elapsed
        self.maintenance_entries += self.mesh.n_vertices
        return elapsed

    def query(self, box: Box3D) -> QueryResult:
        check_query_box(box)
        counters = QueryCounters()
        if self.mesh.n_vertices == 0:
            return QueryResult(vertex_ids=np.empty(0, dtype=np.int64), counters=counters)
        start = time.perf_counter()
        ids = self.octree.query(box, self.mesh.vertices, counters)
        elapsed = time.perf_counter() - start
        return QueryResult(
            vertex_ids=ids, counters=counters, index_time=elapsed, total_time=elapsed
        )

    def query_many(self, boxes: Sequence[Box3D]) -> list[QueryResult]:
        """Batched queries through one shared octree traversal.

        Results and counters are identical to sequential :meth:`query` calls;
        the shared traversal's wall-clock is apportioned evenly.
        """
        box_list = check_query_boxes(boxes)
        if self.mesh.n_vertices == 0:
            return [self.query(box) for box in box_list]
        return self._shared_index_batch(
            box_list,
            lambda batch, counters: self.octree.query_many(
                batch, self.mesh.vertices, counters
            ),
        )

    def memory_overhead_bytes(self) -> int:
        return self.octree.memory_bytes() if self._octree is not None else 0
