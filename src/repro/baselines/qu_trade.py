"""The QU-Trade baseline (workload-aware grace windows, Tzoumas et al. 2009).

Instead of indexing the exact object positions, QU-Trade indexes a *grace
window* around them: an object only triggers index maintenance when it moves
outside the window, so a larger window means fewer updates at the price of
queries having to look at more irrelevant objects (the traversal must expand
every MBR by the window, and the leaves it reaches contain more non-matching
entries).

Following Section V-A, the executor exposes the window size as a tunable and
provides :meth:`QUTradeExecutor.tune_window_for`, which picks a window large
enough that fewer than a target fraction (1% in the paper) of the per-step
position updates trigger R-tree maintenance.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.delta import DeformationDelta, TopologyDelta
from ..core.executor import ExecutionStrategy
from ..core.resilience import check_query_box, check_query_boxes
from ..core.result import QueryCounters, QueryResult
from ..errors import SpatialIndexError
from ..mesh import Box3D
from .rtree import RTree

__all__ = ["QUTradeExecutor"]


class QUTradeExecutor(ExecutionStrategy):
    """R-tree with grace windows around leaf MBRs.

    Parameters
    ----------
    window_fraction:
        Grace-window size as a fraction of the mesh bounding-box diagonal.
    fanout:
        R-tree fanout (the paper uses 110).
    """

    name = "qu-trade"

    def __init__(self, window_fraction: float = 0.05, fanout: int = 110) -> None:
        super().__init__()
        if window_fraction < 0:
            raise SpatialIndexError("window_fraction must be non-negative")
        self.window_fraction = window_fraction
        self.fanout = fanout
        self._tree: RTree | None = None
        self._window = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _build(self) -> float:
        self._tree = RTree(fanout=self.fanout)
        if self.mesh.n_vertices == 0:
            # Empty meshes carry no tree; queries short-circuit to empty
            # results (consistent degenerate handling across strategies).
            self._window = 0.0
            return 0.0
        seconds = self._tree.bulk_load(self.mesh.vertices)
        diagonal = float(np.linalg.norm(self.mesh.bounding_box().extents))
        self._window = self.window_fraction * diagonal
        return seconds

    @property
    def tree(self) -> RTree:
        if self._tree is None:
            raise RuntimeError("qu-trade: prepare() has not been called")
        return self._tree

    @property
    def window(self) -> float:
        """Absolute grace-window size in model units."""
        return self._window

    def tune_window_for(self, per_step_displacement: float, target_update_fraction: float = 0.01) -> None:
        """Grow the grace window until the expected escape rate drops below target.

        ``per_step_displacement`` is the typical distance a vertex moves per
        simulation step; assuming an unpredictable direction, a window of
        ``displacement / target_fraction`` makes escapes (which need roughly
        ``window / displacement`` consecutive steps in the same direction)
        rare.  This is intentionally a simple heuristic — the point of the
        baseline is its behaviour class, not a faithful reimplementation of
        the original tuning advisor.
        """
        if per_step_displacement < 0 or not 0 < target_update_fraction <= 1:
            raise SpatialIndexError("invalid tuning parameters")
        self._window = max(self._window, per_step_displacement / target_update_fraction)

    def on_step(self, delta: DeformationDelta) -> float:
        """Reinsert only the vertices that escaped their leaf's grace window.

        Every entry ends a step inside its leaf's window (escapees are
        reinserted exactly, and tightened MBRs still cover their remaining
        entries), so only *moved* vertices can escape: a sparse delta narrows
        the window check to the moved set, a full delta falls back to the
        all-leaves scan.  Both paths find the same escapees and relocate them
        in ascending-id order, leaving bit-identical tree state.
        """
        if self.mesh.n_vertices == 0:
            return 0.0
        tree = self.tree
        positions = self.mesh.vertices
        window = self._window
        start = time.perf_counter()
        touched = 0
        if len(tree._leaf_of) != positions.shape[0]:
            # Restructuring changed the vertex set: rebuild outright.
            tree.bulk_load(positions)
            touched += positions.shape[0]
            escapees = np.empty(0, dtype=np.int64)
        elif delta.n_moved == 0:
            escapees = np.empty(0, dtype=np.int64)
        elif not delta.is_full:
            moved_ids = delta.moved_ids
            lo = np.array([tree._leaf_of[int(i)].lo for i in moved_ids])
            hi = np.array([tree._leaf_of[int(i)].hi for i in moved_ids])
            pts = positions[moved_ids]
            inside = np.all((pts >= lo - window) & (pts <= hi + window), axis=1)
            escapees = moved_ids[~inside]
        else:
            leaves = {id(leaf): leaf for leaf in tree._leaf_of.values()}
            pieces: list[np.ndarray] = []
            for leaf in leaves.values():
                if not leaf.entries:
                    continue
                ids = np.asarray(leaf.entries, dtype=np.int64)
                pts = positions[ids]
                inside = np.all(
                    (pts >= leaf.lo - window) & (pts <= leaf.hi + window), axis=1
                )
                if not inside.all():
                    pieces.append(ids[~inside])
            escapees = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
        if escapees.size:
            touched += tree.reinsert(escapees, positions)
        elapsed = time.perf_counter() - start
        self.maintenance_time += elapsed
        self.maintenance_entries += touched
        return elapsed

    def on_restructure(self, delta: TopologyDelta) -> float:
        """Topology maintenance keyed off the restructuring delta.

        As with the LUR-Tree, pre-existing entries are untouched by
        restructuring: a removal-only delta costs nothing and appended
        vertices are inserted in ascending id order (grace windows apply to
        them from the next step on).  A full delta bulk-loads from scratch;
        the incremental inserts answer queries identically but grow a
        different tree shape than an STR re-pack, so the restructuring-parity
        suite holds this strategy to result parity across split events.
        """
        if self.mesh.n_vertices == 0:
            return 0.0
        tree = self.tree
        positions = self.mesh.vertices
        start = time.perf_counter()
        touched = 0
        n = positions.shape[0]
        if (
            not delta.is_full
            and len(tree._leaf_of)
            and len(tree._leaf_of) + delta.n_vertices_added == n
        ):
            # The mesh preserves the position array object across
            # equal-count restructurings, but re-bind defensively either way
            # so every later MBR recompute reads the live array.
            tree.rebind_positions(positions)
            if delta.n_vertices_added:
                for vertex_id in delta.added_vertex_ids():
                    tree.insert(int(vertex_id), positions[int(vertex_id)])
                touched = delta.n_vertices_added
        else:
            tree.bulk_load(positions)
            touched = n
        elapsed = time.perf_counter() - start
        self.maintenance_time += elapsed
        self.maintenance_entries += touched
        return elapsed

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, box: Box3D) -> QueryResult:
        check_query_box(box)
        counters = QueryCounters()
        if self.mesh.n_vertices == 0:
            return QueryResult(vertex_ids=np.empty(0, dtype=np.int64), counters=counters)
        start = time.perf_counter()
        ids = self.tree.query(
            box, self.mesh.vertices, counters, mbr_expansion=self._window
        )
        elapsed = time.perf_counter() - start
        return QueryResult(
            vertex_ids=ids, counters=counters, index_time=elapsed, total_time=elapsed
        )

    def query_many(self, boxes: Sequence[Box3D]) -> list[QueryResult]:
        """Batched queries through one shared grace-window R-tree traversal.

        Every node MBR is expanded by the grace window exactly as in
        sequential :meth:`query`; results and counters are identical, with
        the shared traversal's wall-clock apportioned evenly.
        """
        box_list = check_query_boxes(boxes)
        if self.mesh.n_vertices == 0:
            return [self.query(box) for box in box_list]
        return self._shared_index_batch(
            box_list,
            lambda batch, counters: self.tree.query_many(
                batch, self.mesh.vertices, counters, mbr_expansion=self._window
            ),
        )

    def memory_overhead_bytes(self) -> int:
        return self.tree.memory_bytes() if self._tree is not None else 0
