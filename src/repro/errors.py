"""Exception hierarchy for the OCTOPUS reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  More specific subclasses communicate which
subsystem rejected the input.

The resilience layer (:mod:`repro.core.resilience`,
:mod:`repro.simulation.faults`) adds *structured* errors: every failure a
production service has to route — a blown query budget, a delta that failed
validation, an execution that exhausted its fallback ladder — carries
machine-readable context (strategy name, simulation tick, query id, the
resource and limits involved) as attributes, not just prose, so supervisors
can classify without parsing messages.
"""

from __future__ import annotations

__all__ = [
    "ConcurrencyError",
    "DegradedExecutionError",
    "DeltaValidationError",
    "ExperimentError",
    "FaultInjectionError",
    "GeometryError",
    "MeshConnectivityError",
    "MeshError",
    "QueryBudgetExceeded",
    "QueryError",
    "ReproError",
    "SimulationError",
    "SpatialIndexError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class MeshError(ReproError):
    """Raised when a mesh is structurally invalid or an operation on it fails."""


class MeshConnectivityError(MeshError):
    """Raised when cell/vertex connectivity references are inconsistent."""


class GeometryError(ReproError):
    """Raised for invalid geometric inputs (degenerate boxes, bad shapes)."""


class SpatialIndexError(ReproError):
    """Raised when a spatial index is misused (e.g. queried before building)."""


class QueryError(ReproError):
    """Raised for malformed range queries."""


class ConcurrencyError(ReproError):
    """A thread-affine resource was used from two threads at once.

    Raised by the query kernels when a :class:`~repro.core.scratch.CrawlScratch`
    epoch moves mid-query — the signature of a second thread acquiring the
    same arena while a crawl or walk is in flight.  The single-owner contract
    used to be documentation only; this error makes the violation loud instead
    of silently corrupting visited stamps.  Executors avoid it by keeping one
    scratch per thread (see :class:`~repro.core.scratch.ThreadLocalScratch`).
    """


class _StructuredError(ReproError):
    """Mixin base: an error with machine-readable execution context.

    ``strategy`` / ``step`` / ``query_index`` locate the failure in the
    simulation timeline (any of them may be ``None`` when unknown at the
    raise site); :meth:`context` returns the populated fields as a dict for
    ledgers and logs.
    """

    def __init__(
        self,
        message: str,
        *,
        strategy: str | None = None,
        step: int | None = None,
        query_index: int | None = None,
    ) -> None:
        super().__init__(message)
        self.strategy = strategy
        self.step = step
        self.query_index = query_index

    def context(self) -> dict:
        """The populated structured fields (omits ``None`` entries)."""
        fields = {
            "strategy": self.strategy,
            "step": self.step,
            "query_index": self.query_index,
        }
        return {key: value for key, value in fields.items() if value is not None}


class QueryBudgetExceeded(_StructuredError, QueryError):
    """A query exhausted its :class:`~repro.core.resilience.QueryBudget`.

    Raised only under the budget's ``"raise"`` policy (the ``"partial"``
    policy returns a :class:`~repro.core.result.QueryResult` flagged
    ``complete=False`` instead).  ``resource`` names the exhausted limit
    (``"visited_vertices"``, ``"distance_computations"`` or ``"wall_clock"``),
    ``spent``/``limit`` quantify it.
    """

    def __init__(
        self,
        resource: str,
        spent: float,
        limit: float,
        *,
        strategy: str | None = None,
        step: int | None = None,
        query_index: int | None = None,
    ) -> None:
        super().__init__(
            f"query budget exhausted: {resource} spent {spent:g} of {limit:g}",
            strategy=strategy,
            step=step,
            query_index=query_index,
        )
        self.resource = resource
        self.spent = spent
        self.limit = limit

    def context(self) -> dict:
        base = super().context()
        base.update(resource=self.resource, spent=self.spent, limit=self.limit)
        return base


class DeltaValidationError(_StructuredError):
    """A :class:`~repro.core.delta.DeformationDelta` or
    :class:`~repro.core.delta.TopologyDelta` failed an invariant audit.

    Raised by the validators in :mod:`repro.core.resilience`; ``reason`` is a
    short machine-friendly tag (e.g. ``"unsorted-ids"``, ``"nan-positions"``,
    ``"dirty-box-mismatch"``) alongside the human-readable message.  A
    :class:`~repro.core.resilience.ResilientStrategy` in paranoid mode
    catches this, quarantines the delta and falls back to whole-mesh
    maintenance instead of letting the bad delta corrupt index state.
    """

    def __init__(
        self,
        reason: str,
        message: str,
        *,
        strategy: str | None = None,
        step: int | None = None,
    ) -> None:
        super().__init__(message, strategy=strategy, step=step)
        self.reason = reason

    def context(self) -> dict:
        base = super().context()
        base["reason"] = self.reason
        return base


class DegradedExecutionError(_StructuredError):
    """Every rung of the degradation ladder failed for an operation.

    Raised by :class:`~repro.core.resilience.ResilientStrategy` when the
    primary path, the documented fallback *and* the last-resort rebuild or
    scan all raised — the supervisor has nothing safe left to try.  The
    original failure is attached as ``__cause__``.
    """


class SimulationError(ReproError):
    """Raised when a simulation is configured or driven incorrectly."""


class FaultInjectionError(ReproError):
    """An intentionally injected fault (deterministic chaos testing).

    Raised by the :mod:`repro.simulation.faults` harness at scheduled points
    (e.g. mid-batch strategy exceptions).  Never raised on production paths;
    seeing one escape a resilient run means the degradation ladder failed to
    contain a scheduled fault.
    """


class WorkloadError(ReproError):
    """Raised when a query workload cannot be generated as requested."""


class ExperimentError(ReproError):
    """Raised when an experiment driver receives inconsistent parameters."""
