"""Exception hierarchy for the OCTOPUS reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  More specific subclasses communicate which
subsystem rejected the input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class MeshError(ReproError):
    """Raised when a mesh is structurally invalid or an operation on it fails."""


class MeshConnectivityError(MeshError):
    """Raised when cell/vertex connectivity references are inconsistent."""


class GeometryError(ReproError):
    """Raised for invalid geometric inputs (degenerate boxes, bad shapes)."""


class IndexError_(ReproError):
    """Raised when a spatial index is misused (e.g. queried before building)."""


class QueryError(ReproError):
    """Raised for malformed range queries."""


class SimulationError(ReproError):
    """Raised when a simulation is configured or driven incorrectly."""


class WorkloadError(ReproError):
    """Raised when a query workload cannot be generated as requested."""


class ExperimentError(ReproError):
    """Raised when an experiment driver receives inconsistent parameters."""
