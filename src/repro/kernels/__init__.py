"""Pluggable compute kernels for the three hot loops of the query engine.

The fused query paths spend almost all of their time in three loops: the
fused-crawl frontier expansion (stamp newly reached (vertex, query) pairs,
count them, test positions against the owning boxes — see
:func:`repro.core.crawler._crawl_fused`), the fused directed walk's
(query, vertex) box-distance kernel
(:func:`repro.core.directed_walk.directed_walk_many`), and the batched
box-membership test (:func:`repro.mesh.points_in_boxes`, which also powers
the surface probe).  This package isolates those loops behind a small
backend interface so they can be swapped for compiled implementations
without touching the engine logic:

* :class:`KernelBackend` — the NumPy reference implementation and the base
  class of every backend.  It is the default and is always available.
* ``"numba"`` — loop-level kernels compiled with ``numba.njit`` when numba
  is importable (see :mod:`repro.kernels.numba_backend`).  When numba is
  absent the registry **falls back cleanly to NumPy**: the returned backend
  records ``requested="numba"`` / ``compiled=False`` and behaves exactly
  like the default, so code written against the numba spec runs anywhere.

Backends are selected by a spec string ``"<name>[:<dtype>]"``:

* ``"numpy"`` / ``"numba"`` — backend name (float64 positions);
* ``"numpy:float32"`` / ``"numba:float32"`` — the optional float32 position
  mode: candidate positions and box corners are cast to float32 inside the
  kernels, distances are computed in float32 and upcast to float64 on
  return.

Resolution order of :func:`get_backend`: an explicit spec (or an already
constructed backend) wins, then the ``REPRO_KERNEL_BACKEND`` environment
variable, then the ``"numpy"`` default.  Executors resolve their backend
once at construction (``build_strategy(kernels=...)`` threads a spec to
OCTOPUS and OCTOPUS-CON; the baselines always run the NumPy path).

Exactness contract
------------------
For float64 specs every backend is **bit-identical** to the NumPy reference:
same result ids, same counters, same frontier order.  The float32 mode is
*not* bit-identical — positions within one float32 ulp of a box face can
flip membership, and walk distances lose precision — so it trades a
documented tolerance for bandwidth; see the "Raw-speed tier" section of
``docs/performance.md`` for the semantics and when the trade is safe.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import QueryError
from ..mesh.geometry import box_batch_chunk, points_in_boxes as _points_in_boxes_f64

__all__ = [
    "KernelBackend",
    "available_backends",
    "get_backend",
    "numba_available",
]

#: accepted dtype suffixes of a backend spec string
_DTYPE_SPECS = {
    "": np.float64,
    "float64": np.float64,
    "f64": np.float64,
    "float32": np.float32,
    "f32": np.float32,
}


class KernelBackend:
    """The NumPy reference kernels (and the base class of every backend).

    A backend owns the three hot loops of the fused query paths.  Float64
    instances of this class *are* the historical NumPy code paths —
    executors constructed without a spec lose nothing.  Subclasses override
    the three kernel methods; everything else (dtype plumbing, spec
    formatting, registry behaviour) is shared.

    Attributes
    ----------
    name:
        The backend's implementation name (``"numpy"`` here).
    requested:
        The name that was asked for.  Differs from ``name`` only when a
        ``"numba"`` request fell back to NumPy because numba is absent.
    compiled:
        Whether the kernel bodies are machine-compiled (always ``False``
        for the NumPy reference).
    dtype:
        ``np.float64`` or ``np.float32`` — the precision positions and box
        corners are cast to inside the kernels.
    """

    name = "numpy"
    compiled = False

    def __init__(self, dtype=np.float64, requested: str | None = None) -> None:
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise QueryError(
                f"kernel backends support float64 and float32 positions, got {dtype}"
            )
        self.dtype = dtype
        self.requested = requested if requested is not None else self.name

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def spec(self) -> str:
        """The canonical spec string this backend answers to."""
        suffix = ":float32" if self.dtype == np.dtype(np.float32) else ""
        return f"{self.name}{suffix}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} spec={self.spec!r} requested={self.requested!r} "
            f"compiled={self.compiled}>"
        )

    # ------------------------------------------------------------------
    # dtype plumbing
    # ------------------------------------------------------------------
    def _cast(self, array: np.ndarray) -> np.ndarray:
        """``array`` in the backend dtype (no copy when already float64)."""
        return np.ascontiguousarray(array, dtype=self.dtype)

    # ------------------------------------------------------------------
    # kernel 1: batched box membership
    # ------------------------------------------------------------------
    def points_in_boxes(self, points: np.ndarray, los: np.ndarray, his: np.ndarray) -> np.ndarray:
        """Membership of ``(n, 3)`` points in each of ``(m, 3)`` lo/hi boxes.

        Returns an ``(m, n)`` boolean mask, exactly like
        :func:`repro.mesh.points_in_boxes`; the float32 mode compares
        float32-cast coordinates against float32-cast corners.
        """
        if self.dtype == np.dtype(np.float64):
            return _points_in_boxes_f64(points, los, his)
        pts = self._cast(points)
        los32, his32 = self._cast(los), self._cast(his)
        xs, ys, zs = pts[:, 0], pts[:, 1], pts[:, 2]
        inside = (xs >= los32[:, 0, None]) & (xs <= his32[:, 0, None])
        inside &= (ys >= los32[:, 1, None]) & (ys <= his32[:, 1, None])
        inside &= (zs >= los32[:, 2, None]) & (zs <= his32[:, 2, None])
        return inside

    # ------------------------------------------------------------------
    # kernel 2: fused-walk pair distances
    # ------------------------------------------------------------------
    def pair_box_distances(
        self,
        positions: np.ndarray,
        pair_vertices: np.ndarray,
        pair_owners: np.ndarray,
        los: np.ndarray,
        his: np.ndarray,
    ) -> tuple[np.ndarray, int]:
        """Box distances of (query, vertex) pairs, gathering each vertex once.

        The fused walk's distance kernel: for every pair, the Euclidean
        distance from ``positions[vertex]`` to the owner query's box, with
        the exact arithmetic of :func:`repro.mesh.points_box_distance`.
        Distances are always returned as float64 (float32 backends compute
        in float32 and upcast); the distinct-vertex count is returned for
        the unique-work accounting.
        """
        unique_vertices, inverse = np.unique(pair_vertices, return_inverse=True)
        points = positions[unique_vertices][inverse]
        if self.dtype == np.dtype(np.float64):
            delta = np.maximum(los[pair_owners] - points, 0.0)
            delta += np.maximum(points - his[pair_owners], 0.0)
            return np.linalg.norm(delta, axis=1), int(unique_vertices.size)
        points = points.astype(np.float32, copy=False)
        lo32 = los[pair_owners].astype(np.float32)
        hi32 = his[pair_owners].astype(np.float32)
        delta = np.maximum(lo32 - points, 0.0) + np.maximum(points - hi32, 0.0)
        distances = np.linalg.norm(delta, axis=1)
        return distances.astype(np.float64, copy=False), int(unique_vertices.size)

    # ------------------------------------------------------------------
    # kernel 3: fused-crawl stamp-and-test
    # ------------------------------------------------------------------
    def crawl_stamp_and_test(
        self,
        candidates: np.ndarray,
        reach_bits: np.ndarray,
        stamps: np.ndarray,
        word_columns: np.ndarray,
        epoch: int,
        positions: np.ndarray,
        los: np.ndarray,
        his: np.ndarray,
        bits,
        visited_per_query: np.ndarray,
        attribution_chunk: int,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """One fused-crawl level: stamp fresh (vertex, query) pairs, test boxes.

        Parameters mirror the state of one
        :func:`repro.core.crawler._crawl_fused` level: sorted candidate ids
        with their reachability bitset rows, the epoch-stamped arena
        (``stamps`` / ``word_columns`` / ``epoch``), the mesh positions, the
        stacked box corners, the batch's ownership-bit helper (``bits``, a
        :class:`repro.core.crawler._OwnershipBits` providing
        ``owned_matrix`` / ``pack`` / ``n_queries``), the per-query visit
        counters (updated in place), and the candidate-axis chunk bounding
        the attribution transients.

        Returns ``(frontier, frontier_bits, n_fresh)``: the next union
        frontier (candidates inside at least one owning box, in candidate
        order), its ownership rows, and how many candidates were freshly
        stamped (the level's unique visit count).
        """
        zero = np.uint64(0)
        previous = np.where(
            (stamps[candidates] == epoch)[:, None], word_columns[candidates], zero
        )
        new_bits = reach_bits & ~previous
        fresh = (new_bits != zero).any(axis=1)
        candidates = candidates[fresh]
        if candidates.size == 0:
            return candidates, new_bits[fresh], 0
        new_bits = new_bits[fresh]
        word_columns[candidates] = previous[fresh] | new_bits
        stamps[candidates] = epoch
        n_fresh = int(candidates.size)
        frontier_pieces: list[np.ndarray] = []
        bit_pieces: list[np.ndarray] = []
        for lo_index in range(0, candidates.size, attribution_chunk):
            hi_index = lo_index + attribution_chunk
            chunk_candidates = candidates[lo_index:hi_index]
            owned = bits.owned_matrix(new_bits[lo_index:hi_index])
            visited_per_query += owned.sum(axis=0)
            inside = self._inside_per_query(positions, chunk_candidates, los, his)
            in_frontier = owned & inside.T
            chunk_bits = bits.pack(in_frontier)
            keep = (chunk_bits != zero).any(axis=1)
            if keep.any():
                frontier_pieces.append(chunk_candidates[keep])
                bit_pieces.append(chunk_bits[keep])
        if frontier_pieces:
            frontier = np.concatenate(frontier_pieces)
            frontier_bits = np.concatenate(bit_pieces)
        else:
            frontier = np.empty(0, dtype=np.int64)
            frontier_bits = np.empty((0, reach_bits.shape[1]), dtype=np.uint64)
        return frontier, frontier_bits, n_fresh

    def _inside_per_query(
        self, positions: np.ndarray, candidates: np.ndarray, los: np.ndarray, his: np.ndarray
    ) -> np.ndarray:
        """``(n_queries, n_candidates)`` membership of candidate positions."""
        points = positions[candidates]
        out = np.empty((los.shape[0], candidates.size), dtype=bool)
        chunk = box_batch_chunk(candidates.size)
        for lo_index in range(0, los.shape[0], chunk):
            hi_index = lo_index + chunk
            out[lo_index:hi_index] = self.points_in_boxes(
                points, los[lo_index:hi_index], his[lo_index:hi_index]
            )
        return out


#: constructed backends, keyed by (name, dtype, compiled) so repeated
#: get_backend() calls share instances (and their JIT caches)
_BACKENDS: dict[tuple[str, str], KernelBackend] = {}


def numba_available() -> bool:
    """Whether the optional numba dependency is importable."""
    from .numba_backend import NUMBA_AVAILABLE

    return NUMBA_AVAILABLE


def available_backends() -> tuple[str, ...]:
    """Names of the backends that would run compiled in this environment."""
    return ("numpy", "numba") if numba_available() else ("numpy",)


def get_backend(spec: "KernelBackend | str | None" = None) -> KernelBackend:
    """Resolve a backend spec to a (cached) :class:`KernelBackend` instance.

    ``spec`` may be an already constructed backend (returned unchanged), a
    spec string (``"numpy"``, ``"numba"``, ``"numpy:float32"``,
    ``"numba:float32"``), or ``None`` — which consults the
    ``REPRO_KERNEL_BACKEND`` environment variable and falls back to
    ``"numpy"``.  Requesting ``"numba"`` without numba installed is **not**
    an error: the NumPy backend is returned with ``requested="numba"`` and
    ``compiled=False``, so deployments can pin the spec unconditionally.
    """
    if isinstance(spec, KernelBackend):
        return spec
    if spec is None:
        spec = os.environ.get("REPRO_KERNEL_BACKEND", "").strip() or "numpy"
    base, _, dtype_suffix = str(spec).partition(":")
    base = base.strip().lower() or "numpy"
    dtype_suffix = dtype_suffix.strip().lower()
    try:
        dtype = _DTYPE_SPECS[dtype_suffix]
    except KeyError:
        raise QueryError(
            f"unknown kernel dtype suffix {dtype_suffix!r} in spec {spec!r}; "
            f"expected one of {sorted(s for s in _DTYPE_SPECS if s)}"
        ) from None
    if base not in ("numpy", "numba"):
        raise QueryError(
            f"unknown kernel backend {base!r} in spec {spec!r}; expected 'numpy' or 'numba'"
        )
    key = (base, np.dtype(dtype).name)
    backend = _BACKENDS.get(key)
    if backend is None:
        if base == "numba":
            from .numba_backend import NUMBA_AVAILABLE, NumbaKernels

            if NUMBA_AVAILABLE:
                backend = NumbaKernels(dtype=dtype)
            else:
                # Clean fallback: numba requested but absent — run NumPy and
                # say so, instead of failing environments without the JIT.
                backend = KernelBackend(dtype=dtype, requested="numba")
        else:
            backend = KernelBackend(dtype=dtype)
        _BACKENDS[key] = backend
    return backend
