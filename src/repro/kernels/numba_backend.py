"""Loop-level kernels compiled with ``numba.njit`` when numba is available.

The kernel bodies below are written as plain-Python loops over NumPy arrays
and wrapped with ``numba.njit`` at import time when numba is importable.
When it is not, the same bodies remain callable as interpreted Python —
orders of magnitude slower, but semantically identical — which is how the
parity suites exercise this exact code path in environments without the
JIT (:class:`NumbaKernels` with ``force_interpreted=True``).  Production
fallback never runs the interpreted loops: :func:`repro.kernels.get_backend`
returns the vectorised NumPy backend when numba is absent.

Exactness: for float64 inputs every body reproduces the NumPy reference
bit-for-bit.  The distance kernel accumulates the three axis terms in the
same order as ``np.linalg.norm(delta, axis=1)`` (x², then +y², then +z²)
and ``max(lo - p, p - hi, 0)`` equals ``max(lo - p, 0) + max(p - hi, 0)``
exactly because at most one operand is positive for a valid box.  The
float32 mode runs the identical loops on float32-cast inputs.
"""

from __future__ import annotations

import numpy as np

from ..errors import QueryError

__all__ = ["NUMBA_AVAILABLE", "NumbaKernels"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # numba is optional; the bodies stay plain Python
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):
        """Identity decorator standing in for ``numba.njit``."""
        if args and callable(args[0]):
            return args[0]

        def wrap(function):
            return function

        return wrap


def _points_in_boxes_body(xs, ys, zs, los, his, out):
    """Membership of n points in m boxes into an ``(m, n)`` boolean ``out``."""
    for j in range(los.shape[0]):
        lo0, lo1, lo2 = los[j, 0], los[j, 1], los[j, 2]
        hi0, hi1, hi2 = his[j, 0], his[j, 1], his[j, 2]
        for i in range(xs.shape[0]):
            out[j, i] = (
                xs[i] >= lo0
                and xs[i] <= hi0
                and ys[i] >= lo1
                and ys[i] <= hi1
                and zs[i] >= lo2
                and zs[i] <= hi2
            )
    return out


def _pair_box_distances_body(points, pair_owners, los, his, zero, out):
    """Distance of pair ``i``'s point to its owner box, into ``out[i]``.

    ``zero`` is a scalar of the working dtype so the clamp stays in that
    dtype under numba's type unification.
    """
    for i in range(points.shape[0]):
        q = pair_owners[i]
        d0 = los[q, 0] - points[i, 0]
        b0 = points[i, 0] - his[q, 0]
        if b0 > d0:
            d0 = b0
        if d0 < zero:
            d0 = zero
        d1 = los[q, 1] - points[i, 1]
        b1 = points[i, 1] - his[q, 1]
        if b1 > d1:
            d1 = b1
        if d1 < zero:
            d1 = zero
        d2 = los[q, 2] - points[i, 2]
        b2 = points[i, 2] - his[q, 2]
        if b2 > d2:
            d2 = b2
        if d2 < zero:
            d2 = zero
        total = d0 * d0
        total = total + d1 * d1
        total = total + d2 * d2
        out[i] = np.sqrt(total)
    return out


def _crawl_stamp_and_test_body(
    candidates,
    reach_bits,
    stamps,
    word_columns,
    epoch,
    points,
    los,
    his,
    visited_per_query,
    frontier_out,
    frontier_bits_out,
):
    """One fused-crawl level as a single loop over the candidate axis.

    Fuses the stamp-and-test of :meth:`repro.kernels.KernelBackend.
    crawl_stamp_and_test` — stale-stamp check, new-bit computation,
    ownership OR, per-query visit attribution, and the owning-box position
    test — without materialising any (candidates × queries) transient.
    Returns ``(n_fresh, n_frontier)``; the frontier rows are written into
    the caller-provided output buffers in candidate order.
    """
    zero = np.uint64(0)
    one = np.uint64(1)
    n_words = reach_bits.shape[1]
    new_row = np.empty(n_words, dtype=np.uint64)
    out_row = np.empty(n_words, dtype=np.uint64)
    n_fresh = 0
    n_frontier = 0
    for i in range(candidates.shape[0]):
        vertex = candidates[i]
        stale = stamps[vertex] != epoch
        any_new = False
        for w in range(n_words):
            if stale:
                previous = zero
            else:
                previous = word_columns[vertex, w]
            fresh_bits = reach_bits[i, w] & ~previous
            new_row[w] = fresh_bits
            if fresh_bits != zero:
                any_new = True
        if not any_new:
            continue
        for w in range(n_words):
            if stale:
                word_columns[vertex, w] = new_row[w]
            else:
                word_columns[vertex, w] = word_columns[vertex, w] | new_row[w]
        stamps[vertex] = epoch
        n_fresh += 1
        px, py, pz = points[i, 0], points[i, 1], points[i, 2]
        any_inside = False
        for w in range(n_words):
            remaining = new_row[w]
            packed = zero
            base = w * 64
            bit = 0
            while remaining != zero:
                if (remaining & one) != zero:
                    q = base + bit
                    visited_per_query[q] += 1
                    if (
                        px >= los[q, 0]
                        and px <= his[q, 0]
                        and py >= los[q, 1]
                        and py <= his[q, 1]
                        and pz >= los[q, 2]
                        and pz <= his[q, 2]
                    ):
                        packed = packed | (one << np.uint64(bit))
                remaining = remaining >> one
                bit += 1
            out_row[w] = packed
            if packed != zero:
                any_inside = True
        if any_inside:
            frontier_out[n_frontier] = vertex
            for w in range(n_words):
                frontier_bits_out[n_frontier, w] = out_row[w]
            n_frontier += 1
    return n_fresh, n_frontier


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    _points_in_boxes_jit = njit(nogil=True)(_points_in_boxes_body)
    _pair_box_distances_jit = njit(nogil=True)(_pair_box_distances_body)
    _crawl_stamp_and_test_jit = njit(nogil=True)(_crawl_stamp_and_test_body)
else:
    _points_in_boxes_jit = _points_in_boxes_body
    _pair_box_distances_jit = _pair_box_distances_body
    _crawl_stamp_and_test_jit = _crawl_stamp_and_test_body


from . import KernelBackend  # noqa: E402  (import after njit setup; no cycle)


class NumbaKernels(KernelBackend):
    """Compiled (njit) implementations of the three hot-loop kernels.

    Constructing this class requires numba unless ``force_interpreted=True``,
    which runs the *same* kernel bodies as interpreted Python — the parity
    suites use that to pin the numba code path bit-for-bit against the NumPy
    backend even in environments without the JIT.  ``get_backend("numba")``
    never returns an interpreted instance; without numba it falls back to
    the NumPy backend instead.
    """

    name = "numba"

    def __init__(self, dtype=np.float64, force_interpreted: bool = False) -> None:
        if not NUMBA_AVAILABLE and not force_interpreted:
            raise QueryError(
                "numba is not installed; use get_backend('numba') for the clean "
                "NumPy fallback, or NumbaKernels(force_interpreted=True) to run "
                "the kernel bodies as interpreted Python (tests only)"
            )
        super().__init__(dtype=dtype)
        self.compiled = NUMBA_AVAILABLE and not force_interpreted
        if self.compiled:
            self._points_in_boxes_kernel = _points_in_boxes_jit
            self._pair_box_distances_kernel = _pair_box_distances_jit
            self._crawl_stamp_and_test_kernel = _crawl_stamp_and_test_jit
        else:
            self._points_in_boxes_kernel = _points_in_boxes_body
            self._pair_box_distances_kernel = _pair_box_distances_body
            self._crawl_stamp_and_test_kernel = _crawl_stamp_and_test_body

    def points_in_boxes(self, points: np.ndarray, los: np.ndarray, his: np.ndarray) -> np.ndarray:
        pts = self._cast(points)
        out = np.empty((los.shape[0], pts.shape[0]), dtype=np.bool_)
        self._points_in_boxes_kernel(
            np.ascontiguousarray(pts[:, 0]),
            np.ascontiguousarray(pts[:, 1]),
            np.ascontiguousarray(pts[:, 2]),
            self._cast(los),
            self._cast(his),
            out,
        )
        return out

    def pair_box_distances(
        self,
        positions: np.ndarray,
        pair_vertices: np.ndarray,
        pair_owners: np.ndarray,
        los: np.ndarray,
        his: np.ndarray,
    ) -> tuple[np.ndarray, int]:
        unique_vertices, inverse = np.unique(pair_vertices, return_inverse=True)
        points = self._cast(positions[unique_vertices][inverse])
        out = np.empty(points.shape[0], dtype=self.dtype)
        self._pair_box_distances_kernel(
            points,
            np.ascontiguousarray(pair_owners),
            self._cast(los),
            self._cast(his),
            self.dtype.type(0.0),
            out,
        )
        return out.astype(np.float64, copy=False), int(unique_vertices.size)

    def crawl_stamp_and_test(
        self,
        candidates: np.ndarray,
        reach_bits: np.ndarray,
        stamps: np.ndarray,
        word_columns: np.ndarray,
        epoch: int,
        positions: np.ndarray,
        los: np.ndarray,
        his: np.ndarray,
        bits,
        visited_per_query: np.ndarray,
        attribution_chunk: int,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        # The fused loop materialises no (candidates × queries) transient, so
        # attribution_chunk (which bounds the NumPy transients) is unused.
        n_candidates = int(candidates.shape[0])
        n_words = int(reach_bits.shape[1])
        if n_candidates == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, n_words), dtype=np.uint64),
                0,
            )
        points = self._cast(positions[candidates])
        frontier_out = np.empty(n_candidates, dtype=np.int64)
        frontier_bits_out = np.empty((n_candidates, n_words), dtype=np.uint64)
        n_fresh, n_frontier = self._crawl_stamp_and_test_kernel(
            np.ascontiguousarray(candidates),
            np.ascontiguousarray(reach_bits),
            stamps,
            word_columns,
            epoch,
            points,
            self._cast(los),
            self._cast(his),
            visited_per_query,
            frontier_out,
            frontier_bits_out,
        )
        return (
            frontier_out[:n_frontier].copy(),
            frontier_bits_out[:n_frontier].copy(),
            int(n_fresh),
        )
