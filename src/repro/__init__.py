"""repro — a reproduction of OCTOPUS (ICDE 2014): efficient range queries on dynamic meshes.

The public API is organised in layers:

* :mod:`repro.mesh` — mesh substrate (geometry, connectivity, surface extraction);
* :mod:`repro.generators` — synthetic dataset generators;
* :mod:`repro.simulation` — deformation models, restructuring, monitoring, driver;
* :mod:`repro.baselines` — linear scan and index-based baselines;
* :mod:`repro.core` — OCTOPUS, OCTOPUS-CON, the surface index, the cost model,
  and the strategy-wrapper composition surface;
* :mod:`repro.kernels` — swappable compute backends for the batched hot loops;
* :mod:`repro.cache` — the delta-invalidated query-result cache;
* :mod:`repro.standing` — standing continuous queries over the delta stream;
* :mod:`repro.service` — mesh partitioning and the sharded query service;
* :mod:`repro.workloads` — query workloads and selectivity estimation;
* :mod:`repro.experiments` — per-figure experiment drivers and reporting.

The most common entry points are re-exported here::

    from repro import Box3D, build_strategy
    from repro.generators import neuron_mesh

    mesh = neuron_mesh(resolution=16)
    octopus = build_strategy("octopus", caching=True, resilience=True)
    octopus.prepare(mesh)
    result = octopus.query(Box3D.cube(mesh.bounding_box().center, 0.5))

``build_strategy`` composes wrapper stacks (result caching, the resilience
ladder, query budgets) uniformly; the bare executor classes remain available
for direct construction.
"""

from . import (
    baselines,
    cache,
    core,
    experiments,
    generators,
    kernels,
    mesh,
    service,
    simulation,
    standing,
    workloads,
)
from .baselines import (
    LinearScanExecutor,
    LURTreeExecutor,
    QUTradeExecutor,
    ThrowawayGridExecutor,
    ThrowawayKDTreeExecutor,
    ThrowawayOctreeExecutor,
)
from .cache import CacheStats, CachingStrategy, QueryResultCache
from .core import (
    CostModel,
    DeformationDelta,
    OctopusConExecutor,
    OctopusExecutor,
    QueryBudget,
    QueryCounters,
    QueryResult,
    ResilientStrategy,
    StrategyWrapper,
    SurfaceIndex,
    TopologyDelta,
    calibrate_cost_model,
)
from .errors import (
    ConcurrencyError,
    DegradedExecutionError,
    DeltaValidationError,
    ExperimentError,
    FaultInjectionError,
    GeometryError,
    MeshConnectivityError,
    MeshError,
    QueryBudgetExceeded,
    QueryError,
    ReproError,
    SimulationError,
    SpatialIndexError,
    WorkloadError,
)
from .factory import build_strategy, make_strategy
from .mesh import Box3D, HexahedralMesh, PolyhedralMesh, TetrahedralMesh, TriangleMesh
from .service import MeshShard, ShardedQueryService, partition_mesh
from .standing import (
    MembershipUpdate,
    StandingQueryRegistry,
    StandingStats,
    StandingStrategy,
)

__version__ = "1.0.0"

#: the public surface, ordered by layer (mesh substrate outward to the
#: experiment harness) and alphabetically within each layer; pinned by
#: tests/test_public_api.py so accidental surface growth fails CI
__all__ = [
    # version
    "__version__",
    # layer modules
    "baselines",
    "cache",
    "core",
    "experiments",
    "generators",
    "kernels",
    "mesh",
    "service",
    "simulation",
    "standing",
    "workloads",
    # mesh substrate
    "Box3D",
    "HexahedralMesh",
    "PolyhedralMesh",
    "TetrahedralMesh",
    "TriangleMesh",
    # core engine: deltas, results, executors, cost model
    "CostModel",
    "DeformationDelta",
    "OctopusConExecutor",
    "OctopusExecutor",
    "QueryCounters",
    "QueryResult",
    "SurfaceIndex",
    "TopologyDelta",
    "calibrate_cost_model",
    # baselines
    "LURTreeExecutor",
    "LinearScanExecutor",
    "QUTradeExecutor",
    "ThrowawayGridExecutor",
    "ThrowawayKDTreeExecutor",
    "ThrowawayOctreeExecutor",
    # composition surface: wrappers, budgets, factory
    "CacheStats",
    "CachingStrategy",
    "MembershipUpdate",
    "QueryBudget",
    "QueryResultCache",
    "ResilientStrategy",
    "StandingQueryRegistry",
    "StandingStats",
    "StandingStrategy",
    "StrategyWrapper",
    "build_strategy",
    "make_strategy",
    # sharded service
    "MeshShard",
    "ShardedQueryService",
    "partition_mesh",
    # errors
    "ConcurrencyError",
    "DegradedExecutionError",
    "DeltaValidationError",
    "ExperimentError",
    "FaultInjectionError",
    "GeometryError",
    "MeshConnectivityError",
    "MeshError",
    "QueryBudgetExceeded",
    "QueryError",
    "ReproError",
    "SimulationError",
    "SpatialIndexError",
    "WorkloadError",
]
