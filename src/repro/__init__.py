"""repro — a reproduction of OCTOPUS (ICDE 2014): efficient range queries on dynamic meshes.

The public API is organised in layers:

* :mod:`repro.mesh` — mesh substrate (geometry, connectivity, surface extraction);
* :mod:`repro.generators` — synthetic dataset generators;
* :mod:`repro.simulation` — deformation models, restructuring, monitoring, driver;
* :mod:`repro.baselines` — linear scan and index-based baselines;
* :mod:`repro.core` — OCTOPUS, OCTOPUS-CON, the surface index and the cost model;
* :mod:`repro.workloads` — query workloads and selectivity estimation;
* :mod:`repro.experiments` — per-figure experiment drivers and reporting.

The most common entry points are re-exported here::

    from repro import OctopusExecutor, Box3D
    from repro.generators import neuron_mesh

    mesh = neuron_mesh(resolution=16)
    octopus = OctopusExecutor()
    octopus.prepare(mesh)
    result = octopus.query(Box3D.cube(mesh.bounding_box().center, 0.5))
"""

from . import baselines, core, experiments, generators, mesh, service, simulation, workloads
from .baselines import (
    LinearScanExecutor,
    LURTreeExecutor,
    QUTradeExecutor,
    ThrowawayGridExecutor,
    ThrowawayKDTreeExecutor,
    ThrowawayOctreeExecutor,
)
from .core import (
    CostModel,
    DeformationDelta,
    OctopusConExecutor,
    OctopusExecutor,
    QueryBudget,
    QueryCounters,
    QueryResult,
    ResilientStrategy,
    SurfaceIndex,
    TopologyDelta,
    calibrate_cost_model,
)
from .errors import (
    ConcurrencyError,
    DegradedExecutionError,
    DeltaValidationError,
    ExperimentError,
    FaultInjectionError,
    GeometryError,
    MeshConnectivityError,
    MeshError,
    QueryBudgetExceeded,
    QueryError,
    ReproError,
    SimulationError,
    SpatialIndexError,
    WorkloadError,
)
from .mesh import Box3D, HexahedralMesh, PolyhedralMesh, TetrahedralMesh, TriangleMesh
from .service import MeshShard, ShardedQueryService, partition_mesh

__version__ = "1.0.0"

__all__ = [
    "Box3D",
    "ConcurrencyError",
    "CostModel",
    "DeformationDelta",
    "DegradedExecutionError",
    "DeltaValidationError",
    "ExperimentError",
    "FaultInjectionError",
    "GeometryError",
    "HexahedralMesh",
    "LURTreeExecutor",
    "LinearScanExecutor",
    "MeshConnectivityError",
    "MeshError",
    "MeshShard",
    "OctopusConExecutor",
    "OctopusExecutor",
    "PolyhedralMesh",
    "QUTradeExecutor",
    "QueryBudget",
    "QueryBudgetExceeded",
    "QueryCounters",
    "QueryError",
    "QueryResult",
    "ReproError",
    "ResilientStrategy",
    "ShardedQueryService",
    "SimulationError",
    "SpatialIndexError",
    "SurfaceIndex",
    "TetrahedralMesh",
    "ThrowawayGridExecutor",
    "ThrowawayKDTreeExecutor",
    "ThrowawayOctreeExecutor",
    "TopologyDelta",
    "TriangleMesh",
    "WorkloadError",
    "__version__",
    "baselines",
    "calibrate_cost_model",
    "core",
    "experiments",
    "generators",
    "mesh",
    "partition_mesh",
    "service",
    "simulation",
    "workloads",
]


def __getattr__(name: str):
    """Deprecated top-level aliases, resolved lazily so importing them warns."""
    if name == "IndexError_":
        import warnings

        warnings.warn(
            "repro.IndexError_ is deprecated; use repro.SpatialIndexError instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return SpatialIndexError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
