"""Figure 9: OCTOPUS-CON on convex meshes and the grid-resolution trade-off."""

from conftest import run_once

from repro.experiments.figures import figure9_convex_comparison, figure9_grid_resolution


def test_figure9ab_convex_comparison(benchmark, profile, record_rows):
    rows = run_once(
        benchmark,
        figure9_convex_comparison,
        profile,
        n_steps=3,
        queries_per_step=6,
        # The paper uses 0.1% selectivity; on the scaled-down basin meshes that
        # returns almost nothing, so the bench uses 1% (see EXPERIMENTS.md).
        selectivity=0.01,
    )
    record_rows(
        "fig09ab_convex_comparison",
        rows,
        "Figure 9(a,b) — OCTOPUS-CON vs OCTOPUS vs LinearScan on convex meshes",
    )
    for dataset in ("SF2", "SF1"):
        subset = {row["strategy"]: row for row in rows if row["dataset"] == dataset}
        # OCTOPUS-CON eliminates the surface probe and beats plain OCTOPUS.
        assert subset["octopus-con"]["surface_probed"] == 0
        assert (
            subset["octopus-con"]["speedup_vs_linear_work"]
            >= subset["octopus"]["speedup_vs_linear_work"]
        )
        assert subset["octopus"]["speedup_vs_linear_work"] > 1.0
    # OCTOPUS's speedup is larger on SF1 (smaller surface-to-volume ratio),
    # while OCTOPUS-CON is insensitive to it (paper: 15.5x on both).
    octopus_sf1 = next(r for r in rows if r["dataset"] == "SF1" and r["strategy"] == "octopus")
    octopus_sf2 = next(r for r in rows if r["dataset"] == "SF2" and r["strategy"] == "octopus")
    assert octopus_sf1["speedup_vs_linear_work"] > octopus_sf2["speedup_vs_linear_work"]


def test_figure9cd_grid_resolution(benchmark, profile, record_rows):
    rows = run_once(
        benchmark, figure9_grid_resolution, profile, resolutions=(2, 6, 10, 14, 18), n_queries=8
    )
    record_rows(
        "fig09cd_grid_resolution",
        rows,
        "Figure 9(c,d) — grid resolution vs directed walk cost and grid memory",
    )
    walks = [row["directed_walk_vertices"] for row in rows]
    memory = [row["grid_memory_mb"] for row in rows]
    # Finer grids shorten the directed walk but cost more memory.
    assert walks[-1] <= walks[0]
    assert memory == sorted(memory)
