"""Ablation (not a paper figure): choice of throwaway index.

Section II-A lists the Octree, the k-d tree and memory-optimised R-trees as
candidates for the rebuild-every-step strategy; the paper benchmarks the
Octree.  This ablation compares the three throwaway structures implemented in
this library (Octree, k-d tree, uniform grid) under the same workload, to show
the conclusion — rebuilding anything every step loses to the linear scan at
monitoring query counts — does not depend on which structure is rebuilt.
"""

from conftest import run_once

from repro.experiments import (
    comparison_rows,
    fixed_workload_provider,
    neuron_largest,
    run_comparison,
    strategy_suite,
)
from repro.simulation import RandomWalkDeformation
from repro.workloads import random_query_workload


def _rows(profile, n_steps=3, queries_per_step=6, selectivity=0.001, seed=0):
    mesh = neuron_largest(profile)
    workload = random_query_workload(
        mesh, selectivity=selectivity, n_queries=queries_per_step, seed=seed
    )
    report = run_comparison(
        mesh=mesh.copy(),
        strategies=strategy_suite(("linear-scan", "octree", "kd-tree", "grid", "octopus")),
        deformation=RandomWalkDeformation(amplitude=0.0005, seed=seed),
        n_steps=n_steps,
        query_provider=fixed_workload_provider(workload),
    )
    return comparison_rows(report, baseline="linear-scan")


def test_ablation_throwaway_index_choice(benchmark, profile, record_rows):
    rows = run_once(benchmark, _rows, profile)
    record_rows(
        "ablation_throwaway_indexes",
        rows,
        "Ablation — throwaway index choice (rebuild-per-step) vs linear scan vs OCTOPUS",
    )
    by_name = {row["strategy"]: row for row in rows}
    # Every rebuild-per-step index pays maintenance proportional to the
    # dataset at every step (the relative weight of that maintenance versus
    # NumPy-vectorised scans depends on the absolute scale and is reported in
    # the table rather than asserted — see EXPERIMENTS.md).
    for name in ("octree", "kd-tree", "grid"):
        assert by_name[name]["maintenance_time_s"] > 0
    # OCTOPUS needs no maintenance at all and does less work than the
    # maintenance-free alternative (the linear scan).  Counter-based work is
    # not comparable against rebuild-per-step structures because one "touched
    # entry" of a rebuild is far cheaper to count than it is to execute.
    assert by_name["octopus"]["maintenance_time_s"] == 0.0
    assert by_name["octopus"]["total_work"] < by_name["linear-scan"]["total_work"]
