"""Figure 15: per-time-step response time and speedup on the animation datasets."""

from conftest import run_once

from repro.experiments.figures import figure15_animation


def test_figure15_animation_speedups(benchmark, profile, record_rows):
    rows = run_once(
        benchmark, figure15_animation, profile, queries_per_step=6, max_steps=4
    )
    record_rows("fig15_animation", rows, "Figure 15 — deforming mesh query performance")
    assert len(rows) == 3
    # The paper's finding: the lower the surface-to-volume ratio, the higher
    # OCTOPUS's speedup, with the facial-expression sequence doing best.
    by_ratio = sorted(rows, key=lambda row: row["surface_to_volume"])
    speedups = [row["speedup_work"] for row in by_ratio]
    assert speedups[0] == max(speedups)
    assert by_ratio[0]["dataset"] == "facial-expression"
    assert speedups[0] > 1.0
