"""Figure 11: validation of the analytical cost model (Section IV-G)."""

from conftest import run_once

from repro.experiments.figures import figure11_model_validation


def test_figure11_model_validation(benchmark, profile, record_rows):
    rows = run_once(
        benchmark,
        figure11_model_validation,
        profile,
        selectivities=(0.0001, 0.001, 0.002),
        n_queries=5,
    )
    record_rows("fig11_model", rows, "Figure 11 — analytical model vs measurement")
    # The machine-independent (work-level) prediction should track the
    # measured counters closely; wall-clock predictions use calibrated
    # constants and are reported for reference.
    for row in rows:
        assert row["work_error_pct"] < 60.0
    median_error = sorted(row["work_error_pct"] for row in rows)[len(rows) // 2]
    assert median_error < 35.0
    # The model predicts OCTOPUS beats the linear scan on every configuration.
    assert all(row["predicted_speedup"] > 1.0 for row in rows)
