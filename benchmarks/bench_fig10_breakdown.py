"""Figure 10: OCTOPUS phase breakdown and memory footprint."""

from conftest import run_once

from repro.experiments.figures import figure10_breakdown, figure10_footprint


def test_figure10a_phase_breakdown(benchmark, profile, record_rows):
    rows = run_once(
        benchmark, figure10_breakdown, profile, n_steps=2, queries_per_step=6, selectivity=0.005
    )
    record_rows("fig10a_breakdown", rows, "Figure 10(a) — OCTOPUS phase breakdown vs dataset size")
    # The directed walk is a rare event and contributes the least work.
    for row in rows:
        assert row["walk_vertices"] <= row["surface_probed"] + row["crawl_vertices"]
    # The surface probe grows sub-linearly with the dataset.
    sizes = [row["n_tetrahedra"] for row in rows]
    probes = [row["surface_probed"] for row in rows]
    assert probes[-1] / probes[0] < sizes[-1] / sizes[0]


def test_figure10b_memory_footprint(benchmark, profile, record_rows):
    rows = run_once(benchmark, figure10_footprint, profile, queries_counts=(2, 5, 10, 15, 20))
    record_rows("fig10b_footprint", rows, "Figure 10(b) — footprint vs number of query results")
    results = [row["total_results"] for row in rows]
    footprints = [row["total_footprint_mb"] for row in rows]
    # Footprint correlates directly with the number of query results.
    assert results == sorted(results)
    assert footprints == sorted(footprints)
