"""Figure 4: neuroscience dataset characterisation (generation + statistics)."""

from conftest import run_once

from repro.experiments.figures import figure4_rows


def test_figure4_dataset_characterization(benchmark, profile, record_rows):
    rows = run_once(benchmark, figure4_rows, profile)
    record_rows("fig04_datasets", rows, "Figure 4 — neuroscience dataset characterisation")
    assert len(rows) == 5
    ratios = [row["surface_to_volume"] for row in rows]
    assert ratios == sorted(ratios, reverse=True)
