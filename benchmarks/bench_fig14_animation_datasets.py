"""Figure 14: deforming mesh (animation) dataset characterisation."""

from conftest import run_once

from repro.experiments.figures import figure14_rows


def test_figure14_animation_datasets(benchmark, profile, record_rows):
    rows = run_once(benchmark, figure14_rows, profile)
    record_rows("fig14_animation_datasets", rows, "Figure 14 — deforming mesh datasets")
    by_name = {row["dataset"]: row for row in rows}
    assert by_name["horse-gallop"]["time_steps"] == 48
    assert by_name["facial-expression"]["time_steps"] == 9
    assert by_name["camel-compress"]["time_steps"] == 53
    # The facial-expression mesh has the smallest surface-to-volume ratio,
    # mirroring the ordering of the paper's Figure 14.
    ratios = {name: row["surface_to_volume"] for name, row in by_name.items()}
    assert ratios["facial-expression"] == min(ratios.values())
