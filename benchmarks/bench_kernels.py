"""Raw-speed-tier benchmark: layout x backend x dtype kernel cells.

Measures the two compiled-kernel hot paths (the fused crawl frontier
expansion and the fused directed-walk distance kernel) over every
combination of

* **vertex layout** — ``native`` (generator order), ``hilbert`` (the
  locality relabel pass) and ``random`` (an adversarial shuffle);
* **kernel backend spec** — ``numpy`` (the float64 reference),
  ``numba`` (the compiled backend; falls back to NumPy when the JIT is
  not installed, recorded honestly via ``numba_available``) and
  ``numpy:float32`` (the reduced-precision positions mode).

Each cell records crawl throughput (attributed vertex visits per second),
walk throughput (attributed distance computations per second) and the
layout's locality score (mean neighbour id distance over the CSR adjacency;
lower is better).  Within each layout, the ``numba``-spec results are
checked bit-identical against the NumPy reference — that check *is* the
``kernel_parity`` gate, so a compiled kernel that ever deviates fails the
run before any speedup is reported.

The mesh is a structured tetrahedral grid sized by the dataset profile
(``REPRO_BENCH_PROFILE``): ``tiny`` for CI smoke runs up to ``large``,
whose grid exceeds one million vertices.  Writes a perf record to
``BENCH_kernels.json`` at the repository root and prints the same numbers.
Run it directly::

    REPRO_BENCH_PROFILE=tiny python benchmarks/bench_kernels.py

or through pytest (``pytest benchmarks/bench_kernels.py -s``).

CI regression gate: when ``REPRO_BENCH_FLOORS`` is set (comma-separated
``gate=minimum`` pairs), the run fails with a non-zero exit status if any
named gate falls below its floor.  Gates: ``kernel_parity`` (1.0 iff every
numba-spec cell matched the NumPy reference bit-for-bit),
``layout_locality_gain`` (random-layout locality score over hilbert-layout
score — how much neighbour id distance the relabel pass removes),
``compiled_crawl`` and ``compiled_walk`` (NumPy-backend seconds over
numba-backend seconds on the hilbert layout; ~1.0 by construction when the
JIT is absent, so these floors belong on CI legs that install numba).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core import CrawlScratch, crawl_many, directed_walk_many  # noqa: E402
from repro.generators import structured_tetrahedral_mesh  # noqa: E402
from repro.kernels import get_backend, numba_available  # noqa: E402
from repro.mesh import Box3D, apply_layout, layout_locality_score, points_in_box  # noqa: E402

RECORD_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"

#: structured grid shape per dataset profile; ``large`` exceeds 1M vertices
PROFILE_SHAPES = {
    "tiny": (8, 8, 8),
    "small": (20, 20, 20),
    "medium": (40, 40, 40),
    "large": (101, 101, 101),
}

LAYOUTS = ("native", "hilbert", "random")
BACKEND_SPECS = ("numpy", "numba", "numpy:float32")

N_CRAWL_QUERIES = 16
N_WALK_QUERIES = 16
N_ROUNDS = 3

FLOOR_SCENARIOS = {
    "kernel_parity": "1.0 iff every numba-spec cell matched the NumPy reference bit-for-bit",
    "layout_locality_gain": "random-layout locality score over hilbert-layout score",
    "compiled_crawl": "NumPy-backend fused-crawl seconds over numba-backend seconds (hilbert layout)",
    "compiled_walk": "NumPy-backend fused-walk seconds over numba-backend seconds (hilbert layout)",
}


def _timed_best_of(rounds: int, fn) -> float:
    fn()  # warm caches (and the JIT, when present) outside the timed region
    return min(_timed(fn) for _ in range(rounds))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _crawl_workload(mesh) -> tuple[list[Box3D], list[np.ndarray]]:
    """Overlapping boxes around the mesh centre, one inside start each."""
    rng = np.random.default_rng(7)
    bounding = mesh.bounding_box()
    diagonal = float(np.linalg.norm(bounding.extents))
    center = np.asarray(bounding.center, dtype=np.float64)
    boxes = [
        Box3D.cube(center + rng.normal(0.0, 0.01 * diagonal, 3), 0.2 * diagonal)
        for _ in range(N_CRAWL_QUERIES)
    ]
    starts = []
    for box in boxes:
        inside = np.nonzero(points_in_box(mesh.vertices, box))[0]
        starts.append(inside[:1])
    return boxes, starts


def _walk_workload(mesh) -> tuple[list[Box3D], list[int]]:
    """Small interior boxes reached from one shared surface start."""
    rng = np.random.default_rng(11)
    bounding = mesh.bounding_box()
    diagonal = float(np.linalg.norm(bounding.extents))
    center = np.asarray(bounding.center, dtype=np.float64)
    boxes = [
        Box3D.cube(center + rng.normal(0.0, 0.005 * diagonal, 3), 0.03 * diagonal)
        for _ in range(N_WALK_QUERIES)
    ]
    start = int(mesh.surface_vertices()[0])
    return boxes, [start] * len(boxes)


def _run_cell(mesh, spec, crawl_boxes, crawl_starts, walk_boxes, walk_starts) -> dict:
    kernels = get_backend(spec)
    crawl_scratch = CrawlScratch()
    walk_scratch = CrawlScratch()

    def run_crawl():
        return crawl_many(
            mesh, crawl_boxes, crawl_starts, scratch=crawl_scratch, kernels=kernels
        )

    def run_walk():
        return directed_walk_many(
            mesh, walk_boxes, walk_starts, scratch=walk_scratch, kernels=kernels
        )

    crawl_s = _timed_best_of(N_ROUNDS, run_crawl)
    walk_s = _timed_best_of(N_ROUNDS, run_walk)
    crawl_batch = run_crawl()
    walk_batch = run_walk()
    return {
        "spec": spec,
        "backend": kernels.spec,
        "compiled": kernels.compiled,
        "crawl_s": crawl_s,
        "walk_s": walk_s,
        "crawl_visits_per_s": crawl_batch.n_attributed_vertex_visits / max(crawl_s, 1e-12),
        "walk_distances_per_s": walk_batch.n_attributed_distance_computations
        / max(walk_s, 1e-12),
        "crawl_result_ids": [o.result_ids for o in crawl_batch.outcomes],
        "walk_found": [(o.found_id, o.n_steps) for o in walk_batch.outcomes],
    }


def _strip_arrays(cell: dict) -> dict:
    """Drop the raw result arrays before the cell goes into the JSON record."""
    return {
        k: v for k, v in cell.items() if k not in ("crawl_result_ids", "walk_found")
    }


def run(profile: str | None = None) -> dict:
    profile = profile or os.environ.get("REPRO_BENCH_PROFILE", "small")
    if profile not in PROFILE_SHAPES:
        raise SystemExit(
            f"unknown profile {profile!r}; expected one of {sorted(PROFILE_SHAPES)}"
        )
    base_mesh = structured_tetrahedral_mesh(PROFILE_SHAPES[profile], name="kernel-bench")

    cells = []
    locality = {}
    parity_ok = True
    hilbert_times = {}
    for layout in LAYOUTS:
        mesh = apply_layout(base_mesh, layout, seed=1)
        locality[layout] = layout_locality_score(mesh)
        crawl_boxes, crawl_starts = _crawl_workload(mesh)
        walk_boxes, walk_starts = _walk_workload(mesh)
        reference = None
        for spec in BACKEND_SPECS:
            cell = _run_cell(
                mesh, spec, crawl_boxes, crawl_starts, walk_boxes, walk_starts
            )
            if spec == "numpy":
                reference = cell
            elif spec == "numba":
                # The parity gate: the compiled backend must reproduce the
                # reference bit-for-bit on every query of every layout.
                same_crawl = all(
                    np.array_equal(a, b)
                    for a, b in zip(
                        cell["crawl_result_ids"], reference["crawl_result_ids"]
                    )
                )
                same_walk = cell["walk_found"] == reference["walk_found"]
                parity_ok = parity_ok and same_crawl and same_walk
                if layout == "hilbert":
                    hilbert_times = {
                        "crawl_numpy_s": reference["crawl_s"],
                        "crawl_numba_s": cell["crawl_s"],
                        "walk_numpy_s": reference["walk_s"],
                        "walk_numba_s": cell["walk_s"],
                    }
            cells.append({"layout": layout, "locality": locality[layout], **_strip_arrays(cell)})

    return {
        "benchmark": "kernels",
        "profile": profile,
        "mesh_vertices": base_mesh.n_vertices,
        "mesh_cells": base_mesh.n_cells,
        "n_crawl_queries": N_CRAWL_QUERIES,
        "n_walk_queries": N_WALK_QUERIES,
        "rounds": N_ROUNDS,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "numba_available": numba_available(),
        "cpu_count": os.cpu_count(),
        "locality": locality,
        "cells": cells,
        "gates": {
            "kernel_parity": 1.0 if parity_ok else 0.0,
            "layout_locality_gain": locality["random"] / max(locality["hilbert"], 1e-12),
            "compiled_crawl": hilbert_times["crawl_numpy_s"]
            / max(hilbert_times["crawl_numba_s"], 1e-12),
            "compiled_walk": hilbert_times["walk_numpy_s"]
            / max(hilbert_times["walk_numba_s"], 1e-12),
        },
    }


def parse_floors(spec: str) -> dict[str, float]:
    """Parse ``REPRO_BENCH_FLOORS`` (``name=minimum`` pairs, comma-separated)."""
    floors: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, value = part.partition("=")
        name = name.strip()
        if name not in FLOOR_SCENARIOS:
            raise SystemExit(
                f"unknown benchmark floor {name!r}; expected one of {sorted(FLOOR_SCENARIOS)}"
            )
        try:
            floors[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"invalid benchmark floor {part!r}; expected {name}=<minimum>, "
                f"e.g. {name}=1.2"
            ) from None
    return floors


def enforce_floors(record: dict, floors: dict[str, float]) -> list[str]:
    """Return one failure message per gate whose value is below its floor."""
    failures = []
    for name, minimum in floors.items():
        value = record["gates"][name]
        if value < minimum:
            failures.append(
                f"{name}: {value:.2f} is below the regression floor {minimum:.2f} "
                f"({FLOOR_SCENARIOS[name]})"
            )
    return failures


def _print_record(record: dict) -> None:
    print(
        f"profile={record['profile']}  mesh_vertices={record['mesh_vertices']}  "
        f"numba_available={record['numba_available']}"
    )
    for layout in LAYOUTS:
        print(f"locality[{layout}] = {record['locality'][layout]:.1f}")
    for cell in record["cells"]:
        print(
            f"{cell['layout']:>7} x {cell['spec']:<13}: "
            f"crawl {cell['crawl_s'] * 1e3:8.2f} ms "
            f"({cell['crawl_visits_per_s'] / 1e6:6.2f} Mvisit/s)   "
            f"walk {cell['walk_s'] * 1e3:8.2f} ms "
            f"({cell['walk_distances_per_s'] / 1e6:6.2f} Mdist/s)"
        )
    gates = record["gates"]
    print(
        f"gates: kernel_parity={gates['kernel_parity']:.0f}  "
        f"layout_locality_gain={gates['layout_locality_gain']:.2f}x  "
        f"compiled_crawl={gates['compiled_crawl']:.2f}x  "
        f"compiled_walk={gates['compiled_walk']:.2f}x"
    )


def _check_floors_from_env(record: dict) -> list[str]:
    spec = os.environ.get("REPRO_BENCH_FLOORS", "")
    if not spec:
        return []
    failures = enforce_floors(record, parse_floors(spec))
    for failure in failures:
        print(f"FLOOR VIOLATION: {failure}", file=sys.stderr)
    return failures


def main() -> int:
    record = run()
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    _print_record(record)
    print(f"record written to {RECORD_PATH}")
    return 1 if _check_floors_from_env(record) else 0


def test_kernels_benchmark(profile, record_rows):
    """Pytest entry point: run the benchmark and persist the JSON record."""
    record = run(profile)
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    rows = [
        {
            "cell": f"{cell['layout']} x {cell['spec']}",
            "crawl_s": cell["crawl_s"],
            "walk_s": cell["walk_s"],
            "crawl_visits_per_s": cell["crawl_visits_per_s"],
            "walk_distances_per_s": cell["walk_distances_per_s"],
        }
        for cell in record["cells"]
    ]
    record_rows("bench_kernels", rows, "Kernel backend x layout benchmark")
    assert record["gates"]["kernel_parity"] == 1.0
    failures = _check_floors_from_env(record)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    sys.exit(main())
