"""Figure 13: effect of the Hilbert-order data layout on the crawl."""

from conftest import run_once

from repro.experiments.figures import figure13_hilbert_layout


def test_figure13_hilbert_layout(benchmark, profile, record_rows):
    rows = run_once(
        benchmark,
        figure13_hilbert_layout,
        profile,
        selectivities=(0.0001, 0.0005, 0.001, 0.0015, 0.002),
        n_queries=5,
    )
    record_rows("fig13_hilbert", rows, "Figure 13 — Hilbert data layout")
    for row in rows:
        # The layout never changes what is retrieved, only how it is stored.
        assert row["crawl_vertices_with"] == row["crawl_vertices_without"]
        # The machine-independent locality score always improves.
        assert row["locality_with_layout"] < row["locality_without_layout"]
