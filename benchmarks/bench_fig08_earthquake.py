"""Figure 8: earthquake (convex) dataset characterisation."""

from conftest import run_once

from repro.experiments import earthquake_pair


def _rows(profile):
    rows = []
    for mesh in earthquake_pair(profile):
        characterization = mesh.characterize()
        rows.append(
            {
                "dataset": characterization["name"],
                "size_mb": characterization["memory_bytes"] / 1e6,
                "n_tetrahedra": characterization["n_tetrahedra"],
                "n_vertices": characterization["n_vertices"],
                "mesh_degree": characterization["mesh_degree"],
                "surface_to_volume": characterization["surface_to_volume"],
            }
        )
    return rows


def test_figure8_earthquake_datasets(benchmark, profile, record_rows):
    rows = run_once(benchmark, _rows, profile)
    record_rows("fig08_earthquake", rows, "Figure 8 — earthquake convex mesh datasets")
    by_name = {row["dataset"]: row for row in rows}
    # SF1 is the finer mesh: more tetrahedra, smaller surface-to-volume ratio.
    assert by_name["SF1"]["n_tetrahedra"] > by_name["SF2"]["n_tetrahedra"]
    assert by_name["SF1"]["surface_to_volume"] < by_name["SF2"]["surface_to_volume"]
