"""Result-cache benchmark: reuse sensitivity of the delta-invalidated cache.

Replays session-style query workloads against fresh and ``caching=True``
variants of the same strategy (see ``repro.cache`` and docs/caching.md) and
records, per cell, the cache traffic (hits/misses/invalidations) and the
wall-clock speedup of the cached variant over the fresh one:

* the **reuse-sensitivity sweep** runs the repeated-query workload
  (``repro.workloads.repeated_query_provider``) at re-poll fractions from
  0.0 (every box fresh — the cache can only miss) up to 1.0 (every client
  re-polls the same box each step), under a sparse localized-pulse
  deformation with rest steps so the delta invalidation has both quiet
  ticks (entries survive) and dirty ticks (overlapping entries drop);
* the **zoomed-session scenario** runs ``zoomed_session_provider`` — clients
  dwell on a box for a few steps, then zoom in — the box-reuse pattern the
  cache is built for when selectivities shrink mid-session.

Every cell starts with a ``validate_results=True`` run holding both
variants: the simulator compares each cached answer bit-for-bit against the
fresh strategy's answer for the same box on the same step, so a completed
validation run *is* the parity proof — a cache that ever served a stale
result records a parity failure before any speedup is measured.  Timing
then comes from separate solo runs per variant over the identical seeded
workload (see ``_run_cell`` for why a shared run would skew the numbers).

Run it directly::

    REPRO_BENCH_PROFILE=tiny python benchmarks/bench_cache.py

or through pytest (``pytest benchmarks/bench_cache.py -s``).

CI regression gate: when ``REPRO_BENCH_FLOORS`` is set (comma-separated
``name=minimum`` pairs), the run fails if a gated value drops below its
floor.  Gates: ``cache_hit_speedup`` (steady-state wall-clock query-time
speedup of the cached strategy at the headline 1.0 re-poll fraction,
excluding the lazy-index warm-up step that dominates both variants
identically), ``cache_parity`` (1.0 iff every cell completed its
bit-identical validation), and ``repeated_hit_rate`` (hit rate of the
headline cell).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.errors import SimulationError  # noqa: E402
from repro.experiments.datasets import neuron_largest  # noqa: E402
from repro.experiments.harness import (  # noqa: E402
    build_strategy,
    make_deformation,
    make_strategy,
    run_comparison,
)
from repro.workloads import repeated_query_provider, zoomed_session_provider  # noqa: E402

RECORD_PATH = Path(__file__).resolve().parents[1] / "BENCH_cache.json"

#: re-poll fractions of the reuse-sensitivity sweep (1.0 is the headline
#: cell: with every client re-polling, the measured speedup is the hit
#: path's capacity rather than a mix diluted by miss traffic)
REPOLL_FRACTIONS = (0.0, 0.5, 0.9, 1.0)
HEADLINE_REPOLL = 1.0
#: shared scenario knobs (mirrors repro.experiments.harness.cache_comparison_rows)
N_STEPS = 6
QUERIES_PER_STEP = 8
SELECTIVITY = 0.005
SPARSITY = 0.02
SEED = 0
#: gate name -> what it reads from the record (documented for parse_floors errors)
FLOOR_SCENARIOS = {
    "cache_hit_speedup": (
        "cached-octopus steady-state query-time speedup vs fresh at repoll=1.0 "
        "(steps after the lazy-index warm-up step)"
    ),
    "cache_parity": "1.0 iff every cell passed bit-identical cached-vs-fresh validation",
    "repeated_hit_rate": "cached-octopus hit rate at repoll=1.0",
}


def _run_cell(mesh, make_provider, scenario: str, **extra) -> dict:
    """One fresh-vs-cached comparison cell under bit-identical validation.

    Timing and parity come from *separate* runs: in a shared simulation the
    first strategy of every step touches the freshly-deformed position
    arrays cold while later strategies ride warm CPU caches (measured at
    ~4-5x on the tiny profile), so a shared run would credit the cache with
    speedup it did not earn.  Each variant is therefore timed in its own
    solo simulation over the identical seeded workload, and a third,
    untimed run holds both variants with ``validate_results=True`` so every
    cached answer is still checked bit-for-bit against fresh execution.
    ``make_provider`` builds a fresh (stateful) query provider per run.
    """

    def simulate(strategies, validate):
        return run_comparison(
            mesh.copy(),
            strategies,
            make_deformation("localized-pulse", sparsity=SPARSITY, rest_every=2, seed=SEED),
            n_steps=N_STEPS,
            query_provider=make_provider(),
            validate_results=validate,
        )

    try:
        simulate(
            [make_strategy("octopus"), build_strategy("octopus", caching=True)], validate=True
        )
    except SimulationError:
        # a cached answer deviated from fresh execution: record the parity
        # failure instead of crashing, so the gate (and CI) reports it
        return {"scenario": scenario, **extra, "parity": 0.0}
    fresh_report = simulate([make_strategy("octopus")], validate=False)
    cached_report = simulate([build_strategy("octopus", caching=True)], validate=False)
    fresh = fresh_report.strategies["octopus"]
    cached = cached_report.strategies["cached-octopus"]
    # steady state drops the first step: OCTOPUS builds its index lazily on
    # the first query, so step 1 carries a one-time cost that dominates both
    # variants identically and would swamp the caching effect being measured
    fresh_steady = sum(record.query_time for record in fresh.steps[1:])
    cached_steady = sum(record.query_time for record in cached.steps[1:])
    return {
        "scenario": scenario,
        **extra,
        "parity": 1.0,
        "cache_hits": cached.total_cache_hits,
        "cache_misses": cached.total_cache_misses,
        "hit_rate": cached.cache_hit_rate(),
        "invalidations": cached.total_cache_invalidations,
        "flushes": cached.total_cache_flushes,
        "fresh_query_time_s": fresh.total_query_time,
        "cached_query_time_s": cached.total_query_time,
        "speedup_vs_fresh": fresh.total_query_time / max(cached.total_query_time, 1e-12),
        "steady_fresh_query_time_s": fresh_steady,
        "steady_cached_query_time_s": cached_steady,
        "steady_speedup_vs_fresh": fresh_steady / max(cached_steady, 1e-12),
    }


def run(profile: str | None = None) -> dict:
    profile = profile or os.environ.get("REPRO_BENCH_PROFILE", "small")
    mesh = neuron_largest(profile)

    cells = []
    for repoll in REPOLL_FRACTIONS:
        cells.append(
            _run_cell(
                mesh,
                lambda repoll=repoll: repeated_query_provider(
                    SELECTIVITY, QUERIES_PER_STEP, repoll_fraction=repoll, seed=SEED
                ),
                scenario="repeated",
                repoll_fraction=repoll,
            )
        )
    cells.append(
        _run_cell(
            mesh,
            lambda: zoomed_session_provider(
                SELECTIVITY, n_clients=QUERIES_PER_STEP, dwell=3, seed=SEED
            ),
            scenario="zoomed",
            repoll_fraction=None,
        )
    )

    parity_ok = all(cell["parity"] == 1.0 for cell in cells)
    headline = next(
        cell
        for cell in cells
        if cell["scenario"] == "repeated" and cell["repoll_fraction"] == HEADLINE_REPOLL
    )
    return {
        "benchmark": "cache",
        "profile": profile,
        "mesh_vertices": mesh.n_vertices,
        "workload": {
            "n_steps": N_STEPS,
            "queries_per_step": QUERIES_PER_STEP,
            "selectivity": SELECTIVITY,
            "sparsity": SPARSITY,
            "repoll_fractions": list(REPOLL_FRACTIONS),
            "seed": SEED,
        },
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "cells": cells,
        "gates": {
            "cache_hit_speedup": headline.get("steady_speedup_vs_fresh", 0.0),
            "cache_parity": 1.0 if parity_ok else 0.0,
            "repeated_hit_rate": headline.get("hit_rate", 0.0),
        },
    }


def parse_floors(spec: str) -> dict[str, float]:
    """Parse ``REPRO_BENCH_FLOORS`` (``name=minimum`` pairs, comma-separated)."""
    floors: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, value = part.partition("=")
        name = name.strip()
        if name not in FLOOR_SCENARIOS:
            raise SystemExit(
                f"unknown benchmark floor {name!r}; expected one of {sorted(FLOOR_SCENARIOS)}"
            )
        try:
            floors[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"invalid benchmark floor {part!r}; expected {name}=<minimum>, "
                f"e.g. {name}=3.0"
            ) from None
    return floors


def enforce_floors(record: dict, floors: dict[str, float]) -> list[str]:
    """Return one failure message per gate whose value is below its floor."""
    failures = []
    for name, minimum in floors.items():
        value = record["gates"][name]
        if value < minimum:
            failures.append(
                f"{name}: {value:.2f} is below the regression floor {minimum:.2f} "
                f"({FLOOR_SCENARIOS[name]})"
            )
    return failures


def _check_floors_from_env(record: dict) -> list[str]:
    spec = os.environ.get("REPRO_BENCH_FLOORS", "")
    if not spec:
        return []
    failures = enforce_floors(record, parse_floors(spec))
    for failure in failures:
        print(f"FLOOR VIOLATION: {failure}", file=sys.stderr)
    return failures


def _print_record(record: dict) -> None:
    print(
        f"profile={record['profile']}  mesh_vertices={record['mesh_vertices']}  "
        f"steps={record['workload']['n_steps']}  "
        f"queries/step={record['workload']['queries_per_step']}"
    )
    for cell in record["cells"]:
        repoll = cell["repoll_fraction"]
        label = f"repoll={repoll:.1f}" if repoll is not None else "zoomed   "
        if cell["parity"] != 1.0:
            print(f"{cell['scenario']:>9} {label}  PARITY FAILURE")
            continue
        print(
            f"{cell['scenario']:>9} {label}  "
            f"hits {cell['cache_hits']:4d}  misses {cell['cache_misses']:4d}  "
            f"hit_rate {cell['hit_rate']:.2f}  inval {cell['invalidations']:4d}  "
            f"({cell['steady_speedup_vs_fresh']:.2f}x steady, "
            f"{cell['speedup_vs_fresh']:.2f}x total vs fresh)"
        )
    gates = record["gates"]
    print(
        f"gates: cache_hit_speedup={gates['cache_hit_speedup']:.2f}  "
        f"cache_parity={gates['cache_parity']:.0f}  "
        f"repeated_hit_rate={gates['repeated_hit_rate']:.2f}"
    )


def main() -> int:
    record = run()
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    _print_record(record)
    print(f"record written to {RECORD_PATH}")
    return 1 if _check_floors_from_env(record) else 0


def test_cache_benchmark(profile, record_rows):
    """Pytest entry point: run the benchmark and persist the JSON record."""
    record = run(profile)
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    rows = [
        {
            "cell": f"{cell['scenario']}"
            + (
                f" repoll={cell['repoll_fraction']:.1f}"
                if cell["repoll_fraction"] is not None
                else ""
            ),
            "hit_rate": cell.get("hit_rate", 0.0),
            "invalidations": cell.get("invalidations", 0),
            "flushes": cell.get("flushes", 0),
            "steady_speedup_vs_fresh": cell.get("steady_speedup_vs_fresh", 0.0),
            "total_speedup_vs_fresh": cell.get("speedup_vs_fresh", 0.0),
        }
        for cell in record["cells"]
    ]
    record_rows("bench_cache", rows, "Delta-invalidated result cache benchmark")
    assert record["gates"]["cache_parity"] == 1.0
    failures = _check_floors_from_env(record)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    sys.exit(main())
