"""Standing-query benchmark: incremental subscriptions vs naive re-querying.

Replays a seeded subscription-steering workload
(``repro.workloads.subscription_steering``) under a sparse localized-pulse
deformation and measures, per cell, how much cheaper keeping every
subscription current is with the delta-incremental
:class:`~repro.standing.StandingQueryRegistry` than with the naive
alternative — re-querying every subscribed box through the strategy on
every tick and diffing against the previous answer:

* the **watch** cell (headline) never changes the subscription set after
  start-up: clients subscribe once and watch, the regime standing queries
  exist for;
* the **steer** cell re-steers one client per step to a fresh box, so the
  subscribe/unsubscribe churn path is exercised alongside the ticks.

Both evaluation modes replay the *identical* schedule and the identical
seeded deformation in separate solo runs (a shared run would let the second
mode ride warm CPU caches), each driving its own strategy instance.  Every
cell first checks parity: after every tick the per-subscription memberships
of the incremental run must be bit-identical to the naive run's, so the
recorded speedup is only ever claimed for equivalent answers.  Timing
isolates the per-tick evaluation work (registry tick vs re-query-and-diff);
base strategy maintenance is identical in both modes and excluded.  Steady
state drops step 1, which carries the strategies' lazy-index warm-up.

Run it directly::

    REPRO_BENCH_PROFILE=tiny python benchmarks/bench_standing.py

or through pytest (``pytest benchmarks/bench_standing.py -s``).

CI regression gate: when ``REPRO_BENCH_FLOORS`` is set (comma-separated
``name=minimum`` pairs), the run fails if a gated value drops below its
floor.  Gates: ``standing_speedup`` (steady-state naive / incremental
evaluation time of the headline watch cell) and ``standing_parity`` (1.0
iff every cell's membership streams were bit-identical).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.datasets import neuron_largest  # noqa: E402
from repro.experiments.harness import (  # noqa: E402
    build_strategy,
    make_deformation,
)
from repro.standing import StandingQueryRegistry  # noqa: E402
from repro.workloads import subscription_steering  # noqa: E402

RECORD_PATH = Path(__file__).resolve().parents[1] / "BENCH_standing.json"

#: shared scenario knobs (mirrors repro.experiments.harness.standing_steering_rows)
N_STEPS = 8
N_SUBSCRIPTIONS = 16
SELECTIVITY = 0.005
SPARSITY = 0.02
SEED = 0
#: (cell name, re-steers per step); "watch" is the headline cell
CELLS = (("watch", 0), ("steer", 1))
HEADLINE_CELL = "watch"
#: gate name -> what it reads from the record (documented for parse_floors errors)
FLOOR_SCENARIOS = {
    "standing_speedup": (
        "steady-state naive / incremental per-tick evaluation time of the "
        "watch cell (steps after the lazy-index warm-up step)"
    ),
    "standing_parity": (
        "1.0 iff every cell's incremental membership stream was bit-identical "
        "to naive per-tick re-querying"
    ),
}


def _solo_run(mode: str, mesh, schedule) -> dict:
    """Replay the schedule in one evaluation mode; returns times + memberships.

    ``mode`` is ``"incremental"`` (a :class:`StandingQueryRegistry` ticked
    with the deformation deltas) or ``"naive"`` (every subscribed box
    re-queried through the strategy each step, memberships diffed by hand).
    The per-step membership snapshots ``{slot: ids}`` are returned so the
    caller can assert the two modes are bit-identical before timing is
    trusted.
    """
    mesh = mesh.copy()
    strategy = build_strategy("octopus")
    strategy.prepare(mesh)
    deformation = make_deformation(
        "localized-pulse", sparsity=SPARSITY, rest_every=2, seed=SEED
    )
    deformation.bind(mesh)

    def query_ids(box):
        return strategy.query(box).vertex_ids

    if mode == "incremental":
        registry = StandingQueryRegistry()
        subscribe = lambda box: registry.subscribe(box, query_ids)  # noqa: E731
        unsubscribe = registry.unsubscribe
    else:
        memberships: dict[int, np.ndarray] = {}
        boxes_by_sid: dict[int, object] = {}
        next_sid = [0]

        def subscribe(box):
            sid = next_sid[0]
            next_sid[0] += 1
            boxes_by_sid[sid] = box
            memberships[sid] = query_ids(box)
            return sid

        def unsubscribe(sid):
            del memberships[sid]
            del boxes_by_sid[sid]

    live = schedule.start(subscribe)
    step_times: list[float] = []
    snapshots: list[dict[int, np.ndarray]] = []
    for step in range(1, schedule.n_steps + 1):
        schedule.apply(step, subscribe, unsubscribe, live)
        delta = deformation.apply(step)
        strategy.on_step(delta)
        start = time.perf_counter()
        if mode == "incremental":
            registry.tick_deformation(delta, query_ids, step=step)
        else:
            # the naive client: re-run every standing box, diff by hand
            for sid, box in boxes_by_sid.items():
                current = query_ids(box)
                previous = memberships[sid]
                np.setdiff1d(current, previous, assume_unique=True)
                np.setdiff1d(previous, current, assume_unique=True)
                memberships[sid] = current
        step_times.append(time.perf_counter() - start)
        if mode == "incremental":
            snapshot = {
                slot: registry.membership(sid) for slot, sid in live.items()
            }
        else:
            snapshot = {slot: memberships[sid] for slot, sid in live.items()}
        snapshots.append(snapshot)
    result = {"step_times": step_times, "snapshots": snapshots}
    if mode == "incremental":
        result["stats"] = registry.drain_stats().as_dict()
        result["n_update_events"] = len(registry.drain_updates())
    return result


def _run_cell(mesh, name: str, resteer_per_step: int) -> dict:
    schedule = subscription_steering(
        mesh,
        n_subscriptions=N_SUBSCRIPTIONS,
        n_steps=N_STEPS,
        selectivity=SELECTIVITY,
        resteer_per_step=resteer_per_step,
        seed=SEED,
    )
    incremental = _solo_run("incremental", mesh, schedule)
    naive = _solo_run("naive", mesh, schedule)
    parity = all(
        set(inc) == set(nav)
        and all(np.array_equal(inc[slot], nav[slot]) for slot in inc)
        for inc, nav in zip(incremental["snapshots"], naive["snapshots"])
    )
    if not parity:
        # a diverged membership stream: record the failure instead of
        # crashing, so the gate (and CI) reports it
        return {"cell": name, "resteer_per_step": resteer_per_step, "parity": 0.0}
    # steady state drops step 1 (lazy-index warm-up dominates both modes)
    incremental_steady = sum(incremental["step_times"][1:])
    naive_steady = sum(naive["step_times"][1:])
    stats = incremental["stats"]
    return {
        "cell": name,
        "resteer_per_step": resteer_per_step,
        "parity": 1.0,
        "n_subscriptions": schedule.n_subscriptions,
        "n_update_events": incremental["n_update_events"],
        "skips": stats["skips"],
        "touched": stats["touched"],
        "recrawls": stats["recrawls"],
        "moved_tests": stats["moved_tests"],
        "incremental_eval_time_s": sum(incremental["step_times"]),
        "naive_eval_time_s": sum(naive["step_times"]),
        "speedup_vs_naive": (
            sum(naive["step_times"]) / max(sum(incremental["step_times"]), 1e-12)
        ),
        "steady_incremental_eval_time_s": incremental_steady,
        "steady_naive_eval_time_s": naive_steady,
        "steady_speedup_vs_naive": naive_steady / max(incremental_steady, 1e-12),
    }


def run(profile: str | None = None) -> dict:
    profile = profile or os.environ.get("REPRO_BENCH_PROFILE", "small")
    mesh = neuron_largest(profile)

    cells = [_run_cell(mesh, name, resteer) for name, resteer in CELLS]
    parity_ok = all(cell["parity"] == 1.0 for cell in cells)
    headline = next(cell for cell in cells if cell["cell"] == HEADLINE_CELL)
    return {
        "benchmark": "standing",
        "profile": profile,
        "mesh_vertices": mesh.n_vertices,
        "workload": {
            "n_steps": N_STEPS,
            "n_subscriptions": N_SUBSCRIPTIONS,
            "selectivity": SELECTIVITY,
            "sparsity": SPARSITY,
            "cells": [{"cell": name, "resteer_per_step": r} for name, r in CELLS],
            "seed": SEED,
        },
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "cells": cells,
        "gates": {
            "standing_speedup": headline.get("steady_speedup_vs_naive", 0.0),
            "standing_parity": 1.0 if parity_ok else 0.0,
        },
    }


def parse_floors(spec: str) -> dict[str, float]:
    """Parse ``REPRO_BENCH_FLOORS`` (``name=minimum`` pairs, comma-separated)."""
    floors: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, value = part.partition("=")
        name = name.strip()
        if name not in FLOOR_SCENARIOS:
            raise SystemExit(
                f"unknown benchmark floor {name!r}; expected one of {sorted(FLOOR_SCENARIOS)}"
            )
        try:
            floors[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"invalid benchmark floor {part!r}; expected {name}=<minimum>, "
                f"e.g. {name}=3.0"
            ) from None
    return floors


def enforce_floors(record: dict, floors: dict[str, float]) -> list[str]:
    """Return one failure message per gate whose value is below its floor."""
    failures = []
    for name, minimum in floors.items():
        value = record["gates"][name]
        if value < minimum:
            failures.append(
                f"{name}: {value:.2f} is below the regression floor {minimum:.2f} "
                f"({FLOOR_SCENARIOS[name]})"
            )
    return failures


def _check_floors_from_env(record: dict) -> list[str]:
    spec = os.environ.get("REPRO_BENCH_FLOORS", "")
    if not spec:
        return []
    failures = enforce_floors(record, parse_floors(spec))
    for failure in failures:
        print(f"FLOOR VIOLATION: {failure}", file=sys.stderr)
    return failures


def _print_record(record: dict) -> None:
    print(
        f"profile={record['profile']}  mesh_vertices={record['mesh_vertices']}  "
        f"steps={record['workload']['n_steps']}  "
        f"subscriptions={record['workload']['n_subscriptions']}"
    )
    for cell in record["cells"]:
        if cell["parity"] != 1.0:
            print(f"{cell['cell']:>6}  PARITY FAILURE")
            continue
        print(
            f"{cell['cell']:>6} resteer={cell['resteer_per_step']}  "
            f"updates {cell['n_update_events']:4d}  skips {cell['skips']:4d}  "
            f"recrawls {cell['recrawls']:3d}  moved_tests {cell['moved_tests']:6d}  "
            f"({cell['steady_speedup_vs_naive']:.2f}x steady, "
            f"{cell['speedup_vs_naive']:.2f}x total vs naive)"
        )
    gates = record["gates"]
    print(
        f"gates: standing_speedup={gates['standing_speedup']:.2f}  "
        f"standing_parity={gates['standing_parity']:.0f}"
    )


def main() -> int:
    record = run()
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    _print_record(record)
    print(f"record written to {RECORD_PATH}")
    return 1 if _check_floors_from_env(record) else 0


def test_standing_benchmark(profile, record_rows):
    """Pytest entry point: run the benchmark and persist the JSON record."""
    record = run(profile)
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    rows = [
        {
            "cell": cell["cell"],
            "resteer_per_step": cell.get("resteer_per_step", 0),
            "updates": cell.get("n_update_events", 0),
            "skips": cell.get("skips", 0),
            "recrawls": cell.get("recrawls", 0),
            "steady_speedup_vs_naive": cell.get("steady_speedup_vs_naive", 0.0),
            "total_speedup_vs_naive": cell.get("speedup_vs_naive", 0.0),
        }
        for cell in record["cells"]
    ]
    record_rows("bench_standing", rows, "Standing-query incremental evaluation benchmark")
    assert record["gates"]["standing_parity"] == 1.0
    failures = _check_floors_from_env(record)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    sys.exit(main())
