"""Shared benchmark plumbing.

Every benchmark module regenerates one table or figure of the paper via the
drivers in :mod:`repro.experiments.figures`, times the run with
pytest-benchmark, prints the resulting series (visible with ``-s``) and writes
it to ``benchmarks/results/<name>.txt`` so the numbers can be inspected after
the run and compared against EXPERIMENTS.md.

The dataset profile defaults to ``small`` and can be overridden with the
``REPRO_BENCH_PROFILE`` environment variable (``tiny`` for smoke runs,
``medium`` for a longer, closer-to-the-paper run).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import format_table  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def profile() -> str:
    """Dataset size profile used by all benchmarks."""
    return os.environ.get("REPRO_BENCH_PROFILE", "small")


@pytest.fixture(scope="session")
def record_rows():
    """Print a figure's rows and persist them under benchmarks/results/."""

    def recorder(name: str, rows, title: str) -> None:
        text = format_table(rows, title=title)
        print("\n" + text)
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return recorder


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
