"""Figure 7: sensitivity analysis (mesh detail, time steps, selectivity)."""

from conftest import run_once

from repro.experiments.figures import (
    figure7_mesh_detail_fixed_query,
    figure7_mesh_detail_fixed_results,
    figure7_selectivity,
    figure7_time_steps,
)


def test_figure7ab_mesh_detail_fixed_query(benchmark, profile, record_rows):
    rows = run_once(
        benchmark, figure7_mesh_detail_fixed_query, profile, n_steps=2, queries_per_step=6
    )
    record_rows(
        "fig07ab_mesh_detail_fixed_query",
        rows,
        "Figure 7(a,b) — mesh detail sweep, fixed query volume",
    )
    speedups = [row["speedup_work"] for row in rows]
    # Speedup grows with mesh detail (paper: 8x -> 10x).
    assert speedups[-1] > speedups[0]
    # Linear scan work grows proportionally with the dataset.
    linear = [row["linear_scan_work"] for row in rows]
    assert linear == sorted(linear)


def test_figure7cd_mesh_detail_fixed_results(benchmark, profile, record_rows):
    rows = run_once(
        benchmark,
        figure7_mesh_detail_fixed_results,
        profile,
        n_steps=2,
        queries_per_step=6,
        results_per_query=150,
    )
    record_rows(
        "fig07cd_mesh_detail_fixed_results",
        rows,
        "Figure 7(c,d) — mesh detail sweep, fixed result count",
    )
    speedups = [row["speedup_work"] for row in rows]
    assert speedups[-1] > speedups[0]


def test_figure7ef_time_steps(benchmark, profile, record_rows):
    rows = run_once(
        benchmark, figure7_time_steps, profile, steps_list=(2, 4, 6, 8, 10), queries_per_step=6
    )
    record_rows("fig07ef_time_steps", rows, "Figure 7(e,f) — time step sweep")
    work = [row["octopus_work"] for row in rows]
    # Total work grows linearly with the number of steps; speedup stays flat.
    assert work[-1] > 4 * work[0] * 0.9
    speedups = [row["speedup_work"] for row in rows]
    assert max(speedups) / min(speedups) < 1.15


def test_figure7gh_selectivity(benchmark, profile, record_rows):
    rows = run_once(
        benchmark,
        figure7_selectivity,
        profile,
        selectivities=(0.001, 0.005, 0.01, 0.02, 0.05),
        n_steps=2,
        queries_per_step=6,
    )
    record_rows("fig07gh_selectivity", rows, "Figure 7(g,h) — query selectivity sweep")
    speedups = [row["speedup_work"] for row in rows]
    # Speedup decreases with selectivity (paper: 17x down to 7x).
    assert speedups[0] > speedups[-1]
