"""Figure 12: the surface-approximation optimisation (accuracy vs speedup)."""

from conftest import run_once

from repro.experiments.figures import figure12_surface_approximation


def test_figure12_surface_approximation(benchmark, profile, record_rows):
    rows = run_once(
        benchmark,
        figure12_surface_approximation,
        profile,
        fractions=(0.001, 0.01, 0.1, 1.0),
        selectivities=(0.001, 0.01),
        n_queries=5,
    )
    record_rows("fig12_approximation", rows, "Figure 12 — surface approximation")
    for selectivity in {row["selectivity_pct"] for row in rows}:
        series = [row for row in rows if row["selectivity_pct"] == selectivity]
        series.sort(key=lambda row: row["approximation_pct"])
        accuracies = [row["accuracy_pct"] for row in series]
        speedups = [row["speedup_vs_exact"] for row in series]
        # Accuracy is monotone in the approximation fraction and exact at 100%.
        assert accuracies == sorted(accuracies)
        assert accuracies[-1] == 100.0
        # Probing fewer surface vertices can only help performance.
        assert speedups[0] >= speedups[-1]
        assert speedups[-1] == 1.0
