"""Figure 5: the neuroscience microbenchmark definitions."""

from conftest import run_once

from repro.experiments.figures import figure5_rows


def test_figure5_microbenchmark_table(benchmark, record_rows):
    rows = run_once(benchmark, figure5_rows)
    record_rows("fig05_microbenchmarks", rows, "Figure 5 — neuroscience microbenchmarks")
    assert [row["benchmark"] for row in rows] == ["A", "B", "C", "D"]
