"""Traffic benchmark for the sharded concurrent query service.

Replays a seeded mixed query/deformation workload (``repro.service.traffic``)
against a grid of ``(strategy, shard-count, client-count)`` cells and
records, per cell, sustained throughput (queries/s over the query phase),
request latency (p50/p99) and an order-independent results checksum:

* ``n_shards=0`` — the **sequential baseline**: one unsharded strategy
  answering every request in arrival order on a single thread;
* ``n_shards=K, n_clients=C`` — the sharded service, K per-shard strategies
  behind the routing/merge front-end, hammered by C client threads.

Cells that share a shard count must agree on the results checksum — the
concurrency-parity gate: threads may reorder *requests*, never *results*.
Cells with different shard counts are compared for throughput only (shard
cut faces let the service retrieve rare in-box vertices the unsharded crawl
has no seed for, so cross-shard-count runs are not bit-comparable; see
docs/service.md).

The recorded ``speedup_vs_sequential`` is wall-clock and therefore
hardware-honest: client threads only run in parallel where cores exist, and
the GIL serialises the pure-Python crawl rounds even then — the record keeps
``cpu_count`` next to the numbers so a single-core container's ~1x is not
mistaken for a regression.  Run it directly::

    REPRO_BENCH_PROFILE=tiny python benchmarks/bench_traffic.py

or through pytest (``pytest benchmarks/bench_traffic.py -s``).

CI regression gate: when ``REPRO_BENCH_FLOORS`` is set (comma-separated
``name=minimum`` pairs), the run fails if a gated value drops below its
floor.  Gates: ``traffic_qps`` (absolute queries/s of the sharded 4-shard
cell), ``traffic_parity`` (1.0 when every same-shard-count checksum pair
agrees), ``traffic_speedup`` (the sharded cell's wall-clock speedup vs. the
sequential baseline — only worth gating ≥1 on multi-core runners).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.datasets import neuron_largest  # noqa: E402
from repro.service import TRAFFIC_PROFILES, run_traffic  # noqa: E402

RECORD_PATH = Path(__file__).resolve().parents[1] / "BENCH_traffic.json"

REPS = 2
#: the benchmark grid: (strategy, n_shards [0 = sequential baseline], n_clients)
CELLS = [
    ("octopus", 0, 1),
    ("octopus", 1, 1),
    ("octopus", 4, 1),
    ("octopus", 4, 4),
    ("octopus-con", 0, 1),
    ("octopus-con", 4, 4),
]
#: gate name -> what it reads from the record (documented for parse_floors errors)
FLOOR_SCENARIOS = {
    "traffic_qps": "sharded-octopus 4-shard/4-client throughput (queries/s)",
    "traffic_parity": "1.0 iff same-shard-count cells agree on the results checksum",
    "traffic_speedup": "sharded-octopus 4/4 wall-clock speedup vs the sequential baseline",
}


def _run_cell(mesh, traffic_profile, strategy, n_shards, n_clients) -> dict:
    """Best-of-REPS run of one cell (throughput is max, latencies from that run)."""
    best = None
    for _ in range(REPS):
        cell = run_traffic(
            mesh, traffic_profile, n_shards=n_shards, n_clients=n_clients, strategy=strategy
        )
        if best is None or cell["throughput_qps"] > best["throughput_qps"]:
            best = cell
    return best


def run(profile: str | None = None) -> dict:
    profile = profile or os.environ.get("REPRO_BENCH_PROFILE", "small")
    traffic_profile = TRAFFIC_PROFILES.get(profile, TRAFFIC_PROFILES["small"])
    mesh = neuron_largest(profile)

    cells = []
    for strategy, n_shards, n_clients in CELLS:
        cell = _run_cell(mesh, traffic_profile, strategy, n_shards, n_clients)
        cells.append(cell)

    # wall-clock speedup of every cell against its strategy's sequential baseline
    baselines = {
        cell["strategy"].removeprefix("sequential-"): cell["throughput_qps"]
        for cell in cells
        if cell["n_shards"] == 0
    }
    for cell in cells:
        strategy = cell["strategy"].split("-", 1)[1]
        baseline_qps = baselines.get(strategy)
        cell["speedup_vs_sequential"] = (
            cell["throughput_qps"] / baseline_qps if baseline_qps else 0.0
        )

    # concurrency parity: same shard count => bit-identical results, no matter
    # how many client threads carved up the request stream
    parity_ok = True
    by_key: dict[tuple[str, int], set[int]] = {}
    for cell in cells:
        strategy = cell["strategy"].split("-", 1)[1]
        by_key.setdefault((strategy, cell["n_shards"]), set()).add(cell["results_checksum"])
    for checksums in by_key.values():
        parity_ok = parity_ok and len(checksums) == 1

    headline = next(
        cell
        for cell in cells
        if cell["strategy"] == "sharded-octopus"
        and cell["n_shards"] == max(c["n_shards"] for c in cells)
        and cell["n_clients"] == max(c["n_clients"] for c in cells)
    )
    return {
        "benchmark": "traffic",
        "profile": profile,
        "mesh_vertices": mesh.n_vertices,
        "traffic": {
            "n_steps": traffic_profile.n_steps,
            "n_clients": traffic_profile.n_clients,
            "requests_per_client": traffic_profile.requests_per_client,
            "queries_per_request": traffic_profile.queries_per_request,
            "selectivity": traffic_profile.selectivity,
            "seed": traffic_profile.seed,
            "total_queries": traffic_profile.total_queries(),
        },
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "reps": REPS,
        "cells": cells,
        "gates": {
            "traffic_qps": headline["throughput_qps"],
            "traffic_parity": 1.0 if parity_ok else 0.0,
            "traffic_speedup": headline["speedup_vs_sequential"],
        },
    }


def parse_floors(spec: str) -> dict[str, float]:
    """Parse ``REPRO_BENCH_FLOORS`` (``name=minimum`` pairs, comma-separated)."""
    floors: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, value = part.partition("=")
        name = name.strip()
        if name not in FLOOR_SCENARIOS:
            raise SystemExit(
                f"unknown benchmark floor {name!r}; expected one of {sorted(FLOOR_SCENARIOS)}"
            )
        try:
            floors[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"invalid benchmark floor {part!r}; expected {name}=<minimum>, "
                f"e.g. {name}=500"
            ) from None
    return floors


def enforce_floors(record: dict, floors: dict[str, float]) -> list[str]:
    """Return one failure message per gate whose value is below its floor."""
    failures = []
    for name, minimum in floors.items():
        value = record["gates"][name]
        if value < minimum:
            failures.append(
                f"{name}: {value:.2f} is below the regression floor {minimum:.2f} "
                f"({FLOOR_SCENARIOS[name]})"
            )
    return failures


def _check_floors_from_env(record: dict) -> list[str]:
    spec = os.environ.get("REPRO_BENCH_FLOORS", "")
    if not spec:
        return []
    failures = enforce_floors(record, parse_floors(spec))
    for failure in failures:
        print(f"FLOOR VIOLATION: {failure}", file=sys.stderr)
    return failures


def _print_record(record: dict) -> None:
    print(
        f"profile={record['profile']}  mesh_vertices={record['mesh_vertices']}  "
        f"cpu_count={record['cpu_count']}  queries/cell={record['traffic']['total_queries']}"
    )
    for cell in record["cells"]:
        print(
            f"{cell['strategy']:>22}  K={cell['n_shards']}  C={cell['n_clients']}  "
            f"{cell['throughput_qps']:8.0f} q/s  p50 {cell['p50_ms']:6.2f} ms  "
            f"p99 {cell['p99_ms']:6.2f} ms  ({cell['speedup_vs_sequential']:.2f}x vs sequential)"
        )
    gates = record["gates"]
    print(
        f"gates: traffic_qps={gates['traffic_qps']:.0f}  "
        f"traffic_parity={gates['traffic_parity']:.0f}  "
        f"traffic_speedup={gates['traffic_speedup']:.2f}"
    )


def main() -> int:
    record = run()
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    _print_record(record)
    print(f"record written to {RECORD_PATH}")
    return 1 if _check_floors_from_env(record) else 0


def test_traffic_benchmark(profile, record_rows):
    """Pytest entry point: run the benchmark and persist the JSON record."""
    record = run(profile)
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    rows = [
        {
            "cell": f"{cell['strategy']} K={cell['n_shards']} C={cell['n_clients']}",
            "throughput_qps": cell["throughput_qps"],
            "p50_ms": cell["p50_ms"],
            "p99_ms": cell["p99_ms"],
            "speedup": cell["speedup_vs_sequential"],
        }
        for cell in record["cells"]
    ]
    record_rows("bench_traffic", rows, "Sharded service traffic benchmark")
    assert record["gates"]["traffic_parity"] == 1.0
    failures = _check_floors_from_env(record)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    sys.exit(main())
