"""Figure 6: OCTOPUS vs LinearScan / Octree / LUR-Tree / QU-Trade on benchmarks A-D.

Figure 6(a) is the total query response time per approach and benchmark;
Figure 6(b) is the memory overhead.  Both come from the same comparison run,
so each benchmark letter gets one timed run whose rows carry both columns.
"""

import pytest
from conftest import run_once

from repro.experiments.figures import run_microbenchmark
from repro.experiments import neuron_largest
from repro.workloads import benchmark_by_id

_ALL_ROWS = {}


@pytest.mark.parametrize("benchmark_id", ["A", "B", "C", "D"])
def test_figure6_microbenchmark(benchmark, profile, record_rows, benchmark_id):
    mesh = neuron_largest(profile)
    rows = run_once(
        benchmark,
        run_microbenchmark,
        mesh,
        benchmark_by_id(benchmark_id),
        n_steps=3,
    )
    _ALL_ROWS[benchmark_id] = rows
    record_rows(
        f"fig06_benchmark_{benchmark_id}",
        rows,
        f"Figure 6 — benchmark {benchmark_id} (response time and memory overhead)",
    )
    by_name = {row["strategy"]: row for row in rows}
    # The paper's headline result: OCTOPUS beats the linear scan while paying
    # zero maintenance; every other index pays maintenance at every step.
    # (The wall-clock ordering *among the baselines* depends on absolute scale
    # and does not transfer to the scaled-down Python datasets — see
    # EXPERIMENTS.md — so it is reported in the table but not asserted.)
    assert by_name["octopus"]["speedup_vs_baseline_work"] > 1.0
    assert by_name["octopus"]["maintenance_time_s"] == 0.0
    for indexed in ("octree", "lur-tree", "qu-trade"):
        assert by_name[indexed]["maintenance_time_s"] > 0.0
    # Figure 6(b): linear scan has no overhead, OCTOPUS needs less memory than
    # the R-tree based approaches.
    assert by_name["linear-scan"]["memory_overhead_mb"] == 0.0
    assert by_name["octopus"]["memory_overhead_mb"] <= by_name["lur-tree"]["memory_overhead_mb"]
    assert by_name["octopus"]["memory_overhead_mb"] <= by_name["qu-trade"]["memory_overhead_mb"]
