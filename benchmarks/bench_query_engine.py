"""Microbenchmark for the zero-allocation query engine.

Measures, on the fig05-style point-query workload (small boxes centred on
random mesh vertices, microbenchmark-B selectivity):

* **batched vs. sequential** — ``OctopusExecutor.query_many(boxes)`` against
  the equivalent sequential ``query(box)`` loop (same executor, same boxes);
* **scratch vs. naive crawl** — crawls reusing one :class:`CrawlScratch`
  arena against crawls paying a fresh O(n_vertices) visited allocation per
  query;
* **fused vs. sequential crawl** — one shared-frontier ``crawl_many`` over an
  overlapping-box batch against the equivalent per-box ``crawl`` loop (both
  sides reusing a scratch arena), plus the fused work reduction (unique vs.
  attributed vertex visits);
* **fused vs. sequential walk** — one lockstep ``directed_walk_many`` over an
  overlapping batch of interior boxes against the equivalent per-box
  ``directed_walk`` loop, plus the walk-phase work sharing;
* **sparse deformation maintenance** — delta-keyed incremental maintenance
  (``on_step(delta)`` with an explicit moved set) against the full-recompute
  reference (the same strategy driven with ``delta.as_full()``), for
  OCTOPUS-CON's maintained grid and the three updatable R-tree baselines on a
  ``LocalizedPulseDeformation`` workload where only a small fraction of the
  vertices moves per step.  The gated ``speedup`` is the *minimum* across
  those strategies.
* **restructuring maintenance** — topology-delta-keyed incremental
  maintenance (``on_restructure(delta)`` with an explicit dirty set) against
  the delta-blind reference (the same strategy driven with
  ``delta.as_full()``: whole-surface reconciliation, full grid re-bin, STR
  bulk reload), for OCTOPUS's surface index, OCTOPUS-CON's maintained grid
  and the LUR-Tree, on rounds of localized cell splits.  The gated
  ``speedup`` is again the minimum across strategies.
* **paranoid overhead** — a clean run through the paranoid
  :class:`ResilientStrategy` wrapper against the bare strategy (same deltas,
  same queries).  The gated ``speedup`` is ``plain_s / paranoid_s``, so a
  floor of 0.9 caps the wrapper's validation tax at roughly 10%.

Writes a perf record to ``BENCH_query_engine.json`` at the repository root so
future PRs can track the trajectory, and prints the same numbers.  Run it
directly::

    REPRO_BENCH_PROFILE=tiny python benchmarks/bench_query_engine.py

or through pytest (``pytest benchmarks/bench_query_engine.py -s``).

CI regression gate: when ``REPRO_BENCH_FLOORS`` is set (comma-separated
``scenario=min_speedup`` pairs, e.g.
``batched=1.5,fused_crawl=2.0,fused_walk=1.2``), the run fails with a
non-zero exit status if any named scenario's measured speedup falls below
its floor.  See docs/performance.md ("The benchmark-regression CI gate")
for how the floors relate to the recorded numbers and when to update them.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.baselines import (  # noqa: E402
    LURTreeExecutor,
    QUTradeExecutor,
    RUMTreeExecutor,
)
from repro.core import (  # noqa: E402
    CrawlScratch,
    OctopusConExecutor,
    OctopusExecutor,
    ResilientStrategy,
    crawl,
    crawl_many,
    directed_walk,
    directed_walk_many,
)
from repro.experiments.datasets import neuron_largest  # noqa: E402
from repro.generators import neuron_mesh, structured_tetrahedral_mesh  # noqa: E402
from repro.mesh import Box3D, points_in_box  # noqa: E402
from repro.simulation import LocalizedPulseDeformation, split_cells_inplace  # noqa: E402
from repro.workloads import random_query_workload  # noqa: E402

RECORD_PATH = Path(__file__).resolve().parents[1] / "BENCH_query_engine.json"

#: fig05 microbenchmark-B style point queries: tiny selectivity, many boxes
POINT_QUERY_SELECTIVITY = 0.0008
N_QUERIES = 64
N_ROUNDS = 5
#: overlapping-box batch for the fused multi-query crawl scenario
N_OVERLAPPING_QUERIES = 32
#: overlapping interior boxes for the fused directed-walk scenario
N_WALK_QUERIES = 32

#: sparse-maintenance scenario: fraction of vertices moved per active step
SPARSE_FRACTION = 0.02
#: the scenario runs on dedicated mesh sizes rather than the profile mesh —
#: the O(motion)-vs-O(mesh) separation needs enough vertices to show, while
#: the RUM-Tree's degenerate full path (one R-tree insert per vertex per
#: step) needs few enough to stay affordable in a CI smoke run
SPARSE_MESH_RESOLUTION = 64
SPARSE_RUM_MESH_RESOLUTION = 24
SPARSE_STEPS = 6
SPARSE_RUM_STEPS = 3
#: repetitions per cheap strategy pair (best-of, like the other scenarios);
#: the RUM pair runs once — its full path is deliberately expensive
SPARSE_REPS = 3

#: restructuring-maintenance scenario: localized splits on a dedicated mesh —
#: a thin structured slab whose surface covers most of its vertices, so the
#: O(surface) full reconciliation and the O(event) narrowed one separate
#: cleanly (and the slab generates in milliseconds, unlike a large neuron)
RESTRUCTURE_MESH_SHAPE = (100, 100, 2)
RESTRUCTURE_ROUNDS = 4
RESTRUCTURE_CELLS = 8
RESTRUCTURE_REPS = 3

#: paranoid-overhead scenario: a clean run through the paranoid wrapper —
#: the floor gates how much the O(dirty) audits may cost on the fast path
PARANOID_MESH_RESOLUTION = 48
PARANOID_STEPS = 6
PARANOID_REPS = 3
PARANOID_FRACTION = 0.02
PARANOID_QUERIES = 8

#: which record section holds each floor-gated scenario's speedup
FLOOR_SCENARIOS = {
    "batched": "batched_vs_sequential",
    "scratch": "scratch_vs_naive_crawl",
    "fused_crawl": "fused_vs_sequential_crawl",
    "fused_walk": "fused_vs_sequential_walk",
    "sparse_maintenance": "sparse_deformation_maintenance",
    "restructuring_maintenance": "restructuring_maintenance",
    "paranoid_overhead": "paranoid_overhead",
}


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _best_of_interleaved(rounds: int, a, b) -> tuple[float, float]:
    """Best-of-N seconds for two contenders, alternating so neither benefits
    from cache-warming order."""
    a(), b()
    times_a, times_b = [], []
    for _ in range(rounds):
        times_a.append(_timed(a))
        times_b.append(_timed(b))
    return min(times_a), min(times_b)


def bench_batched_vs_sequential(mesh, boxes) -> dict:
    executor = OctopusExecutor()
    executor.prepare(mesh)

    sequential_time, batched_time = _best_of_interleaved(
        N_ROUNDS,
        lambda: [executor.query(box) for box in boxes],
        lambda: executor.query_many(boxes),
    )

    batched = executor.query_many(boxes)
    sequential = [executor.query(box) for box in boxes]
    assert all(a.same_vertices_as(b) for a, b in zip(batched, sequential))

    return {
        "n_queries": len(boxes),
        "sequential_s": sequential_time,
        "batched_s": batched_time,
        "speedup": sequential_time / max(batched_time, 1e-12),
    }


def bench_scratch_vs_naive_crawl(mesh, boxes) -> dict:
    start_sets = []
    for box in boxes:
        inside = np.nonzero(points_in_box(mesh.vertices, box))[0]
        start_sets.append(inside[:1])

    def naive():
        for box, starts in zip(boxes, start_sets):
            crawl(mesh, box, starts)  # fresh O(n_vertices) arena per call

    scratch = CrawlScratch()

    def reused():
        for box, starts in zip(boxes, start_sets):
            crawl(mesh, box, starts, scratch=scratch)

    naive_time, scratch_time = _best_of_interleaved(N_ROUNDS, naive, reused)
    return {
        "n_queries": len(boxes),
        "naive_s": naive_time,
        "scratch_s": scratch_time,
        "speedup": naive_time / max(scratch_time, 1e-12),
    }


def bench_fused_vs_sequential_crawl(mesh) -> dict:
    """Fused multi-query crawl on an overlapping-box batch vs. per-box crawls."""
    rng = np.random.default_rng(7)
    diagonal = float(np.linalg.norm(mesh.bounding_box().extents))
    center = mesh.vertices[mesh.n_vertices // 2]
    boxes = [
        Box3D.cube(center + rng.normal(0.0, 0.01 * diagonal, 3), 0.25 * diagonal)
        for _ in range(N_OVERLAPPING_QUERIES)
    ]
    start_sets = []
    for box in boxes:
        inside = np.nonzero(points_in_box(mesh.vertices, box))[0]
        start_sets.append(inside[:1])

    sequential_scratch = CrawlScratch()

    def sequential():
        for box, starts in zip(boxes, start_sets):
            crawl(mesh, box, starts, scratch=sequential_scratch)

    fused_scratch = CrawlScratch()

    def fused():
        crawl_many(mesh, boxes, start_sets, scratch=fused_scratch)

    sequential_time, fused_time = _best_of_interleaved(N_ROUNDS, sequential, fused)

    batch = crawl_many(mesh, boxes, start_sets, scratch=fused_scratch)
    independent = [
        crawl(mesh, box, starts, scratch=sequential_scratch)
        for box, starts in zip(boxes, start_sets)
    ]
    assert all(
        np.array_equal(a.result_ids, b.result_ids)
        for a, b in zip(batch.outcomes, independent)
    )

    return {
        "n_queries": len(boxes),
        "sequential_s": sequential_time,
        "fused_s": fused_time,
        "speedup": sequential_time / max(fused_time, 1e-12),
        "attributed_vertex_visits": batch.n_attributed_vertex_visits,
        "unique_vertex_visits": batch.n_unique_vertices_visited,
        "work_sharing_factor": batch.n_attributed_vertex_visits
        / max(batch.n_unique_vertices_visited, 1),
    }


def bench_fused_vs_sequential_walk(mesh) -> dict:
    """Fused lockstep walks on an overlapping interior batch vs. per-box walks.

    All walks start from the same surface vertex (the batched executor's
    probe-miss pattern on enclosed queries) towards small interior boxes
    jittered around the mesh centre, so the beams traverse largely the same
    corridor — the fused walk pays one gather and one distance kernel per
    lockstep round instead of one per query per step.
    """
    rng = np.random.default_rng(11)
    bounding = mesh.bounding_box()
    diagonal = float(np.linalg.norm(bounding.extents))
    interior = mesh.vertices[mesh.n_vertices // 2]
    boxes = [
        Box3D.cube(interior + rng.normal(0.0, 0.005 * diagonal, 3), 0.03 * diagonal)
        for _ in range(N_WALK_QUERIES)
    ]
    surface = mesh.surface_vertices()
    start = int(surface[0])
    starts = [start] * len(boxes)

    sequential_scratch = CrawlScratch()

    def sequential():
        for box in boxes:
            directed_walk(mesh, box, start, scratch=sequential_scratch)

    fused_scratch = CrawlScratch()

    def fused():
        directed_walk_many(mesh, boxes, starts, scratch=fused_scratch)

    sequential_time, fused_time = _best_of_interleaved(N_ROUNDS, sequential, fused)

    batch = directed_walk_many(mesh, boxes, starts, scratch=fused_scratch)
    independent = [
        directed_walk(mesh, box, start, scratch=sequential_scratch) for box in boxes
    ]
    assert all(
        a.found_id == b.found_id and a.n_steps == b.n_steps
        for a, b in zip(batch.outcomes, independent)
    )

    return {
        "n_queries": len(boxes),
        "sequential_s": sequential_time,
        "fused_s": fused_time,
        "speedup": sequential_time / max(fused_time, 1e-12),
        "attributed_distance_computations": batch.n_attributed_distance_computations,
        "unique_distance_computations": batch.n_unique_distance_computations,
        "work_sharing_factor": batch.n_attributed_distance_computations
        / max(batch.n_unique_distance_computations, 1),
        "lockstep_rounds": batch.n_rounds,
        "sequential_steps": sum(o.n_steps for o in batch.outcomes),
    }


def bench_sparse_deformation_maintenance() -> dict:
    """Delta-keyed incremental maintenance vs. the full-recompute reference.

    For each strategy, two instances are prepared on the same mesh and driven
    through the same :class:`LocalizedPulseDeformation` steps: one receives
    the real sparse deltas (incremental path), the other ``delta.as_full()``
    (the delta-blind whole-mesh path).  Each strategy's speedup is the ratio
    of their accumulated maintenance seconds; the scenario's headline
    ``speedup`` — the number the CI floor gates — is the minimum across
    strategies, so *every* incremental path must hold its advantage.
    """

    def run_pair(make_incremental, make_reference, base_mesh, n_steps, reps):
        # Best-of-N over whole pair runs (fresh executors, identically
        # re-evolved mesh each rep) so a load spike on the shared runner
        # cannot sink the measured ratio; entry counts are deterministic and
        # identical across reps.
        best_incremental_s = best_full_s = None
        entry = None
        for _ in range(reps):
            mesh = base_mesh.copy()
            incremental = make_incremental()
            reference = make_reference()
            incremental.prepare(mesh)
            reference.prepare(mesh)
            model = LocalizedPulseDeformation(
                sparsity=SPARSE_FRACTION, amplitude=0.002, seed=3
            )
            model.bind(mesh)
            moved = 0
            for step in range(1, n_steps + 1):
                delta = model.apply(step)
                moved += delta.n_moved
                incremental.on_step(delta)
                reference.on_step(delta.as_full())
            if best_incremental_s is None or incremental.maintenance_time < best_incremental_s:
                best_incremental_s = incremental.maintenance_time
            if best_full_s is None or reference.maintenance_time < best_full_s:
                best_full_s = reference.maintenance_time
            entry = {
                "mesh_vertices": mesh.n_vertices,
                "n_steps": n_steps,
                "reps": reps,
                "moved_vertices": moved,
                "incremental_entries": incremental.maintenance_entries,
                "full_entries": reference.maintenance_entries,
            }
        entry["incremental_s"] = best_incremental_s
        entry["full_s"] = best_full_s
        entry["speedup"] = best_full_s / max(best_incremental_s, 1e-12)
        return entry

    mesh = neuron_mesh(SPARSE_MESH_RESOLUTION, name="sparse-bench")
    rum_mesh = neuron_mesh(SPARSE_RUM_MESH_RESOLUTION, name="sparse-bench-rum")
    strategies = {
        "octopus-con": run_pair(
            lambda: OctopusConExecutor(grid_maintenance="incremental"),
            lambda: OctopusConExecutor(grid_maintenance="rebuild"),
            mesh,
            SPARSE_STEPS,
            SPARSE_REPS,
        ),
        "lur-tree": run_pair(
            LURTreeExecutor, LURTreeExecutor, mesh, SPARSE_STEPS, SPARSE_REPS
        ),
        "qu-trade": run_pair(
            QUTradeExecutor, QUTradeExecutor, mesh, SPARSE_STEPS, SPARSE_REPS
        ),
        "rum-tree": run_pair(
            RUMTreeExecutor, RUMTreeExecutor, rum_mesh, SPARSE_RUM_STEPS, 1
        ),
    }
    return {
        "sparsity": SPARSE_FRACTION,
        "strategies": strategies,
        "speedup": min(entry["speedup"] for entry in strategies.values()),
    }


def bench_restructuring_maintenance() -> dict:
    """Topology-delta-keyed incremental maintenance vs. the rebuild reference.

    Each round splits a localized clump of cells in place and hands the
    resulting :class:`TopologyDelta` to two instances of the same strategy:
    one receives the real sparse delta (incremental path — narrowed
    surface-index reconciliation for OCTOPUS, a frozen-geometry tail splice
    for OCTOPUS-CON's maintained grid, ascending-id inserts of the appended
    centroids for the LUR-Tree), the other ``delta.as_full()`` (the
    delta-blind path: whole-surface diff / full re-bin / STR bulk reload).
    The mesh-side surface re-extraction is warmed before timing either
    contender, so the ratio isolates the *index* maintenance.  The headline
    ``speedup`` — the number the CI floor gates — is the minimum across
    strategies.
    """

    def run_pair(make_incremental, make_reference, base_mesh, reps):
        best_incremental_s = best_full_s = None
        entry = None
        for _ in range(reps):
            mesh = base_mesh.copy()
            incremental = make_incremental()
            reference = make_reference()
            incremental.prepare(mesh)
            reference.prepare(mesh)
            dirty = 0
            for round_index in range(RESTRUCTURE_ROUNDS):
                offset = (1 + round_index) * 101 % max(mesh.n_cells - RESTRUCTURE_CELLS, 1)
                event = split_cells_inplace(
                    mesh, np.arange(offset, offset + RESTRUCTURE_CELLS)
                )
                delta = event.delta
                dirty += delta.n_dirty
                # Warm the mesh-side surface cache: re-extracting the surface
                # after a connectivity change is mesh work shared by every
                # consumer, not part of either contender's index maintenance.
                mesh.surface_vertices()
                incremental.on_restructure(delta)
                reference.on_restructure(delta.as_full())
            if best_incremental_s is None or incremental.maintenance_time < best_incremental_s:
                best_incremental_s = incremental.maintenance_time
            if best_full_s is None or reference.maintenance_time < best_full_s:
                best_full_s = reference.maintenance_time
            entry = {
                "mesh_vertices": mesh.n_vertices,
                "rounds": RESTRUCTURE_ROUNDS,
                "cells_per_round": RESTRUCTURE_CELLS,
                "reps": reps,
                "dirty_vertices": dirty,
                "incremental_entries": incremental.maintenance_entries,
                "full_entries": reference.maintenance_entries,
            }
        entry["incremental_s"] = best_incremental_s
        entry["full_s"] = best_full_s
        entry["speedup"] = best_full_s / max(best_incremental_s, 1e-12)
        return entry

    mesh = structured_tetrahedral_mesh(RESTRUCTURE_MESH_SHAPE, name="restructure-bench")
    strategies = {
        "octopus": run_pair(
            OctopusExecutor, OctopusExecutor, mesh, RESTRUCTURE_REPS
        ),
        "octopus-con": run_pair(
            lambda: OctopusConExecutor(grid_maintenance="incremental"),
            lambda: OctopusConExecutor(grid_maintenance="rebuild"),
            mesh,
            RESTRUCTURE_REPS,
        ),
        "lur-tree": run_pair(
            LURTreeExecutor, LURTreeExecutor, mesh, RESTRUCTURE_REPS
        ),
    }
    return {
        "rounds": RESTRUCTURE_ROUNDS,
        "cells_per_round": RESTRUCTURE_CELLS,
        "strategies": strategies,
        "speedup": min(entry["speedup"] for entry in strategies.values()),
    }


def bench_paranoid_overhead() -> dict:
    """Paranoid :class:`ResilientStrategy` wrapper vs. the bare strategy.

    Both contenders are OCTOPUS-CON with incremental grid maintenance, driven
    through the same clean sparse-deformation steps and per-step query
    batches.  The recorded ``speedup`` is ``plain_s / paranoid_s`` — at most
    ~1.0 by construction, since the wrapper only *adds* O(dirty) delta
    validation and dispatch indirection on top of the same work.  The CI
    floor (0.9) therefore caps the paranoid tax at roughly 10% of the fast
    path; the run asserts the ladder never fires (a degradation would make
    the ratio meaningless).
    """
    base_mesh = neuron_mesh(PARANOID_MESH_RESOLUTION, name="paranoid-bench")

    def run_once() -> tuple[float, float]:
        mesh = base_mesh.copy()
        plain = OctopusConExecutor(grid_maintenance="incremental")
        paranoid = ResilientStrategy(
            OctopusConExecutor(grid_maintenance="incremental"), paranoid=True
        )
        plain.prepare(mesh)
        paranoid.prepare(mesh)
        model = LocalizedPulseDeformation(
            sparsity=PARANOID_FRACTION, amplitude=0.002, seed=3
        )
        model.bind(mesh)
        boxes = random_query_workload(
            mesh, selectivity=0.005, n_queries=PARANOID_QUERIES, seed=5
        ).boxes
        # Warm both contenders before timing: the first query pays mesh-side
        # lazy construction (CSR adjacency, surface caches) shared via the
        # mesh, which would otherwise land entirely on whoever runs first.
        plain.query_many(boxes)
        paranoid.query_many(boxes)
        plain_s = paranoid_s = 0.0
        for step in range(1, PARANOID_STEPS + 1):
            delta = model.apply(step)
            start = time.perf_counter()
            plain.on_step(delta)
            plain.query_many(boxes)
            plain_s += time.perf_counter() - start
            start = time.perf_counter()
            paranoid.on_step(delta)
            paranoid.query_many(boxes)
            paranoid_s += time.perf_counter() - start
        assert not paranoid.drain_degradation_events()  # the run really was clean
        return plain_s, paranoid_s

    best_plain_s = best_paranoid_s = None
    for _ in range(PARANOID_REPS):
        plain_s, paranoid_s = run_once()
        if best_plain_s is None or plain_s < best_plain_s:
            best_plain_s = plain_s
        if best_paranoid_s is None or paranoid_s < best_paranoid_s:
            best_paranoid_s = paranoid_s
    return {
        "mesh_vertices": base_mesh.n_vertices,
        "n_steps": PARANOID_STEPS,
        "n_queries": PARANOID_QUERIES,
        "reps": PARANOID_REPS,
        "plain_s": best_plain_s,
        "paranoid_s": best_paranoid_s,
        "speedup": best_plain_s / max(best_paranoid_s, 1e-12),
    }


def parse_floors(spec: str) -> dict[str, float]:
    """Parse ``REPRO_BENCH_FLOORS`` (``name=min_speedup`` pairs, comma-separated)."""
    floors: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, value = part.partition("=")
        name = name.strip()
        if name not in FLOOR_SCENARIOS:
            raise SystemExit(
                f"unknown benchmark floor {name!r}; expected one of {sorted(FLOOR_SCENARIOS)}"
            )
        try:
            floors[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"invalid benchmark floor {part!r}; expected {name}=<min_speedup>, "
                f"e.g. {name}=1.5"
            ) from None
    return floors


def enforce_floors(record: dict, floors: dict[str, float]) -> list[str]:
    """Return one failure message per scenario whose speedup is below its floor."""
    failures = []
    for name, minimum in floors.items():
        speedup = record[FLOOR_SCENARIOS[name]]["speedup"]
        if speedup < minimum:
            failures.append(
                f"{name}: speedup {speedup:.2f}x is below the regression floor "
                f"{minimum:.2f}x (scenario {FLOOR_SCENARIOS[name]})"
            )
    return failures


def run(profile: str | None = None) -> dict:
    profile = profile or os.environ.get("REPRO_BENCH_PROFILE", "small")
    mesh = neuron_largest(profile)
    workload = random_query_workload(
        mesh,
        selectivity=POINT_QUERY_SELECTIVITY,
        n_queries=N_QUERIES,
        seed=42,
        description="fig05-style point queries",
    )
    record = {
        "benchmark": "query_engine",
        "profile": profile,
        "mesh_vertices": mesh.n_vertices,
        "selectivity": POINT_QUERY_SELECTIVITY,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "batched_vs_sequential": bench_batched_vs_sequential(mesh, workload.boxes),
        "scratch_vs_naive_crawl": bench_scratch_vs_naive_crawl(mesh, workload.boxes),
        "fused_vs_sequential_crawl": bench_fused_vs_sequential_crawl(mesh),
        "fused_vs_sequential_walk": bench_fused_vs_sequential_walk(mesh),
        "sparse_deformation_maintenance": bench_sparse_deformation_maintenance(),
        "restructuring_maintenance": bench_restructuring_maintenance(),
        "paranoid_overhead": bench_paranoid_overhead(),
    }
    return record


def _print_record(record: dict) -> None:
    batched = record["batched_vs_sequential"]
    scratch = record["scratch_vs_naive_crawl"]
    fused = record["fused_vs_sequential_crawl"]
    walk = record["fused_vs_sequential_walk"]
    print(f"profile={record['profile']}  mesh_vertices={record['mesh_vertices']}")
    print(
        f"batched vs sequential: {batched['sequential_s'] * 1e3:.2f} ms -> "
        f"{batched['batched_s'] * 1e3:.2f} ms  ({batched['speedup']:.2f}x)"
    )
    print(
        f"scratch vs naive crawl: {scratch['naive_s'] * 1e3:.2f} ms -> "
        f"{scratch['scratch_s'] * 1e3:.2f} ms  ({scratch['speedup']:.2f}x)"
    )
    print(
        f"fused vs sequential crawl: {fused['sequential_s'] * 1e3:.2f} ms -> "
        f"{fused['fused_s'] * 1e3:.2f} ms  ({fused['speedup']:.2f}x, "
        f"work sharing {fused['work_sharing_factor']:.1f}x)"
    )
    print(
        f"fused vs sequential walk: {walk['sequential_s'] * 1e3:.2f} ms -> "
        f"{walk['fused_s'] * 1e3:.2f} ms  ({walk['speedup']:.2f}x, "
        f"work sharing {walk['work_sharing_factor']:.1f}x, "
        f"{walk['sequential_steps']} steps in {walk['lockstep_rounds']} rounds)"
    )
    sparse = record["sparse_deformation_maintenance"]
    for name, entry in sparse["strategies"].items():
        print(
            f"sparse maintenance [{name}]: {entry['full_s'] * 1e3:.2f} ms -> "
            f"{entry['incremental_s'] * 1e3:.2f} ms  ({entry['speedup']:.2f}x, "
            f"{entry['incremental_entries']} vs {entry['full_entries']} entries)"
        )
    print(f"sparse maintenance (min across strategies): {sparse['speedup']:.2f}x")
    restructuring = record["restructuring_maintenance"]
    for name, entry in restructuring["strategies"].items():
        print(
            f"restructuring maintenance [{name}]: {entry['full_s'] * 1e3:.2f} ms -> "
            f"{entry['incremental_s'] * 1e3:.2f} ms  ({entry['speedup']:.2f}x, "
            f"{entry['incremental_entries']} vs {entry['full_entries']} entries)"
        )
    print(
        f"restructuring maintenance (min across strategies): {restructuring['speedup']:.2f}x"
    )
    paranoid = record["paranoid_overhead"]
    print(
        f"paranoid overhead: {paranoid['plain_s'] * 1e3:.2f} ms -> "
        f"{paranoid['paranoid_s'] * 1e3:.2f} ms  ({paranoid['speedup']:.2f}x)"
    )


def _check_floors_from_env(record: dict) -> list[str]:
    spec = os.environ.get("REPRO_BENCH_FLOORS", "")
    if not spec:
        return []
    failures = enforce_floors(record, parse_floors(spec))
    for failure in failures:
        print(f"FLOOR VIOLATION: {failure}", file=sys.stderr)
    return failures


def main() -> int:
    record = run()
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    _print_record(record)
    print(f"record written to {RECORD_PATH}")
    return 1 if _check_floors_from_env(record) else 0


def test_query_engine_benchmark(profile, record_rows):
    """Pytest entry point: run the benchmark and persist the JSON record."""
    record = run(profile)
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    batched = record["batched_vs_sequential"]
    scratch = record["scratch_vs_naive_crawl"]
    fused = record["fused_vs_sequential_crawl"]
    walk = record["fused_vs_sequential_walk"]
    rows = [
        {
            "comparison": "batched vs sequential",
            "baseline_s": batched["sequential_s"],
            "optimized_s": batched["batched_s"],
            "speedup": batched["speedup"],
        },
        {
            "comparison": "scratch vs naive crawl",
            "baseline_s": scratch["naive_s"],
            "optimized_s": scratch["scratch_s"],
            "speedup": scratch["speedup"],
        },
        {
            "comparison": "fused vs sequential crawl",
            "baseline_s": fused["sequential_s"],
            "optimized_s": fused["fused_s"],
            "speedup": fused["speedup"],
        },
        {
            "comparison": "fused vs sequential walk",
            "baseline_s": walk["sequential_s"],
            "optimized_s": walk["fused_s"],
            "speedup": walk["speedup"],
        },
    ]
    sparse = record["sparse_deformation_maintenance"]
    rows.extend(
        {
            "comparison": f"sparse maintenance [{name}]",
            "baseline_s": entry["full_s"],
            "optimized_s": entry["incremental_s"],
            "speedup": entry["speedup"],
        }
        for name, entry in sparse["strategies"].items()
    )
    restructuring = record["restructuring_maintenance"]
    rows.extend(
        {
            "comparison": f"restructuring maintenance [{name}]",
            "baseline_s": entry["full_s"],
            "optimized_s": entry["incremental_s"],
            "speedup": entry["speedup"],
        }
        for name, entry in restructuring["strategies"].items()
    )
    paranoid = record["paranoid_overhead"]
    rows.append(
        {
            "comparison": "paranoid wrapper overhead",
            "baseline_s": paranoid["plain_s"],
            "optimized_s": paranoid["paranoid_s"],
            "speedup": paranoid["speedup"],
        }
    )
    record_rows("bench_query_engine", rows, "Query engine microbenchmark")
    failures = _check_floors_from_env(record)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    sys.exit(main())
