"""Ablation (not a paper figure): why the crawl starts from ALL surface vertices.

Section IV-C argues that on a non-convex mesh a range query can intersect
several disjoint sub-meshes, so crawling from a single vertex inside the query
may miss part of the result.  This ablation quantifies the completeness loss
of a single-start crawl versus the full OCTOPUS surface probe on the neuron
(non-convex) dataset.
"""

from conftest import run_once

from repro.core import OctopusExecutor, crawl
from repro.experiments import neuron_largest
from repro.workloads import random_query_workload


def _rows(profile, n_queries=12, selectivity=0.002, seed=0):
    mesh = neuron_largest(profile)
    octopus = OctopusExecutor()
    octopus.prepare(mesh)
    workload = random_query_workload(mesh, selectivity=selectivity, n_queries=n_queries, seed=seed)
    incomplete = 0
    total_recall = 0.0
    for box in workload.boxes:
        full = octopus.query(box)
        # Single-start crawl: pick one arbitrary result vertex as the seed.
        if full.n_results == 0:
            total_recall += 1.0
            continue
        single = crawl(mesh, box, full.vertex_ids[:1])
        recall = single.result_ids.size / full.n_results
        total_recall += recall
        if single.result_ids.size < full.n_results:
            incomplete += 1
    return [
        {
            "queries": len(workload.boxes),
            "incomplete_single_start_queries": incomplete,
            "mean_single_start_recall_pct": 100.0 * total_recall / len(workload.boxes),
            "octopus_recall_pct": 100.0,
        }
    ]


def test_ablation_single_vs_all_surface_starts(benchmark, profile, record_rows):
    rows = run_once(benchmark, _rows, profile)
    record_rows(
        "ablation_surface_starts",
        rows,
        "Ablation — single-start crawl vs OCTOPUS surface probe (non-convex mesh)",
    )
    row = rows[0]
    # OCTOPUS is always complete by construction; a single-start crawl is not
    # guaranteed to be (it may or may not lose results for a given workload,
    # but it can never do better).
    assert row["mean_single_start_recall_pct"] <= 100.0
