"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in legacy mode (``pip install -e . --no-use-pep517``)
on environments whose setuptools/wheel combination cannot build PEP 660
editable wheels (e.g. offline machines without the ``wheel`` package).
"""

from setuptools import setup

setup()
