"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, run_experiment


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["figure5"])
        assert args.experiment == "figure5"
        assert args.profile == "small"
        assert args.output is None

    def test_profile_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure5", "--profile", "huge"])


class TestExperimentRegistry:
    def test_every_registered_name_maps_to_a_driver(self):
        # Every figure family of the paper's evaluation is reachable from the
        # CLI, plus the maintenance-pipeline scenarios (sparse deformation,
        # restructuring, the sparsity sweep), the chaos/fault-injection run
        # the sharded-service traffic cells, the result-cache comparison and
        # the standing-subscription ledger.
        expected = {
            "figure4", "figure5", "figure6",
            "figure7-detail", "figure7-results", "figure7-steps", "figure7-selectivity",
            "figure9-convex", "figure9-grid",
            "figure10-breakdown", "figure10-footprint",
            "figure11", "figure12", "figure13", "figure14", "figure15",
            "sparse-maintenance", "restructuring-maintenance", "sparsity-sweep",
            "fault-injection", "traffic", "cache", "standing",
        }
        assert expected == set(EXPERIMENTS)

    def test_run_experiment_renders_table(self):
        text = run_experiment("figure5", profile="tiny")
        assert "Figure 5" in text
        assert "Structural Validation" in text

    def test_run_experiment_unknown_name(self):
        with pytest.raises(SystemExit):
            run_experiment("figure99", profile="tiny")


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure4" in out and "figure15" in out

    def test_single_experiment_with_output_file(self, tmp_path, capsys):
        target = tmp_path / "out" / "figure5.txt"
        assert main(["figure5", "--profile", "tiny", "--output", str(target)]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert target.exists()
        assert "Structural Validation" in target.read_text()

    def test_dataset_backed_experiment(self, capsys):
        assert main(["figure4", "--profile", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "surface_to_volume" in out

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            main(["figure99"])
