"""Degenerate queries behave identically across every execution strategy.

Zero-volume boxes are valid (closed-box semantics), inverted or non-finite
boxes raise :class:`~repro.errors.QueryError` everywhere, and empty meshes
answer every query with an empty result — no strategy gets to pick its own
backend-specific behaviour for the edge cases.
"""

import numpy as np
import pytest

from repro.core.delta import DeformationDelta, TopologyDelta
from repro.errors import QueryError
from repro.experiments.harness import make_strategy
from repro.mesh import Box3D, TetrahedralMesh

ALL_STRATEGIES = (
    "octopus",
    "octopus-con",
    "linear-scan",
    "octree",
    "kd-tree",
    "grid",
    "lur-tree",
    "qu-trade",
    "rum-tree",
)


def empty_mesh():
    return TetrahedralMesh(
        np.empty((0, 3), dtype=np.float64), np.empty((0, 4), dtype=np.int64), name="empty"
    )


def inverted_box():
    box = Box3D((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    box.lo[0] = 2.0  # Box3D validates at construction; callers can still mutate
    return box


def nan_box():
    box = Box3D((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    box.hi[1] = np.nan
    return box


@pytest.fixture(params=ALL_STRATEGIES)
def strategy_name(request):
    return request.param


class TestEmptyMesh:
    def test_lifecycle_and_queries_are_silently_empty(self, strategy_name):
        strategy = make_strategy(strategy_name)
        strategy.prepare(empty_mesh())
        assert strategy.on_step(DeformationDelta.full(0)) >= 0.0
        assert strategy.on_restructure(TopologyDelta.full(0)) >= 0.0
        box = Box3D((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        result = strategy.query(box)
        assert result.vertex_ids.size == 0
        assert result.vertex_ids.dtype == np.int64
        for batched in strategy.query_many([box, box]):
            assert batched.vertex_ids.size == 0


class TestZeroVolumeBox:
    def test_plane_query_agrees_with_linear_scan(self, strategy_name, grid_mesh):
        mesh = grid_mesh.copy()
        plane = Box3D((0.4, 0.0, 0.0), (0.4, 1.0, 1.0))
        expected = np.nonzero(np.isclose(mesh.vertices[:, 0], 0.4))[0].astype(np.int64)
        assert expected.size  # the lattice has a vertex plane at x=0.4
        strategy = make_strategy(strategy_name)
        strategy.prepare(mesh)
        assert np.array_equal(strategy.query(plane).vertex_ids, expected)


class TestMalformedBoxes:
    @pytest.mark.parametrize("make_box", [inverted_box, nan_box])
    def test_query_raises_query_error(self, strategy_name, grid_mesh, make_box):
        strategy = make_strategy(strategy_name)
        strategy.prepare(grid_mesh.copy())
        with pytest.raises(QueryError):
            strategy.query(make_box())

    @pytest.mark.parametrize("make_box", [inverted_box, nan_box])
    def test_query_many_raises_query_error(self, strategy_name, grid_mesh, make_box):
        strategy = make_strategy(strategy_name)
        strategy.prepare(grid_mesh.copy())
        good = Box3D((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        with pytest.raises(QueryError):
            strategy.query_many([good, make_box()])
