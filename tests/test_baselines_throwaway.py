"""Tests for the throwaway (rebuild-per-step) baselines and the linear scan."""

import numpy as np
import pytest

from repro.baselines import (
    KDTree,
    LinearScanExecutor,
    Octree,
    ThrowawayGridExecutor,
    ThrowawayKDTreeExecutor,
    ThrowawayOctreeExecutor,
)
from repro.core import QueryCounters
from repro.errors import SpatialIndexError
from repro.mesh import Box3D, points_in_box
from repro.simulation import DeformationDelta, RandomWalkDeformation
from repro.workloads import random_query_workload


def brute_force(positions, box):
    return np.nonzero(points_in_box(positions, box))[0]


class TestLinearScan:
    def test_matches_brute_force(self, neuron_small, rng):
        linear = LinearScanExecutor()
        linear.prepare(neuron_small)
        for _ in range(5):
            corners = rng.uniform(-1, 1, size=(2, 3))
            box = Box3D(corners.min(axis=0), corners.max(axis=0))
            result = linear.query(box)
            assert np.array_equal(result.vertex_ids, brute_force(neuron_small.vertices, box))

    def test_scans_every_vertex(self, neuron_small):
        linear = LinearScanExecutor()
        linear.prepare(neuron_small)
        result = linear.query(Box3D.cube((0, 0, 0), 0.1))
        assert result.counters.vertices_scanned == neuron_small.n_vertices

    def test_no_memory_overhead_and_no_maintenance(self, neuron_small):
        linear = LinearScanExecutor()
        linear.prepare(neuron_small)
        assert linear.memory_overhead_bytes() == 0
        assert linear.on_step(DeformationDelta.full(neuron_small.n_vertices)) == 0.0


class TestOctreeStructure:
    def test_query_matches_brute_force(self, rng):
        positions = rng.uniform(size=(3000, 3))
        octree = Octree(bucket_size=64)
        octree.build(positions)
        for _ in range(15):
            corners = rng.uniform(size=(2, 3))
            box = Box3D(corners.min(axis=0), corners.max(axis=0))
            assert np.array_equal(octree.query(box, positions), brute_force(positions, box))

    def test_bucket_splitting(self, rng):
        positions = rng.uniform(size=(1000, 3))
        coarse = Octree(bucket_size=2000)
        coarse.build(positions)
        fine = Octree(bucket_size=32)
        fine.build(positions)
        assert coarse.n_nodes == 1
        assert fine.n_nodes > 8

    def test_counters(self, rng):
        positions = rng.uniform(size=(500, 3))
        octree = Octree(bucket_size=32)
        octree.build(positions)
        counters = QueryCounters()
        octree.query(Box3D.cube((0.5, 0.5, 0.5), 0.4), positions, counters)
        assert counters.index_nodes_visited > 0
        assert counters.vertices_scanned > 0

    def test_errors(self):
        with pytest.raises(SpatialIndexError):
            Octree(bucket_size=0)
        octree = Octree()
        with pytest.raises(SpatialIndexError):
            octree.query(Box3D.cube((0, 0, 0), 1), np.zeros((1, 3)))
        with pytest.raises(SpatialIndexError):
            octree.build(np.zeros((0, 3)))


class TestKDTreeStructure:
    def test_query_matches_brute_force(self, rng):
        positions = rng.uniform(size=(2500, 3))
        tree = KDTree(bucket_size=32)
        tree.build(positions)
        for _ in range(15):
            corners = rng.uniform(size=(2, 3))
            box = Box3D(corners.min(axis=0), corners.max(axis=0))
            assert np.array_equal(tree.query(box, positions), brute_force(positions, box))

    def test_handles_duplicate_coordinates(self):
        positions = np.zeros((100, 3))
        positions[:, 0] = 0.5
        tree = KDTree(bucket_size=8)
        tree.build(positions)
        result = tree.query(Box3D.cube((0.5, 0, 0), 0.2), positions)
        assert result.size == 100

    def test_errors(self):
        with pytest.raises(SpatialIndexError):
            KDTree(bucket_size=0)
        tree = KDTree()
        with pytest.raises(SpatialIndexError):
            tree.query(Box3D.cube((0, 0, 0), 1), np.zeros((1, 3)))


@pytest.mark.parametrize(
    "executor_factory",
    [
        lambda: ThrowawayOctreeExecutor(bucket_size=64),
        lambda: ThrowawayKDTreeExecutor(bucket_size=64),
        lambda: ThrowawayGridExecutor(resolution=8),
    ],
    ids=["octree", "kd-tree", "grid"],
)
class TestThrowawayExecutors:
    def test_matches_linear_scan_and_rebuilds(self, executor_factory, neuron_small):
        mesh = neuron_small.copy()
        strategy = executor_factory()
        strategy.prepare(mesh)
        linear = LinearScanExecutor()
        linear.prepare(mesh)
        deformation = RandomWalkDeformation(amplitude=0.002, seed=0)
        deformation.bind(mesh)
        for step in range(1, 3):
            delta = deformation.apply(step)
            maintenance = strategy.on_step(delta)
            assert maintenance > 0.0                      # a rebuild really happened
            workload = random_query_workload(mesh, selectivity=0.02, n_queries=3, seed=step)
            for box in workload.boxes:
                assert strategy.query(box).same_vertices_as(linear.query(box))
        # Rebuilds touch every vertex at every step.
        assert strategy.maintenance_entries == 2 * mesh.n_vertices

    def test_memory_overhead_positive(self, executor_factory, neuron_small):
        strategy = executor_factory()
        strategy.prepare(neuron_small)
        assert strategy.memory_overhead_bytes() > 0
