"""Docs stay navigable: the documented corpus exists and its links resolve.

The CI docs job runs this module (plus ``examples/quickstart.py``) so a moved
file or a renamed doc page fails the build instead of silently breaking the
README's navigation.  Only intra-repo links are checked — external URLs are
deliberately left alone (no network in CI).
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: markdown inline links: [text](target); bare anchors and images included
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def test_documentation_corpus_exists():
    names = {path.name for path in _doc_files()}
    assert "README.md" in names
    assert "architecture.md" in names
    assert "performance.md" in names


def test_intra_repo_links_resolve():
    missing: list[str] = []
    for doc in _doc_files():
        for match in LINK_PATTERN.finditer(doc.read_text()):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue  # pure in-page anchor
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                missing.append(f"{doc.relative_to(REPO_ROOT)} -> {target}")
    assert not missing, "broken intra-repo links:\n" + "\n".join(missing)


def test_quickstart_example_is_runnable_source():
    quickstart = REPO_ROOT / "examples" / "quickstart.py"
    assert quickstart.exists()
    compile(quickstart.read_text(), str(quickstart), "exec")
