"""The kernel backend registry and kernel-level parity.

Registry behaviour (spec grammar, environment resolution, the clean numba
fallback) plus bit-level parity of the numba kernel *bodies* against the
NumPy reference.  The bodies are exercised through
``NumbaKernels(force_interpreted=True)`` — the identical code numba would
compile, run as interpreted Python — so the parity pins hold in environments
without the JIT; strategy-level parity lives in ``test_kernel_parity.py``.
"""

import numpy as np
import pytest

from repro.core.crawler import _OwnershipBits
from repro.core.scratch import CrawlScratch
from repro.errors import QueryError
from repro.kernels import (
    KernelBackend,
    available_backends,
    get_backend,
    numba_available,
)
from repro.kernels.numba_backend import NUMBA_AVAILABLE, NumbaKernels
from repro.mesh import points_in_boxes


class TestBackendRegistry:
    def test_default_is_numpy_float64(self):
        backend = get_backend()
        assert backend.name == "numpy"
        assert backend.requested == "numpy"
        assert backend.spec == "numpy"
        assert backend.dtype == np.dtype(np.float64)
        assert backend.compiled is False

    def test_instances_pass_through(self):
        backend = KernelBackend(dtype=np.float32)
        assert get_backend(backend) is backend

    def test_specs_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert get_backend("numpy:f32") is get_backend("numpy:float32")
        assert get_backend("numpy") is not get_backend("numpy:float32")

    def test_environment_variable_is_the_default_spec(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy:float32")
        assert get_backend().dtype == np.dtype(np.float32)
        monkeypatch.delenv("REPRO_KERNEL_BACKEND")
        assert get_backend().dtype == np.dtype(np.float64)

    def test_explicit_spec_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy:float32")
        assert get_backend("numpy").dtype == np.dtype(np.float64)

    @pytest.mark.parametrize("suffix", ["float64", "f64"])
    def test_float64_suffixes(self, suffix):
        assert get_backend(f"numpy:{suffix}").dtype == np.dtype(np.float64)

    @pytest.mark.parametrize("suffix", ["float32", "f32"])
    def test_float32_suffixes(self, suffix):
        backend = get_backend(f"numpy:{suffix}")
        assert backend.dtype == np.dtype(np.float32)
        assert backend.spec == "numpy:float32"

    @pytest.mark.parametrize("spec", ["fortran", "numpy:float16", "numba:int8", "numpy:"])
    def test_invalid_specs_raise(self, spec):
        if spec == "numpy:":
            # A trailing colon selects the default dtype rather than erroring.
            assert get_backend(spec).dtype == np.dtype(np.float64)
        else:
            with pytest.raises(QueryError):
                get_backend(spec)

    def test_unsupported_dtype_rejected_at_construction(self):
        with pytest.raises(QueryError):
            KernelBackend(dtype=np.int64)

    def test_numba_request_never_fails(self):
        backend = get_backend("numba")
        assert backend.requested == "numba"
        if numba_available():
            assert backend.name == "numba"
            assert backend.compiled is True
        else:
            # The clean fallback: NumPy behaviour under the numba spec.
            assert backend.name == "numpy"
            assert backend.compiled is False
            assert type(backend) is KernelBackend

    def test_available_backends_tracks_numba(self):
        names = available_backends()
        assert names[0] == "numpy"
        assert ("numba" in names) == numba_available()
        assert numba_available() == NUMBA_AVAILABLE

    def test_numba_kernels_without_numba_requires_force_interpreted(self):
        if NUMBA_AVAILABLE:
            pytest.skip("numba installed: direct construction is legal")
        with pytest.raises(QueryError):
            NumbaKernels()
        backend = NumbaKernels(force_interpreted=True)
        assert backend.name == "numba"
        assert backend.compiled is False


def _random_boxes(rng, n_boxes):
    los = rng.uniform(0.0, 0.7, size=(n_boxes, 3))
    his = los + rng.uniform(0.05, 0.3, size=(n_boxes, 3))
    return los, his


def _backends_under_test():
    """The numba code path (compiled when available, interpreted otherwise)."""
    return [NumbaKernels() if NUMBA_AVAILABLE else NumbaKernels(force_interpreted=True)]


class TestKernelBodyParity:
    """The numba loop bodies reproduce the NumPy reference bit-for-bit."""

    @pytest.mark.parametrize("backend", _backends_under_test())
    def test_points_in_boxes_parity(self, rng, backend):
        reference = get_backend("numpy")
        points = rng.uniform(size=(400, 3))
        los, his = _random_boxes(rng, 23)
        # Pin a few points exactly onto box faces: closed-interval boundaries.
        points[:23, 0] = los[:, 0]
        expected = reference.points_in_boxes(points, los, his)
        assert np.array_equal(expected, points_in_boxes(points, los, his))
        assert np.array_equal(backend.points_in_boxes(points, los, his), expected)

    @pytest.mark.parametrize("backend", _backends_under_test())
    def test_pair_box_distances_parity(self, rng, backend):
        reference = get_backend("numpy")
        positions = rng.uniform(size=(300, 3))
        pair_vertices = rng.integers(0, 300, size=500)
        pair_owners = rng.integers(0, 9, size=500)
        los, his = _random_boxes(rng, 9)
        expected, expected_unique = reference.pair_box_distances(
            positions, pair_vertices, pair_owners, los, his
        )
        got, got_unique = backend.pair_box_distances(
            positions, pair_vertices, pair_owners, los, his
        )
        assert got_unique == expected_unique
        assert got.dtype == np.float64
        # Bit-identical, not merely close: same clamps, same accumulation order.
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("backend", _backends_under_test())
    @pytest.mark.parametrize("n_queries", [5, 70, 130])
    def test_crawl_stamp_and_test_parity(self, rng, backend, n_queries):
        reference = get_backend("numpy")
        n_vertices = 200
        positions = rng.uniform(size=(n_vertices, 3))
        los, his = _random_boxes(rng, n_queries)
        bits = _OwnershipBits(n_queries)
        candidates = np.unique(rng.integers(0, n_vertices, size=80))
        reach_bits = rng.integers(
            0, 2**63, size=(candidates.size, bits.n_words), dtype=np.uint64
        )
        # Clear the bits beyond n_queries in the last word, as _crawl_fused
        # guarantees, and make a few candidates entirely stale/empty.
        tail = n_queries - (bits.n_words - 1) * 64
        reach_bits[:, -1] &= np.uint64((1 << tail) - 1)
        reach_bits[::7] = 0

        outputs = []
        for kernels in (reference, backend):
            scratch = CrawlScratch()
            stamps, words, epoch = scratch.acquire_batch(n_vertices, bits.n_words)
            word_columns = words[:, : bits.n_words]
            # Pre-stamp some vertices with partial ownership so the
            # already-seen path (OR with previous words) is exercised too.
            pre = candidates[1::3]
            stamps[pre] = epoch
            word_columns[pre] = reach_bits[1::3] & np.uint64(0x5555555555555555)
            visited = np.zeros(n_queries, dtype=np.int64)
            frontier, frontier_bits, n_fresh = kernels.crawl_stamp_and_test(
                candidates,
                reach_bits.copy(),
                stamps,
                word_columns,
                epoch,
                positions,
                los,
                his,
                bits,
                visited,
                1024,
            )
            # Only stamped rows of the arena are defined (stale-stamp-means-
            # garbage contract), so compare the candidate rows' state.
            outputs.append(
                (
                    frontier,
                    frontier_bits,
                    n_fresh,
                    visited,
                    stamps[candidates] == epoch,
                    np.where(
                        (stamps[candidates] == epoch)[:, None],
                        word_columns[candidates],
                        np.uint64(0),
                    ),
                )
            )
        for expected_part, got_part in zip(outputs[0], outputs[1]):
            assert np.array_equal(expected_part, got_part)

    @pytest.mark.parametrize("backend", _backends_under_test())
    def test_crawl_stamp_and_test_empty_candidates(self, backend):
        bits = _OwnershipBits(3)
        scratch = CrawlScratch()
        stamps, words, epoch = scratch.acquire_batch(10, bits.n_words)
        visited = np.zeros(3, dtype=np.int64)
        frontier, frontier_bits, n_fresh = backend.crawl_stamp_and_test(
            np.empty(0, dtype=np.int64),
            np.empty((0, 1), dtype=np.uint64),
            stamps,
            words[:, :1],
            epoch,
            np.zeros((10, 3)),
            np.zeros((3, 3)),
            np.ones((3, 3)),
            bits,
            visited,
            1024,
        )
        assert frontier.size == 0
        assert frontier_bits.shape == (0, 1)
        assert n_fresh == 0
        assert visited.sum() == 0


class TestFloat32Mode:
    def test_distances_returned_as_float64_within_tolerance(self, rng):
        f64 = get_backend("numpy")
        f32 = get_backend("numpy:float32")
        positions = rng.uniform(size=(300, 3))
        pair_vertices = rng.integers(0, 300, size=400)
        pair_owners = rng.integers(0, 7, size=400)
        los, his = _random_boxes(rng, 7)
        exact, _ = f64.pair_box_distances(positions, pair_vertices, pair_owners, los, his)
        approx, _ = f32.pair_box_distances(positions, pair_vertices, pair_owners, los, his)
        assert approx.dtype == np.float64
        assert np.allclose(approx, exact, rtol=1e-5, atol=1e-6)

    def test_membership_can_flip_within_one_float32_ulp(self):
        # The documented tolerance: a point one float64 ulp outside the box
        # rounds onto the face in float32 and flips to "inside".
        f64 = get_backend("numpy")
        f32 = get_backend("numpy:float32")
        los = np.array([[0.0, 0.0, 0.0]])
        his = np.array([[1.0, 1.0, 1.0]])
        point = np.array([[np.nextafter(1.0, 2.0), 0.5, 0.5]])
        assert not f64.points_in_boxes(point, los, his)[0, 0]
        assert f32.points_in_boxes(point, los, his)[0, 0]

    def test_interior_membership_agrees(self, rng):
        f64 = get_backend("numpy")
        f32 = get_backend("numpy:float32")
        points = rng.uniform(size=(500, 3))
        los, his = _random_boxes(rng, 11)
        # Random uniform points essentially never land within a float32 ulp
        # of a face, so the masks agree wholesale.
        assert np.array_equal(
            f32.points_in_boxes(points, los, his), f64.points_in_boxes(points, los, his)
        )
