"""Tests for repro.mesh.base.PolyhedralMesh (lifecycle, caching, versioning)."""

import numpy as np
import pytest

from repro.errors import MeshConnectivityError, MeshError
from repro.mesh import Box3D, TetrahedralMesh


def two_tet_mesh():
    vertices = np.array(
        [[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 1]], dtype=float
    )
    cells = np.array([[0, 1, 2, 3], [1, 2, 3, 4]])
    return TetrahedralMesh(vertices, cells, name="two-tets")


class TestConstruction:
    def test_basic_properties(self):
        mesh = two_tet_mesh()
        assert mesh.n_vertices == 5
        assert mesh.n_cells == 2
        assert len(mesh) == 5
        assert mesh.name == "two-tets"
        assert mesh.primitive == "tetrahedron"

    def test_rejects_bad_vertex_shape(self):
        with pytest.raises(MeshError):
            TetrahedralMesh(np.zeros((4, 2)), np.array([[0, 1, 2, 3]]))

    def test_rejects_wrong_cell_arity(self):
        with pytest.raises(MeshError):
            TetrahedralMesh(np.zeros((4, 3)), np.array([[0, 1, 2]]))

    def test_rejects_out_of_range_cells(self):
        with pytest.raises(MeshConnectivityError):
            TetrahedralMesh(np.zeros((3, 3)), np.array([[0, 1, 2, 7]]))

    def test_empty_cells_allowed(self):
        mesh = TetrahedralMesh(np.zeros((3, 3)), np.empty((0, 4), dtype=np.int64))
        assert mesh.n_cells == 0


class TestConnectivityCaches:
    def test_adjacency_and_surface_cached(self):
        mesh = two_tet_mesh()
        assert mesh.adjacency is mesh.adjacency
        assert mesh.surface is mesh.surface

    def test_mesh_degree_and_surface_ratio(self):
        mesh = two_tet_mesh()
        assert mesh.mesh_degree() == pytest.approx(2 * 9 / 5)
        assert mesh.surface_to_volume_ratio() == pytest.approx(1.0)

    def test_replace_cells_invalidates_caches_and_bumps_version(self):
        mesh = two_tet_mesh()
        _ = mesh.adjacency
        _ = mesh.surface
        version = mesh.connectivity_version
        mesh.replace_cells(np.array([[0, 1, 2, 3]]))
        assert mesh.connectivity_version == version + 1
        assert mesh.n_cells == 1
        assert set(mesh.surface_vertices().tolist()) == {0, 1, 2, 3}

    def test_replace_cells_validates(self):
        mesh = two_tet_mesh()
        with pytest.raises(MeshConnectivityError):
            mesh.replace_cells(np.array([[0, 1, 2, 9]]))
        with pytest.raises(MeshError):
            mesh.replace_cells(np.array([[0, 1, 2]]))


class TestGeometryUpdates:
    def test_set_positions_in_place(self):
        mesh = two_tet_mesh()
        original_array = mesh.vertices
        new_positions = mesh.vertices + 1.0
        version = mesh.geometry_version
        mesh.set_positions(new_positions)
        assert mesh.vertices is original_array          # in-place overwrite
        assert np.allclose(mesh.vertices, new_positions)
        assert mesh.geometry_version == version + 1

    def test_set_positions_shape_mismatch(self):
        mesh = two_tet_mesh()
        with pytest.raises(MeshError):
            mesh.set_positions(np.zeros((3, 3)))

    def test_displace(self):
        mesh = two_tet_mesh()
        before = mesh.vertices.copy()
        mesh.displace(np.full_like(before, 0.25))
        assert np.allclose(mesh.vertices, before + 0.25)

    def test_deformation_does_not_touch_connectivity_version(self):
        mesh = two_tet_mesh()
        version = mesh.connectivity_version
        mesh.displace(np.ones_like(mesh.vertices))
        assert mesh.connectivity_version == version


class TestDerivedGeometry:
    def test_bounding_box(self):
        mesh = two_tet_mesh()
        box = mesh.bounding_box()
        assert isinstance(box, Box3D)
        assert np.allclose(box.lo, [0, 0, 0])
        assert np.allclose(box.hi, [1, 1, 1])

    def test_cell_centroids(self):
        mesh = two_tet_mesh()
        centroids = mesh.cell_centroids()
        assert centroids.shape == (2, 3)
        assert np.allclose(centroids[0], mesh.vertices[[0, 1, 2, 3]].mean(axis=0))

    def test_connected_components_single(self):
        mesh = two_tet_mesh()
        components = mesh.connected_components()
        assert len(components) == 1
        assert components[0].tolist() == [0, 1, 2, 3, 4]

    def test_connected_components_disjoint(self):
        vertices = np.zeros((8, 3))
        vertices[4:] += 10.0
        cells = np.array([[0, 1, 2, 3], [4, 5, 6, 7]])
        mesh = TetrahedralMesh(vertices, cells)
        components = mesh.connected_components()
        assert len(components) == 2

    def test_memory_bytes(self):
        mesh = two_tet_mesh()
        base = mesh.memory_bytes()
        _ = mesh.adjacency
        assert mesh.memory_bytes() > base


class TestCopiesAndReordering:
    def test_copy_is_independent(self):
        mesh = two_tet_mesh()
        clone = mesh.copy()
        clone.displace(np.ones_like(clone.vertices))
        assert not np.allclose(mesh.vertices, clone.vertices)
        assert np.array_equal(mesh.cells, clone.cells)

    def test_with_vertex_order_preserves_geometry(self):
        mesh = two_tet_mesh()
        new_ids = np.array([4, 3, 2, 1, 0])
        reordered = mesh.with_vertex_order(new_ids)
        # Old vertex v is now at index new_ids[v]; same coordinates.
        for old_id, new_id in enumerate(new_ids):
            assert np.allclose(reordered.vertices[new_id], mesh.vertices[old_id])
        # Cell volumes are invariant under renaming.
        assert np.allclose(np.sort(reordered.cell_volumes()), np.sort(mesh.cell_volumes()))

    def test_with_vertex_order_requires_permutation(self):
        mesh = two_tet_mesh()
        with pytest.raises(MeshError):
            mesh.with_vertex_order(np.array([0, 0, 1, 2, 3]))

    def test_empty_mesh_errors(self):
        mesh = TetrahedralMesh(np.empty((0, 3)), np.empty((0, 4), dtype=np.int64))
        with pytest.raises(MeshError):
            mesh.bounding_box()
        with pytest.raises(MeshError):
            mesh.surface_to_volume_ratio()
