"""The delta-invalidated result cache: invalidation soundness, wrapper, parity.

Three layers of lockdown:

* :class:`~repro.cache.QueryResultCache` unit behaviour — keying, LRU bounds,
  and the invalidation contract's edge cases (zero-moved rest steps keep
  entries live, ``full()`` deltas flush, boxes exactly abutting the dirty
  AABB drop under the closed-box rule, the ``"exact"`` membership mode);
* the :class:`~repro.cache.CachingStrategy` wrapper and the
  :func:`repro.build_strategy` composition surface;
* cached-vs-fresh bit-identical parity for **every** registered strategy
  under a deformation + restructuring schedule, seeded by
  ``REPRO_PARITY_SEED`` like the other parity suites, plus the sharded
  service's per-shard invalidation and repartition-flush rules.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cache import CacheStats, CachingStrategy, QueryResultCache
from repro.core import DeformationDelta, QueryResult, ResilientStrategy, TopologyDelta
from repro.errors import ExperimentError, QueryError, SimulationError, WorkloadError
from repro.experiments.harness import (
    build_strategy,
    cache_rows,
    make_strategy,
    run_comparison,
)
from repro.factory import STRATEGY_FACTORIES
from repro.mesh import Box3D
from repro.service import ShardedQueryService
from repro.simulation import LocalizedPulseDeformation, periodic_restructuring
from repro.simulation.restructuring import split_cells_inplace
from repro.workloads import repeated_query_provider, zoomed_session_provider

PARITY_SEED = int(os.environ.get("REPRO_PARITY_SEED", "0"))

#: every registered strategy name (the cache must be sound over all of them)
ALL_STRATEGIES = tuple(STRATEGY_FACTORIES)


def _result(ids, complete=True) -> QueryResult:
    return QueryResult(vertex_ids=np.asarray(ids, dtype=np.int64), complete=complete)


def _sparse_delta(n_vertices, moved_id, old_position, new_position) -> DeformationDelta:
    return DeformationDelta.sparse(
        n_vertices,
        np.array([moved_id], dtype=np.int64),
        np.asarray([old_position], dtype=np.float64),
        np.asarray([new_position], dtype=np.float64),
    )


class TestCacheStats:
    def test_merge_and_iadd_sum_componentwise(self):
        a = CacheStats(hits=2, misses=1, invalidations=3, flushes=1, evictions=4)
        b = CacheStats(hits=1, misses=1)
        merged = a.merge(b)
        assert (merged.hits, merged.misses) == (3, 2)
        assert (a.hits, b.hits) == (2, 1)  # merge does not mutate
        a += b
        assert (a.hits, a.misses, a.invalidations) == (3, 2, 3)

    def test_hit_rate_and_dict(self):
        assert CacheStats().hit_rate() == 0.0
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate() == pytest.approx(0.75)
        assert stats.as_dict()["hit_rate"] == pytest.approx(0.75)


class TestQueryResultCacheBasics:
    def test_put_then_get_hits_with_identical_corners(self):
        cache = QueryResultCache()
        box = Box3D((0.1, 0.1, 0.1), (0.4, 0.4, 0.4))
        cache.put(box, _result([3, 1, 2]))
        got = cache.get(Box3D(box.lo.copy(), box.hi.copy()))
        np.testing.assert_array_equal(got, [1, 2, 3])
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 0)

    def test_unknown_box_misses(self):
        cache = QueryResultCache()
        assert cache.get(Box3D((0, 0, 0), (1, 1, 1))) is None
        assert cache.stats().misses == 1

    def test_quantum_collision_is_a_miss_never_a_wrong_answer(self):
        # a coarse quantum lands both boxes in the same hash cell; the
        # stored-corner verification must reject the second one
        cache = QueryResultCache(quantum=1.0)
        stored = Box3D((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        colliding = Box3D((0.1, 0.0, 0.0), (1.0, 1.0, 1.0))
        cache.put(stored, _result([7]))
        assert cache.get(colliding) is None
        np.testing.assert_array_equal(cache.get(stored), [7])

    def test_partial_results_are_not_cached(self):
        cache = QueryResultCache()
        box = Box3D((0, 0, 0), (1, 1, 1))
        cache.put(box, _result([1, 2], complete=False))
        assert len(cache) == 0
        assert cache.get(box) is None

    def test_lru_eviction_drops_least_recently_used(self):
        cache = QueryResultCache(max_entries=2)
        boxes = [Box3D.cube((float(i), 0.0, 0.0), 0.5) for i in range(3)]
        cache.put(boxes[0], _result([0]))
        cache.put(boxes[1], _result([1]))
        cache.get(boxes[0])  # refresh 0; 1 becomes least recently used
        cache.put(boxes[2], _result([2]))
        assert cache.get(boxes[1]) is None
        np.testing.assert_array_equal(cache.get(boxes[0]), [0])
        assert cache.stats().evictions == 1

    def test_constructor_validation(self):
        with pytest.raises(QueryError, match="max_entries"):
            QueryResultCache(max_entries=0)
        with pytest.raises(QueryError, match="quantum"):
            QueryResultCache(quantum=0.0)
        with pytest.raises(QueryError, match="membership"):
            QueryResultCache(membership="fuzzy")

    def test_drain_stats_resets_counters(self):
        cache = QueryResultCache()
        cache.get(Box3D((0, 0, 0), (1, 1, 1)))
        drained = cache.drain_stats()
        assert drained.misses == 1
        assert cache.stats().misses == 0

    def test_memory_and_describe(self):
        cache = QueryResultCache(max_entries=8, membership="exact")
        assert cache.memory_bytes() == 0
        cache.put(Box3D((0, 0, 0), (1, 1, 1)), _result([1, 2, 3]))
        assert cache.memory_bytes() > 0
        record = cache.describe()
        assert record["entries"] == 1
        assert record["membership"] == "exact"


class TestDeformationInvalidation:
    def _seeded(self):
        cache = QueryResultCache()
        near = Box3D((0.0, 0.0, 0.0), (0.2, 0.2, 0.2))
        far = Box3D((0.8, 0.8, 0.8), (1.0, 1.0, 1.0))
        cache.put(near, _result([1]))
        cache.put(far, _result([2]))
        return cache, near, far

    def test_zero_moved_rest_step_keeps_entries(self):
        cache, near, far = self._seeded()
        assert cache.invalidate_deformation(DeformationDelta.empty(100)) == 0
        assert len(cache) == 2
        assert cache.get(near) is not None and cache.get(far) is not None

    def test_full_delta_flushes_everything(self):
        cache, near, far = self._seeded()
        cache.invalidate_deformation(DeformationDelta.full(100))
        assert len(cache) == 0
        assert cache.stats().flushes == 1

    def test_sparse_delta_drops_only_intersecting_entries(self):
        cache, near, far = self._seeded()
        delta = _sparse_delta(100, 5, (0.1, 0.1, 0.1), (0.15, 0.1, 0.1))
        assert cache.invalidate_deformation(delta) == 1
        assert cache.get(near) is None
        np.testing.assert_array_equal(cache.get(far), [2])
        assert cache.stats().invalidations == 1

    def test_abutting_box_is_invalidated_closed_box_rule(self):
        # the entry's face exactly touches the dirty AABB: a vertex moving
        # onto the shared plane belongs to both closed boxes, so touching
        # counts as intersecting and the entry must drop
        cache = QueryResultCache()
        abutting = Box3D((0.2, 0.0, 0.0), (0.4, 0.2, 0.2))
        cache.put(abutting, _result([1]))
        delta = _sparse_delta(100, 5, (0.1, 0.1, 0.1), (0.2, 0.1, 0.1))
        assert cache.invalidate_deformation(delta) == 1

    def test_epsilon_separated_box_survives(self):
        cache = QueryResultCache()
        separated = Box3D((0.2 + 1e-9, 0.0, 0.0), (0.4, 0.2, 0.2))
        cache.put(separated, _result([1]))
        delta = _sparse_delta(100, 5, (0.1, 0.1, 0.1), (0.2, 0.1, 0.1))
        assert cache.invalidate_deformation(delta) == 0
        assert cache.get(separated) is not None

    def test_exact_membership_keeps_entry_the_motion_missed(self):
        # one vertex moves across the dirty AABB's diagonal; an entry box
        # inside that AABB but away from both endpoints intersects the AABB
        # yet contains neither old nor new position — exact mode keeps it,
        # the default aabb mode drops it
        delta = _sparse_delta(100, 5, (0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        bystander = Box3D((0.6, 0.1, 0.1), (0.9, 0.3, 0.3))
        aabb_cache = QueryResultCache(membership="aabb")
        aabb_cache.put(bystander, _result([1]))
        assert aabb_cache.invalidate_deformation(delta) == 1
        exact_cache = QueryResultCache(membership="exact")
        exact_cache.put(bystander, _result([1]))
        assert exact_cache.invalidate_deformation(delta) == 0
        assert exact_cache.get(bystander) is not None

    def test_exact_membership_drops_entry_containing_an_endpoint(self):
        delta = _sparse_delta(100, 5, (0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        covers_new = Box3D((0.9, 0.9, 0.9), (1.1, 1.1, 1.1))
        cache = QueryResultCache(membership="exact")
        cache.put(covers_new, _result([1]))
        assert cache.invalidate_deformation(delta) == 1


class TestTopologyInvalidation:
    def test_empty_delta_keeps_entries(self):
        cache = QueryResultCache()
        box = Box3D((0, 0, 0), (1, 1, 1))
        cache.put(box, _result([1]))
        assert cache.invalidate_topology(TopologyDelta.empty(100)) == 0
        assert cache.get(box) is not None

    def test_full_delta_flushes(self):
        cache = QueryResultCache()
        cache.put(Box3D((0, 0, 0), (1, 1, 1)), _result([1]))
        cache.invalidate_topology(TopologyDelta.full(100))
        assert len(cache) == 0

    def test_sparse_delta_uses_dirty_aabb_intersection(self):
        positions = np.zeros((100, 3))
        positions[7] = (0.1, 0.1, 0.1)
        delta = TopologyDelta.sparse(
            100, np.array([7]), positions, n_cells_added=4, n_cells_removed=1
        )
        cache = QueryResultCache()
        touching = Box3D((0.0, 0.0, 0.0), (0.2, 0.2, 0.2))
        far = Box3D((0.8, 0.8, 0.8), (1.0, 1.0, 1.0))
        cache.put(touching, _result([1]))
        cache.put(far, _result([2]))
        assert cache.invalidate_topology(delta) == 1
        assert cache.get(touching) is None
        assert cache.get(far) is not None


class TestCachingStrategy:
    def _prepared(self, grid_mesh, **kwargs):
        strategy = CachingStrategy(make_strategy("linear-scan"), **kwargs)
        strategy.prepare(grid_mesh.copy())
        return strategy

    def test_name_and_describe(self, grid_mesh):
        strategy = self._prepared(grid_mesh)
        assert strategy.name == "cached-linear-scan"
        record = strategy.describe()
        assert record["cached"] is True
        assert record["cache"]["entries"] == 0

    def test_hit_returns_bit_identical_ids_with_zero_work(self, grid_mesh):
        strategy = self._prepared(grid_mesh)
        box = Box3D((0.1, 0.1, 0.1), (0.6, 0.6, 0.6))
        fresh = strategy.query(box)
        hit = strategy.query(box)
        assert hit.same_vertices_as(fresh)
        assert hit.complete
        assert hit.counters.vertices_scanned == 0
        stats = strategy.cache_stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_query_many_mixes_hits_and_misses(self, grid_mesh):
        strategy = self._prepared(grid_mesh)
        warm = Box3D((0.1, 0.1, 0.1), (0.5, 0.5, 0.5))
        cold = Box3D((0.5, 0.5, 0.5), (0.9, 0.9, 0.9))
        first = strategy.query(warm)
        results = strategy.query_many([warm, cold])
        assert results[0].same_vertices_as(first)
        fresh = make_strategy("linear-scan")
        fresh.prepare(grid_mesh.copy())
        assert results[1].same_vertices_as(fresh.query(cold))
        stats = strategy.cache_stats()
        assert stats.hits == 1 and stats.misses == 2

    def test_prepare_flushes_the_cache(self, grid_mesh):
        strategy = self._prepared(grid_mesh)
        box = Box3D((0.1, 0.1, 0.1), (0.6, 0.6, 0.6))
        strategy.query(box)
        strategy.prepare(grid_mesh.copy())
        strategy.query(box)
        stats = strategy.cache_stats()
        assert stats.hits == 0 and stats.misses == 2
        assert stats.flushes >= 2  # initial prepare + re-prepare

    def test_on_step_invalidation_is_charged_to_maintenance(self, grid_mesh):
        strategy = self._prepared(grid_mesh)
        before = strategy.maintenance_time
        spent = strategy.on_step(DeformationDelta.empty(strategy.mesh.n_vertices))
        assert spent >= 0.0
        assert strategy.maintenance_time >= before

    def test_drain_cache_stats_resets(self, grid_mesh):
        strategy = self._prepared(grid_mesh)
        strategy.query(Box3D((0.1, 0.1, 0.1), (0.6, 0.6, 0.6)))
        assert strategy.drain_cache_stats().misses == 1
        assert strategy.drain_cache_stats().misses == 0

    def test_memory_overhead_includes_cache(self, grid_mesh):
        strategy = self._prepared(grid_mesh)
        base = strategy.memory_overhead_bytes()
        strategy.query(Box3D((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)))
        assert strategy.memory_overhead_bytes() > base


class TestBuildStrategy:
    def test_caching_int_sets_max_entries(self):
        strategy = build_strategy("linear-scan", caching=8)
        assert isinstance(strategy, CachingStrategy)
        assert strategy.cache.max_entries == 8

    def test_caching_dict_forwards_cache_kwargs(self):
        strategy = build_strategy("linear-scan", caching={"membership": "exact"})
        assert strategy.cache.membership == "exact"

    def test_caching_adopts_an_existing_cache(self):
        cache = QueryResultCache(max_entries=4)
        strategy = build_strategy("linear-scan", caching=cache)
        assert strategy.cache is cache

    def test_invalid_caching_value_rejected(self):
        with pytest.raises(ExperimentError, match="caching"):
            build_strategy("linear-scan", caching=3.5)

    def test_invalid_resilience_value_rejected(self):
        with pytest.raises(ExperimentError, match="resilience"):
            build_strategy("linear-scan", resilience="extra")

    def test_stack_order_cache_outside_resilience(self):
        strategy = build_strategy("octopus", caching=True, resilience="paranoid")
        assert isinstance(strategy, CachingStrategy)
        assert isinstance(strategy.inner, ResilientStrategy)
        assert strategy.inner.paranoid
        # the resilience wrapper is name-transparent, so only the cache shows
        assert strategy.name == "cached-octopus"

    def test_unknown_name_rejected(self):
        with pytest.raises(ExperimentError, match="unknown strategy"):
            build_strategy("btree")


class TestSessionProviders:
    def test_repeated_provider_reissues_same_objects(self, grid_mesh):
        provider = repeated_query_provider(0.01, 4, repoll_fraction=1.0, seed=PARITY_SEED)
        first = provider(grid_mesh, 1)
        second = provider(grid_mesh, 2)
        assert all(a is b for a, b in zip(first, second))

    def test_zoomed_provider_shrinks_on_dwell_boundary(self, grid_mesh):
        provider = zoomed_session_provider(0.01, 2, zoom=0.5, dwell=2, seed=PARITY_SEED)
        level0 = provider(grid_mesh, 1)
        assert all(a is b for a, b in zip(level0, provider(grid_mesh, 2)))
        level1 = provider(grid_mesh, 3)
        for before, after in zip(level0, level1):
            assert np.all(after.extents < before.extents)
            np.testing.assert_allclose(after.center, before.center)

    def test_provider_validation(self):
        with pytest.raises(WorkloadError):
            repeated_query_provider(0.01, 4, repoll_fraction=1.5)
        with pytest.raises(WorkloadError):
            repeated_query_provider(0.01, 0)
        with pytest.raises(WorkloadError):
            zoomed_session_provider(0.01, 2, zoom=1.0)
        with pytest.raises(WorkloadError):
            zoomed_session_provider(0.01, 0)


class TestNineStrategyParity:
    """Cached answers must be bit-identical to fresh execution, per strategy.

    Each registered strategy runs side by side with its ``caching=True``
    variant through a localized-pulse deformation (with rest steps) plus a
    periodic restructuring schedule, under ``validate_results=True`` — the
    simulator raises on the first query whose cached ids differ from fresh
    execution, so a completed run is the parity proof.  The convex structured
    mesh and gentle amplitude keep every crawl-based strategy exact (the same
    scenario envelope as the chaos suite).
    """

    @pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
    def test_cached_matches_fresh_under_deformation_and_restructuring(
        self, grid_mesh, strategy_name
    ):
        report = run_comparison(
            grid_mesh.copy(),
            [make_strategy(strategy_name), build_strategy(strategy_name, caching=True)],
            LocalizedPulseDeformation(
                sparsity=0.05, amplitude=0.02, rest_every=2, seed=PARITY_SEED
            ),
            n_steps=4,
            query_provider=repeated_query_provider(
                0.02, 4, repoll_fraction=0.9, seed=PARITY_SEED
            ),
            validate_results=True,
            restructuring=periodic_restructuring(
                every=2, kind="mixed", n_cells=4, seed=PARITY_SEED
            ),
        )
        cached = report.strategies[f"cached-{strategy_name}"]
        assert cached.cached
        assert cached.total_cache_hits > 0
        rows = {row["strategy"]: row for row in cache_rows(report)}
        assert rows[f"cached-{strategy_name}"]["cache_hits"] == cached.total_cache_hits
        assert rows[strategy_name]["cached"] is False

    def test_exact_membership_mode_parity(self, grid_mesh):
        report = run_comparison(
            grid_mesh.copy(),
            [
                make_strategy("octopus"),
                build_strategy("octopus", caching={"membership": "exact"}),
            ],
            LocalizedPulseDeformation(
                sparsity=0.05, amplitude=0.02, rest_every=2, seed=PARITY_SEED
            ),
            n_steps=4,
            query_provider=repeated_query_provider(
                0.02, 4, repoll_fraction=0.9, seed=PARITY_SEED
            ),
            validate_results=True,
        )
        assert report.strategies["cached-octopus"].total_cache_hits > 0

    def test_cached_resilient_stack_parity(self, grid_mesh):
        report = run_comparison(
            grid_mesh.copy(),
            [
                make_strategy("octopus"),
                build_strategy("octopus", caching=True, resilience=True),
            ],
            LocalizedPulseDeformation(
                sparsity=0.05, amplitude=0.02, rest_every=2, seed=PARITY_SEED
            ),
            n_steps=4,
            query_provider=repeated_query_provider(
                0.02, 4, repoll_fraction=0.9, seed=PARITY_SEED
            ),
            validate_results=True,
        )
        assert report.strategies["cached-octopus"].total_cache_hits > 0


class TestShardedServiceCache:
    def _service(self, mesh, **kwargs):
        service = ShardedQueryService(n_shards=2, caching=True, **kwargs)
        service.prepare(mesh)
        return service

    def test_uncached_service_reports_no_stats(self, grid_mesh):
        with ShardedQueryService(n_shards=2) as service:
            service.prepare(grid_mesh.copy())
            assert service.cache_stats() is None
            assert service.drain_cache_stats() is None

    def test_shared_cache_instance_rejected(self):
        with pytest.raises(SimulationError, match="per-shard"):
            ShardedQueryService(n_shards=2, caching=QueryResultCache())

    def test_repeated_query_hits_per_shard_caches(self, grid_mesh):
        mesh = grid_mesh.copy()
        with self._service(mesh) as service:
            assert service.name == "sharded-cached-octopusx2"
            box = Box3D((0.2, 0.2, 0.2), (0.7, 0.7, 0.7))
            first = service.query(box)
            service.drain_cache_stats()
            second = service.query(box)
            assert second.same_vertices_as(first)
            stats = service.drain_cache_stats()
            assert stats.hits >= 1 and stats.misses == 0

    def test_sliced_delta_invalidates_only_the_owning_shard(self, grid_mesh):
        # the unit-cube grid splits into two shards along Hilbert order; a
        # vertex nudged at one corner must not evict the entry cached for
        # the opposite corner's box
        mesh = grid_mesh.copy()
        with self._service(mesh) as service:
            near = Box3D((0.0, 0.0, 0.0), (0.25, 0.25, 0.25))
            far = Box3D((0.75, 0.75, 0.75), (1.0, 1.0, 1.0))
            service.query(near)
            service.query(far)
            service.drain_cache_stats()

            moved_id = int(np.argmin(np.linalg.norm(mesh.vertices, axis=1)))
            old = mesh.vertices[moved_id].copy()
            new = old + np.array([0.05, 0.05, 0.05])
            positions = mesh.vertices.copy()
            positions[moved_id] = new
            mesh.set_positions(positions)
            service.on_step(_sparse_delta(mesh.n_vertices, moved_id, old, new))

            second_far = service.query(far)
            stats = service.drain_cache_stats()
            assert stats.invalidations >= 1  # the near-corner entries dropped
            assert stats.hits >= 1 and stats.misses == 0  # far entries survived
            fresh = make_strategy("linear-scan")
            fresh.prepare(mesh)
            assert second_far.same_vertices_as(fresh.query(far))

            service.query(near)
            assert service.drain_cache_stats().misses >= 1

    def test_repartition_flushes_every_shard_cache(self, grid_mesh):
        mesh = grid_mesh.copy()
        with self._service(mesh) as service:
            box = Box3D((0.2, 0.2, 0.2), (0.7, 0.7, 0.7))
            service.query(box)
            service.drain_cache_stats()
            event = split_cells_inplace(mesh, np.array([0, 5]))
            service.on_restructure(event.delta)
            assert service.n_repartitions == 1
            result = service.query(box)
            stats = service.drain_cache_stats()
            # rebuilt shard strategies start with freshly flushed caches, so
            # the re-issued box cannot hit
            assert stats.hits == 0 and stats.misses >= 1
            assert stats.flushes >= service.n_shards
            fresh = make_strategy("linear-scan")
            fresh.prepare(mesh)
            assert result.same_vertices_as(fresh.query(box))

    def test_describe_marks_caching(self, grid_mesh):
        with self._service(grid_mesh.copy()) as service:
            assert service.describe()["cached"] is True
