"""Tests for convexity checks, mesh validation and mesh I/O."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.generators import structured_tetrahedral_mesh
from repro.mesh import (
    TetrahedralMesh,
    convexity_defect,
    density_statistics,
    load_mesh,
    load_sequence,
    mesh_is_convex,
    quality_statistics,
    save_mesh,
    save_sequence,
    validate_mesh,
)


class TestConvexity:
    def test_grid_mesh_is_convex(self, grid_mesh):
        assert mesh_is_convex(grid_mesh)
        assert convexity_defect(grid_mesh) < 1e-6

    def test_earthquake_mesh_is_convex(self, earthquake_small):
        assert mesh_is_convex(earthquake_small)

    def test_neuron_mesh_is_not_convex(self, neuron_small):
        assert not mesh_is_convex(neuron_small)
        assert convexity_defect(neuron_small) > 0.01

    def test_l_shaped_mesh_is_not_convex(self):
        # Two cubes sharing an edge region form an L: clearly concave.
        a = structured_tetrahedral_mesh((2, 2, 2))
        vertices = a.vertices.copy()
        shifted = vertices + np.array([1.0, 0.0, 1.0])
        all_vertices = np.vstack([vertices, shifted])
        all_cells = np.vstack([a.cells, a.cells + a.n_vertices])
        mesh = TetrahedralMesh(all_vertices, all_cells)
        assert not mesh_is_convex(mesh)

    def test_affine_transform_preserves_convexity(self, earthquake_small):
        mesh = earthquake_small.copy()
        matrix = np.array([[1.2, 0.1, 0.0], [0.0, 0.9, 0.05], [0.0, 0.0, 1.1]])
        mesh.set_positions(mesh.vertices @ matrix.T)
        assert mesh_is_convex(mesh)

    def test_empty_mesh_raises(self):
        mesh = TetrahedralMesh(np.empty((0, 3)), np.empty((0, 4), dtype=np.int64))
        with pytest.raises(MeshError):
            mesh_is_convex(mesh)


class TestValidation:
    def test_valid_grid(self, grid_mesh):
        report = validate_mesh(grid_mesh)
        assert report.is_valid
        assert report.n_components == 1
        assert not report.issues

    def test_detects_isolated_vertices(self):
        vertices = np.vstack([np.eye(3), [[1, 1, 1]], [[9, 9, 9]]])
        mesh = TetrahedralMesh(vertices, np.array([[0, 1, 2, 3]]))
        report = validate_mesh(mesh)
        assert not report.is_valid
        assert report.n_isolated_vertices == 1

    def test_detects_duplicate_and_degenerate_cells(self):
        vertices = np.vstack([np.eye(3), [[1, 1, 1]]])
        cells = np.array([[0, 1, 2, 3], [3, 2, 1, 0], [0, 0, 1, 2]])
        report = validate_mesh(mesh := TetrahedralMesh(vertices, cells))
        assert not report.is_valid
        assert report.n_duplicate_cells >= 1
        assert report.n_degenerate_cells == 1
        assert mesh.n_cells == 3

    def test_detects_non_finite_positions(self, grid_mesh):
        mesh = grid_mesh.copy()
        mesh.vertices[0, 0] = np.nan
        report = validate_mesh(mesh)
        assert not report.is_valid

    def test_density_statistics(self, grid_mesh):
        ids = np.arange(10)
        stats = density_statistics(grid_mesh, ids, region_volume=0.5)
        assert stats["n_vertices"] == 10
        assert stats["density"] == pytest.approx(20.0)
        assert stats["mean_degree"] > 0
        assert density_statistics(grid_mesh, np.empty(0, int), 1.0)["n_vertices"] == 0
        with pytest.raises(MeshError):
            density_statistics(grid_mesh, ids, region_volume=0.0)

    def test_quality_statistics(self, grid_mesh):
        stats = quality_statistics(grid_mesh)
        assert stats["n_cells"] == grid_mesh.n_cells
        assert stats["n_inverted"] == 0
        assert stats["max_aspect_ratio"] >= stats["mean_aspect_ratio"] >= 1.0
        subset = quality_statistics(grid_mesh, np.array([0, 1, 2]))
        assert subset["n_cells"] == 3


class TestMeshIO:
    def test_save_and_load_roundtrip(self, tmp_path, neuron_small):
        path = save_mesh(neuron_small, tmp_path / "mesh.npz")
        loaded = load_mesh(path)
        assert type(loaded) is type(neuron_small)
        assert np.allclose(loaded.vertices, neuron_small.vertices)
        assert np.array_equal(loaded.cells, neuron_small.cells)
        assert loaded.name == neuron_small.name

    def test_sequence_roundtrip(self, tmp_path, grid_mesh):
        frames = [grid_mesh.vertices + i * 0.1 for i in range(3)]
        path = save_sequence(grid_mesh, frames, tmp_path / "sequence.npz")
        mesh, loaded_frames = load_sequence(path)
        assert len(loaded_frames) == 3
        assert np.allclose(loaded_frames[2], frames[2])
        assert np.array_equal(mesh.cells, grid_mesh.cells)

    def test_sequence_shape_mismatch_raises(self, tmp_path, grid_mesh):
        with pytest.raises(MeshError):
            save_sequence(grid_mesh, [np.zeros((3, 3))], tmp_path / "bad.npz")
