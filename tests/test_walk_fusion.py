"""Parity and work invariants of the fused directed walk (``directed_walk_many``).

The fused lockstep beam walk must be a pure *dispatch/work-sharing*
optimisation over per-box :func:`~repro.core.directed_walk.directed_walk`
calls:

* per-query seed vertices, step counts, paths and counters are bit-identical
  to independent walks with the same arguments;
* the per-query distance counters sum exactly to the batch's *attributed*
  walk work;
* the *unique* walk work (distinct candidate positions gathered per lockstep
  round) never exceeds the attributed work, and is strictly smaller when
  overlapping walks traverse the same vertices;
* the executor-level batched path threads the fused walk end to end,
  including >64-query batches that drive the crawl's multi-word ownership
  bitsets.

Random content is driven by ``REPRO_PARITY_SEED`` (CI runs two seeds), like
``tests/test_batch_parity.py``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import (
    CrawlScratch,
    OctopusConExecutor,
    OctopusExecutor,
    QueryCounters,
    directed_walk,
    directed_walk_many,
)
from repro.mesh import Box3D

PARITY_SEED = int(os.environ.get("REPRO_PARITY_SEED", "0"))


def _walk_families(mesh, seed: int) -> dict[str, tuple[list[Box3D], list]]:
    """Box/start families covering success, stuck, shared and multi-source walks."""
    rng = np.random.default_rng(seed)
    bounding = mesh.bounding_box()
    diagonal = float(np.linalg.norm(bounding.extents))
    surface = mesh.surface_vertices()
    center = bounding.center

    # Enclosed interior boxes: walks from a surface vertex that should succeed.
    interior = [
        Box3D.cube(center + rng.normal(0.0, 0.05 * diagonal, 3), 0.2 * diagonal)
        for _ in range(6)
    ]
    interior_starts = [int(surface[int(rng.integers(0, surface.size))]) for _ in interior]

    # Far-away boxes: every walk gets stuck (query misses the mesh).
    missing = [
        Box3D.cube(bounding.hi + (2.0 + i) * diagonal, 0.2 * diagonal) for i in range(4)
    ]
    missing_starts = [int(surface[0]) for _ in missing]

    # Heavily shared walks: identical start, near-identical boxes.
    shared_start = int(surface[int(rng.integers(0, surface.size))])
    shared = [
        Box3D.cube(center + rng.normal(0.0, 0.01 * diagonal, 3), 0.15 * diagonal)
        for _ in range(8)
    ]
    shared_starts = [shared_start] * len(shared)

    # Multi-source starts (OCTOPUS-CON style) plus an empty start list.
    multi = interior[:3] + missing[:1]
    multi_starts = [
        np.asarray(surface[rng.integers(0, surface.size, size=3)], dtype=np.int64),
        np.asarray(surface[rng.integers(0, surface.size, size=2)], dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.asarray([int(surface[-1])], dtype=np.int64),
    ]

    mixed = interior[:2] + missing[:2] + shared[:2]
    mixed_starts = interior_starts[:2] + missing_starts[:2] + shared_starts[:2]

    return {
        "interior": (interior, interior_starts),
        "missing": (missing, missing_starts),
        "shared": (shared, shared_starts),
        "multi_source": (multi, multi_starts),
        "mixed": (mixed, mixed_starts),
    }


def _assert_walk_parity(mesh, boxes, starts, **kwargs) -> None:
    sequential_scratch = CrawlScratch()
    expected_counters = [QueryCounters() for _ in boxes]
    expected = [
        directed_walk(mesh, box, start, counters, scratch=sequential_scratch, **kwargs)
        for box, start, counters in zip(boxes, starts, expected_counters)
    ]
    fused_counters = [QueryCounters() for _ in boxes]
    batch = directed_walk_many(
        mesh, boxes, starts, fused_counters, scratch=CrawlScratch(), **kwargs
    )
    assert len(batch.outcomes) == len(boxes)
    for index, (got, want) in enumerate(zip(batch.outcomes, expected)):
        context = f"box {index}"
        assert got.found_id == want.found_id, context
        assert got.n_steps == want.n_steps, context
        assert got.path == want.path, context
        assert (
            fused_counters[index].as_dict() == expected_counters[index].as_dict()
        ), context
    assert batch.n_attributed_distance_computations == sum(
        c.walk_distance_computations for c in fused_counters
    )
    assert batch.n_unique_distance_computations <= batch.n_attributed_distance_computations


class TestFusedWalkParity:
    @pytest.mark.parametrize("mesh_fixture", ["grid_mesh", "neuron_small", "delaunay_small"])
    def test_bit_identical_across_families(self, mesh_fixture, request):
        mesh = request.getfixturevalue(mesh_fixture)
        for family, (boxes, starts) in _walk_families(mesh, seed=PARITY_SEED + 13).items():
            _assert_walk_parity(mesh, boxes, starts)

    def test_parity_with_wider_beam_and_max_steps(self, neuron_small):
        boxes, starts = _walk_families(neuron_small, seed=PARITY_SEED + 29)["mixed"]
        _assert_walk_parity(neuron_small, boxes, starts, beam_width=3)
        _assert_walk_parity(neuron_small, boxes, starts, max_steps=4)

    def test_empty_batch_and_empty_starts(self, grid_mesh):
        empty = directed_walk_many(grid_mesh, [], [])
        assert empty.outcomes == [] and empty.n_rounds == 0
        box = Box3D.cube((0.5, 0.5, 0.5), 0.2)
        batch = directed_walk_many(grid_mesh, [box], [np.empty(0, dtype=np.int64)])
        assert batch.outcomes[0].found_id is None
        assert batch.outcomes[0].n_steps == 0
        assert batch.outcomes[0].path == []
        assert batch.n_attributed_distance_computations == 0

    def test_length_mismatch_and_bad_beam_rejected(self, grid_mesh):
        box = Box3D.cube((0.5, 0.5, 0.5), 0.2)
        with pytest.raises(ValueError):
            directed_walk_many(grid_mesh, [box], [])
        with pytest.raises(ValueError):
            directed_walk_many(grid_mesh, [box], [0], counters_list=[])
        with pytest.raises(ValueError):
            directed_walk_many(grid_mesh, [box], [0], beam_width=0)

    def test_batch_larger_than_64_queries(self, grid_mesh):
        """Parity holds for >64 walks in one batch (multi-word crawl scale)."""
        rng = np.random.default_rng(PARITY_SEED + 71)
        surface = grid_mesh.surface_vertices()
        boxes = [
            Box3D.cube(rng.uniform(0.3, 0.7, 3), 0.12) for _ in range(70)
        ]
        starts = [int(surface[int(rng.integers(0, surface.size))]) for _ in boxes]
        _assert_walk_parity(grid_mesh, boxes, starts)


class TestFusedWalkWork:
    def test_shared_walks_share_position_gathers(self, neuron_small):
        """Identical walks cost one position gather per round, not one per query."""
        boxes, starts = _walk_families(neuron_small, seed=PARITY_SEED + 3)["shared"]
        batch = directed_walk_many(neuron_small, boxes, starts)
        assert batch.n_unique_distance_computations < batch.n_attributed_distance_computations

    def test_rounds_bounded_by_longest_walk(self, neuron_small):
        boxes, starts = _walk_families(neuron_small, seed=PARITY_SEED + 5)["mixed"]
        batch = directed_walk_many(neuron_small, boxes, starts)
        longest = max(outcome.n_steps for outcome in batch.outcomes)
        # Start round plus at most one expansion round per accepted step, plus
        # a possible final stuck round for the longest walker.
        assert batch.n_rounds <= longest + 1

    def test_walk_arena_is_reused_across_batches(self, grid_mesh):
        scratch = CrawlScratch()
        boxes, starts = _walk_families(grid_mesh, seed=PARITY_SEED + 7)["interior"]
        directed_walk_many(grid_mesh, boxes, starts, scratch=scratch)
        arena_first = scratch.acquire_walk(len(boxes))
        first_frontier = arena_first.frontier
        directed_walk_many(grid_mesh, boxes, starts, scratch=scratch)
        arena_second = scratch.acquire_walk(len(boxes))
        assert arena_second is arena_first
        assert arena_second.frontier is first_frontier


class TestExecutorFusedWalks:
    def test_octopus_batched_walks_match_sequential(self, neuron_small):
        """End-to-end: probe misses walk fused, results identical to query()."""
        executor = OctopusExecutor()
        executor.prepare(neuron_small)
        bounding = neuron_small.bounding_box()
        diagonal = float(np.linalg.norm(bounding.extents))
        rng = np.random.default_rng(PARITY_SEED + 83)
        # Interior boxes (probe misses walk in), plus clean misses.
        boxes = [
            Box3D.cube(bounding.center + rng.normal(0.0, 0.03 * diagonal, 3), 0.1 * diagonal)
            for _ in range(5)
        ] + [Box3D.cube(bounding.hi + 2.0 * diagonal, 0.1 * diagonal)]
        sequential = [executor.query(box) for box in boxes]
        batched = executor.query_many(boxes)
        for got, want in zip(batched, sequential):
            assert got.same_vertices_as(want)
            assert got.counters.as_dict() == want.counters.as_dict()
        assert executor.last_fused_crawl is not None

    def test_octopus_con_records_fused_walk_work(self, grid_mesh):
        """Every OCTOPUS-CON query walks; the batch must report walk sharing."""
        executor = OctopusConExecutor()
        executor.prepare(grid_mesh)
        rng = np.random.default_rng(PARITY_SEED + 97)
        boxes = [Box3D.cube(rng.uniform(0.35, 0.65, 3), 0.2) for _ in range(6)]
        results = executor.query_many(boxes)
        batch = executor.last_fused_crawl
        assert batch is not None
        assert batch.n_attributed_walk_distance_computations == sum(
            r.counters.walk_distance_computations for r in results
        )
        assert 0 < batch.n_unique_walk_distance_computations
        assert (
            batch.n_unique_walk_distance_computations
            <= batch.n_attributed_walk_distance_computations
        )

    def test_over_64_query_executor_batch_single_fused_crawl(self, grid_mesh):
        """A 70-query batch runs as one fused crawl (2 ownership words) with
        walk+crawl counters bit-identical to the sequential path."""
        executor = OctopusConExecutor()
        executor.prepare(grid_mesh)
        rng = np.random.default_rng(PARITY_SEED + 101)
        boxes = [Box3D.cube(rng.uniform(0.2, 0.8, 3), 0.15) for _ in range(70)]
        sequential = [executor.query(box) for box in boxes]
        batched = executor.query_many(boxes)
        batch = executor.last_fused_crawl
        assert batch is not None
        assert batch.n_groups == 1
        assert batch.n_words == 2
        for index, (got, want) in enumerate(zip(batched, sequential)):
            assert got.same_vertices_as(want), f"box {index}"
            assert got.counters.as_dict() == want.counters.as_dict(), f"box {index}"


class TestCrossQueryGatherSharing:
    """Beams sitting on the same vertex share one CSR gather per round."""

    def test_shared_beams_share_csr_gathers(self, neuron_small):
        boxes, starts = _walk_families(neuron_small, seed=9)["shared"]
        batch = directed_walk_many(neuron_small, boxes, starts, scratch=CrawlScratch())
        assert batch.n_attributed_csr_gather_entries > 0
        # Identical starts and near-identical targets keep the beams on the
        # same corridor, so the deduplicated gathers do strictly less work.
        assert (
            batch.n_unique_csr_gather_entries < batch.n_attributed_csr_gather_entries
        )

    def test_disjoint_beams_share_nothing(self, neuron_small):
        families = _walk_families(neuron_small, seed=11)
        boxes, starts = families["interior"]
        # Distinct single starts per query: rounds may still overlap later,
        # but the unique work can never exceed the attributed work.
        batch = directed_walk_many(neuron_small, boxes, starts, scratch=CrawlScratch())
        assert (
            batch.n_unique_csr_gather_entries <= batch.n_attributed_csr_gather_entries
        )
