"""Smoke tests for every per-figure experiment driver.

Each driver is run on the ``tiny`` profile with minimal parameters; the tests
check the structure of the returned rows and the qualitative relations the
paper's evaluation reports (who wins, which direction trends go), not absolute
numbers.
"""

import pytest

from repro.experiments import figures
from repro.workloads import NEUROSCIENCE_BENCHMARKS


pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


class TestCharacterisationTables:
    def test_figure4(self):
        rows = figures.figure4_rows("tiny")
        assert len(rows) == 5
        assert [r["n_vertices"] for r in rows] == sorted(r["n_vertices"] for r in rows)
        ratios = [r["surface_to_volume"] for r in rows]
        assert ratios == sorted(ratios, reverse=True)
        degrees = [r["mesh_degree"] for r in rows]
        assert all(8 < d < 15 for d in degrees)

    def test_figure5(self):
        rows = figures.figure5_rows()
        assert [r["benchmark"] for r in rows] == ["A", "B", "C", "D"]

    def test_figure8_via_figure14_style_pair(self):
        # Figure 8 is the earthquake characterisation; covered by the dataset
        # registry test, and its benchmark prints the same rows.
        from repro.experiments import earthquake_pair

        sf2, sf1 = earthquake_pair("tiny")
        assert sf1.surface_to_volume_ratio() < sf2.surface_to_volume_ratio()

    def test_figure14(self):
        rows = figures.figure14_rows("tiny")
        assert len(rows) == 3
        assert {r["dataset"] for r in rows} == {
            "horse-gallop", "facial-expression", "camel-compress"
        }
        assert [r["time_steps"] for r in rows] == [48, 9, 53]


class TestComparisonFigures:
    def test_figure6_single_benchmark(self):
        rows = figures.figure6(
            profile="tiny",
            n_steps=1,
            strategies=("octopus", "linear-scan", "octree"),
            benchmarks=NEUROSCIENCE_BENCHMARKS[1:2],   # benchmark B: fewest queries
        )
        assert {r["strategy"] for r in rows} == {"octopus", "linear-scan", "octree"}
        by_name = {r["strategy"]: r for r in rows}
        # OCTOPUS does less machine-independent work than the linear scan,
        # which in turn beats the rebuild-every-step octree.
        assert by_name["octopus"]["total_work"] < by_name["linear-scan"]["total_work"]
        assert by_name["octopus"]["speedup_vs_baseline_work"] > 1.0
        # Memory: linear scan has none, OCTOPUS less than the octree (6b).
        assert by_name["linear-scan"]["memory_overhead_mb"] == 0.0
        assert by_name["octopus"]["memory_overhead_mb"] > 0.0

    def test_figure7_fixed_query_speedup_increases_with_detail(self):
        rows = figures.figure7_mesh_detail_fixed_query(
            profile="tiny", n_steps=1, queries_per_step=3
        )
        assert len(rows) == 5
        speedups = [r["speedup_work"] for r in rows]
        assert speedups[-1] > speedups[0]
        linear_work = [r["linear_scan_work"] for r in rows]
        assert linear_work == sorted(linear_work)

    def test_figure7_fixed_results_speedup_increases_more(self):
        rows = figures.figure7_mesh_detail_fixed_results(
            profile="tiny", n_steps=1, queries_per_step=3, results_per_query=50
        )
        speedups = [r["speedup_work"] for r in rows]
        assert speedups[-1] > speedups[0]

    def test_figure7_time_steps_scale_linearly_with_flat_speedup(self):
        rows = figures.figure7_time_steps(
            profile="tiny", steps_list=(1, 2, 4), queries_per_step=3
        )
        work = [r["octopus_work"] for r in rows]
        assert work[1] == pytest.approx(2 * work[0], rel=0.01)
        assert work[2] == pytest.approx(4 * work[0], rel=0.01)
        speedups = [r["speedup_work"] for r in rows]
        assert max(speedups) / min(speedups) < 1.1

    def test_figure7_selectivity_speedup_decreases(self):
        rows = figures.figure7_selectivity(
            profile="tiny", selectivities=(0.001, 0.01, 0.05), n_steps=1, queries_per_step=3
        )
        speedups = [r["speedup_work"] for r in rows]
        assert speedups[0] > speedups[-1]


class TestConvexAndOverheadFigures:
    def test_figure9_convex_comparison(self):
        rows = figures.figure9_convex_comparison(
            profile="tiny", n_steps=1, queries_per_step=3
        )
        assert {r["dataset"] for r in rows} == {"SF1", "SF2"}
        for dataset in ("SF1", "SF2"):
            subset = {r["strategy"]: r for r in rows if r["dataset"] == dataset}
            # OCTOPUS-CON skips the surface probe entirely.
            assert subset["octopus-con"]["surface_probed"] == 0
            assert subset["octopus"]["surface_probed"] > 0
            # and consequently beats plain OCTOPUS in work-based speedup.
            assert (
                subset["octopus-con"]["speedup_vs_linear_work"]
                >= subset["octopus"]["speedup_vs_linear_work"]
            )

    def test_figure9_grid_resolution_tradeoff(self):
        rows = figures.figure9_grid_resolution(
            profile="tiny", resolutions=(2, 6, 10), n_queries=4
        )
        walks = [r["directed_walk_vertices"] for r in rows]
        memory = [r["grid_memory_mb"] for r in rows]
        assert walks[-1] <= walks[0]          # finer grid -> shorter walks
        assert memory == sorted(memory)        # finer grid -> more memory

    def test_figure10_breakdown(self):
        rows = figures.figure10_breakdown(
            profile="tiny", n_steps=1, queries_per_step=3, selectivity=0.01
        )
        assert len(rows) == 5
        probes = [r["surface_probed"] for r in rows]
        crawls = [r["crawl_vertices"] for r in rows]
        # Crawl work grows with detail (fixed query volume); probe grows sublinearly.
        assert crawls[-1] > crawls[0]
        sizes = [r["n_tetrahedra"] for r in rows]
        assert probes[-1] / probes[0] < sizes[-1] / sizes[0]

    def test_figure10_footprint_correlates_with_results(self):
        rows = figures.figure10_footprint(profile="tiny", queries_counts=(2, 6))
        assert rows[1]["total_results"] >= rows[0]["total_results"]
        assert rows[1]["total_footprint_mb"] >= rows[0]["total_footprint_mb"]


class TestModelAndOptimisationFigures:
    def test_figure11_model_accuracy(self):
        rows = figures.figure11_model_validation(
            profile="tiny", selectivities=(0.005,), n_queries=3
        )
        assert len(rows) == 5
        for row in rows:
            assert row["work_error_pct"] < 60.0
            assert row["predicted_speedup"] > 0

    def test_figure12_accuracy_increases_with_fraction(self):
        rows = figures.figure12_surface_approximation(
            profile="tiny", fractions=(0.01, 0.1, 1.0), selectivities=(0.01,), n_queries=3
        )
        accuracies = [r["accuracy_pct"] for r in rows]
        assert accuracies[-1] == pytest.approx(100.0)
        assert accuracies == sorted(accuracies)
        speedups = [r["speedup_vs_exact"] for r in rows]
        assert speedups[0] >= speedups[-1]

    def test_figure13_hilbert_improves_locality(self):
        rows = figures.figure13_hilbert_layout(
            profile="tiny", selectivities=(0.01,), n_queries=3
        )
        row = rows[0]
        assert row["locality_with_layout"] < row["locality_without_layout"]
        assert row["crawl_vertices_with"] == row["crawl_vertices_without"]

    def test_figure15_speedup_ordered_by_surface_ratio(self):
        rows = figures.figure15_animation(
            profile="tiny", queries_per_step=3, max_steps=2
        )
        assert len(rows) == 3
        # The paper's Figure 15(b) finding: the lower the surface-to-volume
        # ratio, the larger OCTOPUS's speedup.  The tiny meshes are so small
        # that the high-ratio sequences may not beat the linear scan at all,
        # but the ordering and the best sequence's win must hold.
        by_ratio = sorted(rows, key=lambda r: r["surface_to_volume"])
        speedups = [r["speedup_work"] for r in by_ratio]
        assert speedups[0] == max(speedups)
        assert by_ratio[0]["dataset"] == "facial-expression"
        assert speedups[0] > 1.0
