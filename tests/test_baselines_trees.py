"""Tests for the R-tree substrate and the LUR-Tree / QU-Trade baselines."""

import numpy as np
import pytest

from repro.baselines import LinearScanExecutor, LURTreeExecutor, QUTradeExecutor, RTree
from repro.core import QueryCounters
from repro.errors import SpatialIndexError
from repro.mesh import Box3D, points_in_box
from repro.simulation import RandomWalkDeformation
from repro.workloads import random_query_workload


def brute_force(positions, box):
    return np.nonzero(points_in_box(positions, box))[0]


class TestRTree:
    def test_bulk_load_and_query_match_brute_force(self, rng):
        positions = rng.uniform(size=(2000, 3))
        tree = RTree(fanout=32)
        tree.bulk_load(positions)
        for _ in range(20):
            corners = rng.uniform(size=(2, 3))
            box = Box3D(corners.min(axis=0), corners.max(axis=0))
            assert np.array_equal(tree.query(box, positions), brute_force(positions, box))

    def test_counters_record_node_visits(self, rng):
        positions = rng.uniform(size=(500, 3))
        tree = RTree(fanout=16)
        tree.bulk_load(positions)
        counters = QueryCounters()
        tree.query(Box3D.cube((0.5, 0.5, 0.5), 0.2), positions, counters)
        assert counters.index_nodes_visited >= 1
        assert counters.vertices_scanned >= 0

    def test_leaf_capacity_respected_after_bulk_load(self, rng):
        positions = rng.uniform(size=(1000, 3))
        tree = RTree(fanout=25)
        tree.bulk_load(positions)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert len(node.entries) <= 25
            else:
                assert len(node.children) <= 25
                stack.extend(node.children)

    def test_every_point_assigned_to_exactly_one_leaf(self, rng):
        positions = rng.uniform(size=(800, 3))
        tree = RTree(fanout=20)
        tree.bulk_load(positions)
        seen = []
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                seen.extend(node.entries)
            else:
                stack.extend(node.children)
        assert sorted(seen) == list(range(800))

    def test_leaf_mbrs_contain_their_points(self, rng):
        positions = rng.uniform(size=(600, 3))
        tree = RTree(fanout=20)
        tree.bulk_load(positions)
        for entry_id in range(0, 600, 37):
            leaf = tree.leaf_of(entry_id)
            point = positions[entry_id]
            assert np.all(point >= leaf.lo - 1e-12) and np.all(point <= leaf.hi + 1e-12)

    def test_delete_then_insert_preserves_query_correctness(self, rng):
        positions = rng.uniform(size=(400, 3)).copy()
        tree = RTree(fanout=16)
        tree.bulk_load(positions)
        # Move 50 points far away and update the index for them.
        moved = rng.choice(400, size=50, replace=False)
        positions[moved] += 2.0
        for entry_id in moved:
            tree.delete(int(entry_id))
            tree.insert(int(entry_id), positions[entry_id])
        for _ in range(10):
            corners = rng.uniform(-0.5, 3.0, size=(2, 3))
            box = Box3D(corners.min(axis=0), corners.max(axis=0))
            assert np.array_equal(tree.query(box, positions), brute_force(positions, box))

    def test_insert_splits_overflowing_leaf(self, rng):
        positions = rng.uniform(size=(50, 3)).copy()
        tree = RTree(fanout=8)
        tree.bulk_load(positions)
        n_nodes_before = tree.n_nodes
        # Grow the point set well past one leaf's capacity.
        extra = rng.uniform(size=(60, 3))
        all_positions = np.vstack([positions, extra])
        tree._positions = all_positions
        for i in range(60):
            tree.insert(50 + i, all_positions[50 + i])
        assert tree.n_nodes > n_nodes_before
        box = Box3D((0, 0, 0), (1, 1, 1))
        assert np.array_equal(tree.query(box, all_positions), brute_force(all_positions, box))

    def test_query_with_expansion_returns_superset(self, rng):
        positions = rng.uniform(size=(500, 3))
        tree = RTree(fanout=16)
        tree.bulk_load(positions)
        box = Box3D.cube((0.5, 0.5, 0.5), 0.3)
        exact = tree.query(box, positions)
        expanded = tree.query(box, positions, mbr_expansion=0.2)
        assert set(exact.tolist()) <= set(expanded.tolist())

    def test_errors(self):
        with pytest.raises(SpatialIndexError):
            RTree(fanout=2)
        tree = RTree(fanout=8)
        with pytest.raises(SpatialIndexError):
            tree.query(Box3D.cube((0, 0, 0), 1.0), np.zeros((1, 3)))
        with pytest.raises(SpatialIndexError):
            tree.bulk_load(np.zeros((0, 3)))

    def test_height_and_memory(self, rng):
        positions = rng.uniform(size=(3000, 3))
        tree = RTree(fanout=16)
        tree.bulk_load(positions)
        assert tree.height() >= 2
        assert tree.memory_bytes() > 0


class TestLURTree:
    def test_query_matches_linear_scan(self, neuron_small):
        lur = LURTreeExecutor(fanout=32)
        lur.prepare(neuron_small)
        linear = LinearScanExecutor()
        linear.prepare(neuron_small)
        workload = random_query_workload(neuron_small, selectivity=0.02, n_queries=6, seed=0)
        for box in workload.boxes:
            assert lur.query(box).same_vertices_as(linear.query(box))

    def test_stays_correct_across_deformation_steps(self, neuron_small):
        mesh = neuron_small.copy()
        lur = LURTreeExecutor(fanout=32)
        lur.prepare(mesh)
        linear = LinearScanExecutor()
        linear.prepare(mesh)
        deformation = RandomWalkDeformation(amplitude=0.002, seed=1)
        deformation.bind(mesh)
        for step in range(1, 4):
            delta = deformation.apply(step)
            lur.on_step(delta)
            workload = random_query_workload(mesh, selectivity=0.02, n_queries=3, seed=step)
            for box in workload.boxes:
                assert lur.query(box).same_vertices_as(linear.query(box))

    def test_small_motion_triggers_few_reinserts(self, neuron_small):
        """Tiny per-step moves are absorbed lazily; structural reinserts are rare."""
        mesh = neuron_small.copy()
        lur = LURTreeExecutor(fanout=32)
        lur.prepare(mesh)
        deformation = RandomWalkDeformation(amplitude=0.0002, seed=2)
        deformation.bind(mesh)
        lur.on_step(deformation.apply(1))
        assert lur.n_reinserts < 0.05 * mesh.n_vertices
        # Some entries were still touched (MBR extensions) because everything moved.
        assert lur.maintenance_entries >= lur.n_reinserts

    def test_maintenance_time_accumulates(self, neuron_small):
        mesh = neuron_small.copy()
        lur = LURTreeExecutor(fanout=32)
        lur.prepare(mesh)
        deformation = RandomWalkDeformation(amplitude=0.005, seed=3)
        deformation.bind(mesh)
        elapsed = lur.on_step(deformation.apply(1))
        assert elapsed > 0.0
        assert lur.maintenance_time == pytest.approx(elapsed)

    def test_memory_overhead_positive(self, neuron_small):
        lur = LURTreeExecutor(fanout=32)
        lur.prepare(neuron_small)
        assert lur.memory_overhead_bytes() > 0


class TestQUTrade:
    def test_query_matches_linear_scan(self, neuron_small):
        qu = QUTradeExecutor(window_fraction=0.05, fanout=32)
        qu.prepare(neuron_small)
        linear = LinearScanExecutor()
        linear.prepare(neuron_small)
        workload = random_query_workload(neuron_small, selectivity=0.02, n_queries=6, seed=0)
        for box in workload.boxes:
            assert qu.query(box).same_vertices_as(linear.query(box))

    def test_stays_correct_across_deformation_steps(self, neuron_small):
        mesh = neuron_small.copy()
        qu = QUTradeExecutor(window_fraction=0.05, fanout=32)
        qu.prepare(mesh)
        linear = LinearScanExecutor()
        linear.prepare(mesh)
        deformation = RandomWalkDeformation(amplitude=0.002, seed=1)
        deformation.bind(mesh)
        for step in range(1, 4):
            delta = deformation.apply(step)
            qu.on_step(delta)
            workload = random_query_workload(mesh, selectivity=0.02, n_queries=3, seed=step)
            for box in workload.boxes:
                assert qu.query(box).same_vertices_as(linear.query(box))

    def test_grace_window_reduces_maintenance_vs_lur(self, neuron_small):
        """QU-Trade's whole point: fewer index updates than the LUR-Tree."""
        mesh_a = neuron_small.copy()
        mesh_b = neuron_small.copy()
        lur = LURTreeExecutor(fanout=32)
        lur.prepare(mesh_a)
        qu = QUTradeExecutor(window_fraction=0.1, fanout=32)
        qu.prepare(mesh_b)
        for mesh, strategy in ((mesh_a, lur), (mesh_b, qu)):
            deformation = RandomWalkDeformation(amplitude=0.003, seed=7)
            deformation.bind(mesh)
            for step in range(1, 4):
                delta = deformation.apply(step)
                strategy.on_step(delta)
        assert qu.maintenance_entries <= lur.maintenance_entries

    def test_scans_more_candidates_than_exact_rtree(self, neuron_small):
        """The query-side price of grace windows: more irrelevant objects retrieved."""
        qu = QUTradeExecutor(window_fraction=0.1, fanout=32)
        qu.prepare(neuron_small)
        lur = LURTreeExecutor(fanout=32)
        lur.prepare(neuron_small)
        workload = random_query_workload(neuron_small, selectivity=0.01, n_queries=5, seed=4)
        qu_scanned = sum(qu.query(b).counters.vertices_scanned for b in workload.boxes)
        lur_scanned = sum(lur.query(b).counters.vertices_scanned for b in workload.boxes)
        assert qu_scanned >= lur_scanned

    def test_tune_window(self, neuron_small):
        qu = QUTradeExecutor(window_fraction=0.01, fanout=32)
        qu.prepare(neuron_small)
        before = qu.window
        qu.tune_window_for(per_step_displacement=0.01, target_update_fraction=0.01)
        assert qu.window >= max(before, 1.0)
        with pytest.raises(SpatialIndexError):
            qu.tune_window_for(per_step_displacement=-1.0)

    def test_negative_window_rejected(self):
        with pytest.raises(SpatialIndexError):
            QUTradeExecutor(window_fraction=-0.1)
